package dimprune

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubscribeExprChannelDelivery covers the default handle mode: a
// buffered channel carrying notifications in publish order.
func TestSubscribeExprChannelDelivery(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	h, err := ps.SubscribeExpr(`category = "scifi" and price <= 25`, WithSubscriber("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == 0 || h.Subscriber() != "alice" || h.C() == nil || h.Policy() != Block {
		t.Fatalf("handle misconfigured: %+v", h)
	}
	n, err := ps.Publish(NewEvent(1).Str("category", "scifi").Num("price", 19.5).Msg())
	if err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	select {
	case got := <-h.C():
		if got.Subscriber != "alice" || got.SubID != h.ID() || got.Msg.ID != 1 {
			t.Fatalf("notification = %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	if h.Delivered() != 1 || h.Dropped() != 0 {
		t.Errorf("delivered=%d dropped=%d", h.Delivered(), h.Dropped())
	}
}

// TestSubscribeTreeCallbackDelivery covers WithCallback: delivery from the
// handle's dedicated goroutine, decoupled from the publisher.
func TestSubscribeTreeCallbackDelivery(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	got := make(chan Notification, 4)
	h, err := ps.SubscribeTree(
		Eq("x", Int(1)),
		WithSubscriber("cb"),
		WithCallback(func(n Notification) { got <- n }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if h.C() != nil {
		t.Fatal("callback handle exposes a channel")
	}
	if _, err := ps.Publish(NewEvent(9).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.Msg.ID != 9 || n.SubID != h.ID() {
			t.Fatalf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never ran")
	}
}

// TestSentinelErrors pins the exported error identities.
func TestSentinelErrors(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Publish(nil); !errors.Is(err, ErrNilMessage) {
		t.Errorf("Publish(nil) = %v, want ErrNilMessage", err)
	}
	if _, err := ps.PublishBatch([]*Message{NewEvent(1).Int("x", 1).Msg(), nil}); !errors.Is(err, ErrNilMessage) {
		t.Errorf("PublishBatch(…, nil) = %v, want ErrNilMessage", err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := ps.Publish(NewEvent(1).Int("x", 1).Msg()); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after Close = %v, want ErrClosed", err)
	}
	if _, err := ps.SubscribeExpr(`x = 1`); !errors.Is(err, ErrClosed) {
		t.Errorf("SubscribeExpr after Close = %v, want ErrClosed", err)
	}
	if _, err := ps.Subscribe("a", Eq("x", Int(1))); !errors.Is(err, ErrClosed) {
		t.Errorf("legacy Subscribe after Close = %v, want ErrClosed", err)
	}
	// Nil messages outrank closure: the argument is checked first.
	if _, err := ps.Publish(nil); !errors.Is(err, ErrNilMessage) {
		t.Errorf("Publish(nil) after Close = %v, want ErrNilMessage", err)
	}
}

// TestCloseDrainsQueues: Close delivers what was queued, then closes the
// channels.
func TestCloseDrainsQueues(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ps.SubscribeExpr(`x = 1`, WithBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ps.Publish(NewEvent(uint64(i)).Int("x", 1).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for n := range h.C() {
		ids = append(ids, n.Msg.ID)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("drained %v, want [1 2 3]", ids)
	}
}

// TestDropOldestNeverBlocksPublish is acceptance criterion (c): one
// permanently blocked channel consumer under DropOldest, Publish keeps
// going, Dropped() accounts exactly.
func TestDropOldestNeverBlocksPublish(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	const buf = 4
	h, err := ps.SubscribeExpr(`x = 1`, WithBuffer(buf), WithPolicy(DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	// Nobody ever reads h.C(). Publishing far past the buffer must finish
	// promptly; a watchdog turns a wedged Publish into a failure instead
	// of a test timeout.
	const n = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= n; i++ {
			if _, err := ps.Publish(NewEvent(uint64(i)).Int("x", 1).Msg()); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on a full DropOldest queue")
	}
	if h.Delivered() != n {
		t.Errorf("Delivered = %d, want %d", h.Delivered(), n)
	}
	if h.Dropped() != n-buf {
		t.Errorf("Dropped = %d, want %d", h.Dropped(), n-buf)
	}
	// The queue retains the newest window, still in order.
	for want := uint64(n - buf + 1); want <= n; want++ {
		got := <-h.C()
		if got.Msg.ID != want {
			t.Fatalf("window event = %d, want %d", got.Msg.ID, want)
		}
	}
	// Per-entry metadata mirrors the handle's accounting.
	for _, ed := range ps.Stats().Delivery {
		if ed.SubID == h.ID() {
			if ed.Delivered != n || ed.Dropped != n-buf {
				t.Errorf("Stats.Delivery = %+v", ed)
			}
			return
		}
	}
	t.Error("handle's entry missing from Stats.Delivery")
}

// TestDropNewestKeepsBacklog: the complementary policy sheds the new
// notifications and keeps the oldest.
func TestDropNewestKeepsBacklog(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	h, err := ps.SubscribeExpr(`x = 1`, WithBuffer(2), WithPolicy(DropNewest))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := ps.Publish(NewEvent(uint64(i)).Int("x", 1).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	if h.Delivered() != 2 || h.Dropped() != 3 {
		t.Errorf("delivered=%d dropped=%d, want 2/3", h.Delivered(), h.Dropped())
	}
	if got := <-h.C(); got.Msg.ID != 1 {
		t.Errorf("head = %d, want 1", got.Msg.ID)
	}
}

// TestNoDeliveryAfterUnsubscribe is acceptance criterion (a): once
// Unsubscribe returns, the callback is never invoked again, even with
// publishers in flight.
func TestNoDeliveryAfterUnsubscribe(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ps.Publish(NewEvent(uint64(g*1_000_000+i)).Int("x", 1).Msg()); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(g)
	}
	for round := 0; round < 20; round++ {
		var retired atomic.Bool
		h, err := ps.SubscribeExpr(`x = 1`, WithBuffer(4), WithCallback(func(Notification) {
			if retired.Load() {
				t.Error("delivery after Unsubscribe returned")
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		if err := h.Unsubscribe(); err != nil {
			t.Fatal(err)
		}
		retired.Store(true)
		if err := h.Unsubscribe(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPerSubscriptionOrderUnderChurn is acceptance criterion (b): each
// subscription sees one publisher's events in publish order, while other
// subscriptions churn and publishers run concurrently.
func TestPerSubscriptionOrderUnderChurn(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// One ordered publisher per stream attribute; every stream has one
	// Block-policy channel subscriber asserting strictly increasing seq.
	const streams = 3
	const perStream = 300
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		expr := fmt.Sprintf(`stream = %d`, s)
		h, err := ps.SubscribeExpr(expr, WithBuffer(16))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(s int) { // consumer
			defer wg.Done()
			next := uint64(0)
			for n := range h.C() {
				seq, ok := n.Msg.Get("seq")
				if !ok {
					t.Errorf("stream %d: event without seq", s)
					return
				}
				if uint64(seq.AsInt()) != next {
					t.Errorf("stream %d: seq %d, want %d", s, seq.AsInt(), next)
					return
				}
				next++
				if next == perStream {
					h.Unsubscribe()
					return
				}
			}
		}(s)
		go func(s int) { // publisher
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				m := NewEvent(uint64(s*perStream+i)).Int("stream", int64(s)).Int("seq", int64(i)).Msg()
				if _, err := ps.Publish(m); err != nil {
					t.Errorf("stream %d publish: %v", s, err)
					return
				}
			}
		}(s)
	}
	// Churn: subscribe/unsubscribe unrelated handles while the streams run.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			h, err := ps.SubscribeExpr(`noise = "yes"`, WithBuffer(1), WithPolicy(DropNewest))
			if err != nil {
				t.Errorf("churn subscribe: %v", err)
				return
			}
			if err := h.Unsubscribe(); err != nil {
				t.Errorf("churn unsubscribe: %v", err)
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("churn test wedged")
	}
	close(churnStop)
	<-churnDone
}

// TestLegacyAPISynchronousDelivery pins the deprecated wrappers to the
// seed contract: OnNotify callbacks run on the publishing goroutine before
// Publish returns.
func TestLegacyAPISynchronousDelivery(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var got []Notification
	ps.OnNotify(func(n Notification) { got = append(got, n) })
	id, err := ps.SubscribeText("alice", `x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ps.Publish(NewEvent(1).Int("x", 1).Msg()); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	if len(got) != 1 || got[0].SubID != id || got[0].Subscriber != "alice" {
		t.Fatalf("synchronous delivery missing: %+v", got)
	}
	if err := ps.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if err := ps.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe accepted")
	}
	if n, _ := ps.Publish(NewEvent(2).Int("x", 1).Msg()); n != 0 || len(got) != 1 {
		t.Errorf("delivery after unsubscribe: n=%d got=%+v", n, got)
	}
}

// TestHandleUnsubscribeOnLegacyID: the two APIs address the same
// subscription space.
func TestHandleUnsubscribeOnLegacyID(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	h, err := ps.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Unsubscribe(h.ID()); err != nil {
		t.Fatal(err)
	}
	if _, open := <-h.C(); open {
		t.Error("channel open after Unsubscribe-by-ID")
	}
}

// TestInvalidPolicyRejected: registration validates the policy.
func TestInvalidPolicyRejected(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if _, err := ps.SubscribeExpr(`x = 1`, WithPolicy(Policy(42))); err == nil {
		t.Error("invalid policy accepted")
	}
}

// TestBlockPolicyStallsOnlyThePublisher: with a full Block queue the
// publishing goroutine waits, but an unrelated subscription keeps
// receiving from other publishers, and Unsubscribe releases the stalled
// publisher.
func TestBlockPolicyStallsOnlyThePublisher(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	blocked, err := ps.SubscribeExpr(`x = 1`, WithBuffer(1), WithPolicy(Block))
	if err != nil {
		t.Fatal(err)
	}
	other, err := ps.SubscribeExpr(`y = 1`, WithBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the blocked handle's queue, then stall a publisher on it.
	if _, err := ps.Publish(NewEvent(1).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		ps.Publish(NewEvent(2).Int("x", 1).Msg()) //nolint:errcheck // released by Unsubscribe below
	}()
	select {
	case <-stalled:
		t.Fatal("publisher did not block on a full Block queue")
	case <-time.After(20 * time.Millisecond):
	}
	// The match path is free: a different publisher reaches `other`.
	if _, err := ps.Publish(NewEvent(3).Int("y", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-other.C():
		if n.Msg.ID != 3 {
			t.Fatalf("other received %d", n.Msg.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("unrelated subscription starved by a blocked one")
	}
	if err := blocked.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(time.Second):
		t.Fatal("Unsubscribe did not release the stalled publisher")
	}
}
