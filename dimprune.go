// Package dimprune is a concurrent content-based publish/subscribe library
// with dimension-based subscription pruning, reproducing and extending
// Bittner & Hinze, "Dimension-Based Subscription Pruning for
// Publish/Subscribe Systems" (ICDCS Workshops 2006).
//
// Subscriptions are arbitrary Boolean expressions over attribute–operator–
// value predicates. Brokers route events through acyclic overlays using
// subscription forwarding, and optimize their routing tables by pruning:
// generalizing non-local subscription trees to trade a bounded amount of
// extra traffic for smaller tables and faster filtering. Pruning order is
// driven by one of three dimensions — network load, memory usage, or
// throughput — each with its own heuristic (the paper's contribution).
//
// The event hot path is parallel end to end. Publishing is the data plane:
// any number of goroutines may publish at once, each event matched against
// the routing table under a shared lock with per-call scratch state, and —
// for large tables — a single match can additionally fan its counting
// phase out across a worker pool over a sharded subscription table
// (EmbeddedConfig.MatchWorkers / Shards, BrokerConfig.MatchWorkers /
// MatchShards). Subscribing, unsubscribing, pruning, and snapshot restore
// are the control plane and run exclusively. See ARCHITECTURE.md for the
// full model.
//
// # Quick start
//
//	ps, _ := dimprune.NewEmbedded(dimprune.EmbeddedConfig{})
//	id, _ := ps.SubscribeText("alice", `category = "scifi" and price <= 25`)
//	ps.OnNotify(func(n dimprune.Notification) {
//	    fmt.Println(n.Subscriber, "got", n.Msg)
//	})
//	ps.Publish(dimprune.NewEvent(1).Str("category", "scifi").Num("price", 19.5))
//	_ = id
//
// # Layers
//
//   - Subscriptions and events: Parse / builders (Eq, And, Or …), NewEvent.
//   - Embedded: single-process concurrent matcher for applications
//     (NewEmbedded); Publish and PublishBatch are safe from any number of
//     goroutines.
//   - Simulation: deterministic broker overlays (NewLineOverlay) used by the
//     paper's experiments (RunCentralized / RunDistributed).
//   - Networked: TCP broker servers and clients (NewServer, DialBroker),
//     run as a concurrent decode → match → per-peer-outbox pipeline; see
//     cmd/brokerd for the daemon with -match-workers / -match-shards.
//
// The experiment harness regenerating the paper's figures lives behind
// RunCentralized/RunDistributed; see cmd/prunesim for the command-line
// front end and EXPERIMENTS.md for measured results.
package dimprune

import (
	"dimprune/internal/core"
)

// Dimension selects the pruning optimization target (paper §3).
type Dimension = core.Dimension

// Pruning dimensions.
const (
	// Network minimizes growth in matched/forwarded events (Δ≈sel).
	Network = core.DimNetwork
	// Memory maximizes routing-table byte reduction per step (Δ≈mem).
	Memory = core.DimMemory
	// Throughput keeps the counting filter's pmin gate strong (Δ≈eff).
	Throughput = core.DimThroughput
)

// PruneOptions tunes the pruning engine (ablation switches).
type PruneOptions = core.Options

// Rating carries the three heuristic values of an applied pruning.
type Rating = core.Rating
