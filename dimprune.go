// Package dimprune is a content-based publish/subscribe library with
// dimension-based subscription pruning, reproducing Bittner & Hinze,
// "Dimension-Based Subscription Pruning for Publish/Subscribe Systems"
// (ICDCS Workshops 2006).
//
// Subscriptions are arbitrary Boolean expressions over attribute–operator–
// value predicates. Brokers route events through acyclic overlays using
// subscription forwarding, and optimize their routing tables by pruning:
// generalizing non-local subscription trees to trade a bounded amount of
// extra traffic for smaller tables and faster filtering. Pruning order is
// driven by one of three dimensions — network load, memory usage, or
// throughput — each with its own heuristic (the paper's contribution).
//
// # Quick start
//
//	ps, _ := dimprune.NewEmbedded(dimprune.EmbeddedConfig{})
//	id, _ := ps.SubscribeText("alice", `category = "scifi" and price <= 25`)
//	ps.OnNotify(func(n dimprune.Notification) {
//	    fmt.Println(n.Subscriber, "got", n.Msg)
//	})
//	ps.Publish(dimprune.NewEvent(1).Str("category", "scifi").Num("price", 19.5))
//	_ = id
//
// # Layers
//
//   - Subscriptions and events: Parse / builders (Eq, And, Or …), NewEvent.
//   - Embedded: single-process matcher for applications (NewEmbedded).
//   - Simulation: deterministic broker overlays (NewLineNetwork) used by the
//     paper's experiments (RunCentralized / RunDistributed).
//   - Networked: TCP broker servers and clients (NewServer, DialBroker).
//
// The experiment harness regenerating the paper's figures lives behind
// RunCentralized/RunDistributed; see cmd/prunesim for the command-line
// front end and EXPERIMENTS.md for measured results.
package dimprune

import (
	"dimprune/internal/core"
)

// Dimension selects the pruning optimization target (paper §3).
type Dimension = core.Dimension

// Pruning dimensions.
const (
	// Network minimizes growth in matched/forwarded events (Δ≈sel).
	Network = core.DimNetwork
	// Memory maximizes routing-table byte reduction per step (Δ≈mem).
	Memory = core.DimMemory
	// Throughput keeps the counting filter's pmin gate strong (Δ≈eff).
	Throughput = core.DimThroughput
)

// PruneOptions tunes the pruning engine (ablation switches).
type PruneOptions = core.Options

// Rating carries the three heuristic values of an applied pruning.
type Rating = core.Rating
