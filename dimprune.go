// Package dimprune is a concurrent content-based publish/subscribe library
// with dimension-based subscription pruning, reproducing and extending
// Bittner & Hinze, "Dimension-Based Subscription Pruning for
// Publish/Subscribe Systems" (ICDCS Workshops 2006).
//
// Subscriptions are arbitrary Boolean expressions over attribute–operator–
// value predicates. Brokers route events through acyclic overlays using
// subscription forwarding, and optimize their routing tables by pruning:
// generalizing non-local subscription trees to trade a bounded amount of
// extra traffic for smaller tables and faster filtering. Pruning order is
// driven by one of three dimensions — network load, memory usage, or
// throughput — each with its own heuristic (the paper's contribution).
//
// The event hot path is parallel end to end. Publishing is the data plane:
// any number of goroutines may publish at once, each event matched against
// the routing table under a shared lock with per-call scratch state, and —
// for large tables — a single match can additionally fan its counting
// phase out across a worker pool over a sharded subscription table
// (EmbeddedConfig.MatchWorkers / Shards, BrokerConfig.MatchWorkers /
// MatchShards). Subscribing, unsubscribing, pruning, and snapshot restore
// are the control plane and run exclusively.
//
// Delivery is its own plane: every subscription owns a bounded queue
// between the match path and its consumer, so a consumer that stops
// reading never stalls publishers, other subscribers, or the control
// plane. The queue's overflow behavior is the subscription's backpressure
// policy — Block, DropOldest, or DropNewest, with drops counted on the
// Handle and in Stats. See ARCHITECTURE.md for the full model.
//
// # Quick start
//
//	ps, _ := dimprune.NewEmbedded(dimprune.EmbeddedConfig{})
//	defer ps.Close()
//	h, _ := ps.SubscribeExpr(`category = "scifi" and price <= 25`,
//	    dimprune.WithSubscriber("alice"),
//	    dimprune.WithBuffer(128),
//	    dimprune.WithPolicy(dimprune.DropOldest))
//	go func() {
//	    for n := range h.C() {
//	        fmt.Println(n.Subscriber, "got", n.Msg)
//	    }
//	}()
//	ps.Publish(dimprune.NewEvent(1).Str("category", "scifi").Num("price", 19.5).Msg())
//
// Handles deliver on a channel (h.C()) or, with WithCallback, from a
// dedicated goroutine per subscription; h.Unsubscribe retires the
// subscription and h.Dropped reports backpressure losses. The earlier
// OnNotify/uint64-ID API remains as deprecated wrappers with its original
// synchronous semantics.
//
// # Layers
//
//   - Subscriptions and events: Parse / builders (Eq, And, Or …), NewEvent.
//   - Embedded: single-process concurrent matcher for applications
//     (NewEmbedded); Publish and PublishBatch are safe from any number of
//     goroutines, and each subscription's Handle owns its delivery.
//   - Simulation: deterministic broker overlays (NewLineOverlay) used by the
//     paper's experiments (RunCentralized / RunDistributed).
//   - Networked: TCP broker servers and clients (NewServer, DialBroker),
//     run as a concurrent decode → match → per-peer-outbox pipeline; client
//     sessions mirror the handle API (Client.SubscribeExpr → ClientHandle).
//     See cmd/brokerd for the daemon with -match-workers / -match-shards.
//   - Workloads: named scenario generators (NewWorkloadGenerator,
//     WorkloadNames) producing deterministic seeded event and subscription
//     streams — the paper's auction plus stock-ticker and fleet-telemetry
//     scenarios with opposite pruning/covering behavior.
//
// The experiment harness regenerating the paper's figures lives behind
// RunCentralized/RunDistributed and runs on any registered workload
// (ExperimentConfig.Workload); see cmd/prunesim for the command-line
// front end and EXPERIMENTS.md for how to regenerate measured results.
package dimprune

import (
	"dimprune/internal/core"
)

// Dimension selects the pruning optimization target (paper §3).
type Dimension = core.Dimension

// Pruning dimensions.
const (
	// Network minimizes growth in matched/forwarded events (Δ≈sel).
	Network = core.DimNetwork
	// Memory maximizes routing-table byte reduction per step (Δ≈mem).
	Memory = core.DimMemory
	// Throughput keeps the counting filter's pmin gate strong (Δ≈eff).
	Throughput = core.DimThroughput
)

// PruneOptions tunes the pruning engine (ablation switches).
type PruneOptions = core.Options

// Rating carries the three heuristic values of an applied pruning.
type Rating = core.Rating
