package dimprune

import (
	"time"

	"dimprune/internal/adaptive"
)

// Adaptive control re-exports: dynamic dimension selection and automatic
// pruning budgets (the paper's future-work §5, implemented).

// Signals are the observed system parameters an AdaptivePolicy decides from.
type Signals = adaptive.Signals

// AdaptivePolicy maps signals to a pruning dimension.
type AdaptivePolicy = adaptive.Policy

// AdaptiveController applies a policy to a broker-like target.
type AdaptiveController = adaptive.Controller

// PruneTarget is the slice of a broker an adaptive controller drives;
// *Broker and *Embedded both satisfy it.
type PruneTarget = adaptive.Target

// NewAdaptiveController wires a policy to a target.
func NewAdaptiveController(target PruneTarget, policy AdaptivePolicy) (*AdaptiveController, error) {
	return adaptive.NewController(target, policy)
}

// AutoPrune applies pruning batches while the measured cost improves and
// stops after patience non-improving batches; it returns the prunings
// applied. See adaptive.AutoPrune.
func AutoPrune(target PruneTarget, measure func() time.Duration, batch, patience int) (int, error) {
	return adaptive.AutoPrune(target, measure, batch, patience)
}

// Compile-time checks that the concrete types drive correctly.
var (
	_ PruneTarget = (*Embedded)(nil)
)

// Dimension returns the embedded engine's active pruning dimension,
// satisfying PruneTarget. Reading takes only the shared lock — the broker
// serializes against SetDimension itself, so the engine's read path stays
// unblocked.
func (e *Embedded) Dimension() Dimension {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.b.Dimension()
}
