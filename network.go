package dimprune

import (
	"fmt"

	"dimprune/internal/broker"
	"dimprune/internal/experiment"
	"dimprune/internal/simnet"
	"dimprune/internal/transport"
)

// Simulation re-exports: deterministic in-process broker overlays.

// Overlay is a deterministic in-memory broker overlay (the simulation the
// paper's distributed experiments run on).
type Overlay = simnet.Network

// SimDelivery is one delivery observed in a simulated overlay.
type SimDelivery = simnet.Delivery

// Traffic aggregates simulated link transmissions.
type Traffic = simnet.TrafficCounters

// Broker is a sans-IO routing broker; see the networked layer (NewServer)
// or the simulation (NewLineNetwork) for drivers.
type Broker = broker.Broker

// BrokerConfig configures a broker.
type BrokerConfig = broker.Config

// BrokerStats snapshots a broker's state and counters.
type BrokerStats = broker.Stats

// Delivery is one notification for a local subscriber of a broker.
type Delivery = broker.Delivery

// NewBroker creates a routing broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) { return broker.New(cfg) }

// OverlayOption customizes the brokers an overlay constructor builds
// (NewLineOverlay, NewNetworkedLine).
type OverlayOption func(*overlayOptions)

type overlayOptions struct {
	disableCovering bool
}

// WithoutCovering disables the covering plane on every broker of the
// overlay: each subscription is forwarded to every peer regardless of
// covers already advertised. Covering is on by default; this knob exists
// for measuring its effect and for differential testing.
func WithoutCovering() OverlayOption {
	return func(o *overlayOptions) { o.disableCovering = true }
}

func applyOverlayOptions(opts []OverlayOption) overlayOptions {
	var o overlayOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// OverlayEdge is one undirected link of an overlay topology, by broker
// index. Edge lists come from the topology helpers (LineEdges, StarEdges,
// TreeEdges, RandomTreeEdges, ParseTopology) or by hand; constructors
// treat A as the dialing side on networked overlays.
type OverlayEdge = simnet.Edge

// LineEdges returns the paper's line topology over n brokers.
func LineEdges(n int) []OverlayEdge { return simnet.LineEdges(n) }

// StarEdges returns a hub-and-spoke topology with broker 0 as the hub.
func StarEdges(n int) []OverlayEdge { return simnet.StarEdges(n) }

// TreeEdges returns a complete fanout-ary tree topology over n brokers.
func TreeEdges(n, fanout int) []OverlayEdge { return simnet.TreeEdges(n, fanout) }

// RandomTreeEdges returns a seeded uniformly-random recursive tree over n
// brokers: every acyclic connected shape is reachable, reproducibly.
func RandomTreeEdges(n int, seed int64) []OverlayEdge {
	return simnet.RandomTreeEdges(n, seed)
}

// ParseTopology resolves "line", "star", "tree[:fanout]", or
// "random:<seed>" into an edge list over n brokers.
func ParseTopology(name string, n int) ([]OverlayEdge, error) {
	return simnet.ParseTopology(name, n)
}

// newOverlayBrokers builds the n identically configured brokers every
// overlay constructor starts from.
func newOverlayBrokers(n int, dim Dimension, o overlayOptions) ([]*broker.Broker, error) {
	brokers := make([]*broker.Broker, n)
	for i := range brokers {
		b, err := broker.New(broker.Config{
			ID:              fmt.Sprintf("b%d", i),
			Dimension:       dim,
			ObserveEvents:   true,
			DisableCovering: o.disableCovering,
		})
		if err != nil {
			return nil, err
		}
		brokers[i] = b
	}
	return brokers, nil
}

// NewLineOverlay builds n brokers connected as a line (the paper's
// distributed topology), all pruning with the given dimension. Simulated
// brokers match serially so overlay runs stay deterministic; use
// BrokerConfig's MatchWorkers/MatchShards with NewBroker + NewServer for
// parallel matching over real connections.
func NewLineOverlay(n int, dim Dimension, opts ...OverlayOption) (*Overlay, error) {
	if n < 2 {
		return nil, fmt.Errorf("dimprune: line network needs >= 2 brokers, got %d", n)
	}
	brokers, err := newOverlayBrokers(n, dim, applyOverlayOptions(opts))
	if err != nil {
		return nil, err
	}
	return simnet.NewLine(brokers)
}

// NewOverlay builds a simulated overlay with an arbitrary acyclic topology
// — the general form of NewLineOverlay. The broker count is the highest
// index named by edges plus one; simnet refuses cyclic or malformed edge
// sets.
func NewOverlay(edges []OverlayEdge, dim Dimension, opts ...OverlayOption) (*Overlay, error) {
	n, err := overlaySize(edges)
	if err != nil {
		return nil, err
	}
	brokers, err := newOverlayBrokers(n, dim, applyOverlayOptions(opts))
	if err != nil {
		return nil, err
	}
	return simnet.NewNetwork(brokers, edges)
}

// overlaySize derives the broker count from an edge list.
func overlaySize(edges []OverlayEdge) (int, error) {
	if len(edges) == 0 {
		return 0, fmt.Errorf("dimprune: overlay needs at least one edge")
	}
	max := 0
	for _, e := range edges {
		if e.A < 0 || e.B < 0 {
			return 0, fmt.Errorf("dimprune: negative broker index in edge %+v", e)
		}
		if e.A > max {
			max = e.A
		}
		if e.B > max {
			max = e.B
		}
	}
	return max + 1, nil
}

// Networked re-exports: real transports for broker deployments.

// Server runs one broker over real connections (TCP or in-memory pipes) as
// a concurrent pipeline: connection readers decode frames, publishes route
// concurrently through the broker's shared data plane (fanning each match
// out across the broker's configured workers), and per-peer outboxes drain
// in order. Configure parallelism via BrokerConfig.MatchWorkers and
// BrokerConfig.MatchShards on the wrapped broker; use Server.PublishBatch
// to amortize lock handoff under bursty load.
type Server = transport.Server

// Conn is a frame-oriented bidirectional connection.
type Conn = transport.Conn

// Client is a subscriber/publisher session against a broker server.
// Client.SubscribeExpr/SubscribeNode mirror the embedded engine's handle
// API: each subscription returns a ClientHandle owning a delivery queue
// with a backpressure policy, so embedded and networked subscribers are
// symmetric.
type Client = transport.Client

// ClientHandle is one networked subscription and the owner of its
// delivery — the networked counterpart of Handle. Its queue carries
// *Message (the broker post-filters exactly, so the handle's own
// subscription is the provenance a Notification would add).
type ClientHandle = transport.Handle

// ClientSubOption configures one networked subscription; see
// ClientCallback, ClientBuffer, and ClientPolicy. (The embedded engine's
// SubOption values configure Embedded handles instead — the two layers
// deliver different payload types.)
type ClientSubOption = transport.SubOption

// ClientCallback delivers a networked subscription's events by invoking
// fn from the handle's dedicated delivery goroutine.
func ClientCallback(fn func(*Message)) ClientSubOption {
	return transport.WithCallback(fn)
}

// ClientBuffer sets a networked subscription's delivery-queue capacity.
func ClientBuffer(n int) ClientSubOption { return transport.WithBuffer(n) }

// ClientPolicy sets a networked subscription's backpressure policy
// (Block, DropOldest, DropNewest).
func ClientPolicy(p Policy) ClientSubOption { return transport.WithPolicy(p) }

// DurableEvent is one replayed-or-live event on a networked durable
// subscription: the broker's WAL sequence (the ack token) plus the
// matched message.
type DurableEvent = transport.DurableEvent

// ClientDurableHandle is one networked durable subscription — the
// counterpart of an embedded WithDurable handle. Events that are not
// Ack'd replay on the next Client.DurableSubscribeExpr under the same
// name, across reconnects and broker restarts.
type ClientDurableHandle = transport.DurableHandle

// ClientDurableOption configures one networked durable subscription;
// see ClientDurableCallback, ClientDurableBuffer, and ClientManualAck.
type ClientDurableOption = transport.DurableOption

// ClientDurableCallback delivers a durable subscription's events by
// invoking fn from the handle's delivery goroutine, acking each event
// as fn returns (unless ClientManualAck).
func ClientDurableCallback(fn func(DurableEvent)) ClientDurableOption {
	return transport.DurableCallback(fn)
}

// ClientDurableBuffer sets a durable subscription's delivery-queue
// capacity. Durable queues always Block — the broker's log, not the
// queue, is the real buffer.
func ClientDurableBuffer(n int) ClientDurableOption {
	return transport.DurableBuffer(n)
}

// ClientManualAck disables auto-ack for a durable callback
// subscription: the callback must call Handle.Ack itself (the networked
// counterpart of WithManualAck).
func ClientManualAck() ClientDurableOption { return transport.ManualAck() }

// NewServer wraps a broker for networked operation.
func NewServer(b *Broker, onDeliver func(Delivery)) *Server {
	return transport.NewServer(b, onDeliver)
}

// BrokerPeer is a dialed, auto-reconnecting broker-to-broker link of a
// networked overlay; see DialPeer.
type BrokerPeer = transport.Peer

// DialPeer opens a persistent peer link from s to the broker listening at
// addr (Server.Listen). The link handshakes with a connect-time acyclicity
// check (an edge that would close an overlay cycle is refused), replays
// routing state in both directions, and — unlike the raw DialBroker/
// AttachLink plumbing — automatically redials with backoff and resyncs
// when the connection drops. Non-local subscriptions learned over peer
// links are prunable routing entries, exactly as in the simulated overlay.
func DialPeer(s *Server, addr string) (*BrokerPeer, error) {
	return s.DialPeer(addr)
}

// NewNetworkedLine assembles n brokers into a real line overlay
// b0 — b1 — … — bn-1 over loopback TCP: every broker gets its own Server
// and peer listener, and each successive pair is connected with DialPeer
// (handshake, acyclicity check, reconnect). onDeliver, if non-nil,
// receives every local delivery tagged with the index of the broker that
// made it — the networked counterpart of the simulated overlay's
// SimDelivery stream. The returned shutdown function stops all servers.
func NewNetworkedLine(n int, dim Dimension, onDeliver func(atBroker int, d Delivery), opts ...OverlayOption) ([]*Server, func(), error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("dimprune: line overlay needs >= 2 brokers, got %d", n)
	}
	return NewNetworkedOverlay(LineEdges(n), dim, onDeliver, opts...)
}

// NewNetworkedOverlay assembles a real broker overlay with an arbitrary
// acyclic topology over loopback TCP — the general form of
// NewNetworkedLine. Every broker named by edges gets its own Server and
// peer listener; each edge is then connected with DialPeer from its A side
// (handshake, acyclicity check, reconnect-with-jitter). onDeliver, if
// non-nil, receives every local delivery tagged with the delivering
// broker's index. The returned shutdown function stops all servers.
func NewNetworkedOverlay(edges []OverlayEdge, dim Dimension, onDeliver func(atBroker int, d Delivery), opts ...OverlayOption) ([]*Server, func(), error) {
	n, err := overlaySize(edges)
	if err != nil {
		return nil, nil, err
	}
	o := applyOverlayOptions(opts)
	servers := make([]*Server, 0, n)
	shutdown := func() {
		for _, s := range servers {
			s.Shutdown()
		}
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		b, err := broker.New(broker.Config{
			ID:              fmt.Sprintf("b%d", i),
			Dimension:       dim,
			ObserveEvents:   true,
			DisableCovering: o.disableCovering,
		})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		i := i
		var sink func(Delivery)
		if onDeliver != nil {
			sink = func(d Delivery) { onDeliver(i, d) }
		}
		s := transport.NewServer(b, sink)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			s.Shutdown()
			shutdown()
			return nil, nil, err
		}
		servers = append(servers, s)
		addrs[i] = addr
	}
	// Edges connect after every listener is up, so dial order — not index
	// order — decides assembly; each edge joins two disjoint components of
	// the forest, which the membership handshake accepts in any sequence.
	for _, e := range edges {
		if _, err := servers[e.A].DialPeer(addrs[e.B]); err != nil {
			shutdown()
			return nil, nil, fmt.Errorf("dimprune: edge %d-%d: %w", e.A, e.B, err)
		}
	}
	return servers, shutdown, nil
}

// DialBroker opens a TCP connection to a broker server.
func DialBroker(addr string) (Conn, error) { return transport.Dial(addr) }

// NewClient starts a client session over an established connection.
func NewClient(subscriber string, conn Conn) *Client {
	return transport.NewClient(subscriber, conn)
}

// Pipe returns two connected in-memory connections.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// Experiment re-exports: the harness regenerating the paper's figures.

// ExperimentConfig parameterizes a figure sweep.
type ExperimentConfig = experiment.Config

// ExperimentResult bundles the sweeps of one setting.
type ExperimentResult = experiment.Result

// Figure is one reproduced paper figure.
type Figure = experiment.Figure

// DefaultExperimentConfig returns the laptop-scale sweep configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiment.DefaultConfig() }

// RunCentralized reproduces Fig 1(a)–(c).
func RunCentralized(cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiment.RunCentralized(cfg)
}

// RunDistributed reproduces Fig 1(d)–(f).
func RunDistributed(cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiment.RunDistributed(cfg)
}

// Figures converts a result into plottable figure series.
func Figures(res *ExperimentResult) []Figure { return experiment.Figures(res) }

// RenderTable renders a figure as an aligned text table.
func RenderTable(fig Figure) string { return experiment.RenderTable(fig) }

// RenderCSV renders a figure as CSV.
func RenderCSV(fig Figure) string { return experiment.RenderCSV(fig) }
