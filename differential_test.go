package dimprune

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/simnet"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

// Differential test of the networked overlay against two oracles, table-
// driven over every registered workload scenario (auction, ticker,
// sensornet, …):
//
//   - exact: a single broker holding every subscription locally — the
//     ground-truth match sets.
//   - simnet: the deterministic in-memory 3-broker line the paper's
//     distributed experiments run on.
//   - network: a real 3-broker line over loopback TCP peer links, with the
//     parallel match path live on every hop.
//
// With pruning off, all three must produce exactly the same delivery set
// and the real overlay must transmit exactly the simulation's number of
// publish frames. With pruning exhausted, pruning may only generalize
// non-local routing entries: the overlay delivery sets must be supersets
// of the exact set — one lost delivery is a correctness bug (the paper's
// safety invariant, §2.2). Running the same oracle across workloads with
// opposite pruning behavior (covering-friendly ticker, covering-hostile
// sensornet) keeps the invariant honest on predicate shapes the auction
// never generates.

// delivPair identifies one delivery: which subscription got which event.
type delivPair struct{ sub, msg uint64 }

// diffWorkload is the shared seeded workload of one differential run.
type diffWorkload struct {
	subs   []*subscription.Subscription
	events []*event.Message
}

const (
	diffBrokers = 3
	diffSubs    = 120
	diffEvents  = 240
	diffSeed    = 42
	// diffSentinelBase offsets sentinel subscription and event IDs so they
	// filter cleanly out of collected delivery sets.
	diffSentinelBase = uint64(1) << 30
)

// diffBroadSubs mixes per-scenario broad subscriptions into the generated
// workload so the differential exercises dense delivery and forwarding
// paths too, not just each scenario's (deliberately selective) classes.
var diffBroadSubs = map[string][]string{
	"auction": {
		`price <= 40`,
		`price <= 25 or bids >= 30`,
		`category = "scifi" or category = "fantasy" or category = "crime"`,
		`format = "paperback" and price <= 60`,
		`rating >= 4 and hours_left <= 24`,
		`condition = "new" and discount >= 0`,
		`signed = true or price <= 15`,
		`category = "history" and (format = "hardcover" or format = "ebook")`,
		`bids <= 2 and price <= 80`,
	},
	"ticker": {
		`price <= 50`,
		`change >= 2 or change <= -2`,
		`sector = "tech" or sector = "energy"`,
		`exchange = "NYX" and price <= 120`,
		`volume >= 100000 or trades >= 1000`,
		`halted = true or change <= -5`,
		`sector = "finance" and (change >= 1 or volume >= 50000)`,
	},
	"sensornet": {
		`battery <= 30`,
		`temp >= 70 or vibration >= 8`,
		`kind = "thermal" or kind = "gateway"`,
		`fault = true or rssi <= -95`,
		`humidity >= 80 or temp <= 0`,
		`kind = "power" and (uptime_h >= 5000 or battery <= 50)`,
	},
}

func makeDiffWorkload(t *testing.T, name string) *diffWorkload {
	t.Helper()
	gen, err := workload.New(name, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	broad, ok := diffBroadSubs[name]
	if !ok {
		t.Fatalf("workload %q has no broad subscriptions in diffBroadSubs — add a set so its "+
			"differential run also exercises the dense delivery and forwarding paths", name)
	}
	w := &diffWorkload{}
	for i := 0; i < diffSubs; i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		w.subs = append(w.subs, s)
	}
	for i, expr := range broad {
		s, err := subscription.New(uint64(diffSubs+i+1), fmt.Sprintf("broad%d", i+1),
			subscription.MustParse(expr))
		if err != nil {
			t.Fatal(err)
		}
		w.subs = append(w.subs, s)
	}
	w.events = gen.Events(1, diffEvents)
	return w
}

// clone deep-copies a subscription so the three runs never share trees
// (brokers may rewrite routing state in place).
func (w *diffWorkload) clone(i int) *subscription.Subscription {
	s := w.subs[i]
	c, err := subscription.New(s.ID, s.Subscriber, s.Root.Clone())
	if err != nil {
		panic(err)
	}
	return c
}

// exactDeliveries runs the ground-truth oracle: every subscription local
// to one broker, never pruned.
func exactDeliveries(t *testing.T, w *diffWorkload) map[delivPair]bool {
	t.Helper()
	b, err := broker.New(broker.Config{ID: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.subs {
		if _, err := b.SubscribeLocal(w.clone(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[delivPair]bool)
	for _, m := range w.events {
		b.MatchEntries(m, func(subID uint64, _ string) {
			got[delivPair{sub: subID, msg: m.ID}] = true
		})
	}
	return got
}

// simnetDeliveries runs the deterministic line-overlay oracle, returning
// the delivery set and the count of publish-frame transmissions.
func simnetDeliveries(t *testing.T, w *diffWorkload, prune, covering bool) (map[delivPair]bool, uint64) {
	t.Helper()
	brokers := make([]*broker.Broker, diffBrokers)
	for i := range brokers {
		b, err := broker.New(broker.Config{ID: fmt.Sprintf("sim%d", i), DisableCovering: !covering})
		if err != nil {
			t.Fatal(err)
		}
		brokers[i] = b
	}
	net, err := simnet.NewLine(brokers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.subs {
		if err := net.SubscribeAt(i%diffBrokers, w.clone(i)); err != nil {
			t.Fatal(err)
		}
	}
	if prune {
		for _, b := range brokers {
			b.ExhaustPrunings()
		}
	}
	got := make(map[delivPair]bool)
	for i, m := range w.events {
		dels, err := net.PublishAt(i%diffBrokers, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dels {
			got[delivPair{sub: d.SubID, msg: d.Msg.ID}] = true
		}
	}
	return got, net.Traffic().PublishFrames
}

// networkDeliveries runs the same workload on a real loopback line overlay
// of three servers connected by peer links, returning the delivery set
// (sentinels filtered), whether any delivery arrived twice, the count of
// publish-frame transmissions (sentinel flushes included), and the number
// of prunings performed.
func networkDeliveries(t *testing.T, w *diffWorkload, prune, covering bool) (map[delivPair]bool, bool, uint64, int) {
	t.Helper()
	var overlayOpts []OverlayOption
	if !covering {
		overlayOpts = append(overlayOpts, WithoutCovering())
	}
	var mu sync.Mutex
	got := make(map[delivPair]bool)
	dup := false
	sentinels := make(map[int]int) // publisher broker index → sentinels seen
	servers, shutdown, err := NewNetworkedLine(diffBrokers, Network, func(at int, d Delivery) {
		mu.Lock()
		defer mu.Unlock()
		if d.Msg.ID >= diffSentinelBase {
			sentinels[int(d.Msg.ID-diffSentinelBase)]++
			return
		}
		if d.SubID >= diffSentinelBase {
			return // workload event over-delivered to a sentinel: impossible (local subs are exact)
		}
		p := delivPair{sub: d.SubID, msg: d.Msg.ID}
		if got[p] {
			dup = true
		}
		got[p] = true
	}, overlayOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Register the workload plus one local flush sentinel per broker.
	for i := range w.subs {
		if _, err := servers[i%diffBrokers].Subscribe(w.clone(i)); err != nil {
			t.Fatal(err)
		}
	}
	for j, s := range servers {
		sent, err := subscription.New(diffSentinelBase+uint64(j), fmt.Sprintf("flush%d", j),
			subscription.MustParse(`__flush exists`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe(sent); err != nil {
			t.Fatal(err)
		}
	}
	// Subscription propagation must quiesce before events flow — an event
	// racing its audience's subscribe frame would be dropped legitimately
	// and break the oracle comparison. With covering on, the per-broker
	// remote-entry count is not predictable (covered subscriptions are
	// legitimately withheld), so quiescence is control-plane drain: every
	// control frame sent fleet-wide has been received and applied, and the
	// counters hold still across three consecutive polls.
	stable := 0
	var prevSent, prevRecv uint64
	waitForCond(t, 10*time.Second, func() bool {
		var sent, recv uint64
		for _, s := range servers {
			c := s.Stats().Counters
			sent += c.ControlSent
			recv += c.ControlRecv
		}
		if sent == 0 || sent != recv || sent != prevSent || recv != prevRecv {
			prevSent, prevRecv = sent, recv
			stable = 0
			return false
		}
		stable++
		return stable >= 3
	})

	prunings := 0
	if prune {
		for _, s := range servers {
			for {
				n := s.Prune(1 << 20)
				prunings += n
				if n == 0 {
					break
				}
			}
		}
	}

	// Publish round-robin, then one sentinel per broker. Per-link FIFO plus
	// in-order readers mean a broker that has delivered publisher p's
	// sentinel has already delivered everything p published before it.
	for i, m := range w.events {
		servers[i%diffBrokers].Publish(m)
	}
	for j, s := range servers {
		s.Publish(event.Build(diffSentinelBase + uint64(j)).Int("__flush", 1).Msg())
	}
	waitForCond(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for j := 0; j < diffBrokers; j++ {
			if sentinels[j] != diffBrokers {
				return false
			}
		}
		return true
	})

	var forwarded uint64
	for _, s := range servers {
		forwarded += s.Stats().Counters.EventsForwarded
	}

	mu.Lock()
	defer mu.Unlock()
	out := make(map[delivPair]bool, len(got))
	for p := range got {
		out[p] = true
	}
	return out, dup, forwarded, prunings
}

func TestDifferentialNetworkedVsSimnetVsExact(t *testing.T) {
	names := workload.Names()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered workloads, got %v", names)
	}
	for i, name := range names {
		if testing.Short() && i > 0 {
			// The loopback overlay runs are the slow part; one scenario
			// keeps the cross-target oracle exercised under -short.
			t.Logf("short mode: skipping workload %q", name)
			continue
		}
		t.Run(name, func(t *testing.T) { runDifferential(t, name) })
	}
}

func runDifferential(t *testing.T, name string) {
	w := makeDiffWorkload(t, name)
	exact := exactDeliveries(t, w)
	if len(exact) == 0 {
		t.Fatal("workload produced no matches; differential comparison is vacuous")
	}

	// The covering plane must be invisible to delivery semantics: an
	// advertised set per link is a subset of the full set that covers it,
	// so per-event forwarding decisions — and therefore delivery sets and
	// publish-frame counts — are identical covering on and off.
	for _, covering := range []bool{true, false} {
		covering := covering
		label := "covering-on"
		if !covering {
			label = "covering-off"
		}
		t.Run(label, func(t *testing.T) {
			t.Run("pruning-off", func(t *testing.T) {
				sim, simFrames := simnetDeliveries(t, w, false, covering)
				net, dup, netFrames, _ := networkDeliveries(t, w, false, covering)
				if dup {
					t.Error("networked overlay delivered a (subscription, event) pair twice")
				}
				assertSameDeliveries(t, "simnet", sim, exact)
				assertSameDeliveries(t, "network", net, exact)
				// Without pruning, routing is deterministic, so the real overlay
				// must transmit exactly the simulated number of publish frames —
				// plus the 3 sentinel flush events crossing 2 links each.
				sentinelFrames := uint64(diffBrokers * (diffBrokers - 1))
				if netFrames != simFrames+sentinelFrames {
					t.Errorf("networked overlay forwarded %d publish frames, simnet %d (+%d sentinel) — traffic diverges",
						netFrames, simFrames, sentinelFrames)
				}
				t.Logf("pruning off: %d deliveries, %d forwarded frames, all three runs identical", len(exact), simFrames)
			})

			t.Run("pruning-on", func(t *testing.T) {
				sim, simFrames := simnetDeliveries(t, w, true, covering)
				net, _, netFrames, prunings := networkDeliveries(t, w, true, covering)
				if prunings == 0 {
					t.Fatal("pruned run performed no prunings; superset assertion would be vacuous")
				}
				missSim := missingFrom(sim, exact)
				missNet := missingFrom(net, exact)
				if len(missSim) > 0 {
					t.Errorf("simnet pruning lost %d deliveries (first: %+v)", len(missSim), missSim[0])
				}
				if len(missNet) > 0 {
					t.Errorf("networked pruning lost %d deliveries (first: %+v)", len(missNet), missNet[0])
				}
				// Deliveries stay exact because the subscription's home broker
				// post-filters with the never-pruned tree; pruning's false positives
				// surface as extra forwarded frames at inner brokers instead.
				t.Logf("pruning on: %d prunings; deliveries exact=%d simnet=%d network=%d; forwarded frames simnet=%d network=%d",
					prunings, len(exact), len(sim), len(net), simFrames, netFrames)
			})
		})
	}
}

// assertSameDeliveries fails unless got and want are identical sets.
func assertSameDeliveries(t *testing.T, name string, got, want map[delivPair]bool) {
	t.Helper()
	if miss := missingFrom(got, want); len(miss) > 0 {
		t.Errorf("%s lost %d deliveries present in the exact oracle (first: %+v)", name, len(miss), miss[0])
	}
	if extra := missingFrom(want, got); len(extra) > 0 {
		t.Errorf("%s delivered %d pairs the exact oracle does not (first: %+v)", name, len(extra), extra[0])
	}
}

// missingFrom returns the pairs of want absent from got.
func missingFrom(got, want map[delivPair]bool) []delivPair {
	var miss []delivPair
	for p := range want {
		if !got[p] {
			miss = append(miss, p)
		}
	}
	return miss
}

// waitForCond polls cond until true or the deadline expires.
func waitForCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
