package dimprune

// Delivery-plane benchmarks.
//
// BenchmarkPublishSlowSubscriber is the regression guard for the handle
// API's core promise: a consumer that stops reading must not slow
// publishers down. It loads the auction workload, adds one channel
// subscriber matching every event, and compares Publish throughput with
// the subscriber draining (baseline) against the subscriber permanently
// blocked under DropOldest. CI runs it as a smoke test; the acceptance
// criterion is blocked-vs-baseline within 10%.

import (
	"fmt"
	"testing"
)

// benchHandleEmbedded builds the auction-loaded engine plus one
// always-matching handle subscriber.
func benchHandleEmbedded(b *testing.B, nSubs int, opts ...SubOption) (*Embedded, *Handle, []*Message) {
	b.Helper()
	ps, events := benchEmbedded(b, "auction", 1, 1, nSubs, 4096)
	// Every auction event carries a title; Exists matches them all.
	h, err := ps.SubscribeTree(Exists("title"), opts...)
	if err != nil {
		b.Fatal(err)
	}
	return ps, h, events
}

func BenchmarkPublishSlowSubscriber(b *testing.B) {
	const nSubs = 2000
	b.Run("baseline-draining", func(b *testing.B) {
		ps, h, events := benchHandleEmbedded(b, nSubs, WithBuffer(256), WithPolicy(DropOldest))
		defer ps.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range h.C() {
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.Publish(events[i%len(events)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ps.Close()
		<-done
	})
	b.Run("blocked-dropoldest", func(b *testing.B) {
		ps, h, events := benchHandleEmbedded(b, nSubs, WithBuffer(256), WithPolicy(DropOldest))
		defer ps.Close()
		// The consumer never reads h.C(): the queue saturates and every
		// further delivery evicts the head. Publish must keep its pace.
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.Publish(events[i%len(events)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if b.N > 512 && h.Dropped() == 0 {
			b.Fatal("blocked subscriber never overflowed — benchmark is not exercising the policy")
		}
	})
	// The legacy synchronous callback path at the same scale, for context.
	b.Run("legacy-onnotify", func(b *testing.B) {
		ps, events := benchEmbedded(b, "auction", 1, 1, nSubs, 4096)
		defer ps.Close()
		ps.OnNotify(func(Notification) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.Publish(events[i%len(events)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublishHandleFanout measures the per-handle enqueue overhead as
// channel subscribers multiply, all draining concurrently.
func BenchmarkPublishHandleFanout(b *testing.B) {
	for _, nHandles := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("handles=%d", nHandles), func(b *testing.B) {
			ps, events := benchEmbedded(b, "auction", 1, 1, 0, 4096)
			defer ps.Close()
			done := make(chan struct{}, nHandles)
			for i := 0; i < nHandles; i++ {
				h, err := ps.SubscribeTree(Exists("title"), WithBuffer(256), WithPolicy(DropOldest))
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					defer func() { done <- struct{}{} }()
					for range h.C() {
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ps.Publish(events[i%len(events)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ps.Close()
			for i := 0; i < nHandles; i++ {
				<-done
			}
		})
	}
}
