package auction

import (
	"fmt"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:        "auction",
		Description: "online book auction (paper §4): skewed catalog popularity, three bargain-hunting subscription classes",
		New: func(seed uint64) (workload.Generator, error) {
			cfg := DefaultConfig()
			cfg.Seed = seed
			return NewGenerator(cfg)
		},
	})
}

// Class identifies the three subscription classes of the workload (the
// paper cites three classes typical for online book auctions [4]).
type Class int

// Subscription classes.
const (
	// ClassTitleWatcher tracks one specific book below a price limit —
	// small conjunctions, occasionally with a condition/format disjunction.
	ClassTitleWatcher Class = iota + 1
	// ClassCategoryHunter browses one or two categories with a price
	// corridor and a minimum seller rating.
	ClassCategoryHunter
	// ClassAuthorCollector follows several authors with price and format
	// constraints — the most disjunctive shapes.
	ClassAuthorCollector
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTitleWatcher:
		return "title-watcher"
	case ClassCategoryHunter:
		return "category-hunter"
	case ClassAuthorCollector:
		return "author-collector"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config parameterizes the workload generator.
type Config struct {
	// Seed makes the whole workload deterministic.
	Seed uint64
	// Books, Authors, Categories size the catalog universe.
	Books, Authors, Categories int
	// TitleSkew, AuthorSkew, CategorySkew are the Zipf exponents of the
	// respective popularity distributions.
	TitleSkew, AuthorSkew, CategorySkew float64
	// ClassWeights gives the relative frequency of the three subscription
	// classes, in the order title-watcher, category-hunter,
	// author-collector.
	ClassWeights [3]float64
}

// DefaultConfig returns the workload used in the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Books:        10000,
		Authors:      2000,
		Categories:   30,
		TitleSkew:    1.0,
		AuthorSkew:   1.0,
		CategorySkew: 0.9,
		ClassWeights: [3]float64{0.45, 0.25, 0.30},
	}
}

var formats = []string{"hardcover", "paperback", "ebook", "audiobook"}
var conditions = []string{"new", "likenew", "good", "acceptable"}

// Generator produces auction events and subscriptions. Events and
// subscriptions use independent random streams — each owns its RNG and
// its own book-popularity picker — so consuming more of one does not
// perturb the other (property-tested by the golden-seed tests). Not safe
// for concurrent use.
type Generator struct {
	cfg     Config
	catalog *catalog
	evRNG   *dist.RNG
	subRNG  *dist.RNG
	evPick  *dist.Zipf // event-stream popularity over books
	subPick *dist.Zipf // subscription-stream popularity over books
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	total := cfg.ClassWeights[0] + cfg.ClassWeights[1] + cfg.ClassWeights[2]
	if total <= 0 {
		return nil, fmt.Errorf("auction: class weights sum to %v", total)
	}
	root := dist.New(cfg.Seed)
	catRNG := root.Split()
	c, err := newCatalog(catRNG, cfg.Books, cfg.Authors, cfg.Categories,
		cfg.AuthorSkew, cfg.CategorySkew)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:     cfg,
		catalog: c,
		evRNG:   root.Split(),
		subRNG:  root.Split(),
	}
	if g.evPick, err = dist.NewZipf(g.evRNG, cfg.TitleSkew, len(c.books)); err != nil {
		return nil, err
	}
	if g.subPick, err = dist.NewZipf(g.subRNG, cfg.TitleSkew, len(c.books)); err != nil {
		return nil, err
	}
	return g, nil
}

// Name returns the registry name of the scenario.
func (g *Generator) Name() string { return "auction" }

// pickBook draws a book for the event stream.
func (g *Generator) pickBook() *book { return g.catalog.bookAt(g.evPick.Draw()) }

// pickRank draws a popularity-weighted book rank for the subscription
// stream.
func (g *Generator) pickRank() int { return g.subPick.Draw() }

// Event generates the next auction event message: a listing/bid snapshot
// for a popularity-weighted book. Listings usually price at or above the
// book's base price (bargains are rare), which keeps the workload selective:
// subscribers hunt below-base prices, so most events interest nobody — the
// regime in which selective routing pays and Fig 1(e)'s relative load
// increases are visible.
func (g *Generator) Event(id uint64) *event.Message {
	r := g.evRNG
	b := g.pickBook()
	mult := r.Range(0.85, 2.5)
	price := b.basePrice * mult
	bids := int64(r.Exponential(4, 50))
	return event.Build(id).
		Str("title", b.title).
		Str("author", b.author).
		Str("category", b.category).
		Num("price", price).
		Num("discount", round2(1-mult)). // share below the book's base price
		Int("bids", bids).
		Int("rating", int64(r.Normal(3.4, 1.2, 0, 5))).
		Str("format", formats[r.Weighted(formatWeights)]).
		Str("condition", conditions[r.Weighted(conditionWeights)]).
		Int("hours_left", int64(r.Range(0, 72))).
		Flag("signed", r.Bool(0.03)).
		Msg()
}

// Events generates n events with ascending IDs starting at startID.
func (g *Generator) Events(startID uint64, n int) []*event.Message {
	out := make([]*event.Message, n)
	for i := range out {
		out[i] = g.Event(startID + uint64(i))
	}
	return out
}

var formatWeights = []float64{0.35, 0.40, 0.18, 0.07}
var conditionWeights = []float64{0.25, 0.30, 0.30, 0.15}

// Subscription generates the next subscription with the given ID and
// subscriber, drawing its class from the configured weights.
func (g *Generator) Subscription(id uint64, subscriber string) (*subscription.Subscription, error) {
	w := g.cfg.ClassWeights
	u := g.subRNG.Float64() * (w[0] + w[1] + w[2])
	switch {
	case u < w[0]:
		return g.OfClass(ClassTitleWatcher, id, subscriber)
	case u < w[0]+w[1]:
		return g.OfClass(ClassCategoryHunter, id, subscriber)
	default:
		return g.OfClass(ClassAuthorCollector, id, subscriber)
	}
}

// OfClass generates a subscription of a specific class.
func (g *Generator) OfClass(c Class, id uint64, subscriber string) (*subscription.Subscription, error) {
	var root *subscription.Node
	switch c {
	case ClassTitleWatcher:
		root = g.titleWatcher()
	case ClassCategoryHunter:
		root = g.categoryHunter()
	case ClassAuthorCollector:
		root = g.authorCollector()
	default:
		return nil, fmt.Errorf("auction: unknown class %d", int(c))
	}
	return subscription.New(id, subscriber, root)
}

// titleWatcher: title = T ∧ price <= P [∧ (condition = "new" ∨ condition =
// "likenew")] [∧ format = F]. Watchers wait for bargains: the limit sits at
// or below the book's base price.
func (g *Generator) titleWatcher() *subscription.Node {
	r := g.subRNG
	b := g.catalog.bookAt(g.pickRank())
	limit := b.basePrice * r.Range(0.5, 1.1)
	children := []*subscription.Node{
		subscription.Eq("title", event.String(b.title)),
		subscription.Le("price", event.Float(round2(limit))),
	}
	if r.Bool(0.35) {
		children = append(children, subscription.Or(
			subscription.Eq("condition", event.String("new")),
			subscription.Eq("condition", event.String("likenew")),
		))
	}
	if r.Bool(0.25) {
		children = append(children, subscription.Eq("format",
			event.String(formats[r.Weighted(formatWeights)])))
	}
	return subscription.And(children...)
}

// categoryHunter: (category = C₁ [∨ category = C₂]) ∧ price <= P ∧ rating >=
// R [∧ bids <= B].
func (g *Generator) categoryHunter() *subscription.Node {
	r := g.subRNG
	first := g.catalog.bookAt(g.pickRank()).category
	var catNode *subscription.Node
	if r.Bool(0.4) {
		second := g.catalog.bookAt(g.pickRank()).category
		for second == first {
			second = g.catalog.categories[r.Intn(len(g.catalog.categories))]
		}
		catNode = subscription.Or(
			subscription.Eq("category", event.String(first)),
			subscription.Eq("category", event.String(second)),
		)
	} else {
		catNode = subscription.Eq("category", event.String(first))
	}
	// Hunters look for discounted, well-rated, lightly contested listings.
	rating := int64(4)
	switch u := r.Float64(); {
	case u < 0.1:
		rating = 2
	case u < 0.4:
		rating = 3
	}
	children := []*subscription.Node{
		catNode,
		subscription.Ge("discount", event.Float(round2(r.Range(0.02, 0.14)))),
		subscription.Ge("rating", event.Int(rating)),
	}
	if r.Bool(0.4) {
		children = append(children, subscription.Le("price", event.Float(round2(r.Exponential(15, 120)+5))))
	}
	if r.Bool(0.6) {
		children = append(children, subscription.Le("bids", event.Int(int64(r.IntRange(1, 5)))))
	}
	return subscription.And(children...)
}

// authorCollector: (author = A₁ ∨ … ∨ author = Aₖ) ∧ price <= P [∧ (format =
// F₁ ∨ format = F₂)] [∧ signed = true]. With some probability an author
// term becomes a nested conjunction (author = Aᵢ ∧ format = Fᵢ): the
// collector wants a specific format for that author. The nesting gives the
// workload genuinely arbitrary Boolean shapes — AND below OR — which is
// where the §3.2 innermost restriction actually bites.
func (g *Generator) authorCollector() *subscription.Node {
	r := g.subRNG
	k := r.IntRange(2, 4)
	seen := make(map[string]bool, k)
	authors := make([]*subscription.Node, 0, k)
	for len(authors) < k {
		// Collectors have niche tastes: authors drawn uniformly, so the
		// collecting interest does not pile onto the few bestselling
		// authors the event stream is dominated by.
		a := g.catalog.authors[r.Intn(len(g.catalog.authors))]
		if seen[a] {
			continue
		}
		seen[a] = true
		term := subscription.Eq("author", event.String(a))
		if r.Bool(0.3) {
			term = subscription.And(term, subscription.Eq("format",
				event.String(formats[r.Weighted(formatWeights)])))
		}
		authors = append(authors, term)
	}
	children := []*subscription.Node{
		subscription.Or(authors...),
		subscription.Le("price", event.Float(round2(r.Exponential(7, 60)+2))),
	}
	if r.Bool(0.5) {
		children = append(children, subscription.Ge("discount", event.Float(round2(r.Range(0, 0.1)))))
	}
	if r.Bool(0.7) {
		f1 := r.Weighted(formatWeights)
		f2 := (f1 + 1 + r.Intn(len(formats)-1)) % len(formats)
		children = append(children, subscription.Or(
			subscription.Eq("format", event.String(formats[f1])),
			subscription.Eq("format", event.String(formats[f2])),
		))
	}
	if r.Bool(0.1) {
		children = append(children, subscription.Eq("signed", event.Bool(true)))
	}
	return subscription.And(children...)
}

// round2 keeps prices to cents so rendered subscriptions stay readable.
func round2(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}
