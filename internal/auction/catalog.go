// Package auction generates the online book-auction workload of the paper's
// evaluation (§4): event messages following skewed distributions and
// subscriptions in three classes typical for online book auctions.
//
// The original trace characterization (Bittner & Hinze, TR 03/2006 [3]) and
// subscription classes (ACSC'06 [4]) are not publicly available; this
// package substitutes Zipf-distributed popularity over a synthetic book
// catalog and three structurally distinct subscription classes. DESIGN.md §4
// argues why this preserves the behaviour the pruning heuristics depend on.
package auction

import (
	"fmt"
	"strconv"

	"dimprune/internal/dist"
)

// book is one catalog entry; events about the same book share title, author,
// and category, which correlates attribute values the way a real auction
// site does.
type book struct {
	title     string
	author    string
	category  string
	basePrice float64
}

// catalog is the deterministic synthetic book universe. Popularity pickers
// over the catalog live with their consumers (Generator): the event and
// subscription streams each own one, bound to their own RNG, so consuming
// more of one stream never perturbs the other.
type catalog struct {
	books      []book
	authors    []string
	categories []string
}

var categoryNames = []string{
	"scifi", "fantasy", "crime", "romance", "history", "biography",
	"science", "philosophy", "poetry", "travel", "cooking", "art",
	"children", "horror", "classics", "economics", "politics", "nature",
	"religion", "sports", "music", "medicine", "law", "mathematics",
	"psychology", "education", "engineering", "linguistics", "theatre",
	"archaeology",
}

var titleWords = []string{
	"Shadow", "River", "Empire", "Garden", "Winter", "Crown", "Silent",
	"Golden", "Last", "First", "Secret", "Night", "Storm", "Glass",
	"Iron", "Paper", "Distant", "Broken", "Hidden", "Burning",
}

var titleNouns = []string{
	"House", "Road", "Song", "City", "Sea", "Mountain", "Letter", "Key",
	"Dream", "Voyage", "Library", "Mirror", "Clock", "Island", "Bridge",
	"Forest", "Tower", "Door", "Star", "Garden",
}

// newCatalog builds a catalog of nBooks titles by nAuthors authors across
// nCategories categories, with popularity skews for assigning books to
// authors and categories (popular authors write more of the popular
// books). Title-popularity skew belongs to the per-stream pickers the
// Generator owns, not to catalog construction.
func newCatalog(r *dist.RNG, nBooks, nAuthors, nCategories int, authorSkew, categorySkew float64) (*catalog, error) {
	if nBooks < 1 || nAuthors < 1 || nCategories < 1 {
		return nil, fmt.Errorf("auction: catalog sizes must be positive (books=%d authors=%d categories=%d)",
			nBooks, nAuthors, nCategories)
	}
	if nCategories > len(categoryNames) {
		nCategories = len(categoryNames)
	}
	c := &catalog{
		books:      make([]book, nBooks),
		authors:    make([]string, nAuthors),
		categories: categoryNames[:nCategories],
	}
	for i := range c.authors {
		c.authors[i] = authorName(i)
	}
	authorPick, err := dist.NewZipf(r, authorSkew, nAuthors)
	if err != nil {
		return nil, err
	}
	categoryPick, err := dist.NewZipf(r, categorySkew, nCategories)
	if err != nil {
		return nil, err
	}
	for i := range c.books {
		c.books[i] = book{
			title:     titleName(r, i),
			author:    c.authors[authorPick.Draw()],
			category:  c.categories[categoryPick.Draw()],
			basePrice: r.Exponential(18, 400) + 2, // long-tailed, >= 2
		}
	}
	return c, nil
}

// titleName builds a deterministic plausible book title, unique per index.
func titleName(r *dist.RNG, i int) string {
	w := titleWords[r.Intn(len(titleWords))]
	n := titleNouns[r.Intn(len(titleNouns))]
	return "The " + w + " " + n + " #" + strconv.Itoa(i)
}

// authorName builds a deterministic author identifier.
func authorName(i int) string {
	return "Author-" + strconv.Itoa(i)
}

// bookAt returns the catalog entry at a rank (for subscriptions interested
// in specific, popularity-weighted titles).
func (c *catalog) bookAt(rank int) *book { return &c.books[rank] }
