package auction

import (
	"testing"

	"dimprune/internal/subscription"
)

func TestDefaultConfigGenerates(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := g.Event(1)
	for _, attr := range []string{"title", "author", "category", "price", "bids", "rating", "format", "condition", "hours_left", "signed"} {
		if !m.Has(attr) {
			t.Errorf("event missing attribute %q: %s", attr, m)
		}
	}
	s, err := g.Subscription(1, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Root.Validate(); err != nil {
		t.Errorf("generated subscription invalid: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := func() (string, string) {
		g, err := NewGenerator(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ev := g.Event(1).String()
		s, _ := g.Subscription(1, "x")
		return ev, s.String()
	}
	e1, s1 := gen()
	e2, s2 := gen()
	if e1 != e2 {
		t.Errorf("event streams diverge:\n%s\n%s", e1, e2)
	}
	if s1 != s2 {
		t.Errorf("subscription streams diverge:\n%s\n%s", s1, s2)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := DefaultConfig()
	g1, _ := NewGenerator(cfg)
	cfg.Seed = 2
	g2, _ := NewGenerator(cfg)
	if g1.Event(1).String() == g2.Event(1).String() {
		t.Error("different seeds produced identical first events")
	}
}

func TestEventValueRanges(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m := g.Event(uint64(i))
		if price, _ := m.Get("price"); price.AsFloat() <= 0 || price.AsFloat() > 1000 {
			t.Fatalf("price out of range: %v", price)
		}
		if rating, _ := m.Get("rating"); rating.AsInt() < 0 || rating.AsInt() > 5 {
			t.Fatalf("rating out of range: %v", rating)
		}
		if bids, _ := m.Get("bids"); bids.AsInt() < 0 || bids.AsInt() > 50 {
			t.Fatalf("bids out of range: %v", bids)
		}
		if h, _ := m.Get("hours_left"); h.AsInt() < 0 || h.AsInt() >= 72 {
			t.Fatalf("hours_left out of range: %v", h)
		}
	}
}

func TestTitlePopularitySkewed(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		title, _ := g.Event(uint64(i)).Get("title")
		counts[title.AsString()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf s=1 over 10k books: top title ~10% of the mass.
	if max < n/50 {
		t.Errorf("top title seen %d times out of %d; popularity not skewed", max, n)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct titles in %d events; tail missing", len(counts), n)
	}
}

func TestClassShapes(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tw, err := g.OfClass(ClassTitleWatcher, uint64(i*3+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(tw.Root, "title") || !hasLeafOn(tw.Root, "price") {
			t.Fatalf("title watcher missing core predicates: %s", tw)
		}
		ch, err := g.OfClass(ClassCategoryHunter, uint64(i*3+2), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(ch.Root, "category") || !hasLeafOn(ch.Root, "rating") {
			t.Fatalf("category hunter missing core predicates: %s", ch)
		}
		ac, err := g.OfClass(ClassAuthorCollector, uint64(i*3+3), "c")
		if err != nil {
			t.Fatal(err)
		}
		authorLeaves := 0
		ac.Root.Walk(func(n, _ *subscription.Node) bool {
			if n.Kind == subscription.NodeLeaf && n.Pred.Attr == "author" {
				authorLeaves++
			}
			return true
		})
		if authorLeaves < 2 {
			t.Fatalf("author collector has %d author leaves: %s", authorLeaves, ac)
		}
	}
}

func TestSubscriptionsArePrunable(t *testing.T) {
	// Every generated subscription must support at least one pruning —
	// otherwise it cannot participate in the experiments.
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s, err := g.Subscription(uint64(i), "c")
		if err != nil {
			t.Fatal(err)
		}
		if len(subscription.Candidates(s.Root, nil)) == 0 {
			t.Fatalf("unprunable subscription generated: %s", s)
		}
	}
}

func TestSubscriptionsMatchSomeEvents(t *testing.T) {
	// The workload must be live: a reasonable share of subscriptions match
	// at least one event in a large sample, and the overall match rate is
	// neither zero nor saturated.
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	events := g.Events(1, 5000)
	subs := make([]*subscription.Subscription, 300)
	for i := range subs {
		s, err := g.Subscription(uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	matchedSubs := 0
	totalMatches := 0
	for _, s := range subs {
		hit := 0
		for _, m := range events {
			if s.Matches(m) {
				hit++
			}
		}
		if hit > 0 {
			matchedSubs++
		}
		totalMatches += hit
	}
	if matchedSubs < len(subs)/10 {
		t.Errorf("only %d/%d subscriptions ever match; workload too cold", matchedSubs, len(subs))
	}
	rate := float64(totalMatches) / float64(len(events)*len(subs))
	if rate <= 0 || rate > 0.5 {
		t.Errorf("average match rate %v; want sparse but nonzero", rate)
	}
	t.Logf("matched subs: %d/%d, avg match rate %.4f", matchedSubs, len(subs), rate)
}

func TestClassWeightValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClassWeights = [3]float64{0, 0, 0}
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("zero class weights accepted")
	}
	cfg = DefaultConfig()
	cfg.Books = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestOfClassUnknown(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	if _, err := g.OfClass(Class(99), 1, "c"); err == nil {
		t.Error("unknown class accepted")
	}
}

func hasLeafOn(n *subscription.Node, attr string) bool {
	found := false
	n.Walk(func(node, _ *subscription.Node) bool {
		if node.Kind == subscription.NodeLeaf && node.Pred.Attr == attr {
			found = true
		}
		return !found
	})
	return found
}
