// Package workload makes traffic scenarios first-class: a workload is a
// deterministic seeded generator of events and classed subscriptions,
// registered under a name so the experiment harness, the CLIs, and the
// differential oracles can run any scenario interchangeably.
//
// The paper's evaluation rests on one workload (the online book auction,
// internal/auction); pruning and covering trade-offs shift drastically
// with predicate shape and attribute cardinality, so the registry carries
// scenarios with qualitatively different behavior — internal/ticker
// (covering-friendly: few hot symbols, shallow numeric conjunctions) and
// internal/sensornet (covering-hostile: high-cardinality attributes,
// disjunctive alert trees). Generator packages register themselves in
// their init functions; import them (blank imports suffice) to populate
// the registry.
//
// Determinism contract, shared by every registered workload and enforced
// by the tests in this package and the golden-seed tests in each
// generator package: one seed names one workload, byte-stable across
// refactors; and the event and subscription streams are independent —
// consuming more of one never perturbs the other.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Generator produces one scenario's deterministic event and subscription
// streams. Implementations are not safe for concurrent use; build one
// generator per goroutine.
type Generator interface {
	// Name returns the registry name of the scenario this generator
	// implements.
	Name() string
	// Event generates the next event message with the given ID. The event
	// stream is independent of the subscription stream.
	Event(id uint64) *event.Message
	// Events generates n events with ascending IDs starting at startID.
	Events(startID uint64, n int) []*event.Message
	// Subscription generates the next subscription with the given ID and
	// subscriber, drawing its class from the scenario's class mix.
	Subscription(id uint64, subscriber string) (*subscription.Subscription, error)
}

// Info describes one registered workload.
type Info struct {
	// Name keys the registry ("auction", "ticker", "sensornet", …).
	Name string
	// Description is a one-line scenario summary for CLI help output.
	Description string
	// New builds a generator with the scenario's default parameters and
	// the given seed.
	New func(seed uint64) (Generator, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a workload to the registry. It panics on an empty name,
// a nil constructor, or a duplicate registration — all programmer errors
// in a generator package's init.
func Register(info Info) {
	if info.Name == "" {
		panic("workload: Register with empty name")
	}
	if info.New == nil {
		panic("workload: Register " + info.Name + " with nil constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("workload: Register called twice for " + info.Name)
	}
	registry[info.Name] = info
}

// Lookup returns the registration for name.
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// New builds a generator for the named workload with the given seed. The
// error for an unknown name lists what is registered.
func New(name string, seed uint64) (Generator, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return info.New(seed)
}

// Names returns the registered workload names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
