package workload_test

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"dimprune/internal/subscription"
	"dimprune/internal/workload"

	_ "dimprune/internal/auction"
	_ "dimprune/internal/sensornet"
	_ "dimprune/internal/ticker"
)

func TestStandardScenariosRegistered(t *testing.T) {
	names := workload.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"auction", "sensornet", "ticker"} {
		info, ok := workload.Lookup(want)
		if !ok {
			t.Errorf("standard workload %q not registered (have %v)", want, names)
			continue
		}
		if info.Name != want || info.Description == "" || info.New == nil {
			t.Errorf("registration for %q incomplete: %+v", want, info)
		}
	}
}

func TestNewUnknownListsRegistered(t *testing.T) {
	_, err := workload.New("bogus", 1)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "auction") {
		t.Errorf("error does not list registered workloads: %v", err)
	}
}

func TestRegisterRejectsBadInfo(t *testing.T) {
	mustPanic := func(name string, info workload.Info) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		workload.Register(info)
	}
	ctor := func(uint64) (workload.Generator, error) { return nil, nil }
	mustPanic("empty name", workload.Info{New: ctor})
	mustPanic("nil constructor", workload.Info{Name: "t-nilctor"})
	mustPanic("duplicate", workload.Info{Name: "auction", New: ctor})
}

// streamHashes renders the first n events and subscriptions of a fresh
// generator into two FNV-64a hashes; interleave consumes the two streams
// alternately instead of in sequence.
func streamHashes(t *testing.T, name string, seed uint64, n int, interleave bool) (uint64, uint64) {
	t.Helper()
	gen, err := workload.New(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Name() != name {
		t.Fatalf("generator for %q reports Name() = %q", name, gen.Name())
	}
	he := fnv.New64a()
	hs := fnv.New64a()
	sub := func(i int) {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(hs, "%d|%s|%s\n", i, s.Subscriber, s)
	}
	if interleave {
		for i := 0; i < n; i++ {
			fmt.Fprintf(he, "%d|%s\n", i, gen.Event(uint64(i+1)))
			sub(i)
		}
	} else {
		for i, m := range gen.Events(1, n) {
			fmt.Fprintf(he, "%d|%s\n", i, m)
		}
		for i := 0; i < n; i++ {
			sub(i)
		}
	}
	return he.Sum64(), hs.Sum64()
}

// TestDeterminismContract checks the registry-wide guarantees every
// scenario must earn (the per-package golden tests additionally pin the
// concrete bytes): same seed → identical streams, different seed →
// different streams, and event/subscription stream independence.
func TestDeterminismContract(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			e1, s1 := streamHashes(t, name, 7, 64, false)
			e2, s2 := streamHashes(t, name, 7, 64, false)
			if e1 != e2 || s1 != s2 {
				t.Errorf("same-seed runs diverge: events %#x vs %#x, subs %#x vs %#x", e1, e2, s1, s2)
			}
			e3, s3 := streamHashes(t, name, 8, 64, false)
			if e1 == e3 || s1 == s3 {
				t.Errorf("different seeds produced identical streams")
			}
			ei, si := streamHashes(t, name, 7, 64, true)
			if ei != e1 || si != s1 {
				t.Errorf("interleaved consumption perturbs the streams: events %#x vs %#x, subs %#x vs %#x",
					ei, e1, si, s1)
			}
		})
	}
}

// TestScenariosLiveAndPrunable checks, through the registry interface,
// that every scenario can feed the experiment harness: subscriptions are
// prunable and some of them match some events (the full liveness bars
// live in each generator package).
func TestScenariosLiveAndPrunable(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			gen, err := workload.New(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			events := gen.Events(1, 2000)
			matches := 0
			for i := 0; i < 100; i++ {
				s, err := gen.Subscription(uint64(i+1), "c")
				if err != nil {
					t.Fatal(err)
				}
				if len(subscription.Candidates(s.Root, nil)) == 0 {
					t.Fatalf("unprunable subscription: %s", s)
				}
				for _, m := range events {
					if s.Matches(m) {
						matches++
					}
				}
			}
			if matches == 0 {
				t.Error("no subscription matched any event; workload dead through the registry")
			}
		})
	}
}
