package workload_test

import (
	"fmt"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/filter"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

// FuzzWorkloadShape drives every registered workload with arbitrary seeds
// and checks the structural guarantees the rest of the system assumes of
// generated traffic:
//
//   - every generated subscription tree validates and compiles into the
//     counting filter engine;
//   - the filter engine and direct tree evaluation agree on every
//     generated event (a miniature differential oracle per seed);
//   - the FuzzPruneSuperset invariant holds on generated shapes: every
//     pruning step's match set is a superset of its predecessor's and the
//     original's — a pruning that loses a match would turn routing false
//     positives into lost deliveries.
//
// The subscription-level fuzzer (internal/subscription.FuzzPruneSuperset)
// explores random trees; this one explores the trees the scenarios
// actually emit, including each generator's class mix. Run longer with:
// go test -fuzz=FuzzWorkloadShape ./internal/workload
func FuzzWorkloadShape(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(42), uint8(16))
	f.Add(uint64(2026), uint8(1))
	f.Add(uint64(0xfeedface), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint8) {
		for _, name := range workload.Names() {
			gen, err := workload.New(name, seed)
			if err != nil {
				t.Fatalf("%s: generator rejected seed %d: %v", name, seed, err)
			}
			events := gen.Events(1, 24)
			const nSubs = 8
			subs := make([]*subscription.Subscription, nSubs)
			table := filter.New()
			for i := range subs {
				s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
				if err != nil {
					t.Fatalf("%s: subscription %d: %v", name, i, err)
				}
				if err := s.Root.Validate(); err != nil {
					t.Fatalf("%s: generated invalid tree: %v\n%s", name, err, s)
				}
				if err := table.Register(s); err != nil {
					t.Fatalf("%s: tree does not compile into the filter engine: %v\n%s", name, err, s)
				}
				subs[i] = s
			}

			// Engine vs. direct evaluation must agree event by event.
			for _, m := range events {
				direct := 0
				for _, s := range subs {
					if s.Matches(m) {
						direct++
					}
				}
				if got := table.MatchCount(m); got != direct {
					t.Fatalf("%s: filter engine matched %d subscriptions, direct evaluation %d\nevent: %s",
						name, got, direct, m)
				}
			}

			// Match-superset under pruning, on the scenario's own shapes.
			r := dist.New(seed ^ 0x9e3779b97f4a7c15)
			for _, s := range subs {
				original := s.Root
				current := original
				for step := 0; step < int(steps)%12; step++ {
					cands := subscription.Candidates(current, nil)
					if len(cands) == 0 {
						break
					}
					pruned := subscription.PruneAt(current, cands[r.Intn(len(cands))])
					if pruned == nil {
						t.Fatalf("%s: PruneAt rejected a candidate of its own tree:\n%s", name, current)
					}
					if err := pruned.Validate(); err != nil {
						t.Fatalf("%s: pruning produced invalid tree: %v\nfrom: %s\nto:   %s",
							name, err, current, pruned)
					}
					for _, m := range events {
						got := pruned.Matches(m)
						if original.Matches(m) && !got {
							t.Fatalf("%s: step %d lost a match of the original tree:\noriginal: %s\npruned:   %s\nevent:    %s",
								name, step, original, pruned, m)
						}
						if current.Matches(m) && !got {
							t.Fatalf("%s: step %d lost a match of its immediate predecessor:\nfrom:  %s\nto:    %s\nevent: %s",
								name, step, current, pruned, m)
						}
					}
					current = pruned
				}
			}
		}
	})
}
