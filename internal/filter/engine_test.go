package filter

import (
	"sort"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func mustSub(t *testing.T, id uint64, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, "client", subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func matchIDs(e *Engine, m *event.Message) []uint64 {
	ids := e.Match(m, nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchBasics(t *testing.T) {
	e := New()
	for id, expr := range map[uint64]string{
		1: `category = "scifi" and price <= 25`,
		2: `category = "crime"`,
		3: `price > 100`,
		4: `category = "scifi" or category = "crime"`,
	} {
		if err := e.Register(mustSub(t, id, expr)); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		name string
		m    *event.Message
		want []uint64
	}{
		{"cheap scifi", event.Build(1).Str("category", "scifi").Num("price", 20).Msg(), []uint64{1, 4}},
		{"pricey scifi", event.Build(2).Str("category", "scifi").Num("price", 200).Msg(), []uint64{3, 4}},
		{"crime", event.Build(3).Str("category", "crime").Num("price", 5).Msg(), []uint64{2, 4}},
		{"nothing", event.Build(4).Str("category", "poetry").Num("price", 50).Msg(), nil},
		{"no attrs", event.Build(5).Msg(), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := matchIDs(e, tt.m); !equalIDs(got, tt.want) {
				t.Errorf("Match = %v, want %v", got, tt.want)
			}
		})
	}
	if n := e.MatchCount(event.Build(9).Str("category", "crime").Msg()); n != 2 {
		t.Errorf("MatchCount = %d, want 2", n)
	}
}

func TestOperatorCoverageThroughEngine(t *testing.T) {
	e := New()
	exprs := map[uint64]string{
		1:  `x = 5`,
		2:  `x != 5`,
		3:  `x < 5`,
		4:  `x <= 5`,
		5:  `x > 5`,
		6:  `x >= 5`,
		7:  `t prefix "ab"`,
		8:  `t suffix "yz"`,
		9:  `t contains "mm"`,
		10: `t exists`,
		11: `not x = 5`,
		12: `s < "m"`,
		13: `s >= "m"`,
	}
	for id, expr := range exprs {
		if err := e.Register(mustSub(t, id, expr)); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		name string
		m    *event.Message
		want []uint64
	}{
		{"x=5", event.Build(1).Int("x", 5).Msg(), []uint64{1, 4, 6}},
		{"x=4", event.Build(2).Int("x", 4).Msg(), []uint64{2, 3, 4, 11}},
		{"x=6", event.Build(3).Int("x", 6).Msg(), []uint64{2, 5, 6, 11}},
		{"float x=5.0", event.Build(4).Num("x", 5).Msg(), []uint64{1, 4, 6}},
		{"strings", event.Build(5).Str("t", "abcmmyz").Str("s", "kilo").Msg(), []uint64{7, 8, 9, 10, 11, 12}},
		{"string ge", event.Build(6).Str("s", "zulu").Msg(), []uint64{11, 13}},
		{"empty", event.Build(7).Msg(), []uint64{11}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := matchIDs(e, tt.m); !equalIDs(got, tt.want) {
				t.Errorf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRegisterErrors(t *testing.T) {
	e := New()
	s := mustSub(t, 1, `a = 1`)
	if err := e.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(mustSub(t, 1, `b = 2`)); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := e.Update(mustSub(t, 99, `a = 1`)); err == nil {
		t.Error("update of unknown subscription accepted")
	}
	if e.Unregister(99) {
		t.Error("unregister of unknown subscription reported true")
	}
}

func TestAssociationAccounting(t *testing.T) {
	e := New()
	if e.Associations() != 0 || e.NumPredicates() != 0 {
		t.Fatal("fresh engine not empty")
	}
	// Two subscriptions sharing one predicate.
	e.Register(mustSub(t, 1, `a = 1 and b = 2`))
	e.Register(mustSub(t, 2, `a = 1 and c = 3`))
	if got := e.Associations(); got != 4 {
		t.Errorf("Associations = %d, want 4", got)
	}
	if got := e.NumPredicates(); got != 3 {
		t.Errorf("NumPredicates = %d, want 3 (a=1 shared)", got)
	}
	e.Unregister(1)
	if got := e.Associations(); got != 2 {
		t.Errorf("Associations after unregister = %d, want 2", got)
	}
	if got := e.NumPredicates(); got != 2 {
		t.Errorf("NumPredicates after unregister = %d, want 2", got)
	}
	e.Unregister(2)
	if e.Associations() != 0 || e.NumPredicates() != 0 {
		t.Errorf("engine not empty after removing all: %d assocs, %d preds",
			e.Associations(), e.NumPredicates())
	}
}

func TestUpdateReplacesTree(t *testing.T) {
	e := New()
	e.Register(mustSub(t, 1, `category = "scifi" and price <= 25`))
	hit := event.Build(1).Str("category", "scifi").Num("price", 50).Msg()
	if n := e.MatchCount(hit); n != 0 {
		t.Fatalf("should not match before update, got %d", n)
	}
	// Prune away the price constraint.
	if err := e.Update(mustSub(t, 1, `category = "scifi"`)); err != nil {
		t.Fatal(err)
	}
	if n := e.MatchCount(hit); n != 1 {
		t.Errorf("should match after update, got %d", n)
	}
	if got := e.Associations(); got != 1 {
		t.Errorf("Associations after update = %d, want 1", got)
	}
	sub, ok := e.Subscription(1)
	if !ok || sub.NumLeaves() != 1 {
		t.Errorf("Subscription(1) = %v, %v", sub, ok)
	}
}

func TestPMinGateUpdatedOnUpdate(t *testing.T) {
	e := New()
	e.Register(mustSub(t, 1, `a = 1 and b = 2 and c = 3`))
	m := event.Build(1).Int("a", 1).Msg()
	if e.MatchCount(m) != 0 {
		t.Fatal("partial match accepted")
	}
	e.Update(mustSub(t, 1, `a = 1`))
	if e.MatchCount(m) != 1 {
		t.Error("match missed after pmin-lowering update")
	}
}

func TestDuplicatePredicateWithinOneSubscription(t *testing.T) {
	e := New()
	// The same predicate appears in two OR branches; pmin is 2 and the
	// counter must be credited once per occurrence.
	e.Register(mustSub(t, 1, `(a = 1 and b = 2) or (a = 1 and c = 3)`))
	if n := e.MatchCount(event.Build(1).Int("a", 1).Int("c", 3).Msg()); n != 1 {
		t.Errorf("MatchCount = %d, want 1", n)
	}
	if n := e.MatchCount(event.Build(2).Int("a", 1).Msg()); n != 0 {
		t.Errorf("MatchCount = %d, want 0", n)
	}
}

func TestChurnReusesSlots(t *testing.T) {
	e := New()
	r := dist.New(3)
	live := map[uint64]*subscription.Subscription{}
	nextID := uint64(1)
	for round := 0; round < 50; round++ {
		// Register a few.
		for i := 0; i < 10; i++ {
			s, err := subscription.New(nextID, "c", randomTree(r, 2).Simplify())
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Register(s); err != nil {
				t.Fatal(err)
			}
			live[nextID] = s
			nextID++
		}
		// Remove a few.
		for id := range live {
			if r.Bool(0.4) {
				if !e.Unregister(id) {
					t.Fatalf("failed to unregister %d", id)
				}
				delete(live, id)
			}
		}
		// Spot-check matching against the oracle.
		m := randomMessage(r, uint64(round))
		got := matchIDs(e, m)
		var want []uint64
		for id, s := range live {
			if s.Matches(m) {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(got, want) {
			t.Fatalf("round %d: Match = %v, oracle = %v", round, got, want)
		}
		// Invariant 5: association count equals total live leaf count.
		assocs := 0
		for _, s := range live {
			assocs += s.NumLeaves()
		}
		if e.Associations() != assocs {
			t.Fatalf("round %d: Associations = %d, oracle = %d", round, e.Associations(), assocs)
		}
	}
}

func TestEngineAgreesWithOracleProperty(t *testing.T) {
	// The central correctness property: for random NNF trees and random
	// messages, engine matching equals direct tree evaluation.
	r := dist.New(42)
	e := New()
	subs := make(map[uint64]*subscription.Subscription)
	for id := uint64(1); id <= 300; id++ {
		s, err := subscription.New(id, "c", randomTree(r, 3).Simplify())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(s); err != nil {
			t.Fatal(err)
		}
		subs[id] = s
	}
	for i := 0; i < 1000; i++ {
		m := randomMessage(r, uint64(i))
		got := matchIDs(e, m)
		var want []uint64
		for id, s := range subs {
			if s.Matches(m) {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(got, want) {
			t.Fatalf("message %s:\nengine %v\noracle %v", m, got, want)
		}
	}
}

func TestEngineOracleAfterPruningUpdates(t *testing.T) {
	// Matching must stay oracle-exact while trees are pruned step by step.
	r := dist.New(43)
	e := New()
	subs := make(map[uint64]*subscription.Subscription)
	for id := uint64(1); id <= 150; id++ {
		s, err := subscription.New(id, "c", randomTree(r, 3).Simplify())
		if err != nil {
			t.Fatal(err)
		}
		e.Register(s)
		subs[id] = s
	}
	for round := 0; round < 20; round++ {
		// Prune a random candidate of every subscription that has one.
		for id, s := range subs {
			cands := subscription.Candidates(s.Root, nil)
			if len(cands) == 0 {
				continue
			}
			pruned := subscription.PruneAt(s.Root, cands[r.Intn(len(cands))])
			ns := &subscription.Subscription{ID: id, Subscriber: s.Subscriber, Root: pruned}
			if err := e.Update(ns); err != nil {
				t.Fatal(err)
			}
			subs[id] = ns
		}
		for i := 0; i < 50; i++ {
			m := randomMessage(r, uint64(round*1000+i))
			got := matchIDs(e, m)
			var want []uint64
			for id, s := range subs {
				if s.Matches(m) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equalIDs(got, want) {
				t.Fatalf("round %d message %s:\nengine %v\noracle %v", round, m, got, want)
			}
		}
	}
}

// TestMatchWorkersGate exercises the work-estimate fan-out gate: the
// worker count must scale with the counting credits an event actually
// generates (sum of fulfilled predicates' association counts), not with
// static table size, and must never exceed the configured maximum.
func TestMatchWorkersGate(t *testing.T) {
	e := NewSharded(16, 8)
	e.procs = 8 // pin: the gate also caps at GOMAXPROCS, which varies by host
	tests := []struct {
		work, want int
	}{
		{0, 1},
		{matchWorkUnit - 1, 1},
		{matchWorkUnit, 1}, // one unit is exactly serial's comfort zone
		{2 * matchWorkUnit, 2},
		{5 * matchWorkUnit, 5},
		{100 * matchWorkUnit, 8}, // capped at the configured workers
	}
	for _, tt := range tests {
		if got := e.matchWorkers(tt.work); got != tt.want {
			t.Errorf("matchWorkers(%d) = %d, want %d", tt.work, got, tt.want)
		}
	}

	// The estimate itself: a predicate shared by n subscriptions counts n
	// credits; an unfulfilled predicate counts nothing.
	shared := NewSharded(16, 8)
	for id := uint64(1); id <= 100; id++ {
		if err := shared.Register(mustSub(t, id, `x = 1`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := shared.Register(mustSub(t, 101, `y = 2`)); err != nil {
		t.Fatal(err)
	}
	sc := shared.getScratch()
	sc.epoch++
	sc.fullList = sc.fullList[:0]
	for _, a := range event.Build(1).Int("x", 1).Msg().Attrs {
		shared.attrs[a.Name].collect(a.Value, func(id predID) {
			sc.fulfilled[id] = sc.epoch
			sc.fullList = append(sc.fullList, id)
		})
	}
	if got := shared.matchWork(sc); got != 100 {
		t.Errorf("matchWork over x=1 = %d credits, want 100 (y's predicate unfulfilled)", got)
	}
	shared.scratch.Put(sc)
}

// TestMatchParallelAgreesWithSerialAtLowWork pins the regression the gate
// could hide: results must be identical whether the gate picks 1 worker or
// the full fan-out.
func TestMatchParallelAgreesWithSerialAtLowWork(t *testing.T) {
	serial := New()
	parallel := NewSharded(16, 8)
	for id := uint64(1); id <= 512; id++ {
		expr := `x > 5 and x <= 100`
		if id%3 == 0 {
			expr = `x = 7 or y = 1`
		}
		for _, e := range []*Engine{serial, parallel} {
			if err := e.Register(mustSub(t, id, expr)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for v := int64(0); v < 20; v++ {
		m := event.Build(uint64(v + 1)).Int("x", v).Msg()
		a, b := matchIDs(serial, m), matchIDs(parallel, m)
		if !equalIDs(a, b) {
			t.Fatalf("x=%d: serial %v != parallel %v", v, a, b)
		}
	}
}
