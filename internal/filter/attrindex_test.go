package filter

import (
	"sort"
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func collectIDs(ts *thresholdSet, x float64, less bool) []predID {
	var got []predID
	if less {
		ts.collectGE(x, func(id predID) { got = append(got, id) })
	} else {
		ts.collectLE(x, func(id predID) { got = append(got, id) })
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func TestThresholdSetBoundaries(t *testing.T) {
	var ts thresholdSet
	// x <= 10 (id 1), x < 10 (id 2), x <= 20 (id 3).
	ts.add(threshold{val: 10, strict: false, id: 1})
	ts.add(threshold{val: 10, strict: true, id: 2})
	ts.add(threshold{val: 20, strict: false, id: 3})

	tests := []struct {
		x    float64
		want []predID
	}{
		{5, []predID{1, 2, 3}},
		{10, []predID{1, 3}}, // strict x<10 excluded at equality
		{15, []predID{3}},
		{20, []predID{3}},
		{25, nil},
	}
	for _, tt := range tests {
		if got := collectIDs(&ts, tt.x, true); !equalPredIDs(got, tt.want) {
			t.Errorf("collectGE(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestThresholdSetGreaterBoundaries(t *testing.T) {
	var ts thresholdSet
	// x >= 10 (id 1), x > 10 (id 2), x >= 5 (id 3).
	ts.add(threshold{val: 10, strict: false, id: 1})
	ts.add(threshold{val: 10, strict: true, id: 2})
	ts.add(threshold{val: 5, strict: false, id: 3})

	tests := []struct {
		x    float64
		want []predID
	}{
		{4, nil},
		{5, []predID{3}},
		{10, []predID{1, 3}},
		{11, []predID{1, 2, 3}},
	}
	for _, tt := range tests {
		if got := collectIDs(&ts, tt.x, false); !equalPredIDs(got, tt.want) {
			t.Errorf("collectLE(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestThresholdSetTombstonesAndCompaction(t *testing.T) {
	var ts thresholdSet
	for i := 0; i < 10; i++ {
		ts.add(threshold{val: float64(i), id: predID(i)})
	}
	// Remove a minority: tombstoned, not compacted.
	ts.remove(3)
	ts.remove(7)
	if got := collectIDs(&ts, 0, true); len(got) != 8 {
		t.Errorf("after 2 removals, %d live thresholds (want 8): %v", len(got), got)
	}
	if len(ts.items) != 10 {
		t.Errorf("compaction ran early: %d items", len(ts.items))
	}
	// Remove enough to trigger compaction (> half dead).
	for i := 0; i < 6; i++ {
		ts.remove(predID(i))
	}
	if len(ts.items) >= 10 {
		t.Errorf("compaction did not run: %d items", len(ts.items))
	}
	want := []predID{6, 8, 9} // removed: 0..5 plus 7 earlier
	if got := collectIDs(&ts, 0, true); !equalPredIDs(got, want) {
		t.Errorf("after compaction: %v, want %v", got, want)
	}
}

func TestThresholdSetRecycledIDNewValue(t *testing.T) {
	// A tombstoned predID re-added with a different threshold must not
	// resurrect the stale value.
	var ts thresholdSet
	ts.add(threshold{val: 10, id: 1})
	ts.add(threshold{val: 50, id: 2})
	ts.remove(1)
	ts.add(threshold{val: 99, id: 1}) // recycled with new threshold

	// Event value 60: fulfilled for "x <= 99" (id 1) but not "x <= 10".
	if got := collectIDs(&ts, 60, true); !equalPredIDs(got, []predID{1}) {
		t.Errorf("recycled id lookup = %v, want [1]", got)
	}
	// Event value 5: both live thresholds qualify.
	if got := collectIDs(&ts, 5, true); !equalPredIDs(got, []predID{1, 2}) {
		t.Errorf("low-value lookup = %v, want [1 2]", got)
	}
}

func TestStrThresholdSetThroughEngine(t *testing.T) {
	// Exercise the string threshold structures through the public API with
	// churn that forces tombstoning and recycling.
	e := New()
	mk := func(id uint64, expr string) *subscription.Subscription {
		s, err := subscription.New(id, "c", subscription.MustParse(expr))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	e.Register(mk(1, `name < "m"`))
	e.Register(mk(2, `name >= "m"`))
	e.Register(mk(3, `name <= "zz"`))
	check := func(val string, want ...uint64) {
		t.Helper()
		got := e.Match(event.Build(1).Str("name", val).Msg(), nil)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("Match(%q) = %v, want %v", val, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Match(%q) = %v, want %v", val, got, want)
			}
		}
	}
	check("alpha", 1, 3)
	check("m", 2, 3)
	check("zulu", 2, 3)
	check("zzz", 2)

	// Churn: remove and re-add with different bounds under the same ids.
	e.Unregister(1)
	e.Unregister(2)
	e.Register(mk(1, `name < "c"`))
	e.Register(mk(2, `name >= "x"`))
	check("alpha", 1, 3)
	check("m", 3)
	check("zulu", 2, 3)
}

func equalPredIDs(a, b []predID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
