package filter

import (
	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Random tree/message helpers over a small attribute universe, mirroring the
// subscription package's generators so the oracle tests exercise the same
// shapes the pruning engine sees.

var testAttrs = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

func randomPredicate(r *dist.RNG) subscription.Predicate {
	attr := testAttrs[r.Intn(len(testAttrs))]
	var p subscription.Predicate
	switch r.Intn(7) {
	case 0:
		p = subscription.Pred(attr, subscription.OpEq, event.Int(int64(r.Intn(10))))
	case 1:
		p = subscription.Pred(attr, subscription.OpLe, event.Int(int64(r.Intn(10))))
	case 2:
		p = subscription.Pred(attr, subscription.OpGt, event.Int(int64(r.Intn(10))))
	case 3:
		p = subscription.Pred(attr, subscription.OpEq, event.String(string(rune('a'+r.Intn(5)))))
	case 4:
		p = subscription.Pred(attr, subscription.OpPrefix, event.String(string(rune('a'+r.Intn(3)))))
	case 5:
		p = subscription.Pred(attr, subscription.OpNe, event.Int(int64(r.Intn(10))))
	default:
		p = subscription.Pred(attr, subscription.OpExists, event.Value{})
	}
	if r.Bool(0.15) {
		p = p.Negate()
	}
	return p
}

func randomTree(r *dist.RNG, maxDepth int) *subscription.Node {
	if maxDepth <= 0 || r.Bool(0.4) {
		return subscription.Leaf(randomPredicate(r))
	}
	kind := subscription.NodeAnd
	if r.Bool(0.4) {
		kind = subscription.NodeOr
	}
	n := r.IntRange(2, 4)
	children := make([]*subscription.Node, n)
	for i := range children {
		children[i] = randomTree(r, maxDepth-1)
	}
	return &subscription.Node{Kind: kind, Children: children}
}

func randomMessage(r *dist.RNG, id uint64) *event.Message {
	b := event.Build(id)
	for _, a := range testAttrs {
		if r.Bool(0.3) {
			continue
		}
		switch r.Intn(3) {
		case 0:
			b.Int(a, int64(r.Intn(10)))
		case 1:
			b.Num(a, r.Range(0, 10))
		default:
			b.Str(a, string(rune('a'+r.Intn(5)))+string(rune('a'+r.Intn(5))))
		}
	}
	return b.Msg()
}
