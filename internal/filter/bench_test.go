package filter

import (
	"fmt"
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/event"
)

// benchEngine registers n auction subscriptions and returns events to match.
func benchEngine(b *testing.B, n int) (*Engine, []*event.Message) {
	b.Helper()
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := New()
	for i := 0; i < n; i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("c%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Register(s); err != nil {
			b.Fatal(err)
		}
	}
	return e, gen.Events(1, 2048)
}

func BenchmarkMatch1k(b *testing.B)  { benchMatch(b, 1000) }
func BenchmarkMatch10k(b *testing.B) { benchMatch(b, 10000) }
func BenchmarkMatch50k(b *testing.B) { benchMatch(b, 50000) }

func benchMatch(b *testing.B, subs int) {
	e, events := benchEngine(b, subs)
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i++ {
		matches += e.MatchCount(events[i%len(events)])
	}
	b.ReportMetric(float64(matches)/float64(b.N), "matches/event")
}

func BenchmarkRegisterUnregister(b *testing.B) {
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := New()
	subs := make([]uint64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := gen.Subscription(uint64(i+1), "c")
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Register(s); err != nil {
			b.Fatal(err)
		}
		subs = append(subs, s.ID)
	}
	for _, id := range subs {
		e.Unregister(id)
	}
}

func BenchmarkUpdateAfterPrune(b *testing.B) {
	e, _ := benchEngine(b, 5000)
	gen, _ := auction.NewGenerator(auction.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%5000 + 1)
		old, ok := e.Subscription(id)
		if !ok {
			b.Fatal("missing subscription")
		}
		if err := e.Update(old); err != nil {
			b.Fatal(err)
		}
	}
	_ = gen
}
