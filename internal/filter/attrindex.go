package filter

import (
	"sort"
	"sync"
	"sync/atomic"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// attrIndex locates the non-negated predicates on one attribute that a given
// event value fulfills.
//
//   - Equality predicates live in a hash map keyed by the canonical value
//     (numerically equal int/float collapse to one key).
//   - Numeric and string range predicates live in threshold arrays sorted on
//     demand: bulk registration appends and marks the array dirty, queries
//     binary-search. Removal is lazy (tombstones compacted at next sort) so
//     bulk pruning phases stay cheap.
//   - Everything else (≠, prefix/suffix/contains, exists, range predicates
//     whose literal kind needs per-value checks) goes to a scan list
//     evaluated against the concrete value.
type attrIndex struct {
	eq map[event.Value][]predID

	numLess    thresholdSet // OpLt/OpLe with numeric literal
	numGreater thresholdSet // OpGt/OpGe with numeric literal
	strLess    strThresholdSet
	strGreater strThresholdSet

	scan map[predID]subscription.Predicate
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		eq:   make(map[event.Value][]predID),
		scan: make(map[predID]subscription.Predicate),
	}
}

// canonicalValue mirrors selectivity.canonical: numerically equal values
// share an equality bucket.
func canonicalValue(v event.Value) event.Value {
	if v.Kind() == event.KindInt {
		f := float64(v.AsInt())
		if int64(f) == v.AsInt() {
			return event.Float(f)
		}
	}
	return v
}

func (ai *attrIndex) add(id predID, p subscription.Predicate) {
	switch p.Op {
	case subscription.OpEq:
		key := canonicalValue(p.Value)
		ai.eq[key] = append(ai.eq[key], id)
	case subscription.OpLt, subscription.OpLe:
		if f, ok := p.Value.Numeric(); ok {
			ai.numLess.add(threshold{val: f, strict: p.Op == subscription.OpLt, id: id})
			return
		}
		if p.Value.Kind() == event.KindString {
			ai.strLess.add(strThreshold{val: p.Value.AsString(), strict: p.Op == subscription.OpLt, id: id})
			return
		}
		ai.scan[id] = p
	case subscription.OpGt, subscription.OpGe:
		if f, ok := p.Value.Numeric(); ok {
			ai.numGreater.add(threshold{val: f, strict: p.Op == subscription.OpGt, id: id})
			return
		}
		if p.Value.Kind() == event.KindString {
			ai.strGreater.add(strThreshold{val: p.Value.AsString(), strict: p.Op == subscription.OpGt, id: id})
			return
		}
		ai.scan[id] = p
	default:
		ai.scan[id] = p
	}
}

func (ai *attrIndex) remove(id predID, p subscription.Predicate) {
	switch p.Op {
	case subscription.OpEq:
		key := canonicalValue(p.Value)
		ids := ai.eq[key]
		for i, x := range ids {
			if x == id {
				ids[i] = ids[len(ids)-1]
				ai.eq[key] = ids[:len(ids)-1]
				break
			}
		}
		if len(ai.eq[key]) == 0 {
			delete(ai.eq, key)
		}
	case subscription.OpLt, subscription.OpLe:
		if _, ok := p.Value.Numeric(); ok {
			ai.numLess.remove(id)
			return
		}
		if p.Value.Kind() == event.KindString {
			ai.strLess.remove(id)
			return
		}
		delete(ai.scan, id)
	case subscription.OpGt, subscription.OpGe:
		if _, ok := p.Value.Numeric(); ok {
			ai.numGreater.remove(id)
			return
		}
		if p.Value.Kind() == event.KindString {
			ai.strGreater.remove(id)
			return
		}
		delete(ai.scan, id)
	default:
		delete(ai.scan, id)
	}
}

// collect invokes mark for every indexed predicate fulfilled by value v.
func (ai *attrIndex) collect(v event.Value, mark func(predID)) {
	if ids := ai.eq[canonicalValue(v)]; len(ids) > 0 {
		for _, id := range ids {
			mark(id)
		}
	}
	if f, ok := v.Numeric(); ok {
		ai.numLess.collectGE(f, mark)    // threshold >= value fulfills x <= t
		ai.numGreater.collectLE(f, mark) // threshold <= value fulfills x >= t
	}
	if v.Kind() == event.KindString {
		s := v.AsString()
		ai.strLess.collectGE(s, mark)
		ai.strGreater.collectLE(s, mark)
	}
	for id, p := range ai.scan {
		if p.EvalValue(v) {
			mark(id)
		}
	}
}

// threshold is one range predicate boundary. For a "less" set the predicate
// is x < val (strict) or x <= val; for a "greater" set x > val or x >= val.
type threshold struct {
	val    float64
	strict bool
	id     predID
}

// thresholdSet is a lazily sorted multiset of thresholds with tombstoned
// removal. Sorting happens at most once per mutation batch: mutations (add,
// remove, compact) require the engine's exclusive access and mark the set
// dirty; the first query after a mutation batch sorts. The dirty flag is
// atomic and the sort itself is serialized, so concurrent collect calls —
// the engine's shared read path — race neither on the flag nor on the
// in-place sort.
type thresholdSet struct {
	items  []threshold
	dead   map[predID]struct{}
	dirty  atomic.Bool
	sortMu sync.Mutex
}

func (ts *thresholdSet) add(t threshold) {
	if _, wasDead := ts.dead[t.id]; wasDead {
		// A recycled predID may carry a different threshold than the
		// tombstoned item; drop the stale item before re-adding.
		ts.compact()
	}
	ts.items = append(ts.items, t)
	ts.dirty.Store(true)
}

func (ts *thresholdSet) remove(id predID) {
	if ts.dead == nil {
		ts.dead = make(map[predID]struct{})
	}
	ts.dead[id] = struct{}{}
	if len(ts.dead) > len(ts.items)/2 {
		ts.compact()
	}
}

func (ts *thresholdSet) compact() {
	live := ts.items[:0]
	for _, t := range ts.items {
		if _, d := ts.dead[t.id]; !d {
			live = append(live, t)
		}
	}
	ts.items = live
	ts.dead = nil
	ts.dirty.Store(true)
}

func (ts *thresholdSet) ensure() {
	if !ts.dirty.Load() {
		return
	}
	ts.sortMu.Lock()
	if ts.dirty.Load() {
		sort.Slice(ts.items, func(i, j int) bool { return ts.items[i].val < ts.items[j].val })
		ts.dirty.Store(false)
	}
	ts.sortMu.Unlock()
}

// collectGE marks predicates in a "less" set fulfilled by event value x:
// those with threshold > x, plus non-strict ones with threshold == x.
func (ts *thresholdSet) collectGE(x float64, mark func(predID)) {
	if len(ts.items) == 0 {
		return
	}
	ts.ensure()
	i := sort.Search(len(ts.items), func(i int) bool { return ts.items[i].val >= x })
	for ; i < len(ts.items); i++ {
		t := ts.items[i]
		if t.val == x && t.strict {
			continue // x < x is false
		}
		if _, d := ts.dead[t.id]; d {
			continue
		}
		mark(t.id)
	}
}

// collectLE marks predicates in a "greater" set fulfilled by event value x:
// those with threshold < x, plus non-strict ones with threshold == x.
func (ts *thresholdSet) collectLE(x float64, mark func(predID)) {
	if len(ts.items) == 0 {
		return
	}
	ts.ensure()
	end := sort.Search(len(ts.items), func(i int) bool { return ts.items[i].val > x })
	for i := 0; i < end; i++ {
		t := ts.items[i]
		if t.val == x && t.strict {
			continue // x > x is false
		}
		if _, d := ts.dead[t.id]; d {
			continue
		}
		mark(t.id)
	}
}

// strThreshold / strThresholdSet mirror the numeric structures for string
// ranges (lexicographic order).
type strThreshold struct {
	val    string
	strict bool
	id     predID
}

type strThresholdSet struct {
	items  []strThreshold
	dead   map[predID]struct{}
	dirty  atomic.Bool
	sortMu sync.Mutex
}

func (ts *strThresholdSet) add(t strThreshold) {
	if _, wasDead := ts.dead[t.id]; wasDead {
		ts.compact() // see thresholdSet.add
	}
	ts.items = append(ts.items, t)
	ts.dirty.Store(true)
}

func (ts *strThresholdSet) remove(id predID) {
	if ts.dead == nil {
		ts.dead = make(map[predID]struct{})
	}
	ts.dead[id] = struct{}{}
	if len(ts.dead) > len(ts.items)/2 {
		ts.compact()
	}
}

func (ts *strThresholdSet) compact() {
	live := ts.items[:0]
	for _, t := range ts.items {
		if _, d := ts.dead[t.id]; !d {
			live = append(live, t)
		}
	}
	ts.items = live
	ts.dead = nil
	ts.dirty.Store(true)
}

func (ts *strThresholdSet) ensure() {
	if !ts.dirty.Load() {
		return
	}
	ts.sortMu.Lock()
	if ts.dirty.Load() {
		sort.Slice(ts.items, func(i, j int) bool { return ts.items[i].val < ts.items[j].val })
		ts.dirty.Store(false)
	}
	ts.sortMu.Unlock()
}

func (ts *strThresholdSet) collectGE(x string, mark func(predID)) {
	if len(ts.items) == 0 {
		return
	}
	ts.ensure()
	i := sort.Search(len(ts.items), func(i int) bool { return ts.items[i].val >= x })
	for ; i < len(ts.items); i++ {
		t := ts.items[i]
		if t.val == x && t.strict {
			continue
		}
		if _, d := ts.dead[t.id]; d {
			continue
		}
		mark(t.id)
	}
}

func (ts *strThresholdSet) collectLE(x string, mark func(predID)) {
	if len(ts.items) == 0 {
		return
	}
	ts.ensure()
	end := sort.Search(len(ts.items), func(i int) bool { return ts.items[i].val > x })
	for i := 0; i < end; i++ {
		t := ts.items[i]
		if t.val == x && t.strict {
			continue
		}
		if _, d := ts.dead[t.id]; d {
			continue
		}
		mark(t.id)
	}
}
