package filter

import (
	"sort"
	"sync"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/subscription"
)

// TestShardedMatchesSerial checks that every shard/worker layout produces
// exactly the serial engine's match sets, across registration, update
// (pruning's path into the table), and unregistration churn.
func TestShardedMatchesSerial(t *testing.T) {
	layouts := []struct{ shards, workers int }{
		{1, 1}, {2, 2}, {4, 2}, {8, 4}, {16, 8},
	}
	r := dist.New(1234)

	serial := New()
	engines := make([]*Engine, len(layouts))
	for i, l := range layouts {
		engines[i] = NewSharded(l.shards, l.workers)
	}
	all := append([]*Engine{serial}, engines...)

	nextID := uint64(0)
	live := []uint64{}
	registerOne := func() {
		nextID++
		s, err := subscription.New(nextID, "s", randomTree(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range all {
			if err := e.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		live = append(live, nextID)
	}
	unregisterOne := func() {
		if len(live) == 0 {
			return
		}
		i := r.Intn(len(live))
		id := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		for _, e := range all {
			if !e.Unregister(id) {
				t.Fatalf("engine lost subscription %d", id)
			}
		}
	}
	updateOne := func() {
		if len(live) == 0 {
			return
		}
		id := live[r.Intn(len(live))]
		s, err := subscription.New(id, "s", randomTree(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range all {
			if err := e.Update(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(round int) {
		for ev := 0; ev < 20; ev++ {
			m := randomMessage(r, uint64(round*1000+ev))
			want := serial.Match(m, nil)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for li, e := range engines {
				got := e.Match(m, nil)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("round %d layout %+v: %d matches, serial %d",
						round, layouts[li], len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("round %d layout %+v: match set diverges at %d: %d vs %d",
							round, layouts[li], k, got[k], want[k])
					}
				}
			}
		}
	}

	for round := 0; round < 8; round++ {
		for i := 0; i < 150; i++ {
			registerOne()
		}
		check(round)
		for i := 0; i < 40; i++ {
			unregisterOne()
		}
		for i := 0; i < 30; i++ {
			updateOne()
		}
		check(round + 100)
	}
}

// TestConcurrentMatchers hammers one sharded engine with concurrent match
// calls (the data plane) interleaved with mutations under an RWMutex (the
// control plane) — the exact discipline the broker applies — and checks
// every concurrent result against a serial oracle under the read lock.
func TestConcurrentMatchers(t *testing.T) {
	r := dist.New(77)
	e := NewSharded(8, 4)
	oracle := New()

	var mu sync.RWMutex // the caller-owned discipline the engine documents
	nextID := uint64(0)
	for i := 0; i < 400; i++ {
		nextID++
		s, err := subscription.New(nextID, "s", randomTree(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(s); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Register(s); err != nil {
			t.Fatal(err)
		}
	}

	const matchers = 8
	const eventsPerMatcher = 300

	var wg sync.WaitGroup
	errs := make(chan string, matchers)
	for g := 0; g < matchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gr := dist.New(uint64(1000 + g))
			for i := 0; i < eventsPerMatcher; i++ {
				m := randomMessage(gr, uint64(g*eventsPerMatcher+i))
				mu.RLock()
				got := e.Match(m, nil)
				want := oracle.Match(m, nil)
				mu.RUnlock()
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					errs <- "match count diverged from serial oracle"
					return
				}
				for k := range got {
					if got[k] != want[k] {
						errs <- "match set diverged from serial oracle"
						return
					}
				}
			}
		}(g)
	}

	// Control plane: churn subscriptions under the write lock while the
	// matchers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cr := dist.New(4242)
		for i := 0; i < 200; i++ {
			nextID++
			s, err := subscription.New(nextID, "churn", randomTree(cr, 2))
			if err != nil {
				errs <- err.Error()
				return
			}
			mu.Lock()
			_ = e.Register(s)
			_ = oracle.Register(s)
			if cr.Bool(0.5) {
				e.Unregister(s.ID)
				oracle.Unregister(s.ID)
			}
			mu.Unlock()
		}
	}()

	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
