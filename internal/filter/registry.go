package filter

import "dimprune/internal/subscription"

// predID densely numbers distinct predicates in the registry.
type predID = int32

// maxShards bounds the shard count so each predicate's shard occupancy
// fits one 64-bit mask.
const maxShards = 64

// predEntry is one interned predicate.
type predEntry struct {
	pred subscription.Predicate
	refs int // total associations across all shards
	live bool
}

// registry deduplicates predicates across subscriptions. Identical
// attribute–operator–value(–negation) triples share one entry — the sharing
// that makes predicate/subscription associations the natural memory unit.
//
// Associations are stored shard-major for the parallel counting phase:
// assoc[shard][predID] lists the shard-local slots (dense subscription
// index / shards) holding a leaf occurrence of the predicate, one entry per
// occurrence, so a predicate appearing twice in one tree credits its
// counter twice (pmin counts leaf occurrences). masks[predID] has bit s set
// iff shard s's bucket is non-empty, letting a counting worker skip the
// (common) empty buckets with one contiguous 8-byte load instead of a
// pointer chase.
//
// Reads (pred, mask, bucket) are safe concurrently; mutations require the
// engine's exclusive access.
type registry struct {
	shards int
	byPred map[subscription.Predicate]predID
	byID   []predEntry
	masks  []uint64    // predID -> shard-occupancy bitmask
	assoc  [][][]int32 // shard -> predID -> local subscription slots
	freeID []predID
	live   int // distinct predicates currently referenced
}

func newRegistry(shards int) registry {
	return registry{
		shards: shards,
		byPred: make(map[subscription.Predicate]predID),
		assoc:  make([][][]int32, shards),
	}
}

// capacity returns the size of the predID space (for sizing stamp tables).
func (r *registry) capacity() int { return len(r.byID) }

// pred returns the predicate for an ID.
func (r *registry) pred(id predID) subscription.Predicate { return r.byID[id].pred }

// shardOf returns the shard owning a dense subscription index.
func (r *registry) shardOf(subIdx int32) int { return int(subIdx) % r.shards }

// localSlot returns the shard-local slot of a dense subscription index.
func (r *registry) localSlot(subIdx int32) int32 { return subIdx / int32(r.shards) }

// intern returns the ID for p, allocating an entry when p is new. isNew
// reports whether the predicate needs to be added to the attribute indexes.
func (r *registry) intern(p subscription.Predicate) (id predID, isNew bool) {
	if id, ok := r.byPred[p]; ok {
		// byPred only holds live entries: dissociate removes retired
		// predicates from the map before recycling their IDs.
		return id, false
	}
	if n := len(r.freeID); n > 0 {
		id = r.freeID[n-1]
		r.freeID = r.freeID[:n-1]
		// Retired entries left their buckets empty and mask zero; only the
		// predicate and liveness need refreshing.
		r.byID[id] = predEntry{pred: p, live: true}
	} else {
		id = predID(len(r.byID))
		r.byID = append(r.byID, predEntry{pred: p, live: true})
		r.masks = append(r.masks, 0)
		for s := range r.assoc {
			r.assoc[s] = append(r.assoc[s], nil)
		}
	}
	r.byPred[p] = id
	r.live++
	return id, true
}

// associate records that the subscription at dense index subIdx holds one
// leaf occurrence of predicate id.
func (r *registry) associate(id predID, subIdx int32) {
	s := r.shardOf(subIdx)
	r.assoc[s][id] = append(r.assoc[s][id], r.localSlot(subIdx))
	r.masks[id] |= 1 << uint(s)
	r.byID[id].refs++
}

// dissociate removes one leaf occurrence. When the predicate's last
// association disappears it is retired: gone=true tells the caller to drop
// it from the attribute indexes. The predicate value is returned for that
// removal.
func (r *registry) dissociate(id predID, subIdx int32) (p subscription.Predicate, gone bool) {
	ent := &r.byID[id]
	s := r.shardOf(subIdx)
	local := r.localSlot(subIdx)
	bucket := r.assoc[s][id]
	for i, x := range bucket {
		if x == local {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			r.assoc[s][id] = bucket[:last]
			ent.refs--
			break
		}
	}
	if len(r.assoc[s][id]) == 0 {
		r.masks[id] &^= 1 << uint(s)
	}
	if ent.refs == 0 && ent.live {
		ent.live = false
		r.live--
		delete(r.byPred, ent.pred)
		r.freeID = append(r.freeID, id)
		return ent.pred, true
	}
	return ent.pred, false
}
