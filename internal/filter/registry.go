package filter

import "dimprune/internal/subscription"

// predID densely numbers distinct predicates in the registry.
type predID = int32

// predEntry is one interned predicate with its subscription associations.
type predEntry struct {
	pred subscription.Predicate
	// subs lists dense subscription indexes, one entry per leaf occurrence,
	// so a predicate appearing twice in one tree credits its counter twice
	// (pmin counts leaf occurrences).
	subs []int32
	live bool
}

// registry deduplicates predicates across subscriptions. Identical
// attribute–operator–value(–negation) triples share one entry — the sharing
// that makes predicate/subscription associations the natural memory unit.
type registry struct {
	byPred map[subscription.Predicate]predID
	byID   []predEntry
	freeID []predID
	live   int // distinct predicates currently referenced
}

func newRegistry() registry {
	return registry{byPred: make(map[subscription.Predicate]predID)}
}

// capacity returns the size of the predID space (for sizing stamp tables).
func (r *registry) capacity() int { return len(r.byID) }

// pred returns the predicate for an ID.
func (r *registry) pred(id predID) subscription.Predicate { return r.byID[id].pred }

// subsOf returns the dense subscription indexes associated with a predicate.
// The returned slice is owned by the registry; callers must not retain it
// across mutations.
func (r *registry) subsOf(id predID) []int32 { return r.byID[id].subs }

// intern returns the ID for p, allocating an entry when p is new. isNew
// reports whether the predicate needs to be added to the attribute indexes.
func (r *registry) intern(p subscription.Predicate) (id predID, isNew bool) {
	if id, ok := r.byPred[p]; ok {
		// byPred only holds live entries: dissociate removes retired
		// predicates from the map before recycling their IDs.
		return id, false
	}
	if n := len(r.freeID); n > 0 {
		id = r.freeID[n-1]
		r.freeID = r.freeID[:n-1]
		r.byID[id] = predEntry{pred: p, live: true}
	} else {
		id = predID(len(r.byID))
		r.byID = append(r.byID, predEntry{pred: p, live: true})
	}
	r.byPred[p] = id
	r.live++
	return id, true
}

// associate records that the subscription at dense index subIdx holds one
// leaf occurrence of predicate id.
func (r *registry) associate(id predID, subIdx int32) {
	r.byID[id].subs = append(r.byID[id].subs, subIdx)
}

// dissociate removes one leaf occurrence. When the predicate's last
// association disappears it is retired: gone=true tells the caller to drop
// it from the attribute indexes. The predicate value is returned for that
// removal.
func (r *registry) dissociate(id predID, subIdx int32) (p subscription.Predicate, gone bool) {
	ent := &r.byID[id]
	for i, s := range ent.subs {
		if s == subIdx {
			last := len(ent.subs) - 1
			ent.subs[i] = ent.subs[last]
			ent.subs = ent.subs[:last]
			break
		}
	}
	if len(ent.subs) == 0 && ent.live {
		ent.live = false
		r.live--
		delete(r.byPred, ent.pred)
		r.freeID = append(r.freeID, id)
		return ent.pred, true
	}
	return ent.pred, false
}
