// Package filter implements the counting-based filtering algorithm for
// Boolean subscriptions described in [2] (Bittner & Hinze, CoopIS 2005) —
// the "non-canonical" matcher the paper's throughput heuristic reasons
// about.
//
// The engine deduplicates predicates across subscriptions in a registry and
// keeps, per predicate, its predicate/subscription associations — the
// paper's memory metric. Matching an event proceeds in two phases:
//
//  1. Predicate phase: per-attribute operator indexes (hash for equality,
//     sorted threshold arrays for ranges, scan lists for the rest) determine
//     the set of fulfilled predicates without touching subscriptions.
//  2. Counting phase: fulfilled predicates bump a counter on each associated
//     subscription; only subscriptions whose counter reaches pmin — the
//     minimal number of fulfilled predicates that can satisfy the tree —
//     have their Boolean tree evaluated.
//
// The pmin gate is exactly what throughput-based pruning preserves: pruning
// that keeps pmin high keeps tree evaluations rare.
package filter

import (
	"fmt"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Engine filters events against a dynamic set of Boolean subscriptions.
// It is not safe for concurrent use; each broker owns one.
type Engine struct {
	registry registry
	attrs    map[string]*attrIndex

	// negScan lists predicates that can be fulfilled by the *absence* of
	// their attribute (negated predicates); they are evaluated against the
	// whole message once per match call.
	negScan map[predID]struct{}

	subs     map[uint64]*subEntry
	dense    []*subEntry // dense index -> entry (nil for free slots)
	freeSubs []int32

	epoch     uint64
	fulfilled []uint64 // predID -> epoch stamp
	counts    []int32  // dense sub index -> fulfilled-predicate count
	touched   []int32  // dense sub indexes with counts > 0 this epoch

	assocs int // current predicate/subscription associations
}

// subEntry is the engine's view of one registered subscription.
type subEntry struct {
	sub   *subscription.Subscription
	idx   int32    // dense index
	pmin  int32    // cached PMin of the current tree
	leafs []predID // leaf predicates in pre-order (with duplicates)
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		registry: newRegistry(),
		attrs:    make(map[string]*attrIndex),
		negScan:  make(map[predID]struct{}),
		subs:     make(map[uint64]*subEntry),
	}
}

// NumSubscriptions returns the number of registered subscriptions.
func (e *Engine) NumSubscriptions() int { return len(e.subs) }

// Associations returns the current number of predicate/subscription
// associations — the sum of leaf counts over all registered trees. This is
// the routing-table memory metric of Fig. 1(c)/(f).
func (e *Engine) Associations() int { return e.assocs }

// NumPredicates returns the number of distinct predicates in the registry.
func (e *Engine) NumPredicates() int { return e.registry.live }

// Subscription returns the currently registered tree for id.
func (e *Engine) Subscription(id uint64) (*subscription.Subscription, bool) {
	se, ok := e.subs[id]
	if !ok {
		return nil, false
	}
	return se.sub, true
}

// Register adds a subscription. The subscription tree is used as-is (callers
// pass validated trees); registering an already-present ID is an error.
func (e *Engine) Register(s *subscription.Subscription) error {
	if _, dup := e.subs[s.ID]; dup {
		return fmt.Errorf("filter: subscription %d already registered", s.ID)
	}
	se := &subEntry{sub: s}
	if n := len(e.freeSubs); n > 0 {
		se.idx = e.freeSubs[n-1]
		e.freeSubs = e.freeSubs[:n-1]
		e.dense[se.idx] = se
	} else {
		se.idx = int32(len(e.dense))
		e.dense = append(e.dense, se)
		e.counts = append(e.counts, 0)
	}
	e.subs[s.ID] = se
	e.attach(se)
	return nil
}

// Unregister removes a subscription, releasing its predicate associations.
// It reports whether the ID was present.
func (e *Engine) Unregister(id uint64) bool {
	se, ok := e.subs[id]
	if !ok {
		return false
	}
	e.detach(se)
	e.dense[se.idx] = nil
	e.counts[se.idx] = 0
	e.freeSubs = append(e.freeSubs, se.idx)
	delete(e.subs, id)
	return true
}

// Update replaces the tree of a registered subscription — how pruned routing
// entries take effect. The subscription keeps its identity; associations and
// indexes adjust incrementally.
func (e *Engine) Update(s *subscription.Subscription) error {
	se, ok := e.subs[s.ID]
	if !ok {
		return fmt.Errorf("filter: subscription %d not registered", s.ID)
	}
	e.detach(se)
	se.sub = s
	e.attach(se)
	return nil
}

// attach registers the entry's current tree with the predicate registry and
// attribute indexes.
func (e *Engine) attach(se *subEntry) {
	leaves := se.sub.Root.Leaves(nil)
	se.leafs = make([]predID, len(leaves))
	se.pmin = int32(se.sub.PMin())
	for i, p := range leaves {
		id, isNew := e.registry.intern(p)
		se.leafs[i] = id
		if isNew {
			e.indexAdd(id, p)
			e.growPredTables()
		}
		e.registry.associate(id, se.idx)
	}
	e.assocs += len(leaves)
}

// detach removes the entry's current tree from registry and indexes.
func (e *Engine) detach(se *subEntry) {
	for _, id := range se.leafs {
		p, gone := e.registry.dissociate(id, se.idx)
		if gone {
			e.indexRemove(id, p)
		}
	}
	e.assocs -= len(se.leafs)
	se.leafs = nil
}

func (e *Engine) growPredTables() {
	if n := e.registry.capacity(); n > len(e.fulfilled) {
		grown := make([]uint64, n+n/2+8)
		copy(grown, e.fulfilled)
		e.fulfilled = grown
	}
}

// indexAdd routes a new predicate into the right per-attribute structure.
func (e *Engine) indexAdd(id predID, p subscription.Predicate) {
	if p.Negated {
		e.negScan[id] = struct{}{}
		return
	}
	ai := e.attrs[p.Attr]
	if ai == nil {
		ai = newAttrIndex()
		e.attrs[p.Attr] = ai
	}
	ai.add(id, p)
}

func (e *Engine) indexRemove(id predID, p subscription.Predicate) {
	if p.Negated {
		delete(e.negScan, id)
		return
	}
	if ai := e.attrs[p.Attr]; ai != nil {
		ai.remove(id, p)
	}
}

// Match appends the IDs of all subscriptions matching m to dst and returns
// it. The result set is deterministic; its order is unspecified.
func (e *Engine) Match(m *event.Message, dst []uint64) []uint64 {
	e.MatchVisit(m, func(s *subscription.Subscription) {
		dst = append(dst, s.ID)
	})
	return dst
}

// MatchCount returns the number of matching subscriptions.
func (e *Engine) MatchCount(m *event.Message) int {
	n := 0
	e.MatchVisit(m, func(*subscription.Subscription) { n++ })
	return n
}

// MatchVisit invokes fn for every subscription whose tree matches m.
// fn must not mutate the engine.
func (e *Engine) MatchVisit(m *event.Message, fn func(*subscription.Subscription)) {
	e.epoch++

	// Phase 1: determine fulfilled predicates.
	for _, a := range m.Attrs {
		if ai := e.attrs[a.Name]; ai != nil {
			ai.collect(a.Value, e.mark)
		}
	}
	for id := range e.negScan {
		if e.registry.pred(id).Matches(m) {
			e.mark(id)
		}
	}

	// Phase 2: count and evaluate gated subscriptions.
	for _, idx := range e.touched {
		se := e.dense[idx]
		if se != nil && e.counts[idx] >= se.pmin && e.evalTree(se) {
			fn(se.sub)
		}
		e.counts[idx] = 0
	}
	e.touched = e.touched[:0]
}

// mark stamps a predicate as fulfilled for the current epoch and credits its
// associated subscriptions.
func (e *Engine) mark(id predID) {
	if e.fulfilled[id] == e.epoch {
		return
	}
	e.fulfilled[id] = e.epoch
	for _, idx := range e.registry.subsOf(id) {
		if e.counts[idx] == 0 {
			e.touched = append(e.touched, idx)
		}
		e.counts[idx]++
	}
}

// evalTree evaluates the Boolean tree of se using the epoch-stamped
// fulfilled set; leaves are consumed in pre-order, mirroring attach.
func (e *Engine) evalTree(se *subEntry) bool {
	pos := 0
	return e.evalNode(se.sub.Root, se.leafs, &pos)
}

func (e *Engine) evalNode(n *subscription.Node, leafs []predID, pos *int) bool {
	switch n.Kind {
	case subscription.NodeLeaf:
		id := leafs[*pos]
		*pos++
		return e.fulfilled[id] == e.epoch
	case subscription.NodeAnd:
		ok := true
		for _, c := range n.Children {
			// No short-circuit: the leaf cursor must advance through every
			// child regardless of the outcome.
			if !e.evalNode(c, leafs, pos) {
				ok = false
			}
		}
		return ok
	case subscription.NodeOr:
		ok := false
		for _, c := range n.Children {
			if e.evalNode(c, leafs, pos) {
				ok = true
			}
		}
		return ok
	default:
		return false
	}
}
