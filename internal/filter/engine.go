// Package filter implements the counting-based filtering algorithm for
// Boolean subscriptions described in [2] (Bittner & Hinze, CoopIS 2005) —
// the "non-canonical" matcher the paper's throughput heuristic reasons
// about.
//
// The engine deduplicates predicates across subscriptions in a registry and
// keeps, per predicate, its predicate/subscription associations — the
// paper's memory metric. Matching an event proceeds in two phases:
//
//  1. Predicate phase: per-attribute operator indexes (hash for equality,
//     sorted threshold arrays for ranges, scan lists for the rest) determine
//     the set of fulfilled predicates without touching subscriptions.
//  2. Counting phase: fulfilled predicates bump a counter on each associated
//     subscription; only subscriptions whose counter reaches pmin — the
//     minimal number of fulfilled predicates that can satisfy the tree —
//     have their Boolean tree evaluated.
//
// The pmin gate is exactly what throughput-based pruning preserves: pruning
// that keeps pmin high keeps tree evaluations rare.
//
// # Concurrency model
//
// The engine splits into an immutable read path and a mutation path.
// Register, Unregister, and Update mutate the registry, the attribute
// indexes, and the dense subscription table; they require exclusive access.
// Match, MatchVisit, and MatchCount only read that shared state — all
// per-event scratch (the fulfilled-predicate stamps and the per-shard
// counters) lives in pooled per-call buffers — so any number of match calls
// may run concurrently with each other, as long as no mutation runs at the
// same time. Callers enforce the discipline with an RWMutex: matches under
// RLock, mutations under Lock (see internal/broker).
//
// Independently of cross-call concurrency, one match call can fan its
// counting phase out across a pool of workers: subscriptions are bucketed
// into shards (dense index mod shard count) and each worker processes a
// disjoint set of shards with shard-private counters, so the fan-out needs
// no synchronization beyond a single join. NewSharded picks the layout;
// New() is the serial single-shard engine.
package filter

import (
	"fmt"
	"runtime"
	"sync"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// matchWorkUnit is the counting work — counter credits, i.e. predicate
// associations to walk — that justifies one worker goroutine. A goroutine
// handoff plus its share of the join costs on the order of a microsecond
// while a single credit is a few nanoseconds, so a worker has to absorb
// thousands of credits to pay for itself. The fan-out scales with the
// event's actual work estimate (see matchWork) rather than with static
// table size, so a workers=8 engine degrades to serial on light events
// instead of paying an 8-way join for microseconds of counting — which is
// what used to keep the parallel layout behind serial on sparse workloads.
const matchWorkUnit = 4096

// Engine filters events against a dynamic set of Boolean subscriptions.
// Mutations require exclusive access; match calls may run concurrently
// with each other (see the package comment for the full contract).
type Engine struct {
	shards  int // subscription buckets (dense index mod shards)
	workers int // max goroutines per match call, <= shards
	procs   int // GOMAXPROCS at construction: fan-out beyond it only adds handoff

	registry registry
	attrs    map[string]*attrIndex

	// negScan tracks predicates that can be fulfilled by the *absence* of
	// their attribute (negated predicates); they are evaluated against the
	// whole message once per match call. The map holds each predicate's
	// position in negList; the dense slice is what the hot path iterates,
	// so Phase 1 never walks map buckets.
	negScan map[predID]int
	negList []predID

	subs     map[uint64]*subEntry
	dense    []*subEntry // dense index -> entry (nil for free slots)
	freeSubs []int32

	assocs int // current predicate/subscription associations

	scratch sync.Pool // *matchScratch
}

// subEntry is the engine's view of one registered subscription.
type subEntry struct {
	sub   *subscription.Subscription
	idx   int32    // dense index
	pmin  int32    // cached PMin of the current tree
	leafs []predID // leaf predicates in pre-order (with duplicates)
}

// matchScratch is the per-call state of one match: epoch-stamped fulfilled
// predicates plus per-shard counters, touched lists, and result buffers.
// Scratch is pooled and reused; buffers grow to the engine's current sizes
// on acquisition and results merge without allocation.
type matchScratch struct {
	epoch     uint64
	fulfilled []uint64 // predID -> epoch stamp
	fullList  []predID // predicates fulfilled this epoch
	shards    []shardScratch
}

// shardScratch is one shard's counting-phase state within one match call.
// Workers own disjoint shards, so no field needs synchronization; the pad
// keeps neighboring shards' hot slice headers off each other's cache lines.
type shardScratch struct {
	counts  []int32 // local slot (dense index / shards) -> credit count
	touched []int32 // local slots with counts > 0 this epoch
	matched []*subscription.Subscription

	_ [56]byte // pad to 128 bytes
}

// New returns an empty serial engine: one shard, no worker fan-out.
func New() *Engine { return NewSharded(1, 1) }

// NewSharded returns an empty engine with the given shard and worker
// layout. Shards partition the subscription table; workers bound the
// goroutines one match call fans out across (capped at the shard count).
//
// Zero means auto-size: workers == 0 resolves to GOMAXPROCS, and
// shards == 0 picks a layout from the resolved worker count — the serial
// single-shard engine when workers resolve to 1 (so a serial deployment
// never pays the sharding tax), twice the workers otherwise (bounded
// fan-out imbalance without oversharding small tables; the per-event work
// gate already keeps light matches serial). Negative
// values are treated as 1; shards are capped at 64 (the occupancy mask
// width).
func NewSharded(shards, workers int) *Engine {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if shards == 0 {
		if workers == 1 {
			shards = 1
		} else {
			shards = workers * 2
		}
	}
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	if workers > shards {
		workers = shards
	}
	return &Engine{
		shards:   shards,
		workers:  workers,
		procs:    runtime.GOMAXPROCS(0),
		registry: newRegistry(shards),
		attrs:    make(map[string]*attrIndex),
		negScan:  make(map[predID]int),
		subs:     make(map[uint64]*subEntry),
	}
}

// Shards returns the number of subscription shards.
func (e *Engine) Shards() int { return e.shards }

// Workers returns the maximum worker fan-out per match call.
func (e *Engine) Workers() int { return e.workers }

// NumSubscriptions returns the number of registered subscriptions.
func (e *Engine) NumSubscriptions() int { return len(e.subs) }

// Associations returns the current number of predicate/subscription
// associations — the sum of leaf counts over all registered trees. This is
// the routing-table memory metric of Fig. 1(c)/(f).
func (e *Engine) Associations() int { return e.assocs }

// NumPredicates returns the number of distinct predicates in the registry.
func (e *Engine) NumPredicates() int { return e.registry.live }

// Subscription returns the currently registered tree for id.
func (e *Engine) Subscription(id uint64) (*subscription.Subscription, bool) {
	se, ok := e.subs[id]
	if !ok {
		return nil, false
	}
	return se.sub, true
}

// Register adds a subscription. The subscription tree is used as-is (callers
// pass validated trees); registering an already-present ID is an error.
func (e *Engine) Register(s *subscription.Subscription) error {
	if _, dup := e.subs[s.ID]; dup {
		return fmt.Errorf("filter: subscription %d already registered", s.ID)
	}
	se := &subEntry{sub: s}
	if n := len(e.freeSubs); n > 0 {
		se.idx = e.freeSubs[n-1]
		e.freeSubs = e.freeSubs[:n-1]
		e.dense[se.idx] = se
	} else {
		se.idx = int32(len(e.dense))
		e.dense = append(e.dense, se)
	}
	e.subs[s.ID] = se
	e.attach(se)
	return nil
}

// Unregister removes a subscription, releasing its predicate associations.
// It reports whether the ID was present.
func (e *Engine) Unregister(id uint64) bool {
	se, ok := e.subs[id]
	if !ok {
		return false
	}
	e.detach(se)
	e.dense[se.idx] = nil
	e.freeSubs = append(e.freeSubs, se.idx)
	delete(e.subs, id)
	return true
}

// Update replaces the tree of a registered subscription — how pruned routing
// entries take effect. The subscription keeps its identity; associations and
// indexes adjust incrementally.
func (e *Engine) Update(s *subscription.Subscription) error {
	se, ok := e.subs[s.ID]
	if !ok {
		return fmt.Errorf("filter: subscription %d not registered", s.ID)
	}
	e.detach(se)
	se.sub = s
	e.attach(se)
	return nil
}

// attach registers the entry's current tree with the predicate registry and
// attribute indexes.
func (e *Engine) attach(se *subEntry) {
	leaves := se.sub.Root.Leaves(nil)
	se.leafs = make([]predID, len(leaves))
	se.pmin = int32(se.sub.PMin())
	for i, p := range leaves {
		id, isNew := e.registry.intern(p)
		se.leafs[i] = id
		if isNew {
			e.indexAdd(id, p)
		}
		e.registry.associate(id, se.idx)
	}
	e.assocs += len(leaves)
}

// detach removes the entry's current tree from registry and indexes.
func (e *Engine) detach(se *subEntry) {
	for _, id := range se.leafs {
		p, gone := e.registry.dissociate(id, se.idx)
		if gone {
			e.indexRemove(id, p)
		}
	}
	e.assocs -= len(se.leafs)
	se.leafs = nil
}

// indexAdd routes a new predicate into the right per-attribute structure.
func (e *Engine) indexAdd(id predID, p subscription.Predicate) {
	if p.Negated {
		e.negScan[id] = len(e.negList)
		e.negList = append(e.negList, id)
		return
	}
	ai := e.attrs[p.Attr]
	if ai == nil {
		ai = newAttrIndex()
		e.attrs[p.Attr] = ai
	}
	ai.add(id, p)
}

func (e *Engine) indexRemove(id predID, p subscription.Predicate) {
	if p.Negated {
		pos := e.negScan[id]
		lastIdx := len(e.negList) - 1
		moved := e.negList[lastIdx]
		e.negList[pos] = moved
		e.negScan[moved] = pos
		e.negList = e.negList[:lastIdx]
		delete(e.negScan, id)
		return
	}
	if ai := e.attrs[p.Attr]; ai != nil {
		ai.remove(id, p)
	}
}

// getScratch acquires a pooled scratch and grows its buffers to the
// engine's current predicate and subscription capacities. Counters are zero
// whenever a scratch sits in the pool (the counting phase resets the slots
// it touched), so growth only needs to preserve that invariant.
//
//dimlint:pooled
func (e *Engine) getScratch() *matchScratch {
	sc, _ := e.scratch.Get().(*matchScratch)
	if sc == nil {
		sc = &matchScratch{shards: make([]shardScratch, e.shards)}
	}
	if n := e.registry.capacity(); n > len(sc.fulfilled) {
		grown := make([]uint64, n+n/2+8)
		copy(grown, sc.fulfilled)
		sc.fulfilled = grown
	}
	need := (len(e.dense) + e.shards - 1) / e.shards
	for i := range sc.shards {
		if ss := &sc.shards[i]; need > len(ss.counts) {
			grown := make([]int32, need+need/2+8)
			copy(grown, ss.counts)
			ss.counts = grown
		}
	}
	return sc
}

// Match appends the IDs of all subscriptions matching m to dst and returns
// it. The result set is deterministic; its order is unspecified.
func (e *Engine) Match(m *event.Message, dst []uint64) []uint64 {
	e.MatchVisit(m, func(s *subscription.Subscription) {
		dst = append(dst, s.ID)
	})
	return dst
}

// MatchCount returns the number of matching subscriptions.
func (e *Engine) MatchCount(m *event.Message) int {
	n := 0
	e.MatchVisit(m, func(*subscription.Subscription) { n++ })
	return n
}

// MatchVisit invokes fn for every subscription whose tree matches m.
// fn runs on the calling goroutine and must not mutate the engine.
//
//dimlint:hotpath
func (e *Engine) MatchVisit(m *event.Message, fn func(*subscription.Subscription)) {
	sc := e.getScratch()
	sc.epoch++
	sc.fullList = sc.fullList[:0]

	// Phase 1: determine fulfilled predicates.
	mark := func(id predID) {
		if sc.fulfilled[id] != sc.epoch {
			sc.fulfilled[id] = sc.epoch
			sc.fullList = append(sc.fullList, id)
		}
	}
	for _, a := range m.Attrs {
		if ai := e.attrs[a.Name]; ai != nil {
			ai.collect(a.Value, mark)
		}
	}
	for _, id := range e.negList {
		if e.registry.pred(id).Matches(m) {
			mark(id)
		}
	}

	// Phase 2: count and evaluate gated subscriptions, per shard. Workers
	// own disjoint shards; results merge on the calling goroutine.
	if len(sc.fullList) > 0 {
		if nw := e.matchWorkers(e.matchWork(sc)); nw <= 1 {
			for s := 0; s < e.shards; s++ {
				e.matchShard(sc, s)
			}
		} else {
			var wg sync.WaitGroup
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func(w int) {
					defer wg.Done()
					for s := w; s < e.shards; s += nw {
						e.matchShard(sc, s)
					}
				}(w)
			}
			wg.Wait()
		}
		for i := range sc.shards {
			ss := &sc.shards[i]
			for j, sub := range ss.matched {
				fn(sub)
				ss.matched[j] = nil // release the reference while pooled
			}
			ss.matched = ss.matched[:0]
		}
	}
	e.scratch.Put(sc)
}

// matchWork estimates the counting-phase cost of this epoch's fulfilled
// set: each predicate's association count (registry refs) is exactly the
// number of counter credits it will generate in phase 2, so the sum over
// the fulfilled list is the total credits about to be applied. One array
// load per fulfilled predicate — negligible next to the phase it sizes.
func (e *Engine) matchWork(sc *matchScratch) int {
	if e.workers <= 1 {
		return 0 // serial engine: the estimate is never consulted
	}
	work := 0
	for _, id := range sc.fullList {
		work += e.registry.byID[id].refs
	}
	return work
}

// matchWorkers decides the fan-out for one call: one worker per
// matchWorkUnit of estimated counting work, capped at the configured
// worker count and at the processor count (goroutines beyond GOMAXPROCS
// cannot run in parallel — they only add handoff, which is why a
// workers=8 layout used to lose to serial on small machines). Light
// events run serial regardless of configuration.
func (e *Engine) matchWorkers(work int) int {
	nw := work / matchWorkUnit
	if nw <= 1 {
		return 1
	}
	if nw > e.workers {
		nw = e.workers
	}
	if nw > e.procs {
		nw = e.procs
	}
	return nw
}

// matchShard runs the counting phase for one shard: credit subscriptions
// associated with this epoch's fulfilled predicates, then evaluate the
// trees of those that reached their pmin gate. The occupancy mask skips
// predicates with no association in this shard (the common case once
// shards are fine-grained) with one contiguous load. Counters are reset on
// the way out so the scratch returns to its all-zero pool state.
//
//dimlint:hotpath
func (e *Engine) matchShard(sc *matchScratch, s int) {
	ss := &sc.shards[s]
	table := e.registry.assoc[s]
	masks := e.registry.masks
	bit := uint64(1) << uint(s)
	for _, id := range sc.fullList {
		if masks[id]&bit == 0 {
			continue
		}
		for _, local := range table[id] {
			if ss.counts[local] == 0 {
				ss.touched = append(ss.touched, local)
			}
			ss.counts[local]++
		}
	}
	shards := int32(e.shards)
	for _, local := range ss.touched {
		se := e.dense[local*shards+int32(s)]
		if se != nil && ss.counts[local] >= se.pmin && e.evalTree(sc, se) {
			ss.matched = append(ss.matched, se.sub)
		}
		ss.counts[local] = 0
	}
	ss.touched = ss.touched[:0]
}

// evalTree evaluates the Boolean tree of se using the epoch-stamped
// fulfilled set; leaves are consumed in pre-order, mirroring attach.
//
//dimlint:hotpath
func (e *Engine) evalTree(sc *matchScratch, se *subEntry) bool {
	pos := 0
	return evalNode(sc, se.sub.Root, se.leafs, &pos)
}

// evalNode evaluates one tree node, consuming its leaves from leafs in
// pre-order via pos.
//
//dimlint:hotpath
func evalNode(sc *matchScratch, n *subscription.Node, leafs []predID, pos *int) bool {
	switch n.Kind {
	case subscription.NodeLeaf:
		id := leafs[*pos]
		*pos++
		return sc.fulfilled[id] == sc.epoch
	case subscription.NodeAnd:
		ok := true
		for _, c := range n.Children {
			// No short-circuit: the leaf cursor must advance through every
			// child regardless of the outcome.
			if !evalNode(sc, c, leafs, pos) {
				ok = false
			}
		}
		return ok
	case subscription.NodeOr:
		ok := false
		for _, c := range n.Children {
			if evalNode(sc, c, leafs, pos) {
				ok = true
			}
		}
		return ok
	default:
		return false
	}
}
