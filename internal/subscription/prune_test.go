package subscription

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

func TestCandidatesSampleTree(t *testing.T) {
	root := sampleTree() // AND(category, OR(author, author), price)
	cands := Candidates(root, nil)
	// Children of the root AND: category leaf, the OR node, price leaf.
	// The OR's children are not candidates.
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3: %v", len(cands), cands)
	}
	for _, c := range cands {
		if c == root {
			t.Error("root offered as candidate")
		}
	}
}

func TestCandidatesPureOr(t *testing.T) {
	root := Or(Eq("a", event.Int(1)), Eq("b", event.Int(2)))
	if cands := Candidates(root, nil); len(cands) != 0 {
		t.Errorf("pure OR tree has %d candidates, want 0", len(cands))
	}
}

func TestCandidatesSingleLeaf(t *testing.T) {
	root := Eq("a", event.Int(1))
	if cands := Candidates(root, nil); len(cands) != 0 {
		t.Errorf("leaf tree has %d candidates, want 0", len(cands))
	}
}

func TestCandidatesNestedAndUnderOr(t *testing.T) {
	// OR(AND(a,b), c): a and b are candidates (children of inner AND);
	// the OR children themselves are not.
	inner := And(Eq("a", event.Int(1)), Eq("b", event.Int(2)))
	root := Or(inner, Eq("c", event.Int(3)))
	cands := Candidates(root, nil)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
}

func TestInnermostCandidates(t *testing.T) {
	// AND(leaf, OR(leaf, AND(leaf, leaf)))
	deepAnd := And(Eq("c", event.Int(3)), Eq("d", event.Int(4)))
	orNode := Or(Eq("b", event.Int(2)), deepAnd)
	root := And(Eq("a", event.Int(1)), orNode)
	all := Candidates(root, nil)
	if len(all) != 4 { // a-leaf, orNode, c-leaf, d-leaf
		t.Fatalf("got %d candidates, want 4", len(all))
	}
	inner := InnermostCandidates(root, nil)
	// a-leaf (no AND below), c-leaf, d-leaf. orNode contains deepAnd -> excluded.
	if len(inner) != 3 {
		t.Fatalf("got %d innermost candidates, want 3", len(inner))
	}
	for _, c := range inner {
		if c == orNode {
			t.Error("or node with nested AND offered as innermost candidate")
		}
	}
}

func TestPruneAtRemovesLeaf(t *testing.T) {
	root := sampleTree()
	cands := Candidates(root, nil)
	// Prune the price leaf (last candidate).
	price := cands[len(cands)-1]
	if price.Kind != NodeLeaf || price.Pred.Attr != "price" {
		t.Fatalf("unexpected candidate order: %v", price)
	}
	pruned := PruneAt(root, price)
	if pruned == nil {
		t.Fatal("PruneAt returned nil for valid candidate")
	}
	if pruned.NumLeaves() != 3 {
		t.Errorf("pruned tree has %d leaves, want 3", pruned.NumLeaves())
	}
	// Original is untouched.
	if root.NumLeaves() != 4 {
		t.Error("PruneAt modified the original tree")
	}
	// Message matching only without the price constraint.
	m := event.Build(1).Str("category", "scifi").Str("author", "H").Num("price", 100).Msg()
	if root.Matches(m) {
		t.Fatal("original should not match")
	}
	if !pruned.Matches(m) {
		t.Error("pruned tree should match (generalization)")
	}
}

func TestPruneAtCollapsesAnd(t *testing.T) {
	a, b := Eq("a", event.Int(1)), Eq("b", event.Int(2))
	root := And(a, b)
	pruned := PruneAt(root, b)
	if pruned == nil || pruned.Kind != NodeLeaf || pruned.Pred.Attr != "a" {
		t.Errorf("pruning one of two AND children should leave the other leaf, got %v", pruned)
	}
}

func TestPruneAtWholeOrSubtree(t *testing.T) {
	root := sampleTree()
	or := root.Children[1]
	pruned := PruneAt(root, or)
	if pruned == nil {
		t.Fatal("pruning the OR subtree failed")
	}
	if pruned.NumLeaves() != 2 {
		t.Errorf("pruned tree has %d leaves, want 2", pruned.NumLeaves())
	}
	m := event.Build(1).Str("category", "scifi").Str("author", "nobody").Num("price", 10).Msg()
	if !pruned.Matches(m) {
		t.Error("author constraint should be gone")
	}
}

func TestPruneAtRejectsInvalidTargets(t *testing.T) {
	root := sampleTree()
	if PruneAt(root, root) != nil {
		t.Error("pruning the root should be rejected")
	}
	orChild := root.Children[1].Children[0]
	if got := PruneAt(root, orChild); got != nil {
		t.Errorf("pruning an OR child should be rejected, got %v", got)
	}
	foreign := Eq("zzz", event.Int(1))
	if PruneAt(root, foreign) != nil {
		t.Error("pruning a node not in the tree should be rejected")
	}
}

func TestPruneGeneralizesProperty(t *testing.T) {
	// Invariant 1 of DESIGN.md §6: every valid pruning is a generalization.
	r := dist.New(77)
	trees := 0
	for trees < 400 {
		root := randomTree(r, 3).Simplify()
		cands := Candidates(root, nil)
		if len(cands) == 0 {
			continue
		}
		trees++
		target := cands[r.Intn(len(cands))]
		pruned := PruneAt(root, target)
		if pruned == nil {
			t.Fatalf("valid candidate rejected in %s", root)
		}
		if err := pruned.Validate(); err != nil {
			t.Fatalf("pruned tree invalid: %v (%s)", err, pruned)
		}
		for j := 0; j < 30; j++ {
			m := randomMessage(r, uint64(trees*100+j))
			if root.Matches(m) && !pruned.Matches(m) {
				t.Fatalf("pruning specialized: %s -> %s misses %s", root, pruned, m)
			}
		}
		// Invariant 2: pmin never increases.
		if pruned.PMin() > root.PMin() {
			t.Fatalf("pmin increased from %d to %d: %s -> %s", root.PMin(), pruned.PMin(), root, pruned)
		}
		// mem strictly decreases.
		if pruned.MemSize() >= root.MemSize() {
			t.Fatalf("mem did not decrease: %s -> %s", root, pruned)
		}
		// Leaf count strictly decreases.
		if pruned.NumLeaves() >= root.NumLeaves() {
			t.Fatalf("leaves did not decrease: %s -> %s", root, pruned)
		}
	}
}

func TestMaxPruningsAndExhaustion(t *testing.T) {
	tests := []struct {
		name string
		n    *Node
		want int
	}{
		{"leaf", Eq("a", event.Int(1)), 0},
		{"pure or", Or(Eq("a", event.Int(1)), Eq("b", event.Int(2))), 0},
		{"and2", And(Eq("a", event.Int(1)), Eq("b", event.Int(2))), 1},
		{"and3", And(Eq("a", event.Int(1)), Eq("b", event.Int(2)), Eq("c", event.Int(3))), 2},
		{"sample", sampleTree(), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MaxPrunings(tt.n); got != tt.want {
				t.Errorf("MaxPrunings = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestExhaustionEndsAndFree(t *testing.T) {
	// Invariant 7: repeatedly pruning any candidate terminates with an
	// AND-free tree.
	r := dist.New(123)
	for i := 0; i < 200; i++ {
		n := randomTree(r, 3).Simplify()
		steps := 0
		for {
			cands := Candidates(n, nil)
			if len(cands) == 0 {
				break
			}
			n = PruneAt(n, cands[r.Intn(len(cands))])
			if n == nil {
				t.Fatal("valid candidate pruning returned nil")
			}
			if steps++; steps > 10000 {
				t.Fatal("exhaustion did not terminate")
			}
		}
		if ContainsAnd(n) {
			t.Fatalf("exhausted tree still contains AND: %s", n)
		}
	}
}
