package subscription

import (
	"fmt"
	"strings"
	"unicode"

	"dimprune/internal/event"
)

// Parse converts the text subscription syntax into a tree in negation
// normal form. The grammar, with the usual precedence not < and < or... more
// precisely `or` binds loosest, then `and`, then `not`:
//
//	expr     := andExpr ("or" andExpr)*
//	andExpr  := unary ("and" unary)*
//	unary    := "not" unary | "(" expr ")" | predicate
//	predicate := IDENT op literal | IDENT "exists"
//	op       := "=" | "!=" | "<" | "<=" | ">" | ">=" |
//	            "prefix" | "suffix" | "contains"
//	literal  := NUMBER | STRING | "true" | "false"
//
// Keywords are case-insensitive; strings use single or double quotes.
// Node.String() output round-trips through Parse.
func Parse(text string) (*Node, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("subscription: unexpected %q at offset %d", p.peek().text, p.peek().pos)
	}
	return n.Simplify(), nil
}

// MustParse is Parse for tests and examples with known-good input; it panics
// on error.
func MustParse(text string) *Node {
	n, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return n
}

type tokenKind uint8

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokString
	tokOp // = != < <= > >=
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 >= len(s) || s[i+1] != '=' {
				return nil, fmt.Errorf("subscription: stray '!' at offset %d", i)
			}
			toks = append(toks, token{tokOp, "!=", i})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(s) && s[j] != c {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("subscription: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, s[i : j+1], i})
			i = j + 1
		case c == '-' || c >= '0' && c <= '9':
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				(s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E')) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("subscription: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) atEnd() bool { return p.i >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEnd() {
		return token{pos: -1, text: "end of input"}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	p.i++
	return t
}

// keyword consumes the next token when it is the given case-insensitive
// identifier keyword.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseOr() (*Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Node{left}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return Or(children...), nil
}

func (p *parser) parseAnd() (*Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []*Node{left}
	for p.keyword("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return And(children...), nil
}

func (p *parser) parseUnary() (*Node, error) {
	if p.keyword("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("subscription: expected ')' but found %q", p.peek().text)
		}
		p.next()
		return inner, nil
	}
	return p.parsePredicate()
}

var textOps = map[string]Op{
	"=":        OpEq,
	"!=":       OpNe,
	"<":        OpLt,
	"<=":       OpLe,
	">":        OpGt,
	">=":       OpGe,
	"prefix":   OpPrefix,
	"suffix":   OpSuffix,
	"contains": OpContains,
	"exists":   OpExists,
}

func (p *parser) parsePredicate() (*Node, error) {
	attrTok := p.next()
	if attrTok.kind != tokIdent {
		return nil, fmt.Errorf("subscription: expected attribute name, found %q", attrTok.text)
	}
	opTok := p.next()
	var opText string
	switch opTok.kind {
	case tokOp:
		opText = opTok.text
	case tokIdent:
		opText = strings.ToLower(opTok.text)
	default:
		return nil, fmt.Errorf("subscription: expected operator after %q, found %q", attrTok.text, opTok.text)
	}
	op, ok := textOps[opText]
	if !ok {
		return nil, fmt.Errorf("subscription: unknown operator %q", opTok.text)
	}
	pred := Predicate{Attr: attrTok.text, Op: op}
	if op.NeedsValue() {
		valTok := p.next()
		switch valTok.kind {
		case tokNumber, tokString:
			v, err := event.ParseLiteral(valTok.text)
			if err != nil {
				return nil, err
			}
			pred.Value = v
		case tokIdent:
			// true/false booleans arrive as identifiers.
			v, err := event.ParseLiteral(strings.ToLower(valTok.text))
			if err != nil {
				return nil, fmt.Errorf("subscription: expected literal after %q %s, found %q",
					attrTok.text, op, valTok.text)
			}
			pred.Value = v
		default:
			return nil, fmt.Errorf("subscription: expected literal after %q %s, found %q",
				attrTok.text, op, valTok.text)
		}
	}
	if err := pred.Validate(); err != nil {
		return nil, err
	}
	return Leaf(pred), nil
}
