// Package subscription implements the Boolean subscription language of the
// paper (§2.1): a subscription is an arbitrary Boolean filter expression over
// predicates, each predicate an attribute–operator–value triple, represented
// as a tree.
//
// Trees are kept in negation normal form: the only internal nodes are AND and
// OR, and negation lives inside the predicates (the Negated flag). NNF is
// what makes pruning sound — replacing any subtree with TRUE can then only
// generalize the subscription (DESIGN.md §1).
package subscription

import (
	"fmt"
	"strings"

	"dimprune/internal/event"
)

// Op enumerates predicate operators. Comparisons apply to numeric values and
// (lexicographically) to strings; Prefix/Suffix/Contains apply to strings
// only; Exists tests attribute presence.
type Op uint8

// Predicate operators. OpInvalid is the zero value so unset predicates are
// detectable.
const (
	OpInvalid Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
	OpSuffix
	OpContains
	OpExists
)

var opNames = map[Op]string{
	OpEq:       "=",
	OpNe:       "!=",
	OpLt:       "<",
	OpLe:       "<=",
	OpGt:       ">",
	OpGe:       ">=",
	OpPrefix:   "prefix",
	OpSuffix:   "suffix",
	OpContains: "contains",
	OpExists:   "exists",
}

// String returns the operator's text-syntax spelling.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NeedsValue reports whether the operator takes a right-hand literal.
func (o Op) NeedsValue() bool { return o != OpExists && o != OpInvalid }

// Predicate is an attribute–operator–value condition, optionally negated.
//
// A non-negated predicate matches a message iff the attribute is present and
// the operator holds for its value. Negated is exact logical complement: a
// negated predicate also matches messages that lack the attribute. This is
// required for negation normal form to preserve semantics.
//
// Predicate is a comparable plain value; the filtering engine uses it
// directly as a map key to share identical predicates across subscriptions.
type Predicate struct {
	Attr    string
	Op      Op
	Value   event.Value
	Negated bool
}

// Pred builds a predicate. For OpExists pass event.Value{}.
func Pred(attr string, op Op, v event.Value) Predicate {
	return Predicate{Attr: attr, Op: op, Value: v}
}

// Negate returns the logical complement of p.
func (p Predicate) Negate() Predicate {
	p.Negated = !p.Negated
	return p
}

// Matches evaluates the predicate against a message.
func (p Predicate) Matches(m *event.Message) bool {
	return p.rawMatches(m) != p.Negated
}

// rawMatches evaluates the non-negated condition: attribute present and
// operator satisfied.
func (p Predicate) rawMatches(m *event.Message) bool {
	v, ok := m.Get(p.Attr)
	if !ok {
		return false
	}
	return p.Op.eval(v, p.Value)
}

// EvalValue evaluates the non-negated operator condition against a concrete
// attribute value, without presence handling. The filtering engine uses it
// when it has already located the attribute.
func (p Predicate) EvalValue(v event.Value) bool {
	return p.Op.eval(v, p.Value)
}

func (o Op) eval(have, want event.Value) bool {
	switch o {
	case OpEq:
		return have.Equal(want)
	case OpNe:
		return !have.Equal(want)
	case OpLt, OpLe, OpGt, OpGe:
		cmp, ok := have.Compare(want)
		if !ok {
			return false
		}
		switch o {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case OpPrefix:
		return have.Kind() == event.KindString && want.Kind() == event.KindString &&
			strings.HasPrefix(have.AsString(), want.AsString())
	case OpSuffix:
		return have.Kind() == event.KindString && want.Kind() == event.KindString &&
			strings.HasSuffix(have.AsString(), want.AsString())
	case OpContains:
		return have.Kind() == event.KindString && want.Kind() == event.KindString &&
			strings.Contains(have.AsString(), want.AsString())
	case OpExists:
		return true // presence was already established
	default:
		return false
	}
}

// Validate reports whether the predicate is well formed: a non-empty
// attribute, a known operator, and a value exactly when the operator needs
// one.
func (p Predicate) Validate() error {
	if p.Attr == "" {
		return fmt.Errorf("subscription: predicate with empty attribute")
	}
	if _, ok := opNames[p.Op]; !ok {
		return fmt.Errorf("subscription: predicate %q has unknown operator %d", p.Attr, p.Op)
	}
	if p.Op.NeedsValue() && !p.Value.IsValid() {
		return fmt.Errorf("subscription: predicate %q %s is missing its value", p.Attr, p.Op)
	}
	if !p.Op.NeedsValue() && p.Value.IsValid() {
		return fmt.Errorf("subscription: predicate %q %s must not carry a value", p.Attr, p.Op)
	}
	return nil
}

// MemSize returns the predicate's contribution to mem≈ in bytes: attribute
// name, operator and negation bytes, and the value payload.
func (p Predicate) MemSize() int {
	s := len(p.Attr) + 2 // op byte + negation byte
	if p.Op.NeedsValue() {
		s += p.Value.Size()
	}
	return s
}

// String renders the predicate in the text-subscription syntax, e.g.
// `price <= 20`, `not title prefix "The"`, `seller exists`.
func (p Predicate) String() string {
	var b strings.Builder
	if p.Negated {
		b.WriteString("not ")
	}
	b.WriteString(p.Attr)
	b.WriteByte(' ')
	b.WriteString(p.Op.String())
	if p.Op.NeedsValue() {
		b.WriteByte(' ')
		b.WriteString(p.Value.String())
	}
	return b.String()
}
