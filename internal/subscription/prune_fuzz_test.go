package subscription

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

// FuzzPruneSuperset checks the paper's safety invariant on random trees
// and events: every pruning step removes a conjunct, so the pruned tree's
// match set must be a superset of the tree it was pruned from (and, by
// induction, of the original's) — a pruning that loses a match would turn
// routing false positives into lost deliveries. Run longer with:
// go test -fuzz=FuzzPruneSuperset ./internal/subscription
func FuzzPruneSuperset(f *testing.F) {
	f.Add(uint64(1), uint8(1))
	f.Add(uint64(2), uint8(4))
	f.Add(uint64(2026), uint8(16))
	f.Add(uint64(0xdeadbeef), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint8) {
		r := dist.New(seed)
		original := randomTree(r, 3)
		if err := original.Validate(); err != nil {
			t.Fatalf("randomTree produced invalid tree: %v", err)
		}
		const nMsgs = 32
		msgs := make([]*testMsg, nMsgs)
		for i := range msgs {
			m := randomMessage(r, uint64(i+1))
			msgs[i] = &testMsg{m: m, matched: original.Matches(m)}
		}

		current := original
		for step := 0; step < int(steps); step++ {
			cands := Candidates(current, nil)
			if len(cands) == 0 {
				break
			}
			target := cands[r.Intn(len(cands))]
			pruned := PruneAt(current, target)
			if pruned == nil {
				t.Fatalf("step %d: PruneAt rejected a candidate of its own tree:\n%s", step, current)
			}
			if err := pruned.Validate(); err != nil {
				t.Fatalf("step %d: pruning produced invalid tree: %v\nfrom: %s\nto:   %s",
					step, err, current, pruned)
			}
			for _, tm := range msgs {
				got := pruned.Matches(tm.m)
				if tm.matched && !got {
					t.Fatalf("step %d lost a match of the original tree:\noriginal: %s\npruned:   %s\nevent:    %s",
						step, original, pruned, tm.m)
				}
				if current.Matches(tm.m) && !got {
					t.Fatalf("step %d lost a match of its immediate predecessor:\nfrom:  %s\nto:    %s\nevent: %s",
						step, current, pruned, tm.m)
				}
			}
			current = pruned
		}
	})
}

// testMsg pairs a random message with the original tree's verdict.
type testMsg struct {
	m       *event.Message
	matched bool
}
