package subscription

import "dimprune/internal/event"

// This file provides the fluent construction API used by library consumers:
//
//	s, err := subscription.New(1, "alice", subscription.And(
//	    subscription.Eq("category", event.String("scifi")),
//	    subscription.Or(
//	        subscription.Eq("author", event.String("Herbert")),
//	        subscription.Eq("author", event.String("Asimov")),
//	    ),
//	    subscription.Le("price", event.Float(25)),
//	))

// Eq returns an equality predicate leaf.
func Eq(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpEq, v)) }

// Ne returns an inequality predicate leaf (attribute must be present).
func Ne(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpNe, v)) }

// Lt returns a less-than predicate leaf.
func Lt(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpLt, v)) }

// Le returns a less-or-equal predicate leaf.
func Le(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpLe, v)) }

// Gt returns a greater-than predicate leaf.
func Gt(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpGt, v)) }

// Ge returns a greater-or-equal predicate leaf.
func Ge(attr string, v event.Value) *Node { return Leaf(Pred(attr, OpGe, v)) }

// Prefix returns a string-prefix predicate leaf.
func Prefix(attr, prefix string) *Node {
	return Leaf(Pred(attr, OpPrefix, event.String(prefix)))
}

// Suffix returns a string-suffix predicate leaf.
func Suffix(attr, suffix string) *Node {
	return Leaf(Pred(attr, OpSuffix, event.String(suffix)))
}

// Contains returns a substring predicate leaf.
func Contains(attr, substr string) *Node {
	return Leaf(Pred(attr, OpContains, event.String(substr)))
}

// Exists returns an attribute-presence predicate leaf.
func Exists(attr string) *Node { return Leaf(Pred(attr, OpExists, event.Value{})) }

// Not returns the logical complement of the subtree in negation normal form:
// De Morgan's laws push the negation down to the leaves, where it becomes
// the predicate Negated flag.
func Not(n *Node) *Node {
	switch n.Kind {
	case NodeLeaf:
		return Leaf(n.Pred.Negate())
	case NodeAnd, NodeOr:
		kind := NodeOr
		if n.Kind == NodeOr {
			kind = NodeAnd
		}
		children := make([]*Node, len(n.Children))
		for i, c := range n.Children {
			children[i] = Not(c)
		}
		return &Node{Kind: kind, Children: children}
	default:
		return n
	}
}
