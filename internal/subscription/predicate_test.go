package subscription

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

func msg(t *testing.T, attrs ...event.Attr) *event.Message {
	t.Helper()
	m, err := event.NewMessage(1, attrs...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredicateMatchesTable(t *testing.T) {
	base := []event.Attr{
		{Name: "price", Value: event.Float(12.5)},
		{Name: "bids", Value: event.Int(3)},
		{Name: "title", Value: event.String("The Left Hand of Darkness")},
		{Name: "signed", Value: event.Bool(true)},
	}
	tests := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"eq float hit", Pred("price", OpEq, event.Float(12.5)), true},
		{"eq float miss", Pred("price", OpEq, event.Float(13)), false},
		{"eq int vs float", Pred("bids", OpEq, event.Float(3)), true},
		{"eq string hit", Pred("title", OpEq, event.String("The Left Hand of Darkness")), true},
		{"eq bool", Pred("signed", OpEq, event.Bool(true)), true},
		{"ne hit", Pred("bids", OpNe, event.Int(4)), true},
		{"ne miss", Pred("bids", OpNe, event.Int(3)), false},
		{"lt hit", Pred("price", OpLt, event.Float(13)), true},
		{"lt miss equal", Pred("price", OpLt, event.Float(12.5)), false},
		{"le hit equal", Pred("price", OpLe, event.Float(12.5)), true},
		{"gt hit", Pred("bids", OpGt, event.Int(2)), true},
		{"gt miss", Pred("bids", OpGt, event.Int(3)), false},
		{"ge hit equal", Pred("bids", OpGe, event.Int(3)), true},
		{"string lt", Pred("title", OpLt, event.String("Z")), true},
		{"prefix hit", Pred("title", OpPrefix, event.String("The Left")), true},
		{"prefix miss", Pred("title", OpPrefix, event.String("Left")), false},
		{"suffix hit", Pred("title", OpSuffix, event.String("Darkness")), true},
		{"suffix miss", Pred("title", OpSuffix, event.String("Dark")), false},
		{"contains hit", Pred("title", OpContains, event.String("Hand")), true},
		{"contains miss", Pred("title", OpContains, event.String("Foot")), false},
		{"exists hit", Pred("title", OpExists, event.Value{}), true},
		{"exists miss", Pred("author", OpExists, event.Value{}), false},
		{"missing attr eq", Pred("author", OpEq, event.String("x")), false},
		{"missing attr lt", Pred("author", OpLt, event.Int(1)), false},
		{"type mismatch lt", Pred("title", OpLt, event.Int(1)), false},
		{"prefix on number", Pred("price", OpPrefix, event.String("1")), false},
	}
	m := msg(t, base...)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Matches(m); got != tt.want {
				t.Errorf("%s on %s = %v, want %v", tt.p, m, got, tt.want)
			}
		})
	}
}

func TestPredicateNegation(t *testing.T) {
	m := msg(t, event.Attr{Name: "price", Value: event.Float(5)})
	p := Pred("price", OpLt, event.Float(10))
	if !p.Matches(m) {
		t.Fatal("base predicate should match")
	}
	if p.Negate().Matches(m) {
		t.Error("negated predicate still matches")
	}
	// Negation of a predicate on a missing attribute matches (exact
	// complement semantics, required for NNF).
	q := Pred("author", OpEq, event.String("x"))
	if q.Matches(m) {
		t.Fatal("predicate on missing attribute matched")
	}
	if !q.Negate().Matches(m) {
		t.Error("negated predicate on missing attribute did not match")
	}
	if q.Negate().Negate() != q {
		t.Error("double negation is not identity")
	}
}

func TestPredicateNegationIsExactComplement(t *testing.T) {
	r := dist.New(99)
	for i := 0; i < 2000; i++ {
		p := randomPredicate(r)
		m := randomMessage(r, uint64(i))
		if p.Matches(m) == p.Negate().Matches(m) {
			t.Fatalf("p and not-p agree on %s for %s", m, p)
		}
	}
}

func TestPredicateValidate(t *testing.T) {
	valid := []Predicate{
		Pred("a", OpEq, event.Int(1)),
		Pred("a", OpExists, event.Value{}),
		Pred("a", OpPrefix, event.String("x")).Negate(),
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", p, err)
		}
	}
	invalid := []Predicate{
		{},
		Pred("", OpEq, event.Int(1)),
		Pred("a", OpEq, event.Value{}),
		Pred("a", OpExists, event.Int(1)),
		{Attr: "a", Op: Op(200), Value: event.Int(1)},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestPredicateString(t *testing.T) {
	tests := []struct {
		p    Predicate
		want string
	}{
		{Pred("price", OpLe, event.Float(20)), "price <= 20.0"},
		{Pred("price", OpLe, event.Int(20)), "price <= 20"},
		{Pred("title", OpPrefix, event.String("The")), `title prefix "The"`},
		{Pred("seller", OpExists, event.Value{}), "seller exists"},
		{Pred("bids", OpGt, event.Int(2)).Negate(), "not bids > 2"},
		{Pred("x", OpNe, event.Bool(true)), "x != true"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPredicateMemSize(t *testing.T) {
	p := Pred("price", OpLe, event.Float(20))
	// 5 attr + 2 + 9 value payload
	if got := p.MemSize(); got != 16 {
		t.Errorf("MemSize = %d, want 16", got)
	}
	e := Pred("x", OpExists, event.Value{})
	if got := e.MemSize(); got != 3 {
		t.Errorf("exists MemSize = %d, want 3", got)
	}
}

func TestOpString(t *testing.T) {
	if OpEq.String() != "=" || OpGe.String() != ">=" || OpContains.String() != "contains" {
		t.Error("operator spellings changed")
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op spelled %q", Op(99).String())
	}
}
