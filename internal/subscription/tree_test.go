package subscription

import (
	"strings"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

// sampleTree builds (category = "scifi") and (author = "H" or author = "A")
// and price <= 25.
func sampleTree() *Node {
	return And(
		Eq("category", event.String("scifi")),
		Or(
			Eq("author", event.String("H")),
			Eq("author", event.String("A")),
		),
		Le("price", event.Float(25)),
	)
}

func TestTreeMatches(t *testing.T) {
	root := sampleTree()
	tests := []struct {
		name string
		m    *event.Message
		want bool
	}{
		{"full match first author", event.Build(1).Str("category", "scifi").Str("author", "H").Num("price", 10).Msg(), true},
		{"full match second author", event.Build(2).Str("category", "scifi").Str("author", "A").Num("price", 25).Msg(), true},
		{"wrong author", event.Build(3).Str("category", "scifi").Str("author", "X").Num("price", 10).Msg(), false},
		{"price too high", event.Build(4).Str("category", "scifi").Str("author", "H").Num("price", 26).Msg(), false},
		{"missing category", event.Build(5).Str("author", "H").Num("price", 10).Msg(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := root.Matches(tt.m); got != tt.want {
				t.Errorf("Matches(%s) = %v, want %v", tt.m, got, tt.want)
			}
		})
	}
}

func TestPMin(t *testing.T) {
	tests := []struct {
		name string
		n    *Node
		want int
	}{
		{"leaf", Eq("a", event.Int(1)), 1},
		{"and of three", And(Eq("a", event.Int(1)), Eq("b", event.Int(2)), Eq("c", event.Int(3))), 3},
		{"or picks min", Or(And(Eq("a", event.Int(1)), Eq("b", event.Int(2))), Eq("c", event.Int(3))), 1},
		{"sample", sampleTree(), 3},
		{"and with or child", And(Eq("a", event.Int(1)), Or(Eq("b", event.Int(2)), And(Eq("c", event.Int(3)), Eq("d", event.Int(4))))), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.n.PMin(); got != tt.want {
				t.Errorf("PMin = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCountsAndLeaves(t *testing.T) {
	root := sampleTree()
	if got := root.NumNodes(); got != 6 {
		t.Errorf("NumNodes = %d, want 6", got)
	}
	if got := root.NumLeaves(); got != 4 {
		t.Errorf("NumLeaves = %d, want 4", got)
	}
	leaves := root.Leaves(nil)
	if len(leaves) != 4 {
		t.Fatalf("Leaves returned %d predicates", len(leaves))
	}
	if leaves[0].Attr != "category" || leaves[3].Attr != "price" {
		t.Errorf("leaf order unexpected: %v", leaves)
	}
}

func TestCloneIndependence(t *testing.T) {
	root := sampleTree()
	c := root.Clone()
	if !root.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Children[0].Pred = Pred("category", OpEq, event.String("other"))
	if root.Children[0].Pred == c.Children[0].Pred {
		t.Error("clone shares leaf storage")
	}
	c.Children[1].Children = c.Children[1].Children[:1]
	if len(root.Children[1].Children) != 2 {
		t.Error("clone shares child slices")
	}
}

func TestSimplifyCollapsesAndFlattens(t *testing.T) {
	// AND(AND(a,b), c) -> AND(a,b,c)
	a, b, c := Eq("a", event.Int(1)), Eq("b", event.Int(2)), Eq("c", event.Int(3))
	n := And(And(a, b), c).Simplify()
	if n.Kind != NodeAnd || len(n.Children) != 3 {
		t.Errorf("flatten failed: %s", n)
	}
	// Single-child nodes collapse.
	single := &Node{Kind: NodeOr, Children: []*Node{Eq("x", event.Int(1))}}
	if got := single.Simplify(); got.Kind != NodeLeaf {
		t.Errorf("single-child OR did not collapse: %s", got)
	}
	// OR nested in AND is preserved.
	m := And(a.Clone(), Or(b.Clone(), c.Clone())).Simplify()
	if m.Kind != NodeAnd || len(m.Children) != 2 || m.Children[1].Kind != NodeOr {
		t.Errorf("mixed tree over-simplified: %s", m)
	}
	// Deep chain of single children collapses fully.
	deep := &Node{Kind: NodeAnd, Children: []*Node{
		{Kind: NodeOr, Children: []*Node{Eq("y", event.Int(9))}},
	}}
	if got := deep.Simplify(); got.Kind != NodeLeaf {
		t.Errorf("deep single chain did not collapse: %s", got)
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := dist.New(5)
	for i := 0; i < 500; i++ {
		n := randomTree(r, 3)
		s := n.Simplify()
		for j := 0; j < 20; j++ {
			m := randomMessage(r, uint64(i*100+j))
			if n.Matches(m) != s.Matches(m) {
				t.Fatalf("simplify changed semantics of %s -> %s on %s", n, s, m)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTree().Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	bad := []*Node{
		{Kind: NodeAnd, Children: []*Node{Eq("a", event.Int(1))}}, // 1 child
		{Kind: NodeOr},   // no children
		{Kind: NodeLeaf}, // invalid predicate
		{Kind: NodeLeaf, Pred: Pred("a", OpEq, event.Int(1)), Children: []*Node{Eq("b", event.Int(2))}},
		{Kind: NodeInvalid},
		And(Eq("a", event.Int(1)), &Node{Kind: NodeLeaf}), // nested invalid
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: invalid tree accepted", i)
		}
	}
}

func TestNodeEqual(t *testing.T) {
	a, b := sampleTree(), sampleTree()
	if !a.Equal(b) {
		t.Error("identical trees unequal")
	}
	b.Children[2].Pred.Value = event.Float(30)
	if a.Equal(b) {
		t.Error("different trees equal")
	}
	if a.Equal(nil) || (*Node)(nil).Equal(a) {
		t.Error("nil comparison wrong")
	}
	if !(*Node)(nil).Equal(nil) {
		t.Error("nil/nil should be equal")
	}
}

func TestNodeString(t *testing.T) {
	got := sampleTree().String()
	want := `category = "scifi" and (author = "H" or author = "A") and price <= 25.0`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNotDeMorgan(t *testing.T) {
	r := dist.New(21)
	for i := 0; i < 300; i++ {
		n := randomTree(r, 3)
		neg := Not(n)
		// The result must still be NNF: no node kind other than and/or/leaf,
		// and Matches must be the exact complement.
		neg.Walk(func(node, _ *Node) bool {
			if node.Kind != NodeAnd && node.Kind != NodeOr && node.Kind != NodeLeaf {
				t.Fatalf("Not produced non-NNF node kind %v", node.Kind)
			}
			return true
		})
		for j := 0; j < 20; j++ {
			m := randomMessage(r, uint64(i*100+j))
			if n.Matches(m) == neg.Matches(m) {
				t.Fatalf("Not is not the complement of %s on %s", n, m)
			}
		}
	}
}

func TestMemSizeAdditive(t *testing.T) {
	a := Eq("a", event.Int(1))
	b := Eq("bb", event.Int(2))
	root := And(a.Clone(), b.Clone())
	wantLeafA := 16 + a.Pred.MemSize()
	wantLeafB := 16 + b.Pred.MemSize()
	if a.MemSize() != wantLeafA {
		t.Errorf("leaf MemSize = %d, want %d", a.MemSize(), wantLeafA)
	}
	want := 16 + 8 + wantLeafA + 8 + wantLeafB
	if root.MemSize() != want {
		t.Errorf("root MemSize = %d, want %d", root.MemSize(), want)
	}
}

func TestSubscriptionNew(t *testing.T) {
	s, err := New(7, "alice", sampleTree())
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 7 || s.Subscriber != "alice" {
		t.Errorf("metadata lost: %+v", s)
	}
	if s.PMin() != 3 || s.NumLeaves() != 4 {
		t.Errorf("PMin/NumLeaves = %d/%d", s.PMin(), s.NumLeaves())
	}
	if _, err := New(1, "x", nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := New(1, "x", &Node{Kind: NodeLeaf}); err == nil {
		t.Error("invalid tree accepted")
	}
	// New simplifies: a single-child AND collapses and still validates.
	s2, err := New(2, "x", &Node{Kind: NodeAnd, Children: []*Node{Eq("a", event.Int(1))}})
	if err != nil {
		t.Fatalf("simplifiable tree rejected: %v", err)
	}
	if s2.Root.Kind != NodeLeaf {
		t.Errorf("New did not simplify: %s", s2)
	}
}

func TestSubscriptionCloneAndString(t *testing.T) {
	s, err := New(1, "bob", sampleTree())
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.ID != s.ID || c.Subscriber != s.Subscriber || !c.Root.Equal(s.Root) {
		t.Error("clone differs")
	}
	c.Root.Children[0].Pred.Attr = "zzz"
	if s.Root.Children[0].Pred.Attr == "zzz" {
		t.Error("clone shares tree")
	}
	if !strings.Contains(s.String(), "category") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestWalkParentTracking(t *testing.T) {
	root := sampleTree()
	parents := map[*Node]*Node{}
	root.Walk(func(n, p *Node) bool {
		parents[n] = p
		return true
	})
	if parents[root] != nil {
		t.Error("root has a parent")
	}
	or := root.Children[1]
	for _, c := range or.Children {
		if parents[c] != or {
			t.Error("or child has wrong parent")
		}
	}
	// Early termination: stop descending below the OR.
	visited := 0
	root.Walk(func(n, p *Node) bool {
		visited++
		return n.Kind != NodeOr
	})
	if visited != 4 { // root, category leaf, or node, price leaf
		t.Errorf("early-stop walk visited %d nodes, want 4", visited)
	}
}
