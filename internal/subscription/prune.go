package subscription

// This file implements the pruning operation of [4] as tree surgery:
// removing the subtree rooted at a node whose parent is an AND node and
// re-simplifying. In negation normal form this is exactly "replace the
// subtree by TRUE": TRUE is the identity of AND, so the child disappears; a
// subtree under an OR parent is not an independent candidate because TRUE
// absorbs the whole OR, which equals pruning the OR node itself.

// Candidates appends every prunable node of the tree rooted at root to dst
// and returns it: all nodes whose parent is an AND node, in pre-order. The
// root itself is never a candidate (pruning it would drop the whole
// subscription, which the engine models as unsubscription, not pruning).
func Candidates(root *Node, dst []*Node) []*Node {
	root.Walk(func(n, parent *Node) bool {
		if parent != nil && parent.Kind == NodeAnd {
			dst = append(dst, n)
		}
		return true
	})
	return dst
}

// ContainsAnd reports whether the subtree rooted at n contains an AND node
// (including n itself).
func ContainsAnd(n *Node) bool {
	if n.Kind == NodeAnd {
		return true
	}
	for _, c := range n.Children {
		if ContainsAnd(c) {
			return true
		}
	}
	return false
}

// InnermostCandidates appends the candidates that satisfy the §3.2
// restriction — nodes with no valid pruning inside their own subtree — to
// dst and returns it. A candidate contains a nested pruning opportunity
// exactly when its subtree contains an AND node (that AND's children are
// themselves candidates), so the innermost candidates are the AND-free ones.
func InnermostCandidates(root *Node, dst []*Node) []*Node {
	root.Walk(func(n, parent *Node) bool {
		if parent != nil && parent.Kind == NodeAnd && !ContainsAnd(n) {
			dst = append(dst, n)
		}
		return true
	})
	return dst
}

// PruneAt returns a new tree equal to root with the subtree rooted at target
// (located by pointer identity) removed, in simplified canonical form. It
// returns nil when target is not a valid candidate in root — i.e. not
// present, or not the child of an AND node. root is not modified.
func PruneAt(root, target *Node) *Node {
	pruned, found := rebuildWithout(root, target)
	if !found || pruned == nil {
		return nil
	}
	return pruned.Simplify()
}

// rebuildWithout copies n, omitting target when it appears as the child of
// an AND node. It returns the copy (nil if n == target at an invalid
// position handled by the caller) and whether target was removed somewhere
// inside.
func rebuildWithout(n, target *Node) (*Node, bool) {
	if n == target {
		// Reaching the target at the top of a recursion means its parent was
		// not an AND (or it is the root); the caller rejects this case.
		return nil, false
	}
	if n.Kind == NodeLeaf {
		return &Node{Kind: NodeLeaf, Pred: n.Pred}, false
	}
	children := make([]*Node, 0, len(n.Children))
	found := false
	for _, c := range n.Children {
		if c == target {
			if n.Kind != NodeAnd {
				return nil, false // OR child: not a valid pruning
			}
			found = true
			continue
		}
		cc, f := rebuildWithout(c, target)
		if cc == nil {
			return nil, false
		}
		children = append(children, cc)
		found = found || f
	}
	if len(children) == 1 {
		return children[0], found
	}
	return &Node{Kind: n.Kind, Children: children}, found
}

// MaxPrunings returns the number of prunings needed to exhaust the tree when
// prunings are applied one innermost leaf-level candidate at a time — an
// upper bound on any pruning sequence's length, used for sizing. A tree is
// exhausted when it contains no AND node: removing one leaf-level candidate
// at a time, every leaf under an AND (directly or through ORs) is eventually
// removed except the last remaining branch.
func MaxPrunings(root *Node) int {
	// Pruning leaf-by-leaf, the process ends when no AND remains. Each step
	// removes exactly one innermost candidate. Simulation on a clone is the
	// simplest correct accounting and trees are small.
	n := root.Clone()
	count := 0
	for {
		cands := InnermostCandidates(n, nil)
		if len(cands) == 0 {
			return count
		}
		next := PruneAt(n, cands[0])
		if next == nil {
			return count
		}
		n = next
		count++
	}
}
