package subscription

import (
	"dimprune/internal/dist"
	"dimprune/internal/event"
)

// Test helpers: random trees and messages over a small shared attribute
// universe, used by the property tests in this package (and mirrored by the
// core package's tests).

var testAttrs = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

func randomPredicate(r *dist.RNG) Predicate {
	attr := testAttrs[r.Intn(len(testAttrs))]
	var p Predicate
	switch r.Intn(6) {
	case 0:
		p = Pred(attr, OpEq, event.Int(int64(r.Intn(10))))
	case 1:
		p = Pred(attr, OpLe, event.Int(int64(r.Intn(10))))
	case 2:
		p = Pred(attr, OpGt, event.Int(int64(r.Intn(10))))
	case 3:
		p = Pred(attr, OpEq, event.String(string(rune('a'+r.Intn(5)))))
	case 4:
		p = Pred(attr, OpPrefix, event.String(string(rune('a'+r.Intn(3)))))
	default:
		p = Pred(attr, OpExists, event.Value{})
	}
	if r.Bool(0.15) {
		p = p.Negate()
	}
	return p
}

// randomTree generates a random NNF tree with the given maximum depth.
// Shapes are biased toward small mixed AND/OR trees like the workload's.
func randomTree(r *dist.RNG, maxDepth int) *Node {
	if maxDepth <= 0 || r.Bool(0.4) {
		return Leaf(randomPredicate(r))
	}
	kind := NodeAnd
	if r.Bool(0.4) {
		kind = NodeOr
	}
	n := r.IntRange(2, 4)
	children := make([]*Node, n)
	for i := range children {
		children[i] = randomTree(r, maxDepth-1)
	}
	return &Node{Kind: kind, Children: children}
}

// randomMessage generates a message assigning random values to a random
// subset of the attribute universe.
func randomMessage(r *dist.RNG, id uint64) *event.Message {
	b := event.Build(id)
	for _, a := range testAttrs {
		if r.Bool(0.3) {
			continue // leave some attributes absent
		}
		switch r.Intn(3) {
		case 0:
			b.Int(a, int64(r.Intn(10)))
		case 1:
			b.Num(a, r.Range(0, 10))
		default:
			b.Str(a, string(rune('a'+r.Intn(5)))+string(rune('a'+r.Intn(5))))
		}
	}
	return b.Msg()
}
