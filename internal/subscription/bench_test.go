package subscription

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

const benchExpr = `(author = "Herbert" or author = "Asimov" or author = "Le Guin") ` +
	`and price <= 25 and (format = "hardcover" or format = "paperback") and rating >= 3`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchExpr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeMatch(b *testing.B) {
	root := MustParse(benchExpr)
	m := event.Build(1).
		Str("author", "Asimov").
		Num("price", 19).
		Str("format", "paperback").
		Int("rating", 4).
		Msg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !root.Matches(m) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkCandidatesAndPrune(b *testing.B) {
	root := MustParse(benchExpr)
	var cands []*Node
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = Candidates(root, cands[:0])
		if PruneAt(root, cands[0]) == nil {
			b.Fatal("pruning failed")
		}
	}
}

func BenchmarkPMin(b *testing.B) {
	r := dist.New(1)
	trees := make([]*Node, 64)
	for i := range trees {
		trees[i] = randomTree(r, 3).Simplify()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trees[i%len(trees)].PMin()
	}
}
