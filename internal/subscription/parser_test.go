package subscription

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
)

func TestParseSimplePredicate(t *testing.T) {
	n, err := Parse(`price <= 20`)
	if err != nil {
		t.Fatal(err)
	}
	want := Le("price", event.Int(20))
	if !n.Equal(want) {
		t.Errorf("got %s, want %s", n, want)
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or.
	n, err := Parse(`a = 1 or b = 2 and c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NodeOr || len(n.Children) != 2 {
		t.Fatalf("root should be OR with 2 children: %s", n)
	}
	if n.Children[1].Kind != NodeAnd {
		t.Errorf("right OR child should be AND: %s", n)
	}
}

func TestParseParens(t *testing.T) {
	n, err := Parse(`(a = 1 or b = 2) and c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NodeAnd || n.Children[0].Kind != NodeOr {
		t.Errorf("parenthesized OR lost: %s", n)
	}
}

func TestParseNotPushedToNNF(t *testing.T) {
	n, err := Parse(`not (a = 1 and b = 2)`)
	if err != nil {
		t.Fatal(err)
	}
	// De Morgan: OR of negated leaves.
	if n.Kind != NodeOr || len(n.Children) != 2 {
		t.Fatalf("want OR of 2, got %s", n)
	}
	for _, c := range n.Children {
		if c.Kind != NodeLeaf || !c.Pred.Negated {
			t.Errorf("child not a negated leaf: %s", c)
		}
	}
	// Double negation cancels.
	n2, err := Parse(`not not a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Kind != NodeLeaf || n2.Pred.Negated {
		t.Errorf("double negation not cancelled: %s", n2)
	}
}

func TestParseAllOperators(t *testing.T) {
	tests := []struct {
		in   string
		want Predicate
	}{
		{`a = 5`, Pred("a", OpEq, event.Int(5))},
		{`a != 5`, Pred("a", OpNe, event.Int(5))},
		{`a < 5`, Pred("a", OpLt, event.Int(5))},
		{`a <= 5`, Pred("a", OpLe, event.Int(5))},
		{`a > 5`, Pred("a", OpGt, event.Int(5))},
		{`a >= 5.5`, Pred("a", OpGe, event.Float(5.5))},
		{`a prefix "The"`, Pred("a", OpPrefix, event.String("The"))},
		{`a suffix 'ing'`, Pred("a", OpSuffix, event.String("ing"))},
		{`a contains "x y"`, Pred("a", OpContains, event.String("x y"))},
		{`a exists`, Pred("a", OpExists, event.Value{})},
		{`a = true`, Pred("a", OpEq, event.Bool(true))},
		{`a = false`, Pred("a", OpEq, event.Bool(false))},
		{`a = -3`, Pred("a", OpEq, event.Int(-3))},
		{`a = "it\"s"`, Pred("a", OpEq, event.String(`it"s`))},
		{`AND_field = 1`, Pred("AND_field", OpEq, event.Int(1))},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			n, err := Parse(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if n.Kind != NodeLeaf || n.Pred != tt.want {
				t.Errorf("got %+v, want %+v", n.Pred, tt.want)
			}
		})
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	n, err := Parse(`a = 1 AND b = 2 Or NOT c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NodeOr {
		t.Errorf("got %s", n)
	}
}

func TestParseMultiwayFlattening(t *testing.T) {
	n, err := Parse(`a = 1 and b = 2 and c = 3 and d = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NodeAnd || len(n.Children) != 4 {
		t.Errorf("multiway AND not flat: %s", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`price <=`,
		`<= 20`,
		`price <= 20 extra`,
		`(a = 1`,
		`a = 1)`,
		`a ~ 5`,
		`a = `,
		`a = "unterminated`,
		`not`,
		`a = 1 and`,
		`a exists 5`,
		`5 = a`,
		`a ! 5`,
		`a = 12abc`,
		`a = b`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	r := dist.New(31)
	for i := 0; i < 500; i++ {
		n := randomTree(r, 3).Simplify()
		back, err := Parse(n.String())
		if err != nil {
			t.Fatalf("rendered tree does not parse: %q: %v", n.String(), err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip changed tree:\n in: %s\nout: %s", n, back)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse(`a ~ b`)
}

func TestParseSemanticAgreement(t *testing.T) {
	// A handful of hand-written expressions evaluated both via a direct
	// builder tree and the parsed tree.
	in := `(category = "scifi" or category = "fantasy") and price <= 25 and not seller = "scalper"`
	parsed, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	built := And(
		Or(Eq("category", event.String("scifi")), Eq("category", event.String("fantasy"))),
		Le("price", event.Int(25)),
		Leaf(Pred("seller", OpEq, event.String("scalper")).Negate()),
	).Simplify()
	if !parsed.Equal(built) {
		t.Fatalf("parsed %s != built %s", parsed, built)
	}
	msgs := []*event.Message{
		event.Build(1).Str("category", "scifi").Num("price", 20).Str("seller", "alice").Msg(),
		event.Build(2).Str("category", "scifi").Num("price", 20).Str("seller", "scalper").Msg(),
		event.Build(3).Str("category", "crime").Num("price", 20).Str("seller", "alice").Msg(),
		event.Build(4).Str("category", "fantasy").Num("price", 30).Msg(),
		event.Build(5).Str("category", "fantasy").Num("price", 10).Msg(),
	}
	want := []bool{true, false, false, false, true}
	for i, m := range msgs {
		if got := parsed.Matches(m); got != want[i] {
			t.Errorf("message %d: Matches = %v, want %v", i+1, got, want[i])
		}
	}
}
