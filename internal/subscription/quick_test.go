package subscription

import (
	"testing"
	"testing/quick"

	"dimprune/internal/dist"
)

// Seed-driven testing/quick properties: quick generates the seeds, the
// deterministic workload generators expand them into structures.

func TestQuickPruningGeneralizes(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		r := dist.New(seed)
		root := randomTree(r, 3).Simplify()
		cands := Candidates(root, nil)
		if len(cands) == 0 {
			return true
		}
		pruned := PruneAt(root, cands[int(pick)%len(cands)])
		if pruned == nil {
			return false
		}
		for j := 0; j < 25; j++ {
			m := randomMessage(r, uint64(j))
			if root.Matches(m) && !pruned.Matches(m) {
				return false
			}
		}
		return pruned.PMin() <= root.PMin() && pruned.MemSize() < root.MemSize()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	prop := func(seed uint64) bool {
		r := dist.New(seed)
		n := randomTree(r, 3)
		once := n.Simplify()
		twice := once.Simplify()
		return once.Equal(twice)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEqualAndIndependent(t *testing.T) {
	prop := func(seed uint64) bool {
		r := dist.New(seed)
		n := randomTree(r, 3).Simplify()
		c := n.Clone()
		if !c.Equal(n) {
			return false
		}
		// Mutating the clone's first leaf must not affect the original.
		var leaf *Node
		c.Walk(func(node, _ *Node) bool {
			if leaf == nil && node.Kind == NodeLeaf {
				leaf = node
			}
			return leaf == nil
		})
		if leaf == nil {
			return true
		}
		leaf.Pred.Attr = "mutated-by-clone-test"
		mutatedInOriginal := false
		n.Walk(func(node, _ *Node) bool {
			if node.Kind == NodeLeaf && node.Pred.Attr == "mutated-by-clone-test" {
				mutatedInOriginal = true
			}
			return true
		})
		return !mutatedInOriginal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRenderFixpoint(t *testing.T) {
	prop := func(seed uint64) bool {
		r := dist.New(seed)
		n := randomTree(r, 3).Simplify()
		rendered := n.String()
		back, err := Parse(rendered)
		if err != nil {
			return false
		}
		return back.Equal(n) && back.String() == rendered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
