package subscription

import (
	"fmt"
	"strings"

	"dimprune/internal/event"
)

// NodeKind discriminates tree nodes.
type NodeKind uint8

// Node kinds. NodeInvalid is the zero value.
const (
	NodeInvalid NodeKind = iota
	NodeAnd
	NodeOr
	NodeLeaf
)

// String names the node kind for diagnostics.
func (k NodeKind) String() string {
	switch k {
	case NodeAnd:
		return "and"
	case NodeOr:
		return "or"
	case NodeLeaf:
		return "leaf"
	default:
		return "invalid"
	}
}

// Node is a subscription tree node: an AND/OR over children, or a predicate
// leaf. Trees are in negation normal form (see the package comment).
type Node struct {
	Kind     NodeKind
	Children []*Node   // NodeAnd/NodeOr only
	Pred     Predicate // NodeLeaf only
}

// Leaf returns a predicate leaf node.
func Leaf(p Predicate) *Node { return &Node{Kind: NodeLeaf, Pred: p} }

// And returns a conjunction node over the given children.
func And(children ...*Node) *Node { return &Node{Kind: NodeAnd, Children: children} }

// Or returns a disjunction node over the given children.
func Or(children ...*Node) *Node { return &Node{Kind: NodeOr, Children: children} }

// Matches evaluates the tree against a message.
func (n *Node) Matches(m *event.Message) bool {
	switch n.Kind {
	case NodeLeaf:
		return n.Pred.Matches(m)
	case NodeAnd:
		for _, c := range n.Children {
			if !c.Matches(m) {
				return false
			}
		}
		return true
	case NodeOr:
		for _, c := range n.Children {
			if c.Matches(m) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// PMin returns the minimal number of fulfilled predicates required for the
// tree to evaluate to true — the pmin parameter of [2] that drives the
// throughput heuristic: sum over AND children, min over OR children, 1 for a
// leaf.
func (n *Node) PMin() int {
	switch n.Kind {
	case NodeLeaf:
		return 1
	case NodeAnd:
		sum := 0
		for _, c := range n.Children {
			sum += c.PMin()
		}
		return sum
	case NodeOr:
		min := 0
		for i, c := range n.Children {
			p := c.PMin()
			if i == 0 || p < min {
				min = p
			}
		}
		return min
	default:
		return 0
	}
}

// MemSize returns mem≈ of the subtree in bytes: a fixed per-node overhead
// (tree pointers and kind tag) plus the predicate payloads. This is the
// estimation of §3.2 — it counts only the subscription tree itself, not
// index structures, so the true memory effect of a pruning is at least this
// large.
func (n *Node) MemSize() int {
	const nodeOverhead = 16
	s := nodeOverhead
	if n.Kind == NodeLeaf {
		return s + n.Pred.MemSize()
	}
	for _, c := range n.Children {
		s += 8 + c.MemSize() // child pointer + child subtree
	}
	return s
}

// NumNodes counts the nodes of the subtree.
func (n *Node) NumNodes() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.NumNodes()
	}
	return c
}

// NumLeaves counts predicate leaves — the subscription's predicate count,
// which is also its number of predicate/subscription associations in the
// filtering engine (the paper's memory metric).
func (n *Node) NumLeaves() int {
	if n.Kind == NodeLeaf {
		return 1
	}
	c := 0
	for _, ch := range n.Children {
		c += ch.NumLeaves()
	}
	return c
}

// Leaves appends the subtree's predicates to dst and returns it.
func (n *Node) Leaves(dst []Predicate) []Predicate {
	if n.Kind == NodeLeaf {
		return append(dst, n.Pred)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Pred: n.Pred}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Walk visits the subtree pre-order, passing each node with its parent (nil
// for the root it was called on). Returning false from fn prunes descent
// into that node's children.
func (n *Node) Walk(fn func(node, parent *Node) bool) {
	n.walk(nil, fn)
}

func (n *Node) walk(parent *Node, fn func(node, parent *Node) bool) {
	if !fn(n, parent) {
		return
	}
	for _, c := range n.Children {
		c.walk(n, fn)
	}
}

// Validate checks structural well-formedness: known kinds, AND/OR nodes with
// at least two children, leaves with valid predicates and no children.
func (n *Node) Validate() error {
	switch n.Kind {
	case NodeLeaf:
		if len(n.Children) != 0 {
			return fmt.Errorf("subscription: leaf node with %d children", len(n.Children))
		}
		return n.Pred.Validate()
	case NodeAnd, NodeOr:
		if len(n.Children) < 2 {
			return fmt.Errorf("subscription: %s node with %d children (want >= 2)", n.Kind, len(n.Children))
		}
		for _, c := range n.Children {
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("subscription: invalid node kind %d", n.Kind)
	}
}

// Simplify returns a canonical equivalent of the subtree: single-child
// AND/OR nodes collapse into their child, and same-kind nested nodes are
// flattened (AND(a, AND(b, c)) becomes AND(a, b, c)). Simplify never returns
// nil for a non-nil receiver and does not modify the receiver.
func (n *Node) Simplify() *Node {
	if n.Kind == NodeLeaf {
		return &Node{Kind: NodeLeaf, Pred: n.Pred}
	}
	flat := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		sc := c.Simplify()
		if sc.Kind == n.Kind {
			flat = append(flat, sc.Children...)
		} else {
			flat = append(flat, sc)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Node{Kind: n.Kind, Children: flat}
}

// Equal reports structural equality of two subtrees, including child order.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || len(n.Children) != len(o.Children) {
		return false
	}
	if n.Kind == NodeLeaf {
		return n.Pred == o.Pred
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the subtree in the text-subscription syntax with explicit
// parentheses around nested Boolean groups.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, false)
	return b.String()
}

func (n *Node) render(b *strings.Builder, parenthesize bool) {
	if n.Kind == NodeLeaf {
		b.WriteString(n.Pred.String())
		return
	}
	sep := " and "
	if n.Kind == NodeOr {
		sep = " or "
	}
	if parenthesize {
		b.WriteByte('(')
	}
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(sep)
		}
		c.render(b, true)
	}
	if parenthesize {
		b.WriteByte(')')
	}
}

// Subscription is a registered Boolean filter expression: an identifier, the
// identity of the subscribing client, and the tree.
type Subscription struct {
	ID         uint64
	Subscriber string
	Root       *Node
}

// New builds a validated subscription. The tree is simplified into canonical
// form first, so callers may pass builder output directly.
func New(id uint64, subscriber string, root *Node) (*Subscription, error) {
	if root == nil {
		return nil, fmt.Errorf("subscription %d: nil tree", id)
	}
	s := &Subscription{ID: id, Subscriber: subscriber, Root: root.Simplify()}
	if err := s.Root.Validate(); err != nil {
		return nil, fmt.Errorf("subscription %d: %w", id, err)
	}
	return s, nil
}

// Matches evaluates the subscription against a message.
func (s *Subscription) Matches(m *event.Message) bool { return s.Root.Matches(m) }

// PMin returns the subscription's pmin (see Node.PMin).
func (s *Subscription) PMin() int { return s.Root.PMin() }

// MemSize returns mem≈ of the subscription in bytes.
func (s *Subscription) MemSize() int { return s.Root.MemSize() }

// NumLeaves returns the number of predicate leaves.
func (s *Subscription) NumLeaves() int { return s.Root.NumLeaves() }

// Clone deep-copies the subscription.
func (s *Subscription) Clone() *Subscription {
	return &Subscription{ID: s.ID, Subscriber: s.Subscriber, Root: s.Root.Clone()}
}

// String renders the subscription tree in text syntax.
func (s *Subscription) String() string { return s.Root.String() }
