package subscription

import "testing"

// FuzzParse feeds arbitrary text to the subscription parser: it must either
// return an error or a valid tree whose rendering round-trips. Run longer
// with: go test -fuzz=FuzzParse ./internal/subscription
func FuzzParse(f *testing.F) {
	seeds := []string{
		`price <= 20`,
		`a = 1 and b = 2 or not c = 3`,
		`(category = "scifi" or category = 'fantasy') and price <= 25.5`,
		`t prefix "The" and t suffix "end" and t contains "mid"`,
		`x exists`,
		`a = true and b = false and c = -17`,
		`not not not a >= 1e3`,
		`((((a = 1))))`,
		`a = "esc \" quote"`,
		`平仮名 = "unicode attr"`,
		``,
		`and and and`,
		`a = `,
		`a <=`,
		`!=`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		n, err := Parse(text)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but produced invalid tree: %v", text, err)
		}
		// Rendered form must re-parse to an equal tree.
		rendered := n.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", text, rendered, err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip changed tree for %q:\n%s\n%s", text, n, back)
		}
	})
}
