package wal

// The cursors file is the durable registry: one (name, acked) entry per
// registered durable subscription. It is tiny — registry size, not log
// size — so it is rewritten in full on every change and swapped in with
// an atomic rename; a crash mid-write leaves the previous version, which
// at worst replays a few extra records (at-least-once allows that). A
// trailing CRC over the whole body rejects a torn rename target on
// filesystems without atomic-rename guarantees.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// cursorsMagic versions the cursors-file encoding.
const cursorsMagic = uint32(0x64637231) // "dcr1"

// saveCursorsLocked rewrites the cursors file from the registry. Callers
// hold s.mu.
func (s *Store) saveCursorsLocked() error {
	names := make([]string, 0, len(s.durables))
	for name := range s.durables {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic bytes for identical registries
	buf := binary.BigEndian.AppendUint32(nil, cursorsMagic)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, s.durables[name].acked)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	path := filepath.Join(s.dir, cursorsName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: write cursors: %w", err)
	}
	if s.sync {
		if f, err := os.Open(tmp); err == nil {
			_ = f.Sync()
			_ = f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: swap cursors: %w", err)
	}
	for _, name := range names {
		d := s.durables[name]
		d.synced = d.acked
	}
	return nil
}

// loadCursors reads the registry back on Open. Acked positions beyond
// the recovered log tail (the tail was torn away, but the ack of a
// record implies it was delivered before the crash) clamp down to the
// tail — replay then restarts from what the log still has, which keeps
// the at-least-once side of the contract. Callers hold the write lock.
//
//dimlint:locked
func (s *Store) loadCursors() error {
	buf, err := os.ReadFile(filepath.Join(s.dir, cursorsName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: read cursors: %w", err)
	}
	if len(buf) < 4+crcLen {
		return errors.New("wal: cursors file truncated")
	}
	body, sum := buf[:len(buf)-crcLen], binary.LittleEndian.Uint32(buf[len(buf)-crcLen:])
	if crc32.Checksum(body, castagnoli) != sum {
		return errors.New("wal: cursors file CRC mismatch")
	}
	if binary.BigEndian.Uint32(body[:4]) != cursorsMagic {
		return errors.New("wal: cursors file bad magic")
	}
	rest := body[4:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return errors.New("wal: cursors file malformed")
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < nameLen {
			return errors.New("wal: cursors file malformed")
		}
		name := string(rest[n : n+int(nameLen)])
		rest = rest[n+int(nameLen):]
		acked, n := binary.Uvarint(rest)
		if n <= 0 {
			return errors.New("wal: cursors file malformed")
		}
		rest = rest[n:]
		if acked > s.lastSeq {
			acked = s.lastSeq
		}
		s.durables[name] = &durable{acked: acked, synced: acked}
	}
	return nil
}
