// Package wal implements the broker's durable plane: a segmented,
// append-only event log plus persistent per-subscription cursors, giving
// durable subscriptions at-least-once delivery across crashes.
//
// Layout. A Store owns one directory. Events live in segment files named
// by the sequence number of their first record (%016x.seg); a record is
//
//	uvarint(len(payload)) | payload | crc32c(payload), little-endian
//
// appended with a single positioned write, so a crash leaves at most one
// torn record at the tail of the last segment. Open scans that tail and
// truncates the first record whose length prefix, body, or CRC does not
// check out — the intact prefix is recovered, a corrupt event is never
// returned. Corruption anywhere before the tail is not a crash signature
// and fails Open loudly.
//
// Cursors. A durable subscription is a named cursor: the highest acked
// sequence number, persisted in the "cursors" file (rewritten atomically
// via rename on every registry change and every Ack). Attach returns a
// Cursor that replays every record after the acked position — on a fresh
// process that is exactly the redelivery of unacked records, which is why
// consumers must be idempotent (at-least-once: duplicates possible,
// losses not). Acks are cumulative: Ack(n) covers every record ≤ n.
//
// Retention. A sealed segment whose records are all acked by every
// registered durable (and passed by every attached cursor) is deleted.
// With no registered durables AppendMessage is a no-op, so a broker
// without durable subscribers pays nothing for having a WAL configured.
//
// Durability model. By default appends are not fsynced: the log survives
// process death (the page cache persists), which is the crash model of
// the kill/restart oracle. Options.Sync adds an fsync per append for
// machine-crash durability at a large throughput cost.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dimprune/internal/event"
	"dimprune/internal/wire"
)

// Errors of the durable plane.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("wal: store closed")
	// ErrDetached reports use of a cursor after Detach or Forget.
	ErrDetached = errors.New("wal: cursor detached")
	// ErrStopped reports a Next wait interrupted through its stop channel.
	ErrStopped = errors.New("wal: wait stopped")
	// ErrAttached reports a second concurrent Attach of the same durable.
	ErrAttached = errors.New("wal: durable already attached")
)

// DefaultSegmentBytes is the segment-rotation threshold used when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 1 << 20

const (
	segSuffix   = ".seg"
	cursorsName = "cursors"
	// crcLen is the per-record CRC32-Castagnoli suffix.
	crcLen = 4
	// maxRecordLen bounds a record against a corrupt length prefix: a
	// recovered prefix must never make Open or a reader allocate
	// gigabytes. Matches the wire layer's frame limit.
	maxRecordLen = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default DefaultSegmentBytes). Rotation granularity bounds how much
	// acked history retention can reclaim at once.
	SegmentBytes int64
	// Sync fsyncs every append. Off by default: process-kill durability
	// needs no fsync, and the tests and oracle run with it off (see the
	// package comment).
	Sync bool
}

// segment is one log file and its committed extent.
type segment struct {
	first uint64 // sequence of its first record
	last  uint64 // sequence of its last record; first-1 when empty
	size  int64  // committed bytes (readers never look past this)
	f     *os.File
	path  string
}

// Store is a segmented append-only log with named durable cursors. All
// methods are safe for concurrent use. One mutex serializes appends,
// reads, acks, and registry changes — the durable plane trades peak
// throughput for a persistence path that is easy to prove torn-write
// safe, and the data plane only enters it when durables are registered.
type Store struct {
	dir      string
	segBytes int64
	sync     bool

	mu       sync.Mutex
	segs     []*segment // ascending; the last one is active
	lastSeq  uint64
	durables map[string]*durable
	closed   bool
	scratch  []byte // append encoding buffer, reused under mu
}

// durable is one registered durable subscription.
type durable struct {
	acked    uint64  // highest acked sequence (cumulative)
	synced   uint64  // acked value last persisted to the cursors file
	attached *Cursor // nil while no consumer is attached
}

// Open opens (or creates) the store in opts.Dir, recovering from a torn
// tail if the previous process died mid-append.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{
		dir:      opts.Dir,
		segBytes: opts.SegmentBytes,
		sync:     opts.Sync,
		durables: make(map[string]*durable),
	}
	if s.segBytes <= 0 {
		s.segBytes = DefaultSegmentBytes
	}
	// The store is unshared until Open returns; the lock is for the
	// helpers' caller-holds-the-lock contract, not for contention.
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	if err := s.loadCursors(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// recover scans the segment files: every segment but the last must be
// fully intact; the last may carry a torn tail, which is truncated away.
// Callers hold the write lock.
//
//dimlint:locked
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil || first == 0 {
			return fmt.Errorf("wal: alien segment file %q", name)
		}
		firsts = append(firsts, first)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for i, first := range firsts {
		path := filepath.Join(s.dir, segName(first))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		seg := &segment{first: first, last: first - 1, f: f, path: path}
		s.segs = append(s.segs, seg)
		final := i == len(firsts)-1
		count, good, err := scanSegment(f)
		if err != nil {
			if !final {
				// A bad record below the tail is not a torn write; treat
				// the log as damaged rather than silently dropping the
				// records behind it.
				return fmt.Errorf("wal: segment %s: %w", segName(first), err)
			}
			// Torn tail: keep the intact prefix, drop the rest.
			if err := f.Truncate(good); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", segName(first), err)
			}
		}
		seg.size = good
		if count > 0 {
			seg.last = first + count - 1
		}
		if i > 0 && s.segs[i-1].last+1 != first {
			return fmt.Errorf("wal: segment %s does not continue %s", segName(first), segName(s.segs[i-1].first))
		}
		s.lastSeq = seg.last
	}
	return nil
}

// scanSegment walks a segment's records, returning how many are intact
// and the byte offset just past the last intact one. A non-nil error
// means the scan stopped early at a torn or corrupt record.
func scanSegment(f *os.File) (count uint64, good int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := info.Size()
	var hdr [binary.MaxVarintLen64]byte
	var body []byte
	for off := int64(0); off < size; {
		n, _ := f.ReadAt(hdr[:min64(int64(len(hdr)), size-off)], off)
		plen, hl := binary.Uvarint(hdr[:n])
		if hl <= 0 {
			return count, off, fmt.Errorf("record %d: torn length prefix", count+1)
		}
		if plen > maxRecordLen {
			return count, off, fmt.Errorf("record %d: implausible length %d", count+1, plen)
		}
		total := int64(hl) + int64(plen) + crcLen
		if off+total > size {
			return count, off, fmt.Errorf("record %d: torn body", count+1)
		}
		if int64(len(body)) < int64(plen)+crcLen {
			body = make([]byte, plen+crcLen)
		}
		if _, err := f.ReadAt(body[:plen+crcLen], off+int64(hl)); err != nil {
			return count, off, err
		}
		sum := binary.LittleEndian.Uint32(body[plen : plen+crcLen])
		if crc32.Checksum(body[:plen], castagnoli) != sum {
			return count, off, fmt.Errorf("record %d: CRC mismatch", count+1)
		}
		off += total
		count++
	}
	return count, size, nil
}

func segName(first uint64) string { return fmt.Sprintf("%016x%s", first, segSuffix) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Append writes one record and returns its sequence number (the first
// record of a store is sequence 1).
func (s *Store) Append(payload []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.appendLocked(payload)
}

// AppendMessage logs one published event in the wire encoding. It is the
// broker data plane's entry point and is gated on the durable registry:
// with no durable registered there is nothing to replay, so nothing is
// written and the returned sequence is 0.
func (s *Store) AppendMessage(m *event.Message) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if len(s.durables) == 0 {
		return 0, nil
	}
	s.scratch = wire.AppendMessage(s.scratch[:0], m)
	return s.appendLocked(s.scratch)
}

// appendLocked writes one record to the active segment; callers hold the
// write lock.
//
//dimlint:locked
func (s *Store) appendLocked(payload []byte) (uint64, error) {
	seg, err := s.activeLocked()
	if err != nil {
		return 0, err
	}
	var hdr [binary.MaxVarintLen64]byte
	hl := binary.PutUvarint(hdr[:], uint64(len(payload)))
	rec := make([]byte, 0, hl+len(payload)+crcLen)
	rec = append(rec, hdr[:hl]...)
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	// One positioned write: a crash tears at most this record, which
	// recovery truncates away.
	if _, err := seg.f.WriteAt(rec, seg.size); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if s.sync {
		if err := seg.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	seg.size += int64(len(rec))
	s.lastSeq++
	seg.last = s.lastSeq
	// Wake attached cursors waiting for this record.
	for _, d := range s.durables {
		if c := d.attached; c != nil {
			select {
			case c.poke <- struct{}{}:
			default:
			}
		}
	}
	return s.lastSeq, nil
}

// activeLocked returns the segment to append to, creating the first one
// or rotating a full one. Callers hold the write lock.
//
//dimlint:locked
func (s *Store) activeLocked() (*segment, error) {
	if n := len(s.segs); n > 0 && s.segs[n-1].size < s.segBytes {
		return s.segs[n-1], nil
	}
	first := s.lastSeq + 1
	path := filepath.Join(s.dir, segName(first))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: new segment: %w", err)
	}
	seg := &segment{first: first, last: first - 1, f: f, path: path}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// LastSeq returns the sequence number of the newest record (0 when the
// log has never been appended to).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// HasDurables reports whether any durable subscription is registered.
func (s *Store) HasDurables() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.durables) > 0
}

// Names returns the registered durable names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.durables))
	for name := range s.durables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Acked returns a durable's highest acked sequence and whether the name
// is registered.
func (s *Store) Acked(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.durables[name]
	if !ok {
		return 0, false
	}
	return d.acked, true
}

// Attach registers (or reattaches) the named durable and returns its
// replay cursor, positioned after the acked sequence. A name seen for the
// first time starts at the log's current tail — durability begins at
// registration — and is persisted immediately so the registration itself
// survives a crash. Only one cursor per name may be attached at a time.
func (s *Store) Attach(name string) (*Cursor, error) {
	if name == "" {
		return nil, errors.New("wal: empty durable name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	d := s.durables[name]
	if d == nil {
		d = &durable{acked: s.lastSeq, synced: s.lastSeq}
		s.durables[name] = d
		if err := s.saveCursorsLocked(); err != nil {
			delete(s.durables, name)
			return nil, err
		}
	} else if d.attached != nil {
		return nil, ErrAttached
	}
	c := &Cursor{s: s, name: name, next: d.acked + 1, poke: make(chan struct{}, 1)}
	d.attached = c
	return c, nil
}

// Forget removes a durable registration: its cursor (if attached)
// detaches, its acked position is dropped from the cursors file, and
// retention may reclaim the segments it was holding.
func (s *Store) Forget(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	d := s.durables[name]
	if d == nil {
		return fmt.Errorf("wal: unknown durable %q", name)
	}
	if c := d.attached; c != nil {
		c.detached = true
		select {
		case c.poke <- struct{}{}:
		default:
		}
	}
	delete(s.durables, name)
	if err := s.saveCursorsLocked(); err != nil {
		return err
	}
	s.retainLocked()
	return nil
}

// Close closes the segment files and wakes every waiting cursor. Acked
// positions not yet persisted (Skip advances) are flushed first.
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	for _, d := range s.durables {
		if d.acked != d.synced {
			err = s.saveCursorsLocked()
			break
		}
	}
	s.closeLocked()
	return err
}

// Crash closes the store the way a dying process would: nothing unsynced
// is flushed, so the next Open sees exactly what a kill at this moment
// would leave on disk. It exists for the crash-restart oracles; a clean
// shutdown uses Close.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closeLocked()
	}
}

// closeLocked marks the store closed, closes the files, and pokes every
// attached cursor awake; callers hold the write lock.
//
//dimlint:locked
func (s *Store) closeLocked() {
	s.closed = true
	s.closeFiles()
	for _, d := range s.durables {
		if c := d.attached; c != nil {
			select {
			case c.poke <- struct{}{}:
			default:
			}
		}
	}
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			_ = seg.f.Close()
			seg.f = nil
		}
	}
}

// retainLocked deletes sealed segments every registered durable has fully
// acked and every attached cursor has read past. The active segment is
// never deleted. Callers hold the write lock.
//
//dimlint:locked
func (s *Store) retainLocked() {
	floor := s.lastSeq // with no durables, everything sealed is reclaimable
	for _, d := range s.durables {
		if d.acked < floor {
			floor = d.acked
		}
		if c := d.attached; c != nil && c.next-1 < floor {
			floor = c.next - 1
		}
	}
	for len(s.segs) > 1 && s.segs[0].last <= floor {
		seg := s.segs[0]
		_ = seg.f.Close()
		_ = os.Remove(seg.path)
		s.segs = s.segs[1:]
	}
}

// readRecordLocked returns the payload of record seq, maintaining the
// cursor's sequential-read position so steady-state reads cost O(1)
// record scans. The returned slice is the cursor's scratch: valid until
// its next read.
func (s *Store) readRecordLocked(seq uint64, c *Cursor) ([]byte, error) {
	var seg *segment
	for _, candidate := range s.segs {
		if candidate.first <= seq && seq <= candidate.last {
			seg = candidate
			break
		}
	}
	if seg == nil {
		return nil, fmt.Errorf("wal: record %d not retained", seq)
	}
	off, cur := int64(0), seg.first
	if c.posSeg == seg.first && c.posSeq <= seq && c.posSeq > seg.first {
		off, cur = c.posOff, c.posSeq
	}
	var hdr [binary.MaxVarintLen64]byte
	for {
		n, _ := seg.f.ReadAt(hdr[:min64(int64(len(hdr)), seg.size-off)], off)
		plen, hl := binary.Uvarint(hdr[:n])
		if hl <= 0 || off+int64(hl)+int64(plen)+crcLen > seg.size {
			// Unreachable after a clean recovery; corruption below the
			// committed extent means the file changed under us.
			return nil, fmt.Errorf("wal: record %d unreadable", cur)
		}
		if cur == seq {
			if int64(cap(c.buf)) < int64(plen) {
				c.buf = make([]byte, plen)
			}
			buf := c.buf[:plen]
			if _, err := seg.f.ReadAt(buf, off+int64(hl)); err != nil {
				return nil, fmt.Errorf("wal: read record %d: %w", seq, err)
			}
			c.posSeg, c.posSeq, c.posOff = seg.first, seq+1, off+int64(hl)+int64(plen)+crcLen
			return buf, nil
		}
		off += int64(hl) + int64(plen) + crcLen
		cur++
	}
}

// Cursor is one attached durable consumer: a sequential reader over the
// log from its acked position, plus the ack side of the contract. Next
// and the ack methods may be called from different goroutines; a Cursor
// is otherwise not safe for concurrent Next calls.
type Cursor struct {
	s    *Store
	name string
	next uint64
	poke chan struct{}

	// detached is written under s.mu by Forget/Detach and read under
	// s.mu by Next/Ack.
	detached bool

	// Sequential read position cache and scratch, owned by Next.
	posSeg uint64
	posSeq uint64
	posOff int64
	buf    []byte
}

// Name returns the durable name the cursor is attached under.
func (c *Cursor) Name() string { return c.name }

// Next returns the next record in sequence, blocking until one is
// appended, stop is closed (ErrStopped), the cursor detaches
// (ErrDetached), or the store closes (ErrClosed). The payload slice is
// reused by the following Next call; decode or copy before advancing.
func (c *Cursor) Next(stop <-chan struct{}) (uint64, []byte, error) {
	for {
		c.s.mu.Lock()
		switch {
		case c.s.closed:
			c.s.mu.Unlock()
			return 0, nil, ErrClosed
		case c.detached:
			c.s.mu.Unlock()
			return 0, nil, ErrDetached
		case c.next <= c.s.lastSeq:
			seq := c.next
			payload, err := c.s.readRecordLocked(seq, c)
			if err == nil {
				c.next++
			}
			c.s.mu.Unlock()
			return seq, payload, err
		}
		// Drain a stale poke so the wait below sees only future appends.
		select {
		case <-c.poke:
		default:
		}
		c.s.mu.Unlock()
		select {
		case <-c.poke:
		case <-stop:
			return 0, nil, ErrStopped
		}
	}
}

// Ack marks every record up to and including seq as delivered, persists
// the position, and lets retention reclaim fully acked segments. Acks
// are cumulative and monotone: a seq at or below the current position is
// a no-op.
func (c *Cursor) Ack(seq uint64) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.s.closed {
		return ErrClosed
	}
	if c.detached {
		return ErrDetached
	}
	d := c.s.durables[c.name]
	if seq <= d.acked {
		return nil
	}
	d.acked = seq
	if err := c.s.saveCursorsLocked(); err != nil {
		return err
	}
	c.s.retainLocked()
	return nil
}

// Skip advances the ack position over a record that needs no delivery
// (e.g. one that does not match the durable's subscription) — but only
// when it is contiguous with the acked prefix, so it can never cover a
// delivered-but-unacked record. The advance is deliberately not
// persisted: after a crash the replay re-skips, which is cheaper than a
// cursors-file write per non-matching event.
func (c *Cursor) Skip(seq uint64) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.s.closed || c.detached {
		return
	}
	d := c.s.durables[c.name]
	if seq == d.acked+1 {
		d.acked = seq
		c.s.retainLocked()
	}
}

// Detach releases the attachment so the name can be attached again (by a
// reconnecting consumer, or after a restart). The durable registration
// and its acked position survive; a blocked Next returns ErrDetached.
func (c *Cursor) Detach() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.detached {
		return
	}
	c.detached = true
	if d := c.s.durables[c.name]; d != nil && d.attached == c {
		d.attached = nil
	}
	select {
	case c.poke <- struct{}{}:
	default:
	}
}
