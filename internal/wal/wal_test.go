package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/wire"
)

// fsync stays off in tests by default so tier-1 runs fast; set
// DIMPRUNE_WAL_SYNC=1 (the CI crash-recovery job does) to run the same
// suite with an fsync per append.
func testSync() bool { return os.Getenv("DIMPRUNE_WAL_SYNC") == "1" }

func openTest(t *testing.T, dir string, segBytes int64) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, SegmentBytes: segBytes, Sync: testSync()})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func appendN(t *testing.T, s *Store, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		seq, err := s.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
}

// drain reads records until the cursor would block, returning them.
func drain(t *testing.T, c *Cursor, want int) [][]byte {
	t.Helper()
	var got [][]byte
	stop := make(chan struct{})
	close(stop) // Next must not block: everything we want is appended
	for len(got) < want {
		_, payload, err := c.Next(stop)
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(got), err)
		}
		got = append(got, append([]byte(nil), payload...))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 0)
	defer s.Close()
	c, err := s.Attach("sub")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	appendN(t, s, 1, 50)
	got := drain(t, c, 50)
	for i, payload := range got {
		if want := fmt.Sprintf("record-%04d", i+1); string(payload) != want {
			t.Fatalf("record %d = %q, want %q", i+1, payload, want)
		}
	}
}

func TestCursorResumesFromAck(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 0)
	c, err := s.Attach("sub")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	appendN(t, s, 1, 20)
	drain(t, c, 12)
	if err := c.Ack(12); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	s.Close()

	// Reopen: the registration and position must survive, and replay must
	// start exactly after the ack — records 13..20, nothing acked again.
	s = openTest(t, dir, 0)
	defer s.Close()
	if acked, ok := s.Acked("sub"); !ok || acked != 12 {
		t.Fatalf("Acked = %d, %v; want 12, true", acked, ok)
	}
	c, err = s.Attach("sub")
	if err != nil {
		t.Fatalf("re-Attach: %v", err)
	}
	got := drain(t, c, 8)
	if string(got[0]) != "record-0013" || string(got[7]) != "record-0020" {
		t.Fatalf("replay window = %q .. %q, want 0013..0020", got[0], got[7])
	}
}

func TestUnackedRecordsRedeliver(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 0)
	c, _ := s.Attach("sub")
	appendN(t, s, 1, 10)
	drain(t, c, 10) // delivered but never acked
	c.Detach()

	// Reattach without restarting: everything replays again.
	c2, err := s.Attach("sub")
	if err != nil {
		t.Fatalf("re-Attach after Detach: %v", err)
	}
	got := drain(t, c2, 10)
	if string(got[0]) != "record-0001" {
		t.Fatalf("redelivery starts at %q, want record-0001", got[0])
	}
	s.Close()
}

func TestDoubleAttachRejected(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	defer s.Close()
	if _, err := s.Attach("sub"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := s.Attach("sub"); err != ErrAttached {
		t.Fatalf("second Attach err = %v, want ErrAttached", err)
	}
}

func TestNextBlocksUntilAppend(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	defer s.Close()
	c, _ := s.Attach("sub")
	stop := make(chan struct{})
	type result struct {
		seq     uint64
		payload string
		err     error
	}
	res := make(chan result, 1)
	go func() {
		seq, p, err := c.Next(stop)
		res <- result{seq, string(p), err}
	}()
	select {
	case r := <-res:
		t.Fatalf("Next returned %+v before any append", r)
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := s.Append([]byte("wakeup")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case r := <-res:
		if r.err != nil || r.seq != 1 || r.payload != "wakeup" {
			t.Fatalf("Next = %+v, want seq 1 payload wakeup", r)
		}
	case <-time.After(time.Second):
		t.Fatal("Next still blocked after append")
	}
}

func TestNextStopAndClose(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	c, _ := s.Attach("sub")
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() { _, _, err := c.Next(stop); errs <- err }()
	close(stop)
	if err := <-errs; err != ErrStopped {
		t.Fatalf("Next after stop = %v, want ErrStopped", err)
	}
	go func() { _, _, err := c.Next(make(chan struct{})); errs <- err }()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	if err := <-errs; err != ErrClosed {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}
}

func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record (11 bytes payload + header + CRC) seals
	// its segment, so rotation and retention churn constantly.
	s := openTest(t, dir, 16)
	c, _ := s.Attach("sub")
	appendN(t, s, 1, 40)
	if n := countSegs(t, dir); n < 30 {
		t.Fatalf("expected ~40 segments from 16-byte rotation, found %d", n)
	}
	drain(t, c, 40)
	if err := c.Ack(40); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if n := countSegs(t, dir); n != 1 {
		t.Fatalf("retention left %d segments, want only the active one", n)
	}
	// The retained tail must still replay correctly after reopen.
	s.Close()
	s = openTest(t, dir, 16)
	defer s.Close()
	appendN(t, s, 41, 45)
	c, err := s.Attach("sub")
	if err != nil {
		t.Fatalf("re-Attach: %v", err)
	}
	got := drain(t, c, 5)
	if string(got[0]) != "record-0041" {
		t.Fatalf("post-retention replay starts at %q, want record-0041", got[0])
	}
}

func TestRetentionWaitsForSlowestCursor(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 16)
	defer s.Close()
	fast, _ := s.Attach("fast")
	slow, _ := s.Attach("slow")
	appendN(t, s, 1, 20)
	drain(t, fast, 20)
	fast.Ack(20)
	if n := countSegs(t, dir); n < 15 {
		t.Fatalf("retention ran past the slow cursor: %d segments left", n)
	}
	drain(t, slow, 20)
	slow.Ack(20)
	if n := countSegs(t, dir); n != 1 {
		t.Fatalf("retention left %d segments after both acked, want 1", n)
	}
}

func TestForgetReleasesRetention(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 16)
	defer s.Close()
	done, _ := s.Attach("done")
	s.Attach("laggard")
	appendN(t, s, 1, 20)
	drain(t, done, 20)
	done.Ack(20)
	if err := s.Forget("laggard"); err != nil {
		t.Fatalf("Forget: %v", err)
	}
	if n := countSegs(t, dir); n != 1 {
		t.Fatalf("retention left %d segments after Forget, want 1", n)
	}
	if _, ok := s.Acked("laggard"); ok {
		t.Fatal("forgotten durable still registered")
	}
}

func TestSkipAdvancesOnlyContiguously(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	defer s.Close()
	c, _ := s.Attach("sub")
	appendN(t, s, 1, 5)
	// Contiguous skips advance the position…
	c.Skip(1)
	c.Skip(2)
	if acked, _ := s.Acked("sub"); acked != 2 {
		t.Fatalf("acked after contiguous skips = %d, want 2", acked)
	}
	// …a gapped skip must not: seq 4 would cover the undelivered seq 3.
	c.Skip(4)
	if acked, _ := s.Acked("sub"); acked != 2 {
		t.Fatalf("acked after gapped skip = %d, want still 2", acked)
	}
}

func TestAppendMessageGatedOnDurables(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	defer s.Close()
	m, err := event.NewMessage(7, event.Attr{Name: "price", Value: event.Int(42)})
	if err != nil {
		t.Fatalf("NewMessage: %v", err)
	}
	// No durables: the data plane writes nothing.
	if seq, err := s.AppendMessage(m); err != nil || seq != 0 {
		t.Fatalf("gated AppendMessage = %d, %v; want 0, nil", seq, err)
	}
	if s.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d after gated append, want 0", s.LastSeq())
	}
	c, _ := s.Attach("sub")
	seq, err := s.AppendMessage(m)
	if err != nil || seq != 1 {
		t.Fatalf("AppendMessage = %d, %v; want 1, nil", seq, err)
	}
	_, payload, err := c.Next(nil)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	dec, _, err := wire.DecodeMessage(payload)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if dec.ID != 7 || len(dec.Attrs) != 1 || dec.Attrs[0].Name != "price" {
		t.Fatalf("round-tripped message = %+v", dec)
	}
}

// TestTornTailRecoveryEveryByte is the satellite-4 sweep: for every
// possible torn-write length of the final record — from zero bytes of it
// written through all-but-one — reopening the store must recover exactly
// the intact prefix, never surface a corrupt record, and accept appends
// that continue the sequence.
func TestTornTailRecoveryEveryByte(t *testing.T) {
	// Build a reference log once to learn the final record's extent. The
	// durable registers before the appends — a fresh name starts at the
	// tail, so registering after the fact would give an empty replay.
	base := t.TempDir()
	s := openTest(t, base, 0)
	if _, err := s.Attach("sub"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	appendN(t, s, 1, 5)
	s.Close()
	segPath := filepath.Join(base, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	cursors, err := os.ReadFile(filepath.Join(base, cursorsName))
	if err != nil {
		t.Fatalf("read cursors: %v", err)
	}
	// Record 5's start offset: scan 4 records' framing.
	recLen := int64(len("record-0001")) + 1 + crcLen // uvarint(11) is 1 byte
	lastStart := 4 * recLen
	if int64(len(full)) != 5*recLen {
		t.Fatalf("segment is %d bytes, want %d", len(full), 5*recLen)
	}

	for cut := lastStart; cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		if err := os.WriteFile(filepath.Join(dir, cursorsName), cursors, 0o644); err != nil {
			t.Fatalf("cut %d: write cursors: %v", cut, err)
		}
		s, err := Open(Options{Dir: dir, Sync: testSync()})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if s.LastSeq() != 4 {
			t.Fatalf("cut %d: recovered LastSeq = %d, want 4", cut, s.LastSeq())
		}
		c, err := s.Attach("sub")
		if err != nil {
			t.Fatalf("cut %d: Attach: %v", cut, err)
		}
		// The torn record is gone; the next append continues the sequence.
		if seq, err := s.Append([]byte("record-0005")); err != nil || seq != 5 {
			t.Fatalf("cut %d: continue append = %d, %v", cut, seq, err)
		}
		got := drain(t, c, 5)
		for i, payload := range got {
			if want := fmt.Sprintf("record-%04d", i+1); string(payload) != want {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i+1, payload, want)
			}
		}
		s.Close()
	}
}

// TestTornTailMidLog: the torn record may start in the final segment while
// earlier segments are sealed — only the final segment is truncated.
func TestTornTailAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 16) // one record per segment
	if _, err := s.Attach("sub"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	appendN(t, s, 1, 3)
	s.Close()
	// Tear the last segment (record 3) in half.
	segPath := filepath.Join(dir, segName(3))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(segPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}
	s = openTest(t, dir, 16)
	defer s.Close()
	if s.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", s.LastSeq())
	}
	c, _ := s.Attach("sub")
	appendN(t, s, 3, 3)
	got := drain(t, c, 3)
	if string(got[2]) != "record-0003" {
		t.Fatalf("record 3 = %q", got[2])
	}
}

// TestCorruptionBelowTailFailsOpen: a CRC flip in a sealed (non-final)
// segment is damage, not a crash signature — Open must refuse rather than
// silently drop records.
func TestCorruptionBelowTailFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 16)
	appendN(t, s, 1, 3)
	s.Close()
	segPath := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(segPath, buf, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if _, err := Open(Options{Dir: dir, Sync: testSync()}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

// TestCorruptTailCRCTruncated: a bit flip inside the final record reads
// as a torn write; the record is dropped, never returned corrupt.
func TestCorruptTailCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 0)
	if _, err := s.Attach("sub"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	appendN(t, s, 1, 3)
	s.Close()
	segPath := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	buf[len(buf)-2] ^= 0xff // inside record 3's CRC
	if err := os.WriteFile(segPath, buf, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	s = openTest(t, dir, 0)
	defer s.Close()
	if s.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", s.LastSeq())
	}
	c, _ := s.Attach("sub")
	got := drain(t, c, 2)
	if !bytes.Equal(got[1], []byte("record-0002")) {
		t.Fatalf("record 2 = %q", got[1])
	}
}

// TestAckBeyondTornTailClamps: the consumer acked record 5, the crash tore
// records 4-5 away. The clamp restarts replay from the surviving tail —
// duplicates, not losses.
func TestAckBeyondTornTailClamps(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 0)
	c, _ := s.Attach("sub")
	appendN(t, s, 1, 5)
	drain(t, c, 5)
	if err := c.Ack(5); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	s.Close()
	segPath := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	recLen := len(full) / 5
	if err := os.WriteFile(segPath, full[:3*recLen], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}
	s = openTest(t, dir, 0)
	defer s.Close()
	if acked, _ := s.Acked("sub"); acked != 3 {
		t.Fatalf("clamped ack = %d, want 3", acked)
	}
	c, _ = s.Attach("sub")
	appendN(t, s, 4, 4)
	got := drain(t, c, 1)
	if string(got[0]) != "record-0004" {
		t.Fatalf("post-clamp replay = %q", got[0])
	}
}

func TestFreshDurableStartsAtTail(t *testing.T) {
	s := openTest(t, t.TempDir(), 0)
	defer s.Close()
	appendN(t, s, 1, 10)
	c, _ := s.Attach("late")
	appendN(t, s, 11, 12)
	got := drain(t, c, 2)
	if string(got[0]) != "record-0011" {
		t.Fatalf("late durable saw %q, want record-0011 (durability begins at registration)", got[0])
	}
}

func countSegs(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return len(matches)
}
