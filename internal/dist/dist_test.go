package dist

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	if New(1).Float64() == New(2).Float64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestSplitIndependence(t *testing.T) {
	// A child stream must not change when the parent is consumed further
	// after the split.
	p1 := New(7)
	c1 := p1.Split()
	want := make([]float64, 100)
	for i := range want {
		want[i] = c1.Float64()
	}

	p2 := New(7)
	c2 := p2.Split()
	for i := 0; i < 50; i++ {
		p2.Float64() // consume the parent; the child must be unaffected
	}
	for i := range want {
		if got := c2.Float64(); got != want[i] {
			t.Fatalf("child stream perturbed by parent consumption at draw %d", i)
		}
	}
}

func TestRanges(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) out of range: %d", n)
		}
		if n := r.IntRange(2, 4); n < 2 || n > 4 {
			t.Fatalf("IntRange(2,4) out of range: %d", n)
		}
		if f := r.Range(-1, 1); f < -1 || f >= 1 {
			t.Fatalf("Range(-1,1) out of range: %v", f)
		}
		if f := r.Exponential(18, 400); f < 0 || f > 400 {
			t.Fatalf("Exponential(18,400) out of range: %v", f)
		}
		if f := r.Normal(3.4, 1.2, 0, 5); f < 0 || f > 5 {
			t.Fatalf("Normal out of [0,5]: %v", f)
		}
	}
}

func TestBoolBias(t *testing.T) {
	r := New(11)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency %v, want ~0.25", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestZipfErrors(t *testing.T) {
	r := New(1)
	for _, skew := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewZipf(r, skew, 10); err == nil {
			t.Fatalf("NewZipf accepted bad skew %v", skew)
		}
	}
	if _, err := NewZipf(r, 1, 0); err == nil {
		t.Fatal("NewZipf accepted n=0")
	}
}

func TestZipfShape(t *testing.T) {
	r := New(5)
	z, err := NewZipf(r, 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	const trials = 200000
	for i := 0; i < trials; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("Draw out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[9] || counts[9] <= counts[99] {
		t.Fatalf("Zipf mass not decreasing: head=%d mid=%d tail=%d",
			counts[0], counts[9], counts[99])
	}
	// Rank 0 of a skew-1 Zipf over 100 ranks holds ~1/H(100) ≈ 19% of the mass.
	head := float64(counts[0]) / trials
	if head < 0.15 || head > 0.25 {
		t.Fatalf("Zipf head mass %v, want ~0.19", head)
	}

	// Skew 0 must degenerate to uniform.
	u, err := NewZipf(New(6), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	uc := make([]int, 4)
	for i := 0; i < 40000; i++ {
		uc[u.Draw()]++
	}
	for i, c := range uc {
		if c < 9000 || c > 11000 {
			t.Fatalf("skew-0 zipf not uniform: rank %d got %d/40000", i, c)
		}
	}
}
