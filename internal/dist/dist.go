// Package dist provides the deterministic random streams the workload
// generators and tests are built on: a seedable RNG with convenience
// samplers (uniform ranges, truncated exponential and normal draws,
// biased coins) and a Zipf sampler over integer ranks.
//
// Determinism contract: the same seed yields the same sequence on every
// platform and Go release (the generator is a fixed PCG, not math/rand's
// unspecified global source), and Split derives statistically independent
// child streams so consuming more of one stream never perturbs another.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is one deterministic random stream. It is not safe for concurrent
// use; give each goroutine its own stream via Split.
type RNG struct {
	src *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *RNG {
	// The two PCG seed words are decorrelated with splitmix64-style
	// constants so adjacent seeds do not yield overlapping streams.
	return &RNG{src: rand.New(rand.NewPCG(seed, seed*0x9e3779b97f4a7c15+0xda3e39cb94b95bdb))}
}

// Split derives an independent child stream from r, advancing r by two
// draws. Splitting the same stream repeatedly yields distinct children.
func (r *RNG) Split() *RNG {
	return &RNG{src: rand.New(rand.NewPCG(r.src.Uint64(), r.src.Uint64()))}
}

// Float64 returns a uniform draw from [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform draw from [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int { return r.src.IntN(n) }

// IntRange returns a uniform draw from the inclusive range [lo, hi].
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.src.IntN(hi-lo+1)
}

// Range returns a uniform draw from [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + r.src.Float64()*(hi-lo)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Weighted returns an index into weights drawn with probability
// proportional to its weight, consuming exactly one uniform draw. It
// panics when weights is empty; non-positive weights are never chosen
// (unless all mass is non-positive, in which case the last index wins).
func (r *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Exponential returns an exponential draw with the given mean, capped at
// max — the long-tailed shape of prices and bid counts, with the tail
// truncated so a single draw cannot dominate a workload.
func (r *RNG) Exponential(mean, max float64) float64 {
	x := r.src.ExpFloat64() * mean
	if x > max {
		return max
	}
	return x
}

// Normal returns a normal draw with the given mean and standard deviation,
// clamped to [lo, hi].
func (r *RNG) Normal(mean, stddev, lo, hi float64) float64 {
	x := r.src.NormFloat64()*stddev + mean
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^skew: rank 0 is the most popular. skew 0 degenerates to the
// uniform distribution; larger skews concentrate mass on the head.
type Zipf struct {
	r   *RNG
	cum []float64 // cumulative normalized weights, cum[n-1] == 1
}

// NewZipf builds a Zipf sampler over n ranks drawing from r. The skew must
// be finite and non-negative and n must be positive.
func NewZipf(r *RNG, skew float64, n int) (*Zipf, error) {
	if math.IsNaN(skew) || math.IsInf(skew, 0) || skew < 0 {
		return nil, fmt.Errorf("dist: bad zipf skew %v (want finite, >= 0)", skew)
	}
	if n < 1 {
		return nil, fmt.Errorf("dist: zipf needs at least one rank, got %d", n)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding drift at the top
	return &Zipf{r: r, cum: cum}, nil
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	return sort.SearchFloat64s(z.cum, u)
}
