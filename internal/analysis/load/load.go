// Package load type-checks package patterns for the dimlint standalone
// driver. It shells out to `go list -export -deps -json` — the module-aware
// resolver the toolchain already ships — and imports dependencies from
// their compiler export data via go/importer's gc lookup hook, so whole
// trees load in seconds without re-type-checking the world from source and
// without any dependency beyond the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"dimprune/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir and returns one
// type-checked Package per matched, non-standard-library package.
func Load(dir string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*analysis.Package
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: type checking: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &analysis.Package{Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}
