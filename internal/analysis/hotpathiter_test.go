package analysis_test

import (
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/analysistest"
)

// TestHotpathiter includes the reverted PR 6 shape — Phase 1 ranging over
// the negScan map — as its positive fixture.
func TestHotpathiter(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./hotpathiter", analysis.Hotpathiter)
}
