package analysis

import (
	"go/ast"
	"strings"
)

// Determinism checks the golden-seed contract of workload generator
// packages: a generator's event stream must be a pure function of its
// seed, so the cross-target oracles can replay it bit-for-bit. Inside a
// generator package (one that registers itself with the workload registry,
// or carries a //dimlint:generator mark), the analyzer forbids
//
//   - wall-clock reads: time.Now, time.Since, time.Until,
//   - the global math/rand source: any top-level rand function other than
//     the constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8, ...)
//     — streams must own a seeded *rand.Rand, and
//   - ranging over a map: iteration order would leak into the emitted
//     event order.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "check that workload generator packages derive everything from their seed: " +
		"no wall clock, no global rand source, no map-iteration order in the stream",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !isGeneratorPackage(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.Types[x.X].Type) {
					pass.Reportf(x.Pos(),
						"map iteration in a workload generator: runtime map order would leak into the event stream (collect keys and sort, or keep a dense slice)")
				}
			case *ast.CallExpr:
				checkDeterminismCall(pass, x)
			}
			return true
		})
	}
	return nil
}

// isGeneratorPackage reports whether the package is in determinism scope:
// it carries a //dimlint:generator mark, or it calls Register on the
// workload registry (how real scenario packages plug themselves in).
func isGeneratorPackage(pass *Pass) bool {
	if pass.Dirs.PkgHas("generator") {
		return true
	}
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Register" {
				return true
			}
			if strings.HasSuffix(PkgPathOf(pass.TypesInfo, sel), "internal/workload") {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// randConstructors are the top-level math/rand functions that build an
// owned source rather than touching the process-global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	path := PkgPathOf(pass.TypesInfo, sel)
	name := sel.Sel.Name
	switch path {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in a workload generator: the stream must be a pure function of its seed (derive timestamps from the event index)", name)
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[name] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s in a workload generator: streams own their RNGs — draw from a seeded *rand.Rand so replays are bit-identical", shortPkg(path), name)
	}
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		// math/rand/v2 reads better as rand/v2 than v2.
		if base := path[i+1:]; base == "v2" {
			return "rand/v2"
		}
		return path[i+1:]
	}
	return path
}
