package analysis_test

import (
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/analysistest"
)

func TestRefbalance(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./refbalance", analysis.Refbalance)
}
