// Package unit speaks cmd/go's vet unit-checker protocol, so dimlint can
// run as `go vet -vettool=$(command -v dimlint) ./...`. The go command
// drives the tool once per package: it writes a vet.cfg JSON file into the
// package's work directory describing the unit — source files, the import
// map after vendoring, and the export-data file for every dependency — and
// invokes the tool with that path as its sole positional argument. The
// protocol also probes the tool with -V=full (cache key) and -flags
// (flag discovery); cmd/dimlint answers those before delegating here.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"dimprune/internal/analysis"
)

// config mirrors the vetConfig JSON written by cmd/go (see
// cmd/go/internal/work.vetConfig). Unknown fields are ignored.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by the vet.cfg at cfgPath and returns
// the process exit code: 0 for success (including JSON mode, where
// diagnostics are data, not failure), 1 for driver errors, 2 when
// diagnostics were reported in plain mode.
func Run(cfgPath string, analyzers []*analysis.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dimlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.Compiler == "gccgo" {
		fmt.Fprintln(os.Stderr, "dimlint: gccgo export data is not supported")
		return 1
	}

	// cmd/go caches vet results keyed by the tool's buildID and the facts
	// file the tool writes. dimlint keeps no cross-package facts, so the
	// vetx output is an empty placeholder — written even in VetxOnly mode so
	// dependency passes succeed and the cache engages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Dependencies come from the export data cmd/go already compiled,
	// located through ImportMap (vendoring/module resolution has happened;
	// source import paths map to resolved ones) then PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	}

	info := analysis.NewInfo()
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect everything; Check returns the first
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dimlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.RunAnalyzers(&analysis.Package{
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
		return 1
	}

	if asJSON {
		WriteJSON(os.Stdout, map[string][]analysis.Diagnostic{cfg.ImportPath: diags})
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// jsonDiagnostic is the per-finding JSON shape, compatible with the
// x/tools unitchecker output that `go vet -json` consumers expect.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// WriteJSON emits diagnostics grouped by import path then analyzer:
//
//	{"pkg/path": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}
func WriteJSON(w io.Writer, byPkg map[string][]analysis.Diagnostic) {
	out := make(map[string]map[string][]jsonDiagnostic, len(byPkg))
	for pkg, diags := range byPkg {
		grouped := make(map[string][]jsonDiagnostic)
		for _, d := range diags {
			grouped[d.Analyzer] = append(grouped[d.Analyzer], jsonDiagnostic{
				Posn:    d.Pos.String(),
				Message: d.Message,
			})
		}
		out[pkg] = grouped
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(out) //nolint:errcheck // best-effort stdout
}
