// Package determreg carries no //dimlint:generator mark: determinism
// detects it as a generator package by its workload.Register call, the
// way real scenario packages (ticker, sensornet, auction) register.
package determreg

import (
	"time"

	"fixtures/internal/workload"
)

func init() {
	workload.Register(workload.Info{Name: "fixture"})
}

func emit() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now in a workload generator"
}
