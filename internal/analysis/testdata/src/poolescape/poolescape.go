// Package poolescape exercises the decode-copies-out contract: pooled
// buffers never outlive their pool window.
package poolescape

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 1024); return &b }}

type holder struct{ buf *[]byte }

var global *[]byte

// getBuf hands pooled buffers to callers by contract.
//
//dimlint:pooled
func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

func badReturn() *[]byte {
	b := bufPool.Get().(*[]byte)
	return b // want "poolescape: pooled buffer returned from a function not marked"
}

func badDirectReturn() any {
	return bufPool.Get() // want "poolescape: pooled buffer returned from a function not marked"
}

func accessorCallerBad() *[]byte {
	b := getBuf()
	return b // want "poolescape: pooled buffer returned from a function not marked"
}

func badFieldStore(h *holder) {
	b := bufPool.Get().(*[]byte)
	h.buf = b // want "poolescape: pooled buffer stored in h.buf"
	bufPool.Put(b)
}

func badGlobalStore() {
	b := bufPool.Get().(*[]byte)
	global = b // want "poolescape: pooled buffer stored in package-level variable global"
	bufPool.Put(b)
}

func badSend(ch chan *[]byte) {
	b := bufPool.Get().(*[]byte)
	ch <- b // want "poolescape: pooled buffer sent on a channel"
}

func badGoroutine() {
	b := bufPool.Get().(*[]byte)
	go func() {
		_ = (*b)[0] // want "poolescape: pooled buffer b captured by a goroutine with no join"
	}()
}

// goodJoinedFanOut is the engine's sharded-match shape: workers borrow the
// scratch but the WaitGroup joins them before it returns to the pool.
func goodJoinedFanOut() {
	b := bufPool.Get().(*[]byte)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = (*b)[0]
	}()
	wg.Wait()
	bufPool.Put(b)
}

func badUseAfterPut() {
	b := bufPool.Get().(*[]byte)
	(*b)[0] = 1
	bufPool.Put(b)
	_ = (*b)[0] // want "poolescape: use of pooled buffer b after it was returned to its pool"
}

// goodBorrow: passing a pooled buffer to an ordinary call is fine — the
// callee returns before the buffer can recycle.
func goodBorrow() {
	b := bufPool.Get().(*[]byte)
	fill(b)
	bufPool.Put(b)
}

func fill(b *[]byte) { (*b)[0] = 1 }

// Frame is refcounted (Retain/Release): its lifetime belongs to
// refbalance, so poolescape exempts it even when pooled.
type Frame struct{ n int }

func (f *Frame) Retain(n int32) {}
func (f *Frame) Release()       {}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

func frameOK() *Frame {
	f := framePool.Get().(*Frame)
	f.n = 0
	return f
}
