// Package hotpathiter reproduces the negative-dimension list bug class:
// before the dense negList slice existed, the match hot path ranged over
// the negScan map on every event — nondeterministic order and a bucket
// walk per event. matchNegMap is that reverted shape; matchNegDense is
// the fix.
package hotpathiter

import (
	"fmt"
	"strconv"
)

type engine struct {
	negScan map[int]int
	negList []int
}

// matchNegMap is the pre-fix Phase 1: walking the map per event.
//
//dimlint:hotpath
func (e *engine) matchNegMap(visit func(int)) {
	for id := range e.negScan { // want "hotpathiter: map iteration on the hot path"
		visit(id)
	}
}

// matchNegDense is the fixed Phase 1: the dense slice kept alongside the
// map.
//
//dimlint:hotpath
func (e *engine) matchNegDense(visit func(int)) {
	for _, id := range e.negList {
		visit(id)
	}
}

//dimlint:hotpath
func (e *engine) describe(id int) string {
	return fmt.Sprintf("sub-%d", id) // want "hotpathiter: fmt.Sprintf on the hot path"
}

// describeFast formats without reflection.
//
//dimlint:hotpath
func (e *engine) describeFast(id int) string {
	return "sub-" + strconv.Itoa(id)
}

// nestedLiteral: function literals inside a hotpath function inherit the
// restriction — they run on the same path.
//
//dimlint:hotpath
func (e *engine) nestedLiteral() func() {
	return func() {
		for range e.negScan { // want "hotpathiter: map iteration on the hot path"
		}
	}
}

// coldPath is unannotated: map iteration is fine off the hot path.
func (e *engine) coldPath() int {
	n := 0
	for range e.negScan {
		n++
	}
	return n
}
