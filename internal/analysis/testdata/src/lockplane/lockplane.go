// Package lockplane exercises the two-plane locking rules on a struct
// shaped like the broker: a guard RWMutex, a WaitGroup, and guarded state.
package lockplane

import "sync"

// S pairs a guard mutex with the state it protects.
type S struct {
	mu    sync.RWMutex
	wg    sync.WaitGroup
	m     map[int]int
	count int
}

func (s *S) badWrite() {
	s.count = 1 // want "lockplane: write to s.count without the write lock"
}

func (s *S) badReadLocked() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.count++ // want "lockplane: write to s.count under the read lock"
}

func (s *S) goodWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count = 2
	s.m[1] = 1
	delete(s.m, 1)
}

func (s *S) badDelete() {
	delete(s.m, 1) // want "lockplane: write to s.m without the write lock"
}

func (s *S) route() {
	s.mu.Lock() // want "lockplane: data-plane method takes the write lock on s.mu"
	s.mu.Unlock()
}

func (s *S) MatchEntriesAll() {
	s.mu.RLock()
	defer s.mu.RUnlock()
}

func (s *S) badAdd() {
	s.wg.Add(1) // want "lockplane: s.wg.Add without holding a lock on s"
	go func() { s.wg.Done() }()
}

func (s *S) goodAdd() {
	s.mu.Lock()
	s.wg.Add(1)
	s.mu.Unlock()
	go func() { s.wg.Done() }()
}

// applyTransitions mutates guarded state; callers hold the write lock.
//
//dimlint:locked
func (s *S) applyTransitions() {
	s.count++
	s.helperLocked()
}

// helperLocked also relies on the caller's lock.
//
//dimlint:locked
func (s *S) helperLocked() {
	s.m[2] = 2
}

func (s *S) badCaller() {
	s.applyTransitions() // want "lockplane: call to //dimlint:locked function applyTransitions without a write lock"
}

func (s *S) goodCaller() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyTransitions()
}

// trySample is the contention-sampling pattern: skip under contention,
// hold the lock on the fall-through path.
func (s *S) trySample() {
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	s.count++
}

func (s *S) suppressed() {
	s.count = 9 //dimlint:ignore lockplane single-goroutine construction phase, no concurrent readers yet
}

func (s *S) badIgnore() {
	s.count = 9 /* want "dimlint: dimlint:ignore needs an analyzer name and a non-empty reason" "lockplane: write to s.count without the write lock" */ //dimlint:ignore lockplane
}

// aux carries only a descriptively-named auxiliary mutex: it guards one
// sub-concern, so the mutation rule does not apply.
type aux struct {
	sortMu sync.Mutex
	items  []int
}

func (a *aux) add(v int) {
	a.items = append(a.items, v)
}
