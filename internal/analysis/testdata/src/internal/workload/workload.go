// Package workload mirrors the real registry's shape so fixtures can
// exercise the Register-based generator detection (determinism scopes by
// the "internal/workload" import-path suffix).
package workload

// Info describes one registered scenario.
type Info struct{ Name string }

// Register records a scenario.
func Register(info Info) {}
