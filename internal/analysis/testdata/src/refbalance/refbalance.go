// Package refbalance exercises the encode-once ownership rules on a type
// shaped like wire.EncodedFrame.
package refbalance

// Frame carries Retain/Release, so refbalance treats it as refcounted.
type Frame struct{ payload []byte }

func (f *Frame) Retain(n int32) {}
func (f *Frame) Release()       {}
func (f *Frame) Len() int       { return len(f.payload) }

func encode() *Frame { return &Frame{} }

func leak() {
	f := encode() // want "refbalance: refcounted frame acquired here is neither Released nor handed off"
	_ = f.Len()
}

func balanced() {
	f := encode()
	_ = f.Len()
	f.Release()
}

func handoffReturn() *Frame {
	f := encode()
	return f
}

func handoffArg() {
	f := encode()
	consume(f)
}

func consume(f *Frame) { f.Release() }

type box struct{ f *Frame }

func handoffComposite() box {
	f := encode()
	return box{f: f}
}

func handoffChannel(ch chan *Frame) {
	f := encode()
	ch <- f
}

func useAfterRelease() {
	f := encode()
	f.Release()
	_ = f.Len() // want "refbalance: use of frame f after Release"
}

func doubleRelease() {
	f := encode()
	f.Release()
	f.Release() // want "refbalance: frame f Released twice on this path"
}

func reassigned() {
	f := encode()
	f.Release()
	f = encode()
	_ = f.Len()
	f.Release()
}

func conditionalRelease(ok bool) {
	f := encode()
	if ok {
		f.Release()
		return
	}
	f.Release()
}

func retainUnbalanced() {
	f := encode()
	f.Retain(2) // want "refbalance: Retain on f in a function that never hands the frame off"
	f.Release()
}

// retainFanout is the encode-once shape: Retain references for other
// owners, then hand them off.
func retainFanout() {
	f := encode()
	f.Retain(1)
	consume(f)
	consume(f)
}
