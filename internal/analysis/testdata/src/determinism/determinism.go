// Package determinism exercises the golden-seed rules via the package
// mark (real generator packages are detected by their workload.Register
// call; see the determreg fixture).
//
//dimlint:generator
package determinism

import (
	"math/rand"
	"time"
)

type event struct{ key string }

func emitTimestamp() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now in a workload generator"
}

func emitElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "determinism: time.Since in a workload generator"
}

func emitGlobalRand() int {
	return rand.Intn(10) // want "determinism: global rand.Intn in a workload generator"
}

// ownedRand is the blessed shape: the stream owns a seeded source.
func ownedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "determinism: map iteration in a workload generator"
		keys = append(keys, k)
	}
	return keys
}

// sliceOrder is deterministic: dense slices iterate in index order.
func sliceOrder(evs []event) []string {
	var keys []string
	for _, e := range evs {
		keys = append(keys, e.key)
	}
	return keys
}
