package analysis_test

import (
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/analysistest"
)

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./poolescape", analysis.Poolescape)
}
