package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments understood by dimlint. All use Go's directive form
// (no space after //):
//
//	//dimlint:hotpath
//	    On a function declaration: the function is on the match hot path;
//	    the hotpathiter analyzer forbids map iteration and fmt calls in it
//	    (including function literals it contains).
//
//	//dimlint:locked
//	    On a function declaration: the method mutates lock-guarded state
//	    but relies on its caller holding the write lock. lockplane exempts
//	    the body from the lock-before-mutate rule and instead requires
//	    every caller to hold the lock (or be annotated itself).
//
//	//dimlint:pooled
//	    On a function declaration: the function is a pool accessor — it
//	    hands a pooled buffer to its caller by contract. poolescape allows
//	    its returns and instead treats its call results as pooled in every
//	    caller.
//
//	//dimlint:generator
//	    Anywhere in a file: marks the package as a workload generator for
//	    the determinism analyzer (real generator packages are detected by
//	    their workload.Register call; fixtures use the mark).
//
//	//dimlint:ignore <analyzer> <reason>
//	    Suppresses <analyzer>'s diagnostics on the same line and the line
//	    directly below (so the directive can trail the flagged statement
//	    or sit on its own line above it). <analyzer> may be "all". The
//	    reason is mandatory: an ignore without one is itself a
//	    diagnostic, reported unconditionally — CI stays red until every
//	    suppression says why.
const directivePrefix = "//dimlint:"

type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// Directives holds one package's parsed dimlint directives.
type Directives struct {
	ignores   []ignoreDirective
	funcMarks map[*ast.FuncDecl]map[string]bool
	pkgMarks  map[string]bool
	problems  []Diagnostic
}

// ParseDirectives extracts the dimlint directives from the files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		funcMarks: make(map[*ast.FuncDecl]map[string]bool),
		pkgMarks:  make(map[string]bool),
	}
	for _, f := range files {
		// Function marks come from doc comments so they unambiguously
		// attach to one declaration.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				switch kind, _ := parseDirective(c.Text); kind {
				case "hotpath", "locked", "pooled":
					marks := d.funcMarks[fd]
					if marks == nil {
						marks = make(map[string]bool)
						d.funcMarks[fd] = marks
					}
					marks[kind] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, rest := parseDirective(c.Text)
				pos := fset.Position(c.Pos())
				switch kind {
				case "":
					continue
				case "generator":
					d.pkgMarks["generator"] = true
				case "ignore":
					analyzer, reason, _ := strings.Cut(rest, " ")
					analyzer = strings.TrimSpace(analyzer)
					reason = strings.TrimSpace(reason)
					if analyzer == "" || reason == "" {
						d.problems = append(d.problems, Diagnostic{
							Analyzer: "dimlint",
							Pos:      pos,
							Message:  "dimlint:ignore needs an analyzer name and a non-empty reason (//dimlint:ignore <analyzer> <reason>)",
						})
						continue
					}
					d.ignores = append(d.ignores, ignoreDirective{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: analyzer,
						reason:   reason,
					})
				}
			}
		}
	}
	return d
}

// parseDirective splits a "//dimlint:kind rest" comment; kind is "" for
// non-directive comments.
func parseDirective(text string) (kind, rest string) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", ""
	}
	body := text[len(directivePrefix):]
	kind, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(kind), strings.TrimSpace(rest)
}

// FuncHas reports whether fd carries the given doc-comment mark
// ("hotpath", "locked", "pooled").
func (d *Directives) FuncHas(fd *ast.FuncDecl, mark string) bool {
	return fd != nil && d.funcMarks[fd][mark]
}

// PkgHas reports whether any file carries the given package-level mark
// ("generator").
func (d *Directives) PkgHas(mark string) bool { return d.pkgMarks[mark] }

// filter drops diagnostics covered by an ignore directive. A directive
// covers its own line and the next one, in its file, for its named
// analyzer (or "all"). The pseudo-analyzer "dimlint" (malformed
// directives) is never suppressible.
func (d *Directives) filter(diags []Diagnostic) []Diagnostic {
	if len(d.ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, diag := range diags {
		if diag.Analyzer != "dimlint" && d.suppressed(diag) {
			continue
		}
		kept = append(kept, diag)
	}
	return kept
}

func (d *Directives) suppressed(diag Diagnostic) bool {
	for _, ig := range d.ignores {
		if ig.file != diag.Pos.Filename {
			continue
		}
		if ig.analyzer != "all" && ig.analyzer != diag.Analyzer {
			continue
		}
		if diag.Pos.Line == ig.line || diag.Pos.Line == ig.line+1 {
			return true
		}
	}
	return false
}
