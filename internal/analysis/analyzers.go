package analysis

// All returns the dimlint analyzer suite in its canonical order. The order
// only affects presentation: diagnostics are sorted by position before
// reporting, so analyzers are listed here by the PR that established each
// invariant.
func All() []*Analyzer {
	return []*Analyzer{
		Refbalance,  // PR 4: encode-once frame ownership
		Lockplane,   // PR 3: two-plane locking discipline
		Poolescape,  // PR 4: decode-copies-out of pooled buffers
		Determinism, // PR 5: golden-seed workload streams
		Hotpathiter, // PR 6: dense-slice hot path, no fmt
	}
}
