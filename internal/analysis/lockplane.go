package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockplane checks the broker/transport two-plane locking discipline on
// every method of a struct that carries a guarding mutex field — a
// sync.RWMutex, or a sync.Mutex named "mu" (auxiliary mutexes with
// descriptive names guard sub-concerns, not the receiver's state, and are
// exempt):
//
//   - Mutations of receiver state (field assignment, map write, delete)
//     must happen while a write lock owned by the receiver is held — or the
//     method must be marked //dimlint:locked, which shifts the obligation
//     to its callers.
//   - Data-plane methods (route, MatchEntries*) must never take the write
//     lock: they run shared, and an exclusive acquisition there would
//     serialize the whole match path.
//   - WaitGroup.Add on a mutex-guarded struct's WaitGroup field must be
//     dominated by a lock acquisition on that same struct — the lock that
//     proves !closed, so a concurrent Shutdown's Wait can never observe a
//     zero counter a reservation is about to invalidate.
//   - A call to a //dimlint:locked function requires a write lock held at
//     the call site (or the caller being marked itself).
//
// Lock state is tracked lexically through each function body: branch
// bodies fork a copy of the held-set, and deferred unlocks keep the lock
// held to the end of the function. The tracker never assumes a lock from a
// conditional branch, so diagnostics are straight-line facts.
var Lockplane = &Analyzer{
	Name: "lockplane",
	Doc: "check the two-plane locking rules: receiver mutations under the write lock, " +
		"no write lock in data-plane methods, WaitGroup.Add dominated by the lock that proves !closed",
	Run: runLockplane,
}

// lockHeld maps a mutex expression key ("s.mu") to the strongest hold:
// 1 = read lock, 2 = write lock.
type lockHeld map[string]int

func (h lockHeld) clone() lockHeld {
	c := make(lockHeld, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// ownedLock reports the strongest lock in h whose key is a field of owner
// (e.g. owner "s" matches "s.mu").
func (h lockHeld) ownedLock(owner string) int {
	best := 0
	for k, v := range h {
		if strings.HasPrefix(k, owner+".") && v > best {
			best = v
		}
	}
	return best
}

type lockplaneChecker struct {
	pass *Pass
	// lockedFuncs holds the objects of //dimlint:locked functions, so call
	// sites can be checked against the held set.
	lockedFuncs map[types.Object]bool
	// inLocked is set while checking a //dimlint:locked function: its body
	// may call other locked functions freely (the lock obligation already
	// sits with its callers).
	inLocked bool
}

func runLockplane(pass *Pass) error {
	c := &lockplaneChecker{pass: pass, lockedFuncs: make(map[types.Object]bool)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !pass.Dirs.FuncHas(fd, "locked") {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				c.lockedFuncs[obj] = true
			}
		}
	}
	WalkFuncs(pass.Files, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		c.checkFunc(fd, body)
	})
	return nil
}

func (c *lockplaneChecker) checkFunc(fd *ast.FuncDecl, body *ast.BlockStmt) {
	recv := ""
	guarded := false // receiver type carries a guarding mutex field
	if id := ReceiverIdent(fd); id != nil {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			if named := NamedOf(obj.Type()); named != nil && hasGuardMutex(named) {
				recv = id.Name
				guarded = true
			}
		}
	}
	locked := c.pass.Dirs.FuncHas(fd, "locked")
	dataPlane := guarded && isDataPlaneName(fd.Name.Name)
	c.inLocked = locked
	c.checkStmts(body.List, make(lockHeld), recv, guarded && !locked, dataPlane)
	c.inLocked = false
}

// isDataPlaneName reports whether a method name belongs to the shared data
// plane, where only the read lock is permitted.
func isDataPlaneName(name string) bool {
	return name == "route" || strings.HasPrefix(name, "MatchEntries")
}

// hasGuardMutex reports whether named carries a mutex that guards the
// struct's state in the two-plane sense: an RWMutex field (the two-plane
// signature itself) or a mutex field named "mu" (the canonical guard
// name). Auxiliary mutexes with descriptive names — a sortMu serializing
// one lazy sort — guard a sub-concern, not the receiver's fields, and do
// not put the type under the mutation rule.
func hasGuardMutex(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if kind := MutexKind(f.Type()); kind == 2 || (kind == 1 && f.Name() == "mu") {
			return true
		}
	}
	return false
}

// checkStmts walks one statement list, threading the held-lock set through
// sequential statements and forking it into branches.
func (c *lockplaneChecker) checkStmts(list []ast.Stmt, held lockHeld, recv string, checkMutations, dataPlane bool) {
	for _, stmt := range list {
		c.checkStmt(stmt, held, recv, checkMutations, dataPlane)
	}
}

func (c *lockplaneChecker) checkStmt(stmt ast.Stmt, held lockHeld, recv string, checkMutations, dataPlane bool) {
	// Every expression in the statement (minus nested function literals,
	// which run at another time with their own state) is checked for
	// WaitGroup.Add, locked-function calls, and data-plane violations.
	c.scanExprs(stmt, held, recv, dataPlane)

	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, kind, isAcquire := c.lockOp(s.X); key != "" {
			if isAcquire {
				held[key] = kind
			} else {
				delete(held, key)
			}
		}
		// delete(recv.m, k) mutates receiver state like an assignment does.
		if checkMutations {
			if call, ok := s.X.(*ast.CallExpr); ok && len(call.Args) > 0 {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						c.checkMutationLHS(call.Args[0], call.Pos(), held, recv)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the body; a
		// deferred closure is a separate unit.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.checkStmts(fl.Body.List, make(lockHeld), recv, checkMutations, false)
		}
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.checkStmts(fl.Body.List, make(lockHeld), recv, checkMutations, false)
		}
	case *ast.AssignStmt:
		if checkMutations {
			c.checkMutation(s, held, recv)
		}
		// A closure assigned to a variable may run at any time; check its
		// body against an empty held-set so it cannot silently inherit the
		// statement's locks.
		for _, rhs := range s.Rhs {
			if fl, ok := rhs.(*ast.FuncLit); ok {
				c.checkStmts(fl.Body.List, make(lockHeld), recv, checkMutations, false)
			}
		}
	case *ast.IncDecStmt:
		if checkMutations {
			c.checkMutationLHS(s.X, s.Pos(), held, recv)
		}
	case *ast.BlockStmt:
		c.checkStmts(s.List, held, recv, checkMutations, dataPlane)
	case *ast.IfStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, held, recv, checkMutations, dataPlane)
		}
		// `if x.TryLock() { ... }` holds the lock inside the body;
		// `if !x.TryLock() { return }` (the contention-sampling pattern)
		// holds it for the rest of the enclosing list.
		key, kind, negated := c.tryLockCond(s.Cond)
		bodyHeld := held.clone()
		if key != "" && !negated {
			bodyHeld[key] = kind
		}
		c.checkStmts(s.Body.List, bodyHeld, recv, checkMutations, dataPlane)
		if s.Else != nil {
			c.checkStmt(s.Else, held.clone(), recv, checkMutations, dataPlane)
		}
		if key != "" && negated && terminates(s.Body) {
			held[key] = kind
		}
	case *ast.ForStmt:
		c.checkStmts(s.Body.List, held.clone(), recv, checkMutations, dataPlane)
	case *ast.RangeStmt:
		c.checkStmts(s.Body.List, held.clone(), recv, checkMutations, dataPlane)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.checkStmts(clause.Body, held.clone(), recv, checkMutations, dataPlane)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.checkStmts(clause.Body, held.clone(), recv, checkMutations, dataPlane)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				c.checkStmts(clause.Body, held.clone(), recv, checkMutations, dataPlane)
			}
		}
	case *ast.LabeledStmt:
		c.checkStmt(s.Stmt, held, recv, checkMutations, dataPlane)
	}
}

// lockOp classifies expr as a mutex operation: it returns the mutex key,
// the hold kind it establishes (2 for Lock, 1 for RLock), and whether it
// acquires (true) or releases (false). key is "" for non-lock expressions.
func (c *lockplaneChecker) lockOp(expr ast.Expr) (key string, kind int, isAcquire bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", 0, false
	}
	if MutexKind(c.pass.TypesInfo.Types[sel.X].Type) == 0 {
		return "", 0, false
	}
	key = ExprKey(sel.X)
	if key == "" {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return key, 2, true
	case "RLock":
		return key, 1, true
	}
	return key, 0, false
}

// tryLockCond classifies an if condition as a TryLock guard: it returns
// the mutex key and hold kind for `x.TryLock()` / `x.TryRLock()`
// conditions, with negated set for the `!x.TryLock()` form. key is "" for
// other conditions.
func (c *lockplaneChecker) tryLockCond(cond ast.Expr) (key string, kind int, negated bool) {
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		key, kind, _ = c.tryLockCond(u.X)
		return key, kind, true
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "TryLock":
		kind = 2
	case "TryRLock":
		kind = 1
	default:
		return "", 0, false
	}
	if MutexKind(c.pass.TypesInfo.Types[sel.X].Type) == 0 {
		return "", 0, false
	}
	return ExprKey(sel.X), kind, false
}

// terminates reports whether the block always leaves the enclosing
// statement list: its last statement is a return, branch, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanExprs inspects a statement's expressions (excluding nested function
// literals) for WaitGroup.Add calls, calls to locked-marked functions, and
// write-lock acquisitions inside data-plane methods.
func (c *lockplaneChecker) scanExprs(stmt ast.Stmt, held lockHeld, recv string, dataPlane bool) {
	skipBodies := map[ast.Node]bool{}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return // handled statement by statement
	case *ast.IfStmt:
		skipBodies[s.Body] = true
		if s.Else != nil {
			skipBodies[s.Else] = true
		}
		if s.Init != nil {
			skipBodies[s.Init] = true
		}
	case *ast.ForStmt:
		skipBodies[s.Body] = true
	case *ast.RangeStmt:
		skipBodies[s.Body] = true
	case *ast.SwitchStmt:
		skipBodies[s.Body] = true
	case *ast.TypeSwitchStmt:
		skipBodies[s.Body] = true
	case *ast.SelectStmt:
		skipBodies[s.Body] = true
	case *ast.LabeledStmt:
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if skipBodies[n] {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate unit with its own lock state
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.checkCall(call, held, dataPlane)
		return true
	})
}

func (c *lockplaneChecker) checkCall(call *ast.CallExpr, held lockHeld, dataPlane bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.lockedFuncs[obj] {
				c.requireWriteLock(call, held, id.Name)
			}
		}
		return
	}
	if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil && c.lockedFuncs[obj] {
		c.requireWriteLock(call, held, sel.Sel.Name)
	}

	switch sel.Sel.Name {
	case "Lock":
		if dataPlane && MutexKind(c.pass.TypesInfo.Types[sel.X].Type) == 2 {
			c.pass.Reportf(call.Pos(),
				"data-plane method takes the write lock on %s: route/MatchEntries* run shared and may only RLock", ExprKey(sel.X))
		}
	case "Add":
		c.checkWaitGroupAdd(call, sel, held)
	}
}

// requireWriteLock reports a locked-function call made without any write
// lock held. Locked functions calling each other are exempt: the
// obligation sits with the outermost unlocked caller.
func (c *lockplaneChecker) requireWriteLock(call *ast.CallExpr, held lockHeld, name string) {
	if c.inLocked {
		return
	}
	for _, kind := range held {
		if kind == 2 {
			return
		}
	}
	c.pass.Reportf(call.Pos(),
		"call to //dimlint:locked function %s without a write lock held on this path", name)
}

// checkWaitGroupAdd enforces the reservation rule: Add on a WaitGroup field
// of a mutex-guarded struct must run while a lock on that struct is held.
func (c *lockplaneChecker) checkWaitGroupAdd(call *ast.CallExpr, sel *ast.SelectorExpr, held lockHeld) {
	if !IsWaitGroup(c.pass.TypesInfo.Types[sel.X].Type) {
		return
	}
	wgSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return // local WaitGroup (joined fan-out): no shutdown race to guard
	}
	owner := ExprKey(wgSel.X)
	if owner == "" {
		return
	}
	// Only structs that pair the WaitGroup with a mutex participate in the
	// reservation discipline.
	named := NamedOf(c.pass.TypesInfo.Types[wgSel.X].Type)
	if named == nil || !HasMutexField(named, 1) {
		return
	}
	if held.ownedLock(owner) == 0 {
		c.pass.Reportf(call.Pos(),
			"%s.Add without holding a lock on %s: reserve WaitGroup slots under the lock that proves !closed, or Shutdown's Wait can observe a zero counter this Add is about to invalidate", ExprKey(sel.X), owner)
	}
}

// checkMutation flags receiver-field writes made without the write lock.
func (c *lockplaneChecker) checkMutation(as *ast.AssignStmt, held lockHeld, recv string) {
	for _, lhs := range as.Lhs {
		c.checkMutationLHS(lhs, as.Pos(), held, recv)
	}
}

func (c *lockplaneChecker) checkMutationLHS(lhs ast.Expr, pos token.Pos, held lockHeld, recv string) {
	if recv == "" {
		return
	}
	root := lhs
	for {
		switch x := root.(type) {
		case *ast.IndexExpr:
			root = x.X
			continue
		case *ast.StarExpr:
			root = x.X
			continue
		case *ast.ParenExpr:
			root = x.X
			continue
		}
		break
	}
	sel, ok := root.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return
	}
	if held.ownedLock(recv) == 2 {
		return
	}
	name := ExprKey(lhs)
	if name == "" {
		name = ExprKey(sel) // index/star targets: name the field being written
	}
	if held.ownedLock(recv) == 1 {
		c.pass.Reportf(pos,
			"write to %s under the read lock: control-plane mutations take the write lock", name)
		return
	}
	c.pass.Reportf(pos,
		"write to %s without the write lock: control-plane mutations lock first, or mark the method //dimlint:locked when callers hold it", name)
}
