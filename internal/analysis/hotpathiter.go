package analysis

import (
	"go/ast"
	"go/types"
)

// Hotpathiter checks functions annotated //dimlint:hotpath — the
// per-event match path. Two constructs are banned there, both learned the
// hard way:
//
//   - ranging over a map: randomized iteration order made the negative-
//     dimension pass nondeterministic (and cache-hostile) until it was
//     rebuilt on a dense slice; the annotation keeps the slice from
//     quietly regressing back to a map walk, and
//   - calling into package fmt: fmt formats reflectively and allocates on
//     every call, which is unacceptable per event.
//
// Function literals declared inside a hotpath function inherit the
// restriction (they run on the same path).
var Hotpathiter = &Analyzer{
	Name: "hotpathiter",
	Doc: "check that //dimlint:hotpath functions never range over maps or call fmt " +
		"(per-event work must be deterministic and allocation-free)",
	Run: runHotpathiter,
}

func runHotpathiter(pass *Pass) error {
	WalkFuncs(pass.Files, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		if !pass.Dirs.FuncHas(fd, "hotpath") {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.Types[x.X].Type) {
					pass.Reportf(x.Pos(),
						"map iteration on the hot path: order is randomized and the walk defeats the cache — keep a dense slice alongside the map (see the negative-dimension list)")
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if PkgPathOf(pass.TypesInfo, sel) == "fmt" {
						pass.Reportf(x.Pos(),
							"fmt.%s on the hot path: reflective formatting allocates per event — format off-path or use strconv", sel.Sel.Name)
					}
				}
			}
			return true
		})
	})
	return nil
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
