package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolescape checks the decode-copies-out contract of pooled buffers: a
// value drawn from a sync.Pool (directly via Get, or through a
// //dimlint:pooled accessor) is only valid until it goes back to the pool,
// so it must not
//
//   - be stored into a field, map, slice element, global, or channel,
//   - be returned by a function that is not itself a //dimlint:pooled
//     accessor,
//   - be captured by a goroutine that is not provably joined before the
//     function returns (a WaitGroup.Wait after the go statement counts as
//     a join — the engine's sharded match fan-out), or
//   - be used after it was Put back.
//
// Passing a pooled value to an ordinary call is fine — the callee returns
// before the buffer can be recycled. Values of refcounted types
// (Retain/Release) are exempt: their lifetime is governed by refbalance,
// not by lexical scope.
var Poolescape = &Analyzer{
	Name: "poolescape",
	Doc: "check that pooled buffers never escape their pool window: no stores to " +
		"fields/globals, no returns from non-accessors, no unjoined goroutine captures, no use after Put",
	Run: runPoolescape,
}

func runPoolescape(pass *Pass) error {
	pooledFuncs := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !pass.Dirs.FuncHas(fd, "pooled") {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				pooledFuncs[obj] = true
			}
		}
	}
	WalkFuncs(pass.Files, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		c := &poolescapeChecker{
			pass:        pass,
			pooledFuncs: pooledFuncs,
			accessor:    pass.Dirs.FuncHas(fd, "pooled"),
			pooled:      make(map[types.Object]bool),
			body:        body,
		}
		c.run()
	})
	return nil
}

type poolescapeChecker struct {
	pass        *Pass
	pooledFuncs map[types.Object]bool
	accessor    bool // enclosing function is a //dimlint:pooled accessor
	pooled      map[types.Object]bool
	body        *ast.BlockStmt
}

func (c *poolescapeChecker) run() {
	// Pass 1: collect pooled objects (Get results, pooled-accessor results,
	// and derivations) to a fixed point — derivations can lexically precede
	// knowledge on deeply nested forms, one extra sweep settles them.
	for {
		before := len(c.pooled)
		ast.Inspect(c.body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				c.collectAssign(as)
			}
			return true
		})
		if len(c.pooled) == before {
			break
		}
	}
	// checkEscapes also catches direct `return pool.Get()` forms with no
	// named pooled variable, so it runs unconditionally.
	c.checkEscapes()
	if len(c.pooled) > 0 {
		c.checkUseAfterPut()
	}
}

// collectAssign marks LHS variables pooled when the RHS draws from a pool
// or derives from an already-pooled value.
func (c *poolescapeChecker) collectAssign(as *ast.AssignStmt) {
	mark := func(lhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil || IsRefcounted(obj.Type()) {
			return
		}
		c.pooled[obj] = true
	}
	if len(as.Rhs) == 1 {
		if c.isPoolSource(as.Rhs[0]) {
			for _, lhs := range as.Lhs {
				mark(lhs)
			}
			return
		}
	}
	for i, rhs := range as.Rhs {
		if i < len(as.Lhs) && c.derivesFromPooled(rhs) {
			mark(as.Lhs[i])
		}
	}
}

// isPoolSource reports whether expr draws a value out of a pool: a
// sync.Pool Get call, a //dimlint:pooled accessor call, or either wrapped
// in a type assertion.
func (c *poolescapeChecker) isPoolSource(expr ast.Expr) bool {
	switch x := expr.(type) {
	case *ast.TypeAssertExpr:
		return c.isPoolSource(x.X)
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.SelectorExpr:
			if fn.Sel.Name == "Get" && isSyncPool(c.pass.TypesInfo.Types[fn.X].Type) {
				return true
			}
			if obj := c.pass.TypesInfo.Uses[fn.Sel]; obj != nil && c.pooledFuncs[obj] {
				return true
			}
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[fn]; obj != nil && c.pooledFuncs[obj] {
				return true
			}
		}
	}
	return false
}

// derivesFromPooled reports whether expr aliases pooled memory: a pooled
// identifier, or a slice/index/selector/star/paren chain rooted at one.
func (c *poolescapeChecker) derivesFromPooled(expr ast.Expr) bool {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			return obj != nil && c.pooled[obj]
		case *ast.SliceExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		default:
			return false
		}
	}
}

// isSyncPool reports whether t is sync.Pool (or a pointer to it).
func isSyncPool(t types.Type) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// checkEscapes walks the function for stores, returns, sends, and
// goroutine captures of pooled values.
func (c *poolescapeChecker) checkEscapes() {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if len(s.Rhs) == len(s.Lhs) && c.derivesFromPooled(rhs) {
					c.checkStoreTarget(s.Lhs[i], rhs)
				}
			}
		case *ast.ReturnStmt:
			if c.accessor {
				return true
			}
			for _, r := range s.Results {
				if c.derivesFromPooled(r) || c.isPoolSource(r) {
					c.pass.Reportf(r.Pos(),
						"pooled buffer returned from a function not marked //dimlint:pooled: the caller would hold it past its pool window (copy the data out instead)")
				}
			}
		case *ast.SendStmt:
			if c.derivesFromPooled(s.Value) || c.isPoolSource(s.Value) {
				c.pass.Reportf(s.Value.Pos(),
					"pooled buffer sent on a channel: the receiver may use it after it returns to the pool")
			}
		case *ast.GoStmt:
			c.checkGoCapture(s)
			return false // literal body checked by checkGoCapture
		}
		return true
	})
}

// checkStoreTarget flags assignments of pooled memory into locations that
// outlive the pool window: fields or elements of non-pooled values, and
// package-level variables. Assigning to a plain local aliases the buffer,
// which pass 1 already tracks.
func (c *poolescapeChecker) checkStoreTarget(lhs ast.Expr, rhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
			if _, pkgLevel := obj.(*types.Var); pkgLevel && obj.Parent() == c.pass.Pkg.Scope() {
				c.pass.Reportf(lhs.Pos(),
					"pooled buffer stored in package-level variable %s: it outlives the pool window", x.Name)
			}
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if c.derivesFromPooled(lhs) {
			return // pooled-into-pooled (growing a scratch buffer) is fine
		}
		c.pass.Reportf(lhs.Pos(),
			"pooled buffer stored in %s, which outlives the pool window: decoders copy or intern everything out of pooled buffers", ExprKey(lhs))
	}
	_ = rhs
}

// checkGoCapture flags goroutines that capture pooled variables unless the
// enclosing function joins goroutines afterwards (a WaitGroup.Wait call
// positioned after the go statement — the sharded match fan-out pattern,
// where workers provably finish before the scratch returns to the pool).
func (c *poolescapeChecker) checkGoCapture(g *ast.GoStmt) {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// go f(pooled): the argument escapes the synchronous window.
		for _, arg := range g.Call.Args {
			if c.derivesFromPooled(arg) {
				c.pass.Reportf(arg.Pos(), "pooled buffer passed to a goroutine: it may outlive its pool window")
			}
		}
		return
	}
	joined := c.waitFollows(g.Pos())
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || !c.pooled[obj] {
			return true
		}
		if !joined {
			c.pass.Reportf(id.Pos(),
				"pooled buffer %s captured by a goroutine with no join (WaitGroup.Wait) before the function returns: it may outlive its pool window", id.Name)
		}
		return true
	})
}

// waitFollows reports whether a sync.WaitGroup Wait call appears in the
// function after pos.
func (c *poolescapeChecker) waitFollows(pos token.Pos) bool {
	found := false
	ast.Inspect(c.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if IsWaitGroup(c.pass.TypesInfo.Types[sel.X].Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkUseAfterPut flags straight-line uses of a pooled variable after the
// statement that returned it to its pool.
func (c *poolescapeChecker) checkUseAfterPut() {
	ast.Inspect(c.body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		c.checkPutSequence(list)
		return true
	})
}

func (c *poolescapeChecker) checkPutSequence(list []ast.Stmt) {
	put := make(map[types.Object]bool)
	for _, stmt := range list {
		if len(put) > 0 {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil && put[obj] {
					c.pass.Reportf(id.Pos(),
						"use of pooled buffer %s after it was returned to its pool", id.Name)
				}
				return true
			})
		}
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
						delete(put, obj)
					}
				}
			}
		}
		if obj := c.putTarget(stmt); obj != nil {
			put[obj] = true
		}
	}
}

// putTarget returns the pooled object an ExprStmt returns to its pool:
// pool.Put(x) on a sync.Pool. Accessor-style put helpers take the pool
// token, not the buffer, so only direct Puts participate.
func (c *poolescapeChecker) putTarget(stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || !isSyncPool(c.pass.TypesInfo.Types[sel.X].Type) {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || !c.pooled[obj] {
		return nil
	}
	return obj
}
