// Package analysistest runs analyzers over fixture packages and compares
// the diagnostics against expectations embedded in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for range m { // want "map iteration on the hot path"
//
// A comment containing `want` followed by one or more double-quoted
// regular expressions asserts that each regexp matches exactly one
// diagnostic on that line; lines with several diagnostics carry several
// quoted patterns. Block-comment form (`/* want "..." */`) is also
// recognized, for lines whose diagnostic is positioned inside a trailing
// line comment (e.g. a malformed //dimlint:ignore). Every diagnostic must
// be matched by a want and every want must match a diagnostic.
//
// Fixtures live in their own module (testdata/src/go.mod) so the loader
// resolves them like any real package while the enclosing repo's builds
// and tests ignore them (testdata directories are invisible to the go
// tool).
package analysistest

import (
	"os"
	"regexp"
	"strconv"
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/load"
)

var (
	wantMarker = regexp.MustCompile(`(?://|/\*)\s*want\s`)
	wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// Run loads pattern (e.g. "./refbalance") relative to dir and checks the
// given analyzers' diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(dir, []string{pattern})
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %s under %s", pattern, dir)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Types.Path(), err)
		}

		wants := make(map[string][]*expectation) // filename -> expectations
		seen := make(map[string]bool)
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			if seen[filename] {
				continue
			}
			seen[filename] = true
			exps, err := parseWants(filename)
			if err != nil {
				t.Fatalf("%s: %v", filename, err)
			}
			wants[filename] = exps
		}

		for _, d := range diags {
			if !consume(wants[d.Pos.Filename], d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for filename, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", filename, e.line, e.re)
				}
			}
		}
	}
}

// consume marks the first unmatched expectation on d's line whose pattern
// matches d's message (analyzer-qualified, so wants can pin the analyzer).
func consume(exps []*expectation, d analysis.Diagnostic) bool {
	full := d.Analyzer + ": " + d.Message
	for _, e := range exps {
		if e.matched || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(full) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the want expectations from one fixture file.
func parseWants(filename string) ([]*expectation, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	var exps []*expectation
	line := 0
	for len(data) > 0 {
		line++
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var text string
		if nl < 0 {
			text, data = string(data), nil
		} else {
			text, data = string(data[:nl]), data[nl+1:]
		}
		loc := wantMarker.FindStringIndex(text)
		if loc == nil {
			continue
		}
		for _, q := range wantQuoted.FindAllString(text[loc[1]:], -1) {
			pat, err := strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, err
			}
			exps = append(exps, &expectation{re: re, line: line})
		}
	}
	return exps, nil
}
