package analysis

import (
	"go/ast"
	"go/types"
)

// Refbalance checks the encode-once ownership rules of refcounted frame
// buffers (wire.EncodedFrame and any type shaped like it): a reference
// obtained from an encode call must be Released exactly once or handed off
// to another owner, must not be used after an unconditional Release, and
// must not be Released twice on a straight-line path.
//
// A type is refcounted when it has both a Retain and a no-argument Release
// method; the analyzer is structural so fixtures (and future refcounted
// types) need no registration.
//
// The analysis is intraprocedural and deliberately conservative about
// control flow: the leak check asks "is this reference released or handed
// off anywhere in the function", and the use-after/double-release checks
// only fire on statements that follow an *unconditional* Release in the
// same statement list — so every diagnostic is a straight-line fact, not a
// may-path guess.
var Refbalance = &Analyzer{
	Name: "refbalance",
	Doc: "check that refcounted encoded frames (Retain/Release types) are " +
		"released exactly once per reference and never used after release",
	Run: runRefbalance,
}

// IsRefcounted reports whether t (or its pointee) is a named type carrying
// both Retain and Release methods — the encode-once ownership shape.
func IsRefcounted(t types.Type) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	var retain, release bool
	for i := 0; i < n.NumMethods(); i++ {
		switch n.Method(i).Name() {
		case "Retain":
			retain = true
		case "Release":
			sig, ok := n.Method(i).Type().(*types.Signature)
			release = ok && sig.Params().Len() == 0
		}
	}
	return retain && release
}

func runRefbalance(pass *Pass) error {
	WalkFuncs(pass.Files, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		checkRefLeaks(pass, body)
		checkRetainHandoff(pass, body)
		checkRefSequencing(pass, body)
	})
	return nil
}

// checkRetainHandoff flags statement-level Retain calls in functions that
// never hand the value off. The only reason to Retain is to create
// references for other owners (an outbox, a fan-out, a cache); a function
// that Retains and at most Releases its own reference leaves the retained
// ones dangling.
func checkRetainHandoff(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Retain" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !IsRefcounted(obj.Type()) {
			return true
		}
		moved := false
		ast.Inspect(body, func(u ast.Node) bool {
			if moved {
				return false
			}
			uid, ok := u.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[uid] != obj || uid == id {
				return true
			}
			if refOwnershipMoves(body, uid) {
				moved = true
				return false
			}
			return true
		})
		if !moved {
			pass.Reportf(call.Pos(),
				"Retain on %s in a function that never hands the frame off: the added references have no owner to Release them", id.Name)
		}
		return true
	})
}

// checkRefLeaks flags references acquired from a call (a variable of
// refcounted type initialized from a function's result) that the enclosing
// declaration neither Releases nor hands off.
func checkRefLeaks(pass *Pass, body *ast.BlockStmt) {
	type acquisition struct {
		obj types.Object
		pos ast.Node
	}
	var acquired []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		// A method call on a refcounted value (x.Retain, x.Bytes) is not an
		// acquisition; only plain/function results are.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if IsRefcounted(pass.TypesInfo.Types[sel.X].Type) {
				return true
			}
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !IsRefcounted(obj.Type()) {
				continue
			}
			acquired = append(acquired, acquisition{obj: obj, pos: id})
		}
		return true
	})

	for _, acq := range acquired {
		balanced := false
		ast.Inspect(body, func(n ast.Node) bool {
			if balanced {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != acq.obj {
				return true
			}
			if isReleaseCallOn(pass, body, id) || refOwnershipMoves(body, id) {
				balanced = true
				return false
			}
			return true
		})
		if !balanced {
			pass.Reportf(acq.pos.Pos(),
				"refcounted frame acquired here is neither Released nor handed off in this function (encode-once ownership: every reference is dropped exactly once)")
		}
	}
}

// isReleaseCallOn reports whether id appears as the receiver of a Release
// call within body.
func isReleaseCallOn(pass *Pass, body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" {
			return true
		}
		if sel.X == ast.Expr(id) {
			found = true
			return false
		}
		return true
	})
	return found
}

// refOwnershipMoves reports whether the given use of a refcounted variable
// transfers its reference to another owner: passed as a call argument,
// placed in a composite literal, assigned to another variable or field,
// returned, or sent on a channel. Method calls on the value itself are
// reads, not transfers.
func refOwnershipMoves(body *ast.BlockStmt, use *ast.Ident) bool {
	path := nodePath(body, use)
	if len(path) < 2 {
		return false
	}
	parent := path[len(path)-2]
	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(use) {
				return true
			}
		}
		return false
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ReturnStmt, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if r == ast.Expr(use) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return true // &x: address escapes
	}
	return false
}

// nodePath returns the chain of nodes from root down to target, inclusive,
// or nil when target is not under root.
func nodePath(root ast.Node, target ast.Node) []ast.Node {
	var path []ast.Node
	var found bool
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		path = append(path, n)
		if n == target {
			found = true
			return false
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if found || c == nil || c == n {
				return c == n
			}
			visit(c)
			return false
		})
		if !found {
			path = path[:len(path)-1]
		}
		return false
	}
	visit(root)
	if !found {
		return nil
	}
	return path
}

// checkRefSequencing flags straight-line use-after-Release and
// double-Release: within one statement list, a statement that follows an
// unconditional x.Release() must not use x again (the buffer may already be
// back in the pool) and must not Release it a second time.
func checkRefSequencing(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		checkStmtListSequencing(pass, list)
		return true
	})
}

func checkStmtListSequencing(pass *Pass, list []ast.Stmt) {
	// released[obj] = true once an unconditional Release of obj ran.
	released := make(map[types.Object]bool)
	for _, stmt := range list {
		if len(released) > 0 {
			reportReleasedUses(pass, stmt, released)
		}
		// Reassignment revives the variable.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						delete(released, obj)
					}
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						delete(released, obj)
					}
				}
			}
		}
		if obj := unconditionalReleaseOf(pass, stmt); obj != nil {
			released[obj] = true
		}
	}
}

// unconditionalReleaseOf returns the object whose Release the statement
// unconditionally calls (an ExprStmt `x.Release()` on a refcounted x), or
// nil.
func unconditionalReleaseOf(pass *Pass, stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !IsRefcounted(obj.Type()) {
		return nil
	}
	return obj
}

// reportReleasedUses flags every use of an already-released object inside
// stmt, distinguishing a second Release from a plain use.
func reportReleasedUses(pass *Pass, stmt ast.Stmt, released map[types.Object]bool) {
	// Assignment targets are not uses: `f = encode()` revives f, it does
	// not read the released buffer.
	assignTargets := make(map[ast.Expr]bool)
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			assignTargets[lhs] = true
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false // deferred/spawned bodies run at another time
		}
		if e, ok := n.(ast.Expr); ok && assignTargets[e] {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !released[obj] {
			return true
		}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && sel.X == ast.Expr(id) {
					pass.Reportf(id.Pos(), "frame %s Released twice on this path (each reference is dropped exactly once)", id.Name)
					return true
				}
			}
		}
		pass.Reportf(id.Pos(), "use of frame %s after Release: the buffer may already be recycled by the pool", id.Name)
		return true
	})
}
