package analysis_test

import (
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/analysistest"
)

// TestLockplane also covers the //dimlint:ignore machinery: the fixture
// includes a reasoned suppression (silent) and a reason-less one, which
// surfaces both the unsuppressed finding and the malformed-directive
// diagnostic.
func TestLockplane(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./lockplane", analysis.Lockplane)
}
