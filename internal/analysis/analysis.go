// Package analysis is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package and reports Diagnostics. It exists because the
// repo's load-bearing invariants — encode-once reference ownership, the
// broker's two-plane locking, pooled-buffer escape rules, workload
// determinism, hot-path allocation discipline — lived only in prose
// (ARCHITECTURE.md, code comments) until dimlint turned them into
// build-failing checks. The framework is deliberately x/tools-shaped so
// the analyzers could be ported to the real go/analysis API verbatim if
// the dependency ever becomes available; it is built on the standard
// library only (go/ast, go/types, go/importer).
//
// Drivers: internal/analysis/load runs `go list -export` and type-checks
// whole package patterns (the standalone `dimlint ./...` mode), and
// internal/analysis/unit speaks cmd/go's vet unit-checker protocol
// (`go vet -vettool=dimlint`). Both feed packages through RunAnalyzers,
// which also applies the //dimlint:ignore suppression directives.
//
// Test files (*_test.go) are not analyzed: the invariants the analyzers
// encode govern production code, and tests legitimately violate several
// of them (map-order shuffling, wall-clock timing, deliberate misuse to
// provoke errors).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects the package in
// pass and reports violations through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dimlint:ignore directives. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the one-paragraph description printed by `dimlint -help`.
	Doc string
	// Run performs the analysis. A non-nil error aborts the whole run
	// (driver bug or unusable input, not a finding).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test syntax trees.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs exposes the package's dimlint directives (hotpath, locked,
	// generator marks); ignore directives are applied by the driver.
	Dirs *Directives

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked package as the drivers hand it to
// RunAnalyzers.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers runs every analyzer over pkg, applies the package's
// //dimlint:ignore directives, and returns the surviving diagnostics in
// source order. Malformed directives (an ignore with no reason) surface
// as diagnostics from the pseudo-analyzer "dimlint" and cannot be
// suppressed.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if IsTestFile(pkg.Fset, f) {
			continue
		}
		files = append(files, f)
	}
	dirs := ParseDirectives(pkg.Fset, files)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dirs:      dirs,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = dirs.filter(diags)
	diags = append(diags, dirs.problems...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// IsTestFile reports whether f was parsed from a *_test.go file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// --- shared AST/type helpers used by several analyzers ---------------------

// NamedOf returns the named type behind t, unwrapping pointers and
// aliases, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeName returns the bare name of the named type behind t ("" if none).
func TypeName(t types.Type) string {
	if n := NamedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// ReceiverType returns the bare name of fd's receiver type ("" for plain
// functions).
func ReceiverType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// ReceiverIdent returns fd's receiver identifier, or nil for plain
// functions and anonymous receivers.
func ReceiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// IsPkgSymbol reports whether sel is a reference to symbol name qualified
// by an imported package whose path is path (or, when path ends with a
// version suffix, its unversioned form).
func IsPkgSymbol(info *types.Info, sel *ast.SelectorExpr, path, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == path
}

// PkgPathOf returns the import path of the package qualifying sel, or ""
// when sel is not a package-qualified reference.
func PkgPathOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// MutexKind classifies t: 2 for sync.RWMutex, 1 for sync.Mutex, 0 for
// anything else.
func MutexKind(t types.Type) int {
	n := NamedOf(t)
	if n == nil {
		return 0
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "RWMutex":
		return 2
	case "Mutex":
		return 1
	}
	return 0
}

// IsWaitGroup reports whether t is sync.WaitGroup.
func IsWaitGroup(t types.Type) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// HasMutexField reports whether named's underlying struct carries a
// sync.RWMutex (kind 2) or any mutex (kind 1) field, directly.
func HasMutexField(named *types.Named, minKind int) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if MutexKind(st.Field(i).Type()) >= minKind {
			return true
		}
	}
	return false
}

// ExprKey renders e as a stable string key ("b.mu", "h.c.subs") for
// comparing selector chains lexically. It returns "" for expressions that
// are not pure identifier/selector/star chains — those never participate
// in the lexical ownership tracking.
func ExprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := ExprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return ExprKey(x.X)
	case *ast.StarExpr:
		base := ExprKey(x.X)
		if base == "" {
			return ""
		}
		return "*" + base
	}
	return ""
}

// WalkFuncs invokes fn for every function body in the files: named
// declarations get their *ast.FuncDecl, function literals get nil. Bodies
// of literals are also reached through their enclosing declaration's
// traversal; fn receives each exactly once as the innermost unit.
func WalkFuncs(files []*ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}

// InnermostFuncs yields every function body (declarations and literals)
// in the files, paired with the declaration it syntactically belongs to.
func InnermostFuncs(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	WalkFuncs(files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		fn(decl, nil, body)
		ast.Inspect(body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				fn(decl, fl, fl.Body)
			}
			return true
		})
	})
}
