package analysis_test

import (
	"testing"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/analysistest"
)

// TestDeterminism covers the //dimlint:generator-marked fixture;
// TestDeterminismRegisterDetection covers scope detection through a
// workload.Register call, the way real scenario packages opt in.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./determinism", analysis.Determinism)
}

func TestDeterminismRegisterDetection(t *testing.T) {
	analysistest.Run(t, "testdata/src", "./determreg", analysis.Determinism)
}
