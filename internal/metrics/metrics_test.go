package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestAddAccumulates(t *testing.T) {
	a := Counters{
		EventsFiltered:  1,
		FilterTime:      time.Second,
		MatchedEntries:  2,
		EventsPublished: 3,
		EventsForwarded: 4,
		ControlSent:     5,
		BytesSent:       6,
		Deliveries:      7,
	}
	var c Counters
	c.Add(a)
	c.Add(a)
	if c.EventsFiltered != 2 || c.FilterTime != 2*time.Second || c.MatchedEntries != 4 ||
		c.EventsPublished != 6 || c.EventsForwarded != 8 || c.ControlSent != 10 ||
		c.BytesSent != 12 || c.Deliveries != 14 {
		t.Errorf("Add result wrong: %+v", c)
	}
}

func TestFilterTimePerEvent(t *testing.T) {
	c := Counters{EventsFiltered: 4, FilterTime: 2 * time.Second}
	if got := c.FilterTimePerEvent(); got != 500*time.Millisecond {
		t.Errorf("FilterTimePerEvent = %v", got)
	}
	var zero Counters
	if got := zero.FilterTimePerEvent(); got != 0 {
		t.Errorf("zero counters per-event time = %v", got)
	}
}

func TestString(t *testing.T) {
	c := Counters{EventsFiltered: 9, Deliveries: 3}
	s := c.String()
	if !strings.Contains(s, "filtered=9") || !strings.Contains(s, "delivered=3") {
		t.Errorf("String() = %q", s)
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d < time.Millisecond/2 {
		t.Errorf("Timer measured %v", d)
	}
}
