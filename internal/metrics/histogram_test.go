package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot: count=%d sum=%v", s.Count, s.Sum)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty p99 = %v, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound minus one nanosecond must map back into
	// that bucket, and the bounds must be strictly increasing — otherwise
	// Quantile's scan would misattribute ranks.
	prev := int64(0)
	for i := 0; i < histBucketCount; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not increasing (prev %d)", i, up, prev)
		}
		prev = up
		if got := bucketIndex(up - 1); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", up-1, got, i)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(1 << 62); got != histMaxBucketIdx {
		t.Fatalf("bucketIndex(huge) = %d, want %d", got, histMaxBucketIdx)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// A uniform sample over [1µs, 1ms): the histogram's p50/p99 must land
	// within one sub-bucket (6.25%) of the exact order statistic.
	rng := rand.New(rand.NewSource(9))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		ns := int64(1000) + rng.Int63n(999000)
		samples = append(samples, ns)
		h.Observe(time.Duration(ns))
	}
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		exact := exactQuantile(samples, q)
		got := int64(s.Quantile(q))
		if got < exact {
			t.Fatalf("q=%v: histogram %d below exact %d (quantile must be an upper bound)", q, got, exact)
		}
		if float64(got) > float64(exact)*1.08 {
			t.Fatalf("q=%v: histogram %d vs exact %d — error beyond one sub-bucket", q, got, exact)
		}
	}
}

func exactQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := int(q * float64(len(sorted)))
	if rank > 0 {
		rank--
	}
	return sorted[rank]
}

func TestHistogramNegativeAndReset(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Sum != time.Millisecond {
		t.Fatalf("sum = %v, want 1ms (negative clamps to 0)", s.Sum)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("after reset: count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10 * time.Microsecond)
	b.Observe(20 * time.Microsecond)
	b.Observe(30 * time.Microsecond)
	s := a.Snapshot()
	s.Add(b.Snapshot())
	if s.Count != 3 {
		t.Fatalf("merged count = %d, want 3", s.Count)
	}
	if s.Sum != 60*time.Microsecond {
		t.Fatalf("merged sum = %v, want 60µs", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * 37)
	}
}
