// Package metrics collects the counters the experiments report: filtering
// time, matched/forwarded event counts, routing-table associations, and
// per-link traffic.
//
// Counters is the plain value type used for snapshots and single-threaded
// accumulation (the deterministic simulation, the experiment harness).
// AtomicCounters is the concurrent accumulator brokers update from their
// parallel publish path; Snapshot materializes it as a Counters value.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counters accumulates one broker's (or one harness run's) measurements.
type Counters struct {
	// EventsFiltered counts events pushed through the filtering engine.
	EventsFiltered uint64
	// FilterTime accumulates wall time spent inside the filtering engine.
	FilterTime time.Duration
	// MatchedEntries counts routing-table entries matched by events
	// (the "matching events × entries" volume of Fig 1(b)).
	MatchedEntries uint64
	// EventsPublished counts events injected by local clients.
	EventsPublished uint64
	// EventsForwarded counts publish frames sent to neighbor brokers —
	// the routed-event unit of Fig 1(e).
	EventsForwarded uint64
	// ControlSent counts subscribe/unsubscribe frames sent to neighbors.
	ControlSent uint64
	// ControlRecv counts subscribe/unsubscribe frames received from
	// neighbors and applied. The overlay's control plane is drained
	// exactly when fleet-wide ControlSent equals fleet-wide ControlRecv.
	ControlRecv uint64
	// BytesSent accumulates encoded frame bytes sent to neighbors.
	BytesSent uint64
	// Deliveries counts notifications handed to local subscribers.
	Deliveries uint64
	// DeliveriesDropped counts notifications lost to per-subscriber
	// backpressure policies (DropOldest/DropNewest queue overflow).
	DeliveriesDropped uint64
}

// Add folds o into c.
func (c *Counters) Add(o Counters) {
	c.EventsFiltered += o.EventsFiltered
	c.FilterTime += o.FilterTime
	c.MatchedEntries += o.MatchedEntries
	c.EventsPublished += o.EventsPublished
	c.EventsForwarded += o.EventsForwarded
	c.ControlSent += o.ControlSent
	c.ControlRecv += o.ControlRecv
	c.BytesSent += o.BytesSent
	c.Deliveries += o.Deliveries
	c.DeliveriesDropped += o.DeliveriesDropped
}

// FilterTimePerEvent returns the average filtering time per filtered event,
// the ordinate of Fig 1(a)/(d).
func (c Counters) FilterTimePerEvent() time.Duration {
	if c.EventsFiltered == 0 {
		return 0
	}
	return c.FilterTime / time.Duration(c.EventsFiltered)
}

// String renders the counters compactly for logs and tools.
func (c Counters) String() string {
	return fmt.Sprintf(
		"filtered=%d filterTime=%v matched=%d published=%d forwarded=%d control=%d/%d bytes=%d delivered=%d dropped=%d",
		c.EventsFiltered, c.FilterTime, c.MatchedEntries, c.EventsPublished,
		c.EventsForwarded, c.ControlSent, c.ControlRecv, c.BytesSent, c.Deliveries, c.DeliveriesDropped)
}

// AtomicCounters accumulates the same measurements as Counters but is safe
// for concurrent updates: routing goroutines increment it lock-free on the
// data plane while stats readers snapshot it at any time. Field meanings
// mirror Counters exactly; FilterTime is tracked in nanoseconds.
type AtomicCounters struct {
	EventsFiltered    atomic.Uint64
	FilterTimeNanos   atomic.Int64
	MatchedEntries    atomic.Uint64
	EventsPublished   atomic.Uint64
	EventsForwarded   atomic.Uint64
	ControlSent       atomic.Uint64
	ControlRecv       atomic.Uint64
	BytesSent         atomic.Uint64
	Deliveries        atomic.Uint64
	DeliveriesDropped atomic.Uint64
}

// AddFilterTime accumulates filtering wall time.
func (a *AtomicCounters) AddFilterTime(d time.Duration) {
	a.FilterTimeNanos.Add(int64(d))
}

// Snapshot returns the current values as a plain Counters. Concurrent
// updates may land between field loads; each individual counter is exact.
func (a *AtomicCounters) Snapshot() Counters {
	return Counters{
		EventsFiltered:    a.EventsFiltered.Load(),
		FilterTime:        time.Duration(a.FilterTimeNanos.Load()),
		MatchedEntries:    a.MatchedEntries.Load(),
		EventsPublished:   a.EventsPublished.Load(),
		EventsForwarded:   a.EventsForwarded.Load(),
		ControlSent:       a.ControlSent.Load(),
		ControlRecv:       a.ControlRecv.Load(),
		BytesSent:         a.BytesSent.Load(),
		Deliveries:        a.Deliveries.Load(),
		DeliveriesDropped: a.DeliveriesDropped.Load(),
	}
}

// Reset zeroes all counters (state between warm-up and measured phases).
func (a *AtomicCounters) Reset() {
	a.EventsFiltered.Store(0)
	a.FilterTimeNanos.Store(0)
	a.MatchedEntries.Store(0)
	a.EventsPublished.Store(0)
	a.EventsForwarded.Store(0)
	a.ControlSent.Store(0)
	a.ControlRecv.Store(0)
	a.BytesSent.Store(0)
	a.Deliveries.Store(0)
	a.DeliveriesDropped.Store(0)
}

// Timer measures one timed region; start with Start, stop with Stop.
// The zero Timer is ready to use.
type Timer struct {
	started time.Time
}

// Start begins timing.
func (t *Timer) Start() { t.started = time.Now() }

// Stop returns the elapsed time since Start.
func (t *Timer) Stop() time.Duration { return time.Since(t.started) }
