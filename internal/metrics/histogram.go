package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram safe for concurrent use
// and allocation-free on the record path: Observe is two atomic adds and a
// handful of bit operations, so it can sit on the per-event hot path of a
// broker or a harness without perturbing what it measures.
//
// Buckets are log-linear (HDR-style): histSubBuckets linear sub-buckets
// per power-of-two octave of nanoseconds, covering [histMinNanos,
// histMaxNanos). That keeps the relative quantile error under
// 1/histSubBuckets (~6%) across nine orders of magnitude with a few KB of
// counters. Durations below the range clamp into the first bucket, above
// it into the last — the tails stay counted, just without resolution.
type Histogram struct {
	counts [histBucketCount]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds; int64 to tolerate clock skew deltas
}

const (
	// histMinOctave..histMaxOctave bound the resolved range:
	// 2^8 ns = 256ns up to 2^38 ns ≈ 4.6 minutes.
	histMinOctave = 8
	histMaxOctave = 38
	// histSubBits linear sub-buckets per octave (16) set the resolution.
	histSubBits      = 4
	histSubBuckets   = 1 << histSubBits
	histBucketCount  = (histMaxOctave - histMinOctave + 1) * histSubBuckets
	histMinNanos     = int64(1) << histMinOctave
	histMaxNanos     = int64(1) << (histMaxOctave + 1)
	histMaxBucketIdx = histBucketCount - 1
)

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns < histMinNanos {
		return 0
	}
	if ns >= histMaxNanos {
		return histMaxBucketIdx
	}
	octave := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	sub := int((ns >> (octave - histSubBits)) & (histSubBuckets - 1))
	return (octave-histMinOctave)*histSubBuckets + sub
}

// bucketUpper returns the exclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	octave := i/histSubBuckets + histMinOctave
	sub := int64(i%histSubBuckets) + 1
	return (int64(1) << octave) + sub<<(octave-histSubBits)
}

// Observe records one duration. Negative durations (clock skew between the
// two stamps) count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot materializes the current counts. Concurrent Observes may land
// between field loads; each bucket is individually exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}

// Reset zeroes the histogram (state between warm-up and measured phases).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the value
// reports and oracles work from.
type HistogramSnapshot struct {
	counts [histBucketCount]uint64
	Count  uint64
	Sum    time.Duration
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations: the upper edge of the bucket holding the q·Count-th
// observation, within one sub-bucket (~6%) of the true value inside the
// resolved range. A snapshot with no observations returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank > 0 {
		rank-- // 1-based rank of the target observation
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(histMaxBucketIdx))
}

// Mean returns the arithmetic mean of the observed durations (exact — the
// sum is tracked outside the buckets).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Add folds o into s (merging two snapshots of disjoint histograms).
func (s *HistogramSnapshot) Add(o HistogramSnapshot) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// String renders the standard latency line: count, mean, p50, p99.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v",
		s.Count, s.Mean().Round(time.Microsecond),
		s.Quantile(0.50).Round(time.Microsecond),
		s.Quantile(0.99).Round(time.Microsecond))
}
