package adaptive

import (
	"testing"
	"time"

	"dimprune/internal/core"
)

// fakeTarget records controller interactions.
type fakeTarget struct {
	dim       core.Dimension
	pruneable int
	pruned    int
	setErr    error
}

func (f *fakeTarget) Dimension() core.Dimension { return f.dim }

func (f *fakeTarget) SetDimension(d core.Dimension) error {
	if f.setErr != nil {
		return f.setErr
	}
	f.dim = d
	return nil
}

func (f *fakeTarget) Prune(n int) int {
	if n > f.pruneable {
		n = f.pruneable
	}
	f.pruneable -= n
	f.pruned += n
	return n
}

func TestPolicyDecide(t *testing.T) {
	p := Policy{} // defaults: mem 0.9, net 0.7, default throughput
	tests := []struct {
		name string
		s    Signals
		want core.Dimension
	}{
		{"idle", Signals{}, core.DimThroughput},
		{"memory pressure", Signals{Associations: 95, AssociationBudget: 100}, core.DimMemory},
		{"below memory threshold", Signals{Associations: 80, AssociationBudget: 100}, core.DimThroughput},
		{"no budget disables memory", Signals{Associations: 1 << 30}, core.DimThroughput},
		{"bandwidth pressure", Signals{LinkUtilization: 0.8}, core.DimNetwork},
		{"memory beats bandwidth", Signals{Associations: 100, AssociationBudget: 100, LinkUtilization: 0.9}, core.DimMemory},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Decide(tt.s); got != tt.want {
				t.Errorf("Decide(%+v) = %v, want %v", tt.s, got, tt.want)
			}
		})
	}
}

func TestPolicyCustomThresholdsAndDefault(t *testing.T) {
	p := Policy{MemoryPressure: 0.5, NetworkPressure: 0.3, Default: core.DimNetwork}
	if got := p.Decide(Signals{Associations: 50, AssociationBudget: 100}); got != core.DimMemory {
		t.Errorf("custom memory threshold ignored: %v", got)
	}
	if got := p.Decide(Signals{LinkUtilization: 0.35}); got != core.DimNetwork {
		t.Errorf("custom network threshold ignored: %v", got)
	}
	if got := p.Decide(Signals{}); got != core.DimNetwork {
		t.Errorf("custom default ignored: %v", got)
	}
}

func TestControllerSwitchesAndPrunes(t *testing.T) {
	ft := &fakeTarget{dim: core.DimNetwork, pruneable: 100}
	c, err := NewController(ft, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// Idle signals: switch to the default (throughput) and prune a batch.
	dim, n, err := c.Tick(Signals{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dim != core.DimThroughput || ft.dim != core.DimThroughput {
		t.Errorf("dimension = %v", dim)
	}
	if n != 10 || ft.pruned != 10 {
		t.Errorf("pruned %d", n)
	}
	if c.Switches() != 1 {
		t.Errorf("switches = %d", c.Switches())
	}
	// Same signals again: no additional switch.
	if _, _, err := c.Tick(Signals{}, 0); err != nil {
		t.Fatal(err)
	}
	if c.Switches() != 1 {
		t.Errorf("redundant switch recorded: %d", c.Switches())
	}
	// Memory pressure flips to memory-based pruning.
	dim, _, err = c.Tick(Signals{Associations: 99, AssociationBudget: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dim != core.DimMemory || c.Switches() != 2 {
		t.Errorf("dim %v switches %d", dim, c.Switches())
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(nil, Policy{}); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewController(&fakeTarget{}, Policy{Default: core.Dimension(9)}); err == nil {
		t.Error("bad default dimension accepted")
	}
	ft := &fakeTarget{setErr: errSet}
	c, _ := NewController(ft, Policy{})
	if _, _, err := c.Tick(Signals{LinkUtilization: 1}, 0); err == nil {
		t.Error("SetDimension error swallowed")
	}
}

var errSet = &setErr{}

type setErr struct{}

func (*setErr) Error() string { return "boom" }

func TestAutoPruneStopsWhenCostRises(t *testing.T) {
	ft := &fakeTarget{pruneable: 1000}
	// Cost improves for the first 50 prunings, then degrades.
	measure := func() time.Duration {
		if ft.pruned <= 50 {
			return time.Duration(1000-ft.pruned) * time.Microsecond
		}
		return time.Duration(1000+ft.pruned) * time.Microsecond
	}
	applied, err := AutoPrune(ft, measure, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Improvement through 50, then two non-improving batches: 70 total.
	if applied != 70 {
		t.Errorf("applied = %d, want 70", applied)
	}
}

func TestAutoPruneStopsAtExhaustion(t *testing.T) {
	ft := &fakeTarget{pruneable: 25}
	applied, err := AutoPrune(ft, func() time.Duration { return time.Millisecond }, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 25 {
		t.Errorf("applied = %d, want 25 (exhaustion)", applied)
	}
}

func TestAutoPruneValidation(t *testing.T) {
	ft := &fakeTarget{}
	if _, err := AutoPrune(ft, func() time.Duration { return 0 }, 0, 1); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := AutoPrune(ft, func() time.Duration { return 0 }, 1, 0); err == nil {
		t.Error("zero patience accepted")
	}
}
