// Package adaptive implements the paper's future-work ideas (§1, §5):
// choosing the pruning dimension dynamically from observed system
// parameters ("if the number of subscriptions increases strongly, we use
// memory-based pruning; bandwidth limitations suggest to apply
// network-based pruning"), and determining how many pruning operations lead
// to the best overall optimization.
package adaptive

import (
	"fmt"
	"time"

	"dimprune/internal/core"
)

// Signals are the system parameters a Policy decides from. Callers derive
// them from broker stats and link measurements at whatever cadence suits
// their deployment.
type Signals struct {
	// Associations is the current routing-table size in
	// predicate/subscription associations.
	Associations int
	// AssociationBudget is the configured routing-table target; above it,
	// memory pressure applies. Zero disables the memory trigger.
	AssociationBudget int
	// LinkUtilization estimates outbound-link busyness in [0, 1]; above the
	// policy threshold, bandwidth pressure applies.
	LinkUtilization float64
}

// Policy maps signals to a dimension. Zero-value thresholds select the
// defaults; the zero Default selects network-based pruning, the paper's
// general-purpose recommendation.
type Policy struct {
	// MemoryPressure is the associations/budget ratio that triggers
	// memory-based pruning (default 0.9).
	MemoryPressure float64
	// NetworkPressure is the link utilization that triggers network-based
	// pruning (default 0.7).
	NetworkPressure float64
	// Default applies when no pressure triggers (default DimThroughput:
	// with neither memory nor bandwidth scarce, optimize filter speed).
	Default core.Dimension
}

func (p Policy) withDefaults() Policy {
	if p.MemoryPressure == 0 {
		p.MemoryPressure = 0.9
	}
	if p.NetworkPressure == 0 {
		p.NetworkPressure = 0.7
	}
	if p.Default == 0 {
		p.Default = core.DimThroughput
	}
	return p
}

// Decide returns the dimension for the observed signals. Memory pressure
// dominates (an overflowing routing table threatens the broker itself),
// then bandwidth pressure, then the default.
func (p Policy) Decide(s Signals) core.Dimension {
	p = p.withDefaults()
	if s.AssociationBudget > 0 &&
		float64(s.Associations) >= p.MemoryPressure*float64(s.AssociationBudget) {
		return core.DimMemory
	}
	if s.LinkUtilization >= p.NetworkPressure {
		return core.DimNetwork
	}
	return p.Default
}

// Target is the slice of a broker the controller drives.
type Target interface {
	Dimension() core.Dimension
	SetDimension(core.Dimension) error
	Prune(n int) int
}

// Controller applies a Policy to a Target. It is synchronous: the owner
// calls Tick at its own cadence with fresh signals.
type Controller struct {
	target   Target
	policy   Policy
	switches int
}

// NewController wires a policy to a target.
func NewController(target Target, policy Policy) (*Controller, error) {
	if target == nil {
		return nil, fmt.Errorf("adaptive: nil target")
	}
	if policy.Default != 0 && !policy.Default.Valid() {
		return nil, fmt.Errorf("adaptive: invalid default dimension %d", int(policy.Default))
	}
	return &Controller{target: target, policy: policy}, nil
}

// Switches reports how many dimension changes the controller has made.
func (c *Controller) Switches() int { return c.switches }

// Tick evaluates the signals, switches the target's dimension when the
// policy demands it, and applies up to batch prunings. It returns the
// active dimension and the prunings performed.
func (c *Controller) Tick(s Signals, batch int) (core.Dimension, int, error) {
	want := c.policy.Decide(s)
	if want != c.target.Dimension() {
		if err := c.target.SetDimension(want); err != nil {
			return 0, 0, err
		}
		c.switches++
	}
	done := 0
	if batch > 0 {
		done = c.target.Prune(batch)
	}
	return want, done, nil
}

// AutoPrune answers the paper's second future-work question — how many
// prunings give the best overall optimization — by hill climbing: it
// applies pruning batches while the measured cost keeps improving and stops
// after patience consecutive non-improving batches (prunings cannot be
// undone, so it stops at the first sustained degradation). It returns the
// number of prunings applied.
//
// measure must return the current cost (typically filtering time per event
// over a probe workload); lower is better.
func AutoPrune(target Target, measure func() time.Duration, batch, patience int) (int, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("adaptive: batch must be positive, got %d", batch)
	}
	if patience <= 0 {
		return 0, fmt.Errorf("adaptive: patience must be positive, got %d", patience)
	}
	best := measure()
	applied := 0
	bad := 0
	for bad < patience {
		n := target.Prune(batch)
		if n == 0 {
			break // exhausted
		}
		applied += n
		if cost := measure(); cost < best {
			best = cost
			bad = 0
		} else {
			bad++
		}
	}
	return applied, nil
}
