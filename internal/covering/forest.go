package covering

import (
	"sort"
	"strings"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Forest is the online covering index a broker's control plane runs on: a
// partial-order forest over the live subscription population where an
// entry's parent is a cover — a subscription matching a superset of the
// entry's events. The broker advertises an uncovered (root) entry on every
// link except its origin; a covered entry needs to be advertised only on
// its cover's origin link (and not even there when the two share an
// origin), because every other neighbor already received an ancestor that
// subsumes it. Non-conjunctive shapes (disjunctions, negations) are
// tracked as opaque and always advertised — covering never reasons about
// them, which is exactly the gap dimension-based pruning fills.
//
// The order is the tie-broken strict covering relation: g ⊐ s iff
// Covers(g, s) and (not Covers(s, g) or g.ID < s.ID), so equivalent
// subscriptions chain deterministically instead of cycling. Parent chains
// are finite because ⊐ is a strict partial order.
//
// Lookup cost: entries are grouped by attribute signature (the sorted set
// of attribute names) and, within a group, bucketed by the values of their
// string-equality predicates. Finding a cover for a new entry enumerates
// the subsets of its signature (conjunctions are shallow — a handful of
// attributes) and the compatible equality keys, then verifies candidates
// with the sound Covers test; a scan that misses a cover only costs
// forwarded frames, never correctness. Finding the roots a new entry
// demotes scans the signature-superset groups with an O(1) root check per
// member. Both scans are deterministic for a fixed operation sequence.
//
// Mutations return Transitions — the delta of each affected entry's
// advertisement state — which the broker translates into subscribe and
// unsubscribe frames. The forest itself is not safe for concurrent use;
// the broker mutates it under its control-plane lock.
type Forest struct {
	entries map[uint64]*fentry
	groups  map[string]*sigGroup
	// attrGroups indexes groups by member attribute for superset lookups
	// (demotion); group order per attribute is creation order.
	attrGroups map[string][]*sigGroup

	roots  int // conjunctive entries with no parent
	opaque int // non-conjunctive (always-forward) entries
}

// maxSigAttrs bounds the subset enumeration of the cover lookup. A
// conjunction over more attributes is treated as opaque — always
// forwarded, never a cover — which is sound and keeps lookups O(2^k) for
// small fixed k.
const maxSigAttrs = 8

// fentry is one tracked subscription.
type fentry struct {
	id     uint64
	origin int
	sub    *subscription.Subscription
	preds  []subscription.Predicate
	opaque bool

	sig    string            // signature: sorted attr names, \x00-joined
	attrs  []string          // signature attrs, sorted
	pins   map[string]string // attr -> value for single string-equality attrs
	eqKey  string            // bucket key within the signature group
	bucket int               // index into its bucket slice (swap-delete)

	parent   *fentry
	children map[uint64]*fentry
}

// sigGroup holds all conjunctive entries sharing one attribute signature.
type sigGroup struct {
	sig     string
	attrs   []string
	buckets map[string][]*fentry
	keys    []string // sorted bucket keys, for deterministic demotion scans
	size    int
}

// Transition is one entry's advertisement-state change. Existed/Exists
// report presence before and after the mutation; the covered fields are
// meaningful only on the side where the entry exists. The broker turns a
// transition into frame deltas by diffing the advertisement sets the two
// states induce.
type Transition struct {
	ID     uint64
	Opaque bool

	Existed        bool
	OldOrigin      int
	OldCovered     bool
	OldCoverOrigin int

	Exists         bool
	NewOrigin      int
	NewCovered     bool
	NewCoverOrigin int
}

// NewForest returns an empty covering forest.
func NewForest() *Forest {
	return &Forest{
		entries:    make(map[uint64]*fentry),
		groups:     make(map[string]*sigGroup),
		attrGroups: make(map[string][]*sigGroup),
	}
}

// Len returns the number of tracked entries.
func (f *Forest) Len() int { return len(f.entries) }

// Roots returns the number of uncovered conjunctive entries.
func (f *Forest) Roots() int { return f.roots }

// Opaque returns the number of non-conjunctive (always-forward) entries.
func (f *Forest) Opaque() int { return f.opaque }

// State reports entry id's advertisement state: whether it is covered, the
// origin of its cover (meaningful only when covered), and whether it is
// opaque. ok is false for an unknown id.
func (f *Forest) State(id uint64) (covered bool, coverOrigin int, opaque bool, ok bool) {
	e := f.entries[id]
	if e == nil {
		return false, 0, false, false
	}
	if e.parent != nil {
		return true, e.parent.origin, e.opaque, true
	}
	return false, 0, e.opaque, true
}

// CoveredBy returns the ID of entry id's current cover (its forest parent)
// and whether it has one.
func (f *Forest) CoveredBy(id uint64) (uint64, bool) {
	e := f.entries[id]
	if e == nil || e.parent == nil {
		return 0, false
	}
	return e.parent.id, true
}

// Insert adds a subscription with the given origin link and returns the
// advertisement transitions: one for the new entry, plus one per existing
// root it demotes (re-parents under itself). Inserting a present ID is the
// caller's bug; the forest replaces silently to stay convergent.
func (f *Forest) Insert(s *subscription.Subscription, origin int) []Transition {
	var trs []Transition
	if old := f.entries[s.ID]; old != nil {
		trs = f.Remove(s.ID)
	}
	e := &fentry{id: s.ID, origin: origin, sub: s}
	if preds, ok := Conjunctive(s.Root); ok {
		e.preds = preds
		e.attrs = signatureAttrs(preds)
		if len(e.attrs) > maxSigAttrs {
			e.opaque = true
		}
	} else {
		e.opaque = true
	}
	f.entries[e.id] = e
	if e.opaque {
		f.opaque++
		return append(trs, Transition{
			ID: e.id, Opaque: true,
			Exists: true, NewOrigin: origin,
		})
	}
	e.sig = strings.Join(e.attrs, "\x00")
	e.pins = pinnedValues(e.preds)
	e.eqKey = eqKeyFor(e.attrs, e.pins)

	// Attach under the best cover reachable through the index, if any.
	if p := f.findParent(e); p != nil {
		f.link(p, e)
	} else {
		f.roots++
	}
	f.addToGroup(e)

	tr := Transition{ID: e.id, Exists: true, NewOrigin: origin}
	if e.parent != nil {
		tr.NewCovered = true
		tr.NewCoverOrigin = e.parent.origin
	}
	trs = append(trs, tr)

	// Demote roots the new entry covers: they re-parent under it, shrinking
	// the advertised set. The new entry's own ancestors are never roots
	// here (a root covering e cannot be covered by e — ⊐ is strict).
	for _, r := range f.demotableRoots(e) {
		old := Transition{
			ID: r.id, Existed: true, OldOrigin: r.origin,
			Exists: true, NewOrigin: r.origin,
			NewCovered: true, NewCoverOrigin: e.origin,
		}
		f.roots--
		f.link(e, r)
		trs = append(trs, old)
	}
	return trs
}

// Remove deletes one entry, promoting or re-parenting its children, and
// returns the transitions: the removal itself plus one per child whose
// cover state changed. Removing an unknown ID returns nil.
func (f *Forest) Remove(id uint64) []Transition {
	e := f.entries[id]
	if e == nil {
		return nil
	}
	return f.removeMarked(map[uint64]*fentry{id: e})
}

// RemoveBatch deletes a set of entries at once — the broker's link-death
// path. Marking the whole set before any promotion runs keeps orphans from
// re-parenting onto entries that are themselves dying.
func (f *Forest) RemoveBatch(ids []uint64) []Transition {
	dying := make(map[uint64]*fentry, len(ids))
	for _, id := range ids {
		if e := f.entries[id]; e != nil {
			dying[id] = e
		}
	}
	if len(dying) == 0 {
		return nil
	}
	return f.removeMarked(dying)
}

// removeMarked detaches every marked entry from the index, then promotes
// surviving children deterministically (ascending ID): a child re-parents
// under its dead parent's closest surviving ancestor when one exists —
// covering is transitive along the chain — and otherwise searches the
// index for a fresh cover, becoming a root when none is found.
func (f *Forest) removeMarked(dying map[uint64]*fentry) []Transition {
	// Detach the dying entries from groups first so no search can pick one.
	ids := make([]uint64, 0, len(dying))
	for id, e := range dying {
		ids = append(ids, id)
		if !e.opaque {
			f.removeFromGroup(e)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var trs []Transition
	var orphans []*fentry
	for _, id := range ids {
		e := dying[id]
		tr := Transition{ID: id, Opaque: e.opaque, Existed: true, OldOrigin: e.origin}
		if e.opaque {
			f.opaque--
		} else if e.parent != nil {
			tr.OldCovered = true
			tr.OldCoverOrigin = e.parent.origin
			if dying[e.parent.id] == nil {
				delete(e.parent.children, id)
			}
		} else {
			f.roots--
		}
		delete(f.entries, id)
		trs = append(trs, tr)
		for _, c := range e.children {
			if dying[c.id] == nil {
				orphans = append(orphans, c)
			}
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })

	for _, c := range orphans {
		oldCoverOrigin := c.parent.origin
		// Walk up the dead chain to the closest surviving ancestor: it
		// covers c transitively, so no index search is needed.
		anc := c.parent
		for anc != nil && dying[anc.id] != nil {
			anc = anc.parent
		}
		c.parent = nil
		if anc == nil {
			anc = f.findParent(c)
		}
		tr := Transition{
			ID: c.id, Existed: true, OldOrigin: c.origin,
			OldCovered: true, OldCoverOrigin: oldCoverOrigin,
			Exists: true, NewOrigin: c.origin,
		}
		if anc != nil {
			f.link(anc, c)
			tr.NewCovered = true
			tr.NewCoverOrigin = anc.origin
		} else {
			f.roots++
		}
		trs = append(trs, tr)
	}
	return trs
}

// link makes p the parent of c.
func (f *Forest) link(p, c *fentry) {
	c.parent = p
	if p.children == nil {
		p.children = make(map[uint64]*fentry)
	}
	p.children[c.id] = c
}

// above reports the tie-broken strict covering order g ⊐ s.
func above(g, s *fentry) bool {
	if !Covers(g.preds, s.preds) {
		return false
	}
	return !Covers(s.preds, g.preds) || g.id < s.id
}

// findParent searches the index for a cover of e: every subset of e's
// signature names a candidate group; within a group, only buckets whose
// equality key is compatible with e's pinned values can hold covers. A
// same-origin cover wins immediately (it makes e's advertisement set
// empty); otherwise the first verified cover in enumeration order is kept.
// Subsets enumerate from the full signature down, biasing toward tight
// covers.
func (f *Forest) findParent(e *fentry) *fentry {
	k := len(e.attrs)
	var best *fentry
	for mask := (1 << k) - 1; mask >= 1; mask-- {
		g := f.groups[subsetSig(e.attrs, mask)]
		if g == nil {
			continue
		}
		if p := f.scanGroup(g, e, mask); p != nil {
			if p.origin == e.origin {
				return p
			}
			if best == nil {
				best = p
			}
		}
	}
	return best
}

// scanGroup checks one candidate group: enumerate the equality keys
// compatible with e restricted to the subset mask, scanning each bucket
// for the first entry above e (preferring a same-origin one).
func (f *Forest) scanGroup(g *sigGroup, e *fentry, mask int) *fentry {
	// Collect the subset's attrs and which of them e pins.
	var attrs []string
	for i, a := range e.attrs {
		if mask&(1<<i) != 0 {
			attrs = append(attrs, a)
		}
	}
	var best *fentry
	// Enumerate pin choices: each pinned attr may appear pinned or wild in
	// the cover's key; unpinned attrs are always wild.
	var pinIdx []int
	for i, a := range attrs {
		if _, ok := e.pins[a]; ok {
			pinIdx = append(pinIdx, i)
		}
	}
	parts := make([]string, len(attrs))
	for choice := (1 << len(pinIdx)) - 1; choice >= 0; choice-- {
		for i := range parts {
			parts[i] = "\x02"
		}
		for j, i := range pinIdx {
			if choice&(1<<j) != 0 {
				parts[i] = attrs[i] + "\x01" + e.pins[attrs[i]]
			}
		}
		for _, cand := range g.buckets[strings.Join(parts, "\x00")] {
			if cand.id == e.id || !above(cand, e) {
				continue
			}
			if cand.origin == e.origin {
				return cand
			}
			if best == nil {
				best = cand
			}
		}
	}
	return best
}

// demotableRoots returns the current roots e covers, in deterministic
// order: candidate groups are those whose signature contains every attr of
// e, found through the per-attribute group index and scanned in sorted
// bucket-key order.
func (f *Forest) demotableRoots(e *fentry) []*fentry {
	// The rarest attribute of e has the fewest groups to scan.
	var cands []*sigGroup
	for i, a := range e.attrs {
		gs := f.attrGroups[a]
		if i == 0 || len(gs) < len(cands) {
			cands = gs
		}
	}
	var out []*fentry
	for _, g := range cands {
		if !containsAll(g.attrs, e.attrs) {
			continue
		}
		for _, key := range g.keys {
			for _, r := range g.buckets[key] {
				// Root check first — one load — then pin compatibility,
				// then the full covering test.
				if r.parent != nil || r.id == e.id {
					continue
				}
				if !pinsCompatible(e.pins, r.pins) || !above(e, r) {
					continue
				}
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// pinsCompatible reports whether an entry pinning the attrs/values of
// cover could possibly be covered: every pinned attribute of the cover
// must be pinned to the same value by the member. (A member constraining
// the attr some other way is rejected here conservatively; Covers would
// reject it too in all but exotic cases.)
func pinsCompatible(cover, member map[string]string) bool {
	for a, v := range cover {
		if member[a] != v {
			return false
		}
	}
	return true
}

// addToGroup inserts e into its signature group and bucket.
func (f *Forest) addToGroup(e *fentry) {
	g := f.groups[e.sig]
	if g == nil {
		g = &sigGroup{sig: e.sig, attrs: e.attrs, buckets: make(map[string][]*fentry)}
		f.groups[e.sig] = g
		for _, a := range e.attrs {
			f.attrGroups[a] = append(f.attrGroups[a], g)
		}
	}
	b, ok := g.buckets[e.eqKey]
	if !ok {
		i := sort.SearchStrings(g.keys, e.eqKey)
		g.keys = append(g.keys, "")
		copy(g.keys[i+1:], g.keys[i:])
		g.keys[i] = e.eqKey
	}
	e.bucket = len(b)
	g.buckets[e.eqKey] = append(b, e)
	g.size++
}

// removeFromGroup swap-deletes e from its bucket; empty buckets and groups
// stay allocated (signatures recur; group count is bounded by shape
// classes, not population).
func (f *Forest) removeFromGroup(e *fentry) {
	g := f.groups[e.sig]
	if g == nil {
		return
	}
	b := g.buckets[e.eqKey]
	last := len(b) - 1
	if e.bucket <= last && b[e.bucket] == e {
		b[e.bucket] = b[last]
		b[e.bucket].bucket = e.bucket
		b[last] = nil
		g.buckets[e.eqKey] = b[:last]
		g.size--
	}
}

// containsAll reports whether sorted set super contains sorted set sub.
func containsAll(super, sub []string) bool {
	i := 0
	for _, a := range sub {
		for i < len(super) && super[i] < a {
			i++
		}
		if i == len(super) || super[i] != a {
			return false
		}
		i++
	}
	return true
}

// signatureAttrs returns the sorted distinct attribute names of preds.
func signatureAttrs(preds []subscription.Predicate) []string {
	attrs := make([]string, 0, len(preds))
	for _, p := range preds {
		attrs = append(attrs, p.Attr)
	}
	sort.Strings(attrs)
	out := attrs[:0]
	for i, a := range attrs {
		if i == 0 || attrs[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// pinnedValues maps each attribute constrained by exactly one predicate
// that is a string equality to its pinned value.
func pinnedValues(preds []subscription.Predicate) map[string]string {
	pins := make(map[string]string)
	counts := make(map[string]int)
	for _, p := range preds {
		counts[p.Attr]++
		if p.Op == subscription.OpEq && p.Value.Kind() == event.KindString {
			pins[p.Attr] = p.Value.AsString()
		}
	}
	for a, n := range counts {
		if n != 1 {
			delete(pins, a)
		}
	}
	return pins
}

// eqKeyFor builds the bucket key: per signature attr, either the pinned
// "attr\x01value" or the wildcard marker.
func eqKeyFor(attrs []string, pins map[string]string) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		if v, ok := pins[a]; ok {
			parts[i] = a + "\x01" + v
		} else {
			parts[i] = "\x02"
		}
	}
	return strings.Join(parts, "\x00")
}

// subsetSig builds the signature string of the attrs selected by mask.
func subsetSig(attrs []string, mask int) string {
	var b strings.Builder
	first := true
	for i, a := range attrs {
		if mask&(1<<i) == 0 {
			continue
		}
		if !first {
			b.WriteByte(0)
		}
		b.WriteString(a)
		first = false
	}
	return b.String()
}

// Validate checks the forest invariants — every parent strictly above its
// child, consistent child links, correct root/opaque counts — and returns
// a description of the first violation. Tests and the fuzz target call it
// after every mutation.
func (f *Forest) Validate() string {
	roots, opaque := 0, 0
	for id, e := range f.entries {
		if e.id != id {
			return "entry id mismatch"
		}
		if e.opaque {
			opaque++
			if e.parent != nil {
				return "opaque entry with parent"
			}
			continue
		}
		if e.parent == nil {
			roots++
		} else {
			p := e.parent
			if f.entries[p.id] != p {
				return "parent not in forest"
			}
			if p.children[id] != e {
				return "missing child backlink"
			}
			if !above(p, e) {
				return "parent does not cover child"
			}
		}
		for cid, c := range e.children {
			if c.parent != e {
				return "child with wrong parent"
			}
			if f.entries[cid] != c {
				return "dangling child"
			}
		}
	}
	if roots != f.roots {
		return "root count drift"
	}
	if opaque != f.opaque {
		return "opaque count drift"
	}
	return ""
}
