package covering

import (
	"fmt"
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/core"
	"dimprune/internal/filter"
	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
)

// TestCoveringThenPruning exercises the paper's §2.3 remark that pruning
// extends covering: covering first drops whole covered entries (for free —
// no false positives), then pruning shrinks the survivors. The combination
// must beat either optimization alone on routing-table size.
func TestCoveringThenPruning(t *testing.T) {
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	model := selectivity.NewModel()
	for _, m := range gen.Events(1, 2000) {
		model.Observe(m)
	}
	subs := make([]*subscription.Subscription, 0, 1200)
	for i := 0; len(subs) < cap(subs); i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	assocsOf := func(population []*subscription.Subscription, prunings int) int {
		table := filter.New()
		eng, err := core.NewEngine(core.DimNetwork, model, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range population {
			if err := table.Register(s); err != nil {
				t.Fatal(err)
			}
			if err := eng.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < prunings; i++ {
			op, ok := eng.Step()
			if !ok {
				break
			}
			if err := table.Update(op.Subscription); err != nil {
				t.Fatal(err)
			}
		}
		return table.Associations()
	}

	// Covering alone: keep only uncovered entries.
	ix := NewIndex()
	for _, s := range subs {
		ix.Insert(s)
	}
	forwardable := map[uint64]bool{}
	for _, id := range ix.Forwardable() {
		forwardable[id] = true
	}
	var uncovered []*subscription.Subscription
	for _, s := range subs {
		if forwardable[s.ID] {
			uncovered = append(uncovered, s)
		}
	}
	if len(uncovered) >= len(subs) {
		t.Fatalf("covering dropped nothing (%d of %d)", len(uncovered), len(subs))
	}

	const budget = 600
	baseline := assocsOf(subs, 0)
	coveringOnly := assocsOf(uncovered, 0)
	pruningOnly := assocsOf(subs, budget)
	combined := assocsOf(uncovered, budget)

	t.Logf("associations: baseline=%d covering=%d pruning=%d covering+pruning=%d",
		baseline, coveringOnly, pruningOnly, combined)
	if coveringOnly >= baseline {
		t.Error("covering did not reduce the table")
	}
	if pruningOnly >= baseline {
		t.Error("pruning did not reduce the table")
	}
	if combined >= coveringOnly || combined >= pruningOnly {
		t.Errorf("composition (%d) must beat covering alone (%d) and pruning alone (%d)",
			combined, coveringOnly, pruningOnly)
	}
}
