package covering

import (
	"sort"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func preds(t *testing.T, expr string) []subscription.Predicate {
	t.Helper()
	p, ok := Conjunctive(subscription.MustParse(expr))
	if !ok {
		t.Fatalf("not conjunctive: %s", expr)
	}
	return p
}

func TestConjunctiveExtraction(t *testing.T) {
	if _, ok := Conjunctive(subscription.MustParse(`a = 1 and b <= 2 and c exists`)); !ok {
		t.Error("conjunction rejected")
	}
	if _, ok := Conjunctive(subscription.MustParse(`a = 1`)); !ok {
		t.Error("single leaf rejected")
	}
	notConj := []string{
		`a = 1 or b = 2`,
		`a = 1 and (b = 2 or c = 3)`,
		`not a = 1`,
		`a = 1 and not b = 2`,
	}
	for _, expr := range notConj {
		if _, ok := Conjunctive(subscription.MustParse(expr)); ok {
			t.Errorf("%s accepted as conjunctive", expr)
		}
	}
}

func TestCoversTable(t *testing.T) {
	tests := []struct {
		name     string
		general  string
		specific string
		want     bool
	}{
		{"identical", `price <= 20`, `price <= 20`, true},
		{"looser bound", `price <= 30`, `price <= 20`, true},
		{"tighter bound", `price <= 10`, `price <= 20`, false},
		{"strict vs lax equal", `price < 20`, `price <= 20`, false},
		{"lax vs strict equal", `price <= 20`, `price < 20`, true},
		{"lower bounds", `price >= 5`, `price >= 10`, true},
		{"lower bounds reversed", `price >= 10`, `price >= 5`, false},
		{"eq implies range", `price <= 20`, `price = 15`, true},
		{"eq implies eq", `price = 15`, `price = 15`, true},
		{"eq mismatch", `price = 14`, `price = 15`, false},
		{"eq implies ne", `price != 10`, `price = 15`, true},
		{"exists covered by anything", `price exists`, `price = 15`, true},
		{"fewer predicates cover more", `a = 1`, `a = 1 and b = 2`, true},
		{"more predicates cover less", `a = 1 and b = 2`, `a = 1`, false},
		{"different attributes", `a = 1`, `b = 1`, false},
		{"prefix shorter covers longer", `t prefix "ab"`, `t prefix "abc"`, true},
		{"prefix longer not cover shorter", `t prefix "abc"`, `t prefix "ab"`, false},
		{"eq implies prefix", `t prefix "ab"`, `t = "abcdef"`, true},
		{"contains substring", `t contains "b"`, `t contains "abc"`, true},
		{"suffix", `t suffix "ng"`, `t suffix "ing"`, true},
		{"range interval", `price <= 30 and price >= 5`, `price <= 20 and price >= 10`, true},
		{"range interval too narrow", `price <= 15 and price >= 5`, `price <= 20 and price >= 10`, false},
		{"cross kinds", `price <= 20`, `price = 15.5`, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := preds(t, tt.general)
			s := preds(t, tt.specific)
			if got := Covers(g, s); got != tt.want {
				t.Errorf("Covers(%q, %q) = %v, want %v", tt.general, tt.specific, got, tt.want)
			}
		})
	}
}

func TestCoversSemanticsProperty(t *testing.T) {
	// Soundness: whenever Covers says yes, every matching event of the
	// specific subscription matches the general one.
	r := dist.New(7)
	attrs := []string{"a", "b", "c"}
	randConj := func() *subscription.Node {
		n := r.IntRange(1, 3)
		children := make([]*subscription.Node, 0, n)
		for i := 0; i < n; i++ {
			attr := attrs[r.Intn(len(attrs))]
			switch r.Intn(4) {
			case 0:
				children = append(children, subscription.Eq(attr, event.Int(int64(r.Intn(6)))))
			case 1:
				children = append(children, subscription.Le(attr, event.Int(int64(r.Intn(10)))))
			case 2:
				children = append(children, subscription.Ge(attr, event.Int(int64(r.Intn(10)))))
			default:
				children = append(children, subscription.Exists(attr))
			}
		}
		if len(children) == 1 {
			return children[0]
		}
		return subscription.And(children...)
	}
	checked := 0
	for i := 0; i < 3000; i++ {
		gTree, sTree := randConj().Simplify(), randConj().Simplify()
		g, ok1 := Conjunctive(gTree)
		s, ok2 := Conjunctive(sTree)
		if !ok1 || !ok2 || !Covers(g, s) {
			continue
		}
		checked++
		for j := 0; j < 40; j++ {
			b := event.Build(uint64(j))
			for _, a := range attrs {
				if r.Bool(0.7) {
					b.Int(a, int64(r.Intn(12)))
				}
			}
			m := b.Msg()
			if sTree.Matches(m) && !gTree.Matches(m) {
				t.Fatalf("unsound cover: %s claims to cover %s but misses %s", gTree, sTree, m)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d covering pairs exercised; generator too cold", checked)
	}
}

func TestIndexForwardable(t *testing.T) {
	ix := NewIndex()
	mustInsert := func(id uint64, expr string) {
		s, err := subscription.New(id, "c", subscription.MustParse(expr))
		if err != nil {
			t.Fatal(err)
		}
		ix.Insert(s)
	}
	mustInsert(1, `price <= 30`)                    // covers 2 and 3
	mustInsert(2, `price <= 20`)                    //
	mustInsert(3, `price <= 20 and category = "a"`) //
	mustInsert(4, `rating >= 4`)                    // unrelated
	mustInsert(5, `a = 1 or b = 2`)                 // non-conjunctive: always forwarded

	got := ix.Forwardable()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint64{1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Forwardable = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Forwardable = %v, want %v", got, want)
		}
	}

	// Removing the cover resurrects the covered subscriptions.
	ix.Remove(1)
	got = ix.Forwardable()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want = []uint64{2, 4, 5} // 3 is covered by 2
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("after removal Forwardable = %v, want %v", got, want)
		}
	}
}

func TestIndexEquivalentPair(t *testing.T) {
	ix := NewIndex()
	for _, id := range []uint64{7, 9} {
		s, err := subscription.New(id, "c", subscription.MustParse(`price <= 20`))
		if err != nil {
			t.Fatal(err)
		}
		ix.Insert(s)
	}
	got := ix.Forwardable()
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("equivalent pair Forwardable = %v, want just 7", got)
	}
}

func TestCoveredBy(t *testing.T) {
	ix := NewIndex()
	s1, _ := subscription.New(1, "c", subscription.MustParse(`price <= 30`))
	s2, _ := subscription.New(2, "c", subscription.MustParse(`price <= 20`))
	ix.Insert(s1)
	ix.Insert(s2)
	if by, ok := ix.CoveredBy(2); !ok || by != 1 {
		t.Errorf("CoveredBy(2) = %d, %v", by, ok)
	}
	if _, ok := ix.CoveredBy(1); ok {
		t.Error("cover reported as covered")
	}
	if _, ok := ix.CoveredBy(99); ok {
		t.Error("unknown ID reported as covered")
	}
}
