package covering

import (
	"fmt"
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func fsub(t testing.TB, id uint64, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, fmt.Sprintf("s%d", id), subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// validate fails the test on the first forest-invariant violation.
func validate(t testing.TB, f *Forest) {
	t.Helper()
	if msg := f.Validate(); msg != "" {
		t.Fatalf("forest invariant violated: %s", msg)
	}
}

func TestForestInsertCoverAndState(t *testing.T) {
	f := NewForest()
	trs := f.Insert(fsub(t, 1, `price <= 50`), 0)
	validate(t, f)
	if len(trs) != 1 || trs[0].NewCovered || !trs[0].Exists || trs[0].NewOrigin != 0 {
		t.Fatalf("root insert transitions = %+v", trs)
	}
	if f.Roots() != 1 || f.Len() != 1 {
		t.Fatalf("roots=%d len=%d after first insert", f.Roots(), f.Len())
	}

	// A strictly tighter subscription attaches under the root.
	trs = f.Insert(fsub(t, 2, `price <= 20 and sector = "tech"`), 1)
	validate(t, f)
	if len(trs) != 1 || !trs[0].NewCovered || trs[0].NewCoverOrigin != 0 {
		t.Fatalf("covered insert transitions = %+v", trs)
	}
	if cov, ok := f.CoveredBy(2); !ok || cov != 1 {
		t.Fatalf("CoveredBy(2) = %d, %v", cov, ok)
	}
	covered, coverOrigin, opaque, ok := f.State(2)
	if !ok || !covered || coverOrigin != 0 || opaque {
		t.Fatalf("State(2) = %v %d %v %v", covered, coverOrigin, opaque, ok)
	}
	if f.Roots() != 1 {
		t.Fatalf("roots=%d with one covered entry", f.Roots())
	}

	// Removing the cover promotes the child to a root.
	trs = f.Remove(1)
	validate(t, f)
	if len(trs) != 2 {
		t.Fatalf("remove transitions = %+v", trs)
	}
	if trs[0].ID != 1 || !trs[0].Existed || trs[0].Exists {
		t.Fatalf("removal transition = %+v", trs[0])
	}
	if trs[1].ID != 2 || !trs[1].OldCovered || trs[1].NewCovered {
		t.Fatalf("promotion transition = %+v", trs[1])
	}
	if f.Roots() != 1 || f.Len() != 1 {
		t.Fatalf("roots=%d len=%d after cover removal", f.Roots(), f.Len())
	}
}

func TestForestDemotesCoveredRoots(t *testing.T) {
	f := NewForest()
	// Two specific roots, then a general entry that covers both.
	f.Insert(fsub(t, 10, `price <= 20`), 0)
	f.Insert(fsub(t, 11, `price <= 30 and volume >= 5`), 1)
	validate(t, f)
	if f.Roots() != 2 {
		t.Fatalf("roots=%d before general insert", f.Roots())
	}
	trs := f.Insert(fsub(t, 12, `price <= 100`), 2)
	validate(t, f)
	if f.Roots() != 1 {
		t.Fatalf("roots=%d after general insert", f.Roots())
	}
	// One transition for the new entry, one per demoted root, ascending ID.
	if len(trs) != 3 || trs[0].ID != 12 || trs[1].ID != 10 || trs[2].ID != 11 {
		t.Fatalf("demotion transitions = %+v", trs)
	}
	for _, tr := range trs[1:] {
		if tr.OldCovered || !tr.NewCovered || tr.NewCoverOrigin != 2 {
			t.Fatalf("demoted root transition = %+v", tr)
		}
	}
}

func TestForestEquivalentEntriesChainByID(t *testing.T) {
	f := NewForest()
	// Equivalent subscriptions must order by ID (lowest is the root) and
	// never cycle, whatever the insertion order.
	f.Insert(fsub(t, 3, `x = 1`), 0)
	f.Insert(fsub(t, 1, `x = 1`), 1)
	f.Insert(fsub(t, 2, `x = 1`), 2)
	validate(t, f)
	if f.Roots() != 1 {
		t.Fatalf("roots=%d among equivalents", f.Roots())
	}
	if covered, _, _, _ := f.State(1); covered {
		t.Error("lowest-ID equivalent is covered")
	}
	for _, id := range []uint64{2, 3} {
		cov, ok := f.CoveredBy(id)
		if !ok || cov >= id {
			t.Errorf("CoveredBy(%d) = %d, %v — want a lower-ID cover", id, cov, ok)
		}
	}
	// Removing the root re-roots exactly one survivor.
	f.Remove(1)
	validate(t, f)
	if f.Roots() != 1 || f.Len() != 2 {
		t.Fatalf("roots=%d len=%d after root removal", f.Roots(), f.Len())
	}
}

func TestForestOpaqueShapes(t *testing.T) {
	f := NewForest()
	cases := []string{
		`a = 1 or b = 2`,
		`not a = 1`,
		`a = 1 and (b = 2 or c = 3)`,
	}
	for i, expr := range cases {
		trs := f.Insert(fsub(t, uint64(i+1), expr), 0)
		validate(t, f)
		if len(trs) != 1 || !trs[0].Opaque {
			t.Errorf("%s: transitions = %+v, want one opaque", expr, trs)
		}
	}
	// A conjunction over more than maxSigAttrs attributes is opaque too.
	wide := "a0 = 1"
	for i := 1; i <= maxSigAttrs; i++ {
		wide += fmt.Sprintf(" and a%d = 1", i)
	}
	trs := f.Insert(fsub(t, 100, wide), 0)
	validate(t, f)
	if !trs[0].Opaque {
		t.Errorf("%d-attribute conjunction not opaque", maxSigAttrs+1)
	}
	if f.Opaque() != len(cases)+1 || f.Roots() != 0 {
		t.Errorf("opaque=%d roots=%d", f.Opaque(), f.Roots())
	}
	// Opaque entries never cover anything: a conjunctive insert stays root.
	f.Insert(fsub(t, 200, `a = 1 and b = 2`), 0)
	validate(t, f)
	if covered, _, _, _ := f.State(200); covered {
		t.Error("conjunctive entry covered by an opaque one")
	}
}

func TestForestRemoveBatchPromotesToSurvivingAncestor(t *testing.T) {
	f := NewForest()
	// Chain: 1 covers 2 covers 3 — built middle-out so the single-witness
	// parent search links 3 under 2 before the loosest entry arrives and
	// demotes 2. Batch-remove {1, 2}: the orphan 3 must become a root,
	// never re-parenting onto the dying 2.
	f.Insert(fsub(t, 2, `p <= 50`), 1)
	f.Insert(fsub(t, 3, `p <= 10`), 2)
	f.Insert(fsub(t, 1, `p <= 100`), 0)
	validate(t, f)
	if cov, _ := f.CoveredBy(3); cov != 2 {
		t.Fatalf("CoveredBy(3) = %d, want 2", cov)
	}
	trs := f.RemoveBatch([]uint64{1, 2})
	validate(t, f)
	if f.Len() != 1 || f.Roots() != 1 {
		t.Fatalf("len=%d roots=%d after batch removal", f.Len(), f.Roots())
	}
	last := trs[len(trs)-1]
	if last.ID != 3 || !last.OldCovered || last.NewCovered {
		t.Fatalf("orphan transition = %+v", last)
	}

	// Same chain, but only the middle dies: the orphan walks to the
	// closest surviving ancestor.
	f = NewForest()
	f.Insert(fsub(t, 2, `p <= 50`), 1)
	f.Insert(fsub(t, 3, `p <= 10`), 2)
	f.Insert(fsub(t, 1, `p <= 100`), 0)
	f.RemoveBatch([]uint64{2})
	validate(t, f)
	if cov, ok := f.CoveredBy(3); !ok || cov != 1 {
		t.Fatalf("CoveredBy(3) = %d, %v — want the surviving ancestor 1", cov, ok)
	}
}

func TestForestReplaceAndUnknownRemove(t *testing.T) {
	f := NewForest()
	if trs := f.Remove(9); trs != nil {
		t.Errorf("unknown remove returned %+v", trs)
	}
	f.Insert(fsub(t, 1, `x <= 10`), 0)
	// Same ID, new content and origin: the old entry leaves, the new one
	// enters; children of the old entry re-attach.
	f.Insert(fsub(t, 2, `x <= 5`), 1)
	trs := f.Insert(fsub(t, 1, `y = 3`), 2)
	validate(t, f)
	if f.Len() != 2 {
		t.Fatalf("len=%d after replace", f.Len())
	}
	var sawRemoval, sawInsert bool
	for _, tr := range trs {
		if tr.ID == 1 && tr.Existed && !tr.Exists {
			sawRemoval = true
		}
		if tr.ID == 1 && tr.Exists && tr.NewOrigin == 2 {
			sawInsert = true
		}
	}
	if !sawRemoval || !sawInsert {
		t.Fatalf("replace transitions = %+v", trs)
	}
	if covered, _, _, _ := f.State(2); covered {
		t.Error("entry 2 still covered after its cover's content changed")
	}
}

// matchAttrs generates the probe events the semantic checks run against.
func probeEvents() []*event.Message {
	var out []*event.Message
	id := uint64(1)
	for p := 0; p <= 60; p += 15 {
		for v := 0; v <= 20; v += 10 {
			for _, s := range []string{"tech", "energy"} {
				out = append(out, event.Build(id).Int("price", int64(p)).
					Int("volume", int64(v)).Str("sector", s).Msg())
				id++
			}
		}
	}
	return out
}

// advertEquivalence checks the forest's load-bearing guarantee on one
// origin link: the advertised set toward the link matches exactly the
// events the full set (entries originating elsewhere) matches.
func advertEquivalence(t testing.TB, f *Forest, subs map[uint64]*subscription.Subscription,
	origins map[uint64]int, link int, events []*event.Message) {
	t.Helper()
	for _, m := range events {
		full, adv := false, false
		for id, s := range subs {
			if origins[id] == link || !s.Matches(m) {
				continue
			}
			full = true
			covered, coverOrigin, _, ok := f.State(id)
			if !ok {
				t.Fatalf("entry %d missing from forest", id)
			}
			if !covered || coverOrigin == link {
				adv = true
				break
			}
		}
		if full != adv {
			t.Fatalf("link %d, event %d: full-set match %v but advertised-set match %v",
				link, m.ID, full, adv)
		}
	}
}

func TestForestAdvertisementSemantics(t *testing.T) {
	exprs := []string{
		`price <= 50`,
		`price <= 20`,
		`price <= 20 and sector = "tech"`,
		`price <= 35 and volume >= 10`,
		`sector = "tech"`,
		`sector = "energy" and price <= 45`,
		`price >= 15 and price <= 30`,
		`volume >= 5 or sector = "tech"`, // opaque
		`price = 30`,
	}
	f := NewForest()
	subs := make(map[uint64]*subscription.Subscription)
	origins := make(map[uint64]int)
	for i, expr := range exprs {
		id := uint64(i + 1)
		s := fsub(t, id, expr)
		f.Insert(s, i%3)
		subs[id] = s
		origins[id] = i % 3
		validate(t, f)
	}
	events := probeEvents()
	for link := 0; link < 3; link++ {
		advertEquivalence(t, f, subs, origins, link, events)
	}
	// Churn: remove half, re-check, re-insert with new origins, re-check.
	for id := uint64(1); id <= 4; id++ {
		f.Remove(id)
		delete(subs, id)
		delete(origins, id)
		validate(t, f)
	}
	for link := 0; link < 3; link++ {
		advertEquivalence(t, f, subs, origins, link, events)
	}
	for i, expr := range exprs[:4] {
		id := uint64(i + 1)
		s := fsub(t, id, expr)
		f.Insert(s, (i+1)%3)
		subs[id] = s
		origins[id] = (i + 1) % 3
		validate(t, f)
	}
	for link := 0; link < 3; link++ {
		advertEquivalence(t, f, subs, origins, link, events)
	}
}

// FuzzCoverForest drives a random mutation sequence against the forest and
// checks, after every step, the structural invariants and — at the end —
// the advertisement-set equivalence against probe events.
func FuzzCoverForest(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{10, 200, 10, 200, 10, 200})
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32})
	exprs := []string{
		`price <= 50`,
		`price <= 20`,
		`price <= 20 and sector = "tech"`,
		`price <= 35 and volume >= 10`,
		`sector = "tech"`,
		`sector = "energy" and price <= 45`,
		`price >= 15`,
		`price >= 15 and price <= 30`,
		`volume >= 5 or sector = "tech"`,
		`price = 30`,
		`x = 1`,
		`price exists`,
	}
	events := probeEvents()
	f.Fuzz(func(t *testing.T, data []byte) {
		forest := NewForest()
		subs := make(map[uint64]*subscription.Subscription)
		origins := make(map[uint64]int)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			id := uint64(arg%16 + 1)
			switch op % 3 {
			case 0, 1: // insert (possibly replacing)
				s := fsub(t, id, exprs[int(op)%len(exprs)])
				origin := int(op) % 4
				forest.Insert(s, origin)
				subs[id] = s
				origins[id] = origin
			case 2: // remove
				forest.Remove(id)
				delete(subs, id)
				delete(origins, id)
			}
			if msg := forest.Validate(); msg != "" {
				t.Fatalf("step %d: invariant violated: %s", i/2, msg)
			}
			if forest.Len() != len(subs) {
				t.Fatalf("step %d: forest len %d, mirror %d", i/2, forest.Len(), len(subs))
			}
		}
		for link := 0; link < 4; link++ {
			advertEquivalence(t, forest, subs, origins, link, events)
		}
	})
}
