// Package covering implements subscription covering, the related routing
// optimization the paper positions pruning against (§2.3): when
// subscription g is more general than s — every event matching s matches
// g — a broker forwarding g to a neighbor need not forward s.
//
// As in the systems cited by the paper (SIENA, REBECA, PADRES), covering is
// restricted to conjunctive, non-negated subscriptions; Boolean trees with
// disjunctions fall back to "uncoverable". This limitation is exactly the
// motivation for pruning, and the covering-vs-pruning bench quantifies the
// difference on mixed workloads.
package covering

import (
	"strings"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Conjunctive extracts the predicate list of a conjunctive, non-negated
// subscription tree: a single predicate leaf or an AND of predicate leaves.
// ok is false for any other shape (disjunctions, nested trees, negations).
func Conjunctive(root *subscription.Node) ([]subscription.Predicate, bool) {
	switch root.Kind {
	case subscription.NodeLeaf:
		if root.Pred.Negated {
			return nil, false
		}
		return []subscription.Predicate{root.Pred}, true
	case subscription.NodeAnd:
		preds := make([]subscription.Predicate, 0, len(root.Children))
		for _, c := range root.Children {
			if c.Kind != subscription.NodeLeaf || c.Pred.Negated {
				return nil, false
			}
			preds = append(preds, c.Pred)
		}
		return preds, true
	default:
		return nil, false
	}
}

// Covers reports whether the conjunction general covers the conjunction
// specific: matches(specific) ⊆ matches(general). The check is the standard
// sufficient predicate-wise test: every predicate of general must be
// implied by some predicate of specific on the same attribute. It never
// reports false positives; it can miss covers that need multi-predicate
// reasoning, as do the systems the paper cites.
func Covers(general, specific []subscription.Predicate) bool {
	for _, g := range general {
		implied := false
		for _, s := range specific {
			if s.Attr == g.Attr && implies(s, g) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// implies reports whether predicate s (on the same attribute as g)
// guarantees g: every value satisfying s satisfies g.
func implies(s, g subscription.Predicate) bool {
	if g.Op == subscription.OpExists {
		// Any satisfied predicate proves the attribute present.
		return true
	}
	switch s.Op {
	case subscription.OpEq:
		// A pinned value: g holds iff g accepts that value.
		return g.EvalValue(s.Value)
	case subscription.OpLt, subscription.OpLe:
		return rangeImplies(s, g, false)
	case subscription.OpGt, subscription.OpGe:
		return rangeImplies(s, g, true)
	case subscription.OpPrefix:
		// prefix "abc" implies prefix "ab".
		return g.Op == subscription.OpPrefix &&
			bothStrings(s, g) && strings.HasPrefix(s.Value.AsString(), g.Value.AsString())
	case subscription.OpSuffix:
		return g.Op == subscription.OpSuffix &&
			bothStrings(s, g) && strings.HasSuffix(s.Value.AsString(), g.Value.AsString())
	case subscription.OpContains:
		return g.Op == subscription.OpContains &&
			bothStrings(s, g) && strings.Contains(s.Value.AsString(), g.Value.AsString())
	default:
		return false
	}
}

func bothStrings(a, b subscription.Predicate) bool {
	return a.Value.Kind() == event.KindString && b.Value.Kind() == event.KindString
}

// rangeImplies handles one-sided intervals. For lower=false, s is x<v or
// x<=v; for lower=true, s is x>v or x>=v.
func rangeImplies(s, g subscription.Predicate, lower bool) bool {
	cmp, ok := s.Value.Compare(g.Value)
	if !ok {
		return false
	}
	sStrict := s.Op == subscription.OpLt || s.Op == subscription.OpGt
	gStrict := g.Op == subscription.OpLt || g.Op == subscription.OpGt
	if !lower {
		// s: x < v (or <=). g must be an upper bound x < w (or <=) with the
		// s-interval inside the g-interval.
		if g.Op != subscription.OpLt && g.Op != subscription.OpLe {
			return false
		}
		// (x op v) ⇒ (x op' w) iff v < w, or v == w and (s strict or g lax).
		return cmp < 0 || (cmp == 0 && (sStrict || !gStrict))
	}
	if g.Op != subscription.OpGt && g.Op != subscription.OpGe {
		return false
	}
	return cmp > 0 || (cmp == 0 && (sStrict || !gStrict))
}

// Entry is one subscription tracked by the Index.
type Entry struct {
	ID    uint64
	preds []subscription.Predicate
	// conjunctive is false for shapes covering cannot reason about; they
	// are always forwarded.
	conjunctive bool
}

// Index maintains the covering relation over a subscription population, the
// way a broker would use it to shrink forwarded sets: Forwardable returns
// only the subscriptions not covered by another live subscription.
//
// The implementation is the O(n²) pairwise check the sufficient condition
// admits; population sizes in the benches keep this tractable, and the
// point of the comparison is table size, not indexing speed.
type Index struct {
	entries map[uint64]*Entry
}

// NewIndex returns an empty covering index.
func NewIndex() *Index {
	return &Index{entries: make(map[uint64]*Entry)}
}

// Insert adds a subscription.
func (ix *Index) Insert(s *subscription.Subscription) {
	preds, ok := Conjunctive(s.Root)
	ix.entries[s.ID] = &Entry{ID: s.ID, preds: preds, conjunctive: ok}
}

// Remove deletes a subscription.
func (ix *Index) Remove(id uint64) {
	delete(ix.entries, id)
}

// Len returns the number of tracked subscriptions.
func (ix *Index) Len() int { return len(ix.entries) }

// CoveredBy returns the ID of a live subscription strictly covering id, and
// whether one exists. Mutually covering (equivalent) subscriptions break
// the tie by ID so exactly one of them survives Forwardable.
func (ix *Index) CoveredBy(id uint64) (uint64, bool) {
	e := ix.entries[id]
	if e == nil || !e.conjunctive {
		return 0, false
	}
	for _, o := range ix.entries {
		if o.ID == id || !o.conjunctive {
			continue
		}
		if !Covers(o.preds, e.preds) {
			continue
		}
		if Covers(e.preds, o.preds) && o.ID > id {
			continue // equivalent: the lower ID represents the pair
		}
		return o.ID, true
	}
	return 0, false
}

// Forwardable returns the IDs a broker must forward: subscriptions not
// covered by any other live subscription (non-conjunctive ones always
// forward). Order is unspecified.
func (ix *Index) Forwardable() []uint64 {
	var out []uint64
	for id := range ix.entries {
		if _, covered := ix.CoveredBy(id); !covered {
			out = append(out, id)
		}
	}
	return out
}
