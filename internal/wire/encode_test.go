package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"
	"unsafe"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// allocTestFrame is the fixed publish frame of the allocation bounds: four
// attributes, one string value — the auction workload's shape.
func allocTestFrame(t testing.TB) (Frame, []byte, []byte) {
	t.Helper()
	m := event.Build(77).
		Int("bids", 12).
		Num("price", 19.5).
		Flag("signed", true).
		Str("title", "A Wizard of Earthsea").
		Msg()
	f := PublishFrame(m)
	payload, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := WriteFrame(&stream, f); err != nil {
		t.Fatal(err)
	}
	return f, payload, append([]byte(nil), stream.Bytes()...)
}

// TestEncodedFrameSharing checks the encode-once contract: the buffer holds
// the stream encoding (header + payload), survives until the last reference
// is dropped, and a release-to-zero recycles it.
func TestEncodedFrameSharing(t *testing.T) {
	f, payload, stream := allocTestFrame(t)
	e, err := EncodeFrame(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Bytes(), stream) {
		t.Fatalf("EncodedFrame bytes differ from WriteFrame stream\n got %x\nwant %x", e.Bytes(), stream)
	}
	if e.FrameLen() != len(payload) {
		t.Errorf("FrameLen = %d, payload is %d", e.FrameLen(), len(payload))
	}
	if e.FrameLen() != FrameSize(f) {
		t.Errorf("FrameLen = %d, FrameSize = %d", e.FrameLen(), FrameSize(f))
	}
	// Two of three recipients release; the bytes must stay intact.
	e.Release()
	e.Release()
	if !bytes.Equal(e.Bytes(), stream) {
		t.Fatal("encoded bytes changed while a reference was still held")
	}
	// Retain while held, then fully release.
	e.Retain(1)
	e.Release()
	e.Release()
}

func TestEncodedFrameOverReleasePanics(t *testing.T) {
	f, _, _ := allocTestFrame(t)
	e, err := EncodeFrame(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Release()
	defer func() {
		if recover() == nil {
			t.Error("Release past zero did not panic")
		}
	}()
	// The frame may already be back in the pool; copy semantics make this
	// racy in production code, which is exactly why it must panic loudly.
	e.Retain(1)
}

// TestFrameSizeVisitorMatchesEncoder cross-checks the size visitor against
// real encodings over randomized frames — FrameSize must be exact, not an
// estimate, because the traffic counters and the simnet/network byte
// accounting differential rely on it.
func TestFrameSizeVisitorMatchesEncoder(t *testing.T) {
	r := dist.New(7)
	for i := 0; i < 300; i++ {
		root := randomTree(r, 3)
		s, err := subscription.New(uint64(r.Intn(1<<40)), fmt.Sprintf("sub%d", r.Intn(1000)), root)
		if err != nil {
			continue // randomTree can produce trees New rejects; size only covers valid frames
		}
		attrs := []event.Attr{
			{Name: "price", Value: event.Float(r.Range(0, 100))},
			{Name: "bids", Value: event.Int(int64(r.Intn(1 << 30)))},
			{Name: "title", Value: event.String(string(rune('a' + r.Intn(26))))},
			{Name: "signed", Value: event.Bool(r.Bool(0.5))},
		}
		m, err := event.NewMessage(uint64(r.Intn(1<<50)), attrs...)
		if err != nil {
			t.Fatal(err)
		}
		frames := []Frame{
			SubscribeFrame(s),
			UnsubscribeFrame(uint64(r.Intn(1 << 60))),
			PublishFrame(m),
			HelloFrame(fmt.Sprintf("client-%d", r.Intn(100))),
			PeerHelloFrame(&PeerHello{ID: "b0", Members: []string{"b0", fmt.Sprintf("b%d", r.Intn(50))}}),
			PeerRejectFrame("no"),
		}
		for _, f := range frames {
			enc, err := AppendFrame(nil, f)
			if err != nil {
				t.Fatal(err)
			}
			if got := FrameSize(f); got != len(enc) {
				t.Fatalf("%s: FrameSize = %d, encoded %d bytes", f.Type, got, len(enc))
			}
		}
	}
}

// TestEncodeCallsHook checks the test hook the encode-once assertions build
// on: EncodeFrame costs exactly one payload encode, FrameSize costs none.
func TestEncodeCallsHook(t *testing.T) {
	f, _, _ := allocTestFrame(t)
	start := EncodeCalls()
	e, err := EncodeFrame(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Release()
	if got := EncodeCalls() - start; got != 1 {
		t.Errorf("EncodeFrame performed %d encodes, want 1", got)
	}
	start = EncodeCalls()
	_ = FrameSize(f)
	_ = MessageSize(f.Msg)
	if got := EncodeCalls() - start; got != 0 {
		t.Errorf("size visitor performed %d encodes, want 0", got)
	}
}

// TestDecodeInternsNames checks that repeated decodes of the same frame
// share one canonical copy of each attribute name and subscriber — the
// allocation-free steady state of a broker's read loop.
func TestDecodeInternsNames(t *testing.T) {
	_, payload, _ := allocTestFrame(t)
	f1, _, err := DecodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := DecodeFrame(append([]byte(nil), payload...)) // distinct input bytes
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Msg.Attrs {
		a, b := f1.Msg.Attrs[i].Name, f2.Msg.Attrs[i].Name
		if a != b {
			t.Fatalf("attr %d name mismatch: %q vs %q", i, a, b)
		}
		if unsafe.StringData(a) != unsafe.StringData(b) {
			t.Errorf("attr name %q not interned: two decodes hold distinct copies", a)
		}
	}

	s, err := subscription.New(9, "carol", subscription.MustParse(`price <= 20`))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := AppendFrame(nil, SubscribeFrame(s))
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := DecodeFrame(append([]byte(nil), enc...))
	if err != nil {
		t.Fatal(err)
	}
	if unsafe.StringData(g1.Sub.Subscriber) != unsafe.StringData(g2.Sub.Subscriber) {
		t.Error("subscriber name not interned across decodes")
	}
}

// TestInternerBounded checks the intern table degrades to plain copying —
// rather than growing — past its entry cap and for oversized strings.
func TestInternerBounded(t *testing.T) {
	in := &interner{m: make(map[string]string)}
	for i := 0; i < maxInternEntries+100; i++ {
		_ = in.get([]byte(fmt.Sprintf("name-%d", i)))
	}
	if len(in.m) != maxInternEntries {
		t.Errorf("interner grew to %d entries, cap is %d", len(in.m), maxInternEntries)
	}
	long := bytes.Repeat([]byte("x"), maxInternLen+1)
	before := len(in.m)
	_ = in.get(long)
	_ = names.get(long)
	if len(in.m) != before {
		t.Error("oversized string was interned")
	}
}

// TestPeerHelloDoesNotIntern checks the saturation isolation: peer hellos
// are unauthenticated, pre-handshake input, so decoding one — however many
// unique member IDs it carries — must not add a single entry to the intern
// tables that back the hot attribute-name and subscriber paths.
func TestPeerHelloDoesNotIntern(t *testing.T) {
	members := make([]string, 64)
	for i := range members {
		members[i] = fmt.Sprintf("hostile-broker-%d", i)
	}
	enc, err := AppendFrame(nil, PeerHelloFrame(&PeerHello{ID: "hostile", Members: members}))
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := func(in *interner) int {
		in.mu.RLock()
		defer in.mu.RUnlock()
		return len(in.m)
	}
	n0, i0 := sizeBefore(names), sizeBefore(idents)
	f, _, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Peer.Members) != len(members) {
		t.Fatalf("decoded %d members, want %d", len(f.Peer.Members), len(members))
	}
	if n, i := sizeBefore(names), sizeBefore(idents); n != n0 || i != i0 {
		t.Errorf("peer hello decode grew intern tables: names %d→%d, idents %d→%d", n0, n, i0, i)
	}
}

// TestReadFrameSteadyStateAllocs bounds the steady-state allocation cost of
// the stream read path: one Message, one attrs slice, one copy per string
// value — and nothing per attribute name, per read buffer, or per header.
func TestReadFrameSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	_, _, stream := allocTestFrame(t)
	src := bytes.NewReader(stream)
	br := bufio.NewReader(src)
	// Warm the name intern table and the buffer pools.
	if _, err := ReadFrame(br); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		src.Reset(stream)
		br.Reset(src)
		if _, err := ReadFrame(br); err != nil {
			t.Fatal(err)
		}
	})
	// Message + attrs slice + one string value, plus slack for a GC clearing
	// the pools mid-run. The pre-pooling path cost ~10.
	if allocs > 4.5 {
		t.Errorf("ReadFrame steady state allocates %.1f objects per frame, want <= 4.5", allocs)
	}
}

// TestDecodeMessageSteadyStateAllocs bounds DecodeMessage alone (no stream
// framing): the same three-object budget.
func TestDecodeMessageSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	_, payload, _ := allocTestFrame(t)
	body := payload[1:] // strip the frame-type byte
	if _, _, err := DecodeMessage(body); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeMessage(body); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3.5 {
		t.Errorf("DecodeMessage steady state allocates %.1f objects, want <= 3.5", allocs)
	}
}

// TestPooledReadBufferNeverEscapes proves decoded frames never alias the
// pooled read buffer: after the buffer is reused (and overwritten) by later
// reads, earlier messages must be intact. The concurrent half runs under
// -race, which additionally flags any sharing of pooled buffers across
// goroutines.
func TestPooledReadBufferNeverEscapes(t *testing.T) {
	mkStream := func(id uint64, title string, price float64) []byte {
		var buf bytes.Buffer
		m := event.Build(id).Str("title", title).Num("price", price).Int("bids", int64(id)).Msg()
		if err := WriteFrame(&buf, PublishFrame(m)); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	check := func(t *testing.T, f Frame, id uint64, title string, price float64) {
		t.Helper()
		if f.Msg.ID != id {
			t.Errorf("message ID corrupted: %d, want %d", f.Msg.ID, id)
		}
		if v, _ := f.Msg.Get("title"); v.AsString() != title {
			t.Errorf("title corrupted: %q, want %q", v.AsString(), title)
		}
		if v, _ := f.Msg.Get("price"); v.AsFloat() != price {
			t.Errorf("price corrupted: %v, want %v", v.AsFloat(), price)
		}
	}
	sA := mkStream(1, "aaaaaaaaaaaaaaaa", 10)
	sB := mkStream(2, "bbbbbbbbbbbbbbbb", 20)

	// Sequential: read A, then hammer the pool with B reads that overwrite
	// the recycled buffer, then verify A.
	src := bytes.NewReader(sA)
	br := bufio.NewReader(src)
	fA, err := ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		src.Reset(sB)
		br.Reset(src)
		if _, err := ReadFrame(br); err != nil {
			t.Fatal(err)
		}
	}
	check(t, fA, 1, "aaaaaaaaaaaaaaaa", 10)

	// Concurrent: every goroutine alternates frames, retaining the previous
	// decode while the pool churns under all of them.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := bytes.NewReader(sA)
			br := bufio.NewReader(src)
			var prev Frame
			var prevB bool
			for i := 0; i < 500; i++ {
				useB := (i+g)%2 == 0
				s := sA
				if useB {
					s = sB
				}
				src.Reset(s)
				br.Reset(src)
				f, err := ReadFrame(br)
				if err != nil {
					t.Error(err)
					return
				}
				if prev.Msg != nil {
					if prevB {
						check(t, prev, 2, "bbbbbbbbbbbbbbbb", 20)
					} else {
						check(t, prev, 1, "aaaaaaaaaaaaaaaa", 10)
					}
				}
				prev, prevB = f, useB
			}
		}(g)
	}
	wg.Wait()
}
