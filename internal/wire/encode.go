package wire

import (
	"encoding/binary"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Encode-once fast path.
//
// The hot path of a networked broker encodes each outgoing frame exactly
// once, into a pooled EncodedFrame that already carries the stream format's
// uvarint length prefix, and shares that buffer immutably across every
// outbox that forwards it. Reference counting returns the buffer to the
// pool when the last recipient has written it.
//
// Ownership rules (see also ARCHITECTURE.md, "Wire fast path"):
//
//   - EncodeFrame(f, refs) hands the caller refs references. The caller
//     distributes them — typically one per recipient outbox — and each
//     holder calls Release exactly once (after the socket write, or when a
//     recipient turns out to be detached).
//   - Retain(n) adds references and may only be called while at least one
//     reference is provably held.
//   - After its final Release, an EncodedFrame must not be touched: the
//     buffer is back in the pool and will be overwritten by the next encode.
//   - Bytes() and FrameLen() are read-only views; holders never mutate the
//     buffer.
//
// Callers that only need a frame's encoded size never encode at all: the
// size visitor (FrameSize, MessageSize, SubscriptionSize) walks the value
// and sums the exact byte counts the encoder would produce.

// maxHeaderLen is the reserved room for the uvarint length prefix.
const maxHeaderLen = binary.MaxVarintLen64

// maxPooledEncode bounds the buffer capacity the encode pool retains; a
// pathologically large frame is allocated and GC'd instead of pinning its
// capacity in the pool forever.
const maxPooledEncode = 64 << 10

// EncodedFrame is one frame encoded once in the stream format: a uvarint
// payload-length header followed by the frame payload. It is immutable to
// its holders and shared across recipients by reference counting.
type EncodedFrame struct {
	buf  []byte // maxHeaderLen reserved bytes, then the payload
	off  int    // start of the header within buf
	refs atomic.Int32
}

var encodePool = sync.Pool{New: func() any { return new(EncodedFrame) }}

// encodeCalls counts frame payload encodings — the test hook behind the
// encode-once guarantee (see EncodeCalls).
var encodeCalls atomic.Uint64

// EncodeCalls returns the process-wide number of frame payload encodings
// performed so far. It is a test and diagnostics hook: benchmarks and the
// fan-out tests snapshot it around a dispatch to prove each frame was
// encoded exactly once regardless of recipient count.
func EncodeCalls() uint64 { return encodeCalls.Load() }

// EncodeFrame encodes f once into a pooled, length-prefixed buffer and
// returns it with refs references held by the caller. refs must be at least
// 1; every reference must eventually be dropped with Release.
func EncodeFrame(f Frame, refs int32) (*EncodedFrame, error) {
	if refs < 1 {
		refs = 1
	}
	e := encodePool.Get().(*EncodedFrame)
	if e.buf == nil {
		e.buf = make([]byte, maxHeaderLen, maxHeaderLen+256)
	}
	buf, err := AppendFrame(e.buf[:maxHeaderLen], f)
	if err != nil {
		e.buf = e.buf[:maxHeaderLen]
		encodePool.Put(e)
		return nil, err
	}
	// Write the uvarint header into the reserved room, ending flush against
	// the payload, via a stack header array (no per-frame header slice).
	var hdr [maxHeaderLen]byte
	n := binary.PutUvarint(hdr[:], uint64(len(buf)-maxHeaderLen))
	e.off = maxHeaderLen - n
	copy(buf[e.off:maxHeaderLen], hdr[:n])
	e.buf = buf
	e.refs.Store(refs)
	return e, nil
}

// Bytes returns the full stream encoding — header plus payload — valid only
// while the caller holds a reference.
func (e *EncodedFrame) Bytes() []byte { return e.buf[e.off:] }

// FrameLen returns the encoded payload length in bytes, the unit FrameSize
// reports and the traffic counters charge (the stream header is transport
// framing, not frame payload).
func (e *EncodedFrame) FrameLen() int { return len(e.buf) - maxHeaderLen }

// Retain adds n references. The caller must already hold one.
func (e *EncodedFrame) Retain(n int32) {
	if e.refs.Add(n) <= n {
		panic("wire: Retain on a released EncodedFrame")
	}
}

// Release drops one reference; the last one returns the buffer to the pool.
func (e *EncodedFrame) Release() {
	r := e.refs.Add(-1)
	if r > 0 {
		return
	}
	if r < 0 {
		panic("wire: EncodedFrame over-released")
	}
	if cap(e.buf) <= maxPooledEncode {
		e.buf = e.buf[:maxHeaderLen]
		encodePool.Put(e)
	}
}

// WriteTo writes the full stream encoding to w in one call. It does not
// release the caller's reference.
func (e *EncodedFrame) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.Bytes())
	return int64(n), err
}

// --- Size visitor -----------------------------------------------------------
//
// Exact encoded sizes without encoding: each function mirrors the
// corresponding Append* byte for byte (cross-checked by the golden-bytes
// and round-trip tests, which compare sizes against real encodings).

// uvarintLen returns len(binary.AppendUvarint(nil, v)).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// varintLen returns len(binary.AppendVarint(nil, v)) (zig-zag).
func varintLen(v int64) int { return uvarintLen(uint64(v)<<1 ^ uint64(v>>63)) }

// stringSize mirrors appendString.
func stringSize(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

// valueSize mirrors AppendValue.
func valueSize(v event.Value) int {
	switch v.Kind() {
	case event.KindInt:
		return 1 + varintLen(v.AsInt())
	case event.KindFloat:
		return 9
	case event.KindString:
		return 1 + stringSize(v.AsString())
	case event.KindBool:
		return 2
	default:
		return 1 // AppendValue's defensive poison tag
	}
}

// messageSize mirrors AppendMessage.
func messageSize(m *event.Message) int {
	n := uvarintLen(m.ID) + uvarintLen(uint64(len(m.Attrs)))
	for _, a := range m.Attrs {
		n += stringSize(a.Name) + valueSize(a.Value)
	}
	return n
}

// nodeSize mirrors AppendNode.
func nodeSize(nd *subscription.Node) int {
	switch nd.Kind {
	case subscription.NodeAnd, subscription.NodeOr:
		n := 1 + uvarintLen(uint64(len(nd.Children)))
		for _, c := range nd.Children {
			n += nodeSize(c)
		}
		return n
	default: // leaf
		n := 1 + stringSize(nd.Pred.Attr) + 2
		if nd.Pred.Op.NeedsValue() {
			n += valueSize(nd.Pred.Value)
		}
		return n
	}
}

// subscriptionSize mirrors AppendSubscription.
func subscriptionSize(s *subscription.Subscription) int {
	return uvarintLen(s.ID) + stringSize(s.Subscriber) + nodeSize(s.Root)
}

// --- Decode-side pools ------------------------------------------------------

// maxPooledPayload bounds the read buffers the decode pool retains; frames
// beyond it (rare; the stream limit is maxFrameLen) allocate directly.
const maxPooledPayload = 64 << 10

var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxPooledPayload)
		return &b
	},
}

// getPayload returns a length-n scratch buffer for one frame read. Buffers
// up to maxPooledPayload come from a pool; putPayload returns them. The
// decoders never alias their input — every string is copied (or interned)
// out — so the buffer is safe to reuse the moment decoding returns. The
// no-alias invariant is enforced by TestPooledReadBufferNeverEscapes.
//
//dimlint:pooled
func getPayload(n int) ([]byte, *[]byte) {
	if n > maxPooledPayload {
		return make([]byte, n), nil
	}
	p := payloadPool.Get().(*[]byte)
	return (*p)[:n], p
}

// putPayload returns a pooled read buffer (nil for oversized ones).
func putPayload(p *[]byte) {
	if p != nil {
		payloadPool.Put(p)
	}
}

// --- Name interning ---------------------------------------------------------

// interner deduplicates the low-cardinality strings of the protocol —
// attribute names, predicate attributes, subscriber names, broker IDs — so a
// steady-state decode stream allocates each distinct name once, not once per
// frame. It is bounded: past maxInternEntries (or for long strings) it
// degrades to plain copying, so hostile high-cardinality input buys no
// memory growth beyond the cap.
type interner struct {
	mu sync.RWMutex
	m  map[string]string
}

const (
	maxInternEntries = 4096
	maxInternLen     = 64
)

// Two tables, split by cardinality class so one cannot poison the other:
// names holds attribute/predicate names (the hot, schema-bounded strings of
// every publish and subscribe frame); idents holds subscriber names (one
// per subscription, repeated on every subscribe frame). Broker IDs in
// pre-handshake PeerHello frames are deliberately NOT interned — that is
// unauthenticated input, and a single hostile member list could otherwise
// saturate a table for the process lifetime; the frames are also far too
// rare for interning to matter.
var (
	names  = &interner{m: make(map[string]string)}
	idents = &interner{m: make(map[string]string)}
)

// get returns the canonical string for b, interning it if new and there is
// room. The read path is allocation-free for known names (map lookups keyed
// by string(b) do not allocate).
func (in *interner) get(b []byte) string {
	if len(b) > maxInternLen {
		return string(b)
	}
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if len(in.m) >= maxInternEntries {
		return string(b)
	}
	s = string(b)
	in.m[s] = s
	return s
}

// decode parses a length-prefixed string like decodeString but returns the
// interned copy — for protocol strings whose cardinality is small, never
// for event payload values or unauthenticated input.
func (in *interner) decode(data []byte) (string, int, error) {
	b, n, err := decodeStringBytes(data)
	if err != nil {
		return "", 0, err
	}
	return in.get(b), n, nil
}
