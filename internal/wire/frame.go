package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// FrameType discriminates broker-to-broker protocol frames.
type FrameType uint8

// Frame types.
const (
	// FrameSubscribe forwards a (possibly non-local) subscription.
	FrameSubscribe FrameType = iota + 1
	// FrameUnsubscribe retracts a subscription by ID.
	FrameUnsubscribe
	// FramePublish routes an event message.
	FramePublish
	// FrameHello introduces a client session (subscriber name); the first
	// frame on a client connection.
	FrameHello
	// FramePeerHello opens a broker-to-broker peer link: the first frame in
	// each direction, carrying the sender's broker ID and the broker IDs it
	// knows to be in its overlay component (for the acyclicity check).
	FramePeerHello
	// FramePeerReject refuses a peer link with a reason (self link, cycle,
	// duplicate neighbor) and is followed by connection close.
	FramePeerReject
	// FrameDurableSubscribe registers (or reattaches) a durable
	// subscription: a named WAL cursor on the broker plus the subscription
	// it feeds. Replay of unacked records starts immediately.
	FrameDurableSubscribe
	// FrameDurablePublish delivers one event of a durable replay to the
	// client, carrying the durable name and the record's WAL sequence
	// number (the ack handle).
	FrameDurablePublish
	// FrameAck advances a durable cursor: every record of the named
	// durable up to and including Seq is delivered and reclaimable.
	FrameAck
	// FrameMatchSet answers one publish on a fleet shard link: the event ID
	// it answers plus the IDs of the shard's subscriptions that matched. An
	// empty set is a valid answer — the coordinator correlates replies by
	// link FIFO order and needs one per publish either way.
	FrameMatchSet
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameSubscribe:
		return "subscribe"
	case FrameUnsubscribe:
		return "unsubscribe"
	case FramePublish:
		return "publish"
	case FrameHello:
		return "hello"
	case FramePeerHello:
		return "peer-hello"
	case FramePeerReject:
		return "peer-reject"
	case FrameDurableSubscribe:
		return "durable-subscribe"
	case FrameDurablePublish:
		return "durable-publish"
	case FrameAck:
		return "ack"
	case FrameMatchSet:
		return "match-set"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// PeerHello identifies one side of a broker-to-broker link. Members lists
// the broker IDs the sender knows to be in its overlay component (itself
// included); the receiving broker rejects the link when the two member
// sets intersect — the edge would close a cycle (§2.1's acyclicity
// assumption, checked at connect time).
type PeerHello struct {
	ID      string
	Members []string
}

// Frame is one broker protocol unit. Exactly the fields matching Type are
// set.
type Frame struct {
	Type       FrameType
	Sub        *subscription.Subscription // FrameSubscribe, FrameDurableSubscribe
	SubID      uint64                     // FrameUnsubscribe
	Msg        *event.Message             // FramePublish, FrameDurablePublish
	Subscriber string                     // FrameHello
	Peer       *PeerHello                 // FramePeerHello
	Reason     string                     // FramePeerReject
	Name       string                     // FrameDurableSubscribe, FrameDurablePublish, FrameAck
	Seq        uint64                     // FrameDurablePublish, FrameAck, FrameMatchSet (event ID)
	Matches    []uint64                   // FrameMatchSet
}

// SubscribeFrame builds a subscription-forwarding frame.
func SubscribeFrame(s *subscription.Subscription) Frame {
	return Frame{Type: FrameSubscribe, Sub: s}
}

// UnsubscribeFrame builds a retraction frame.
func UnsubscribeFrame(id uint64) Frame {
	return Frame{Type: FrameUnsubscribe, SubID: id}
}

// PublishFrame builds an event-routing frame.
func PublishFrame(m *event.Message) Frame {
	return Frame{Type: FramePublish, Msg: m}
}

// HelloFrame builds a client-session introduction frame.
func HelloFrame(subscriber string) Frame {
	return Frame{Type: FrameHello, Subscriber: subscriber}
}

// PeerHelloFrame builds a peer-link introduction frame.
func PeerHelloFrame(h *PeerHello) Frame {
	return Frame{Type: FramePeerHello, Peer: h}
}

// PeerRejectFrame builds a peer-link refusal frame.
func PeerRejectFrame(reason string) Frame {
	return Frame{Type: FramePeerReject, Reason: reason}
}

// DurableSubscribeFrame builds a durable registration/reattach frame.
func DurableSubscribeFrame(name string, s *subscription.Subscription) Frame {
	return Frame{Type: FrameDurableSubscribe, Name: name, Sub: s}
}

// DurablePublishFrame builds a durable replay-delivery frame.
func DurablePublishFrame(name string, seq uint64, m *event.Message) Frame {
	return Frame{Type: FrameDurablePublish, Name: name, Seq: seq, Msg: m}
}

// AckFrame builds a durable cursor-advance frame.
func AckFrame(name string, seq uint64) Frame {
	return Frame{Type: FrameAck, Name: name, Seq: seq}
}

// MatchSetFrame builds a fleet shard's answer to one publish: the event ID
// and the shard-local subscription IDs that matched it.
func MatchSetFrame(eventID uint64, matches []uint64) Frame {
	return Frame{Type: FrameMatchSet, Seq: eventID, Matches: matches}
}

// AppendFrame appends the encoding of f to dst.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	encodeCalls.Add(1) // test hook: every payload encode is counted
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case FrameSubscribe:
		if f.Sub == nil {
			return nil, errors.New("wire: subscribe frame without subscription")
		}
		return AppendSubscription(dst, f.Sub), nil
	case FrameUnsubscribe:
		return binary.AppendUvarint(dst, f.SubID), nil
	case FramePublish:
		if f.Msg == nil {
			return nil, errors.New("wire: publish frame without message")
		}
		return AppendMessage(dst, f.Msg), nil
	case FrameHello:
		if f.Subscriber == "" {
			return nil, errors.New("wire: hello frame without subscriber")
		}
		return appendString(dst, f.Subscriber), nil
	case FramePeerHello:
		if f.Peer == nil || f.Peer.ID == "" {
			return nil, errors.New("wire: peer hello frame without broker ID")
		}
		dst = appendString(dst, f.Peer.ID)
		dst = binary.AppendUvarint(dst, uint64(len(f.Peer.Members)))
		for _, m := range f.Peer.Members {
			dst = appendString(dst, m)
		}
		return dst, nil
	case FramePeerReject:
		if f.Reason == "" {
			return nil, errors.New("wire: peer reject frame without reason")
		}
		return appendString(dst, f.Reason), nil
	case FrameDurableSubscribe:
		if f.Name == "" {
			return nil, errors.New("wire: durable subscribe frame without name")
		}
		if f.Sub == nil {
			return nil, errors.New("wire: durable subscribe frame without subscription")
		}
		dst = appendString(dst, f.Name)
		return AppendSubscription(dst, f.Sub), nil
	case FrameDurablePublish:
		if f.Name == "" {
			return nil, errors.New("wire: durable publish frame without name")
		}
		if f.Msg == nil {
			return nil, errors.New("wire: durable publish frame without message")
		}
		dst = appendString(dst, f.Name)
		dst = binary.AppendUvarint(dst, f.Seq)
		return AppendMessage(dst, f.Msg), nil
	case FrameAck:
		if f.Name == "" {
			return nil, errors.New("wire: ack frame without name")
		}
		dst = appendString(dst, f.Name)
		return binary.AppendUvarint(dst, f.Seq), nil
	case FrameMatchSet:
		dst = binary.AppendUvarint(dst, f.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(f.Matches)))
		for _, id := range f.Matches {
			dst = binary.AppendUvarint(dst, id)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("wire: cannot encode frame type %d", f.Type)
	}
}

// DecodeFrame decodes one frame and returns the bytes consumed.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) == 0 {
		return Frame{}, 0, ErrTruncated
	}
	switch FrameType(data[0]) {
	case FrameSubscribe:
		s, n, err := DecodeSubscription(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		return SubscribeFrame(s), 1 + n, nil
	case FrameUnsubscribe:
		id, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		return UnsubscribeFrame(id), 1 + n, nil
	case FramePublish:
		m, n, err := DecodeMessage(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		return PublishFrame(m), 1 + n, nil
	case FrameHello:
		s, n, err := idents.decode(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if s == "" {
			return Frame{}, 0, errors.New("wire: hello frame with empty subscriber")
		}
		return HelloFrame(s), 1 + n, nil
	case FramePeerHello:
		// Peer hellos are decoded pre-handshake (unauthenticated) and are
		// rare; their IDs are never interned so a hostile member list
		// cannot saturate the intern tables.
		id, n, err := decodeString(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if id == "" {
			return Frame{}, 0, errors.New("wire: peer hello with empty broker ID")
		}
		off := 1 + n
		count, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		off += n
		// Each member costs at least one byte, so a count beyond the
		// remaining payload is certainly truncated. Grow the slice
		// incrementally rather than pre-allocating count entries: the
		// listener decodes these pre-authentication, and a hostile count
		// must not buy a large allocation.
		if count > uint64(len(data)-off) {
			return Frame{}, 0, ErrTruncated
		}
		var members []string
		for i := uint64(0); i < count; i++ {
			m, n, err := decodeString(data[off:])
			if err != nil {
				return Frame{}, 0, err
			}
			off += n
			members = append(members, m)
		}
		return PeerHelloFrame(&PeerHello{ID: id, Members: members}), off, nil
	case FramePeerReject:
		reason, n, err := decodeString(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if reason == "" {
			return Frame{}, 0, errors.New("wire: peer reject with empty reason")
		}
		return PeerRejectFrame(reason), 1 + n, nil
	case FrameDurableSubscribe:
		// Durable names recur on every replay delivery and ack of a
		// session, so they intern like subscriber identities.
		name, n, err := idents.decode(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if name == "" {
			return Frame{}, 0, errors.New("wire: durable subscribe with empty name")
		}
		s, sn, err := DecodeSubscription(data[1+n:])
		if err != nil {
			return Frame{}, 0, err
		}
		return DurableSubscribeFrame(name, s), 1 + n + sn, nil
	case FrameDurablePublish:
		name, n, err := idents.decode(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if name == "" {
			return Frame{}, 0, errors.New("wire: durable publish with empty name")
		}
		off := 1 + n
		seq, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		off += n
		m, n, err := DecodeMessage(data[off:])
		if err != nil {
			return Frame{}, 0, err
		}
		return DurablePublishFrame(name, seq, m), off + n, nil
	case FrameAck:
		name, n, err := idents.decode(data[1:])
		if err != nil {
			return Frame{}, 0, err
		}
		if name == "" {
			return Frame{}, 0, errors.New("wire: ack with empty name")
		}
		seq, sn := binary.Uvarint(data[1+n:])
		if sn <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		return AckFrame(name, seq), 1 + n + sn, nil
	case FrameMatchSet:
		eventID, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		off := 1 + n
		count, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return Frame{}, 0, ErrTruncated
		}
		off += n
		// Each match costs at least one byte, so a count beyond the
		// remaining payload is certainly truncated; the check also keeps a
		// hostile count from buying a large allocation.
		if count > uint64(len(data)-off) {
			return Frame{}, 0, ErrTruncated
		}
		var matches []uint64
		if count > 0 {
			matches = make([]uint64, 0, count)
		}
		for i := uint64(0); i < count; i++ {
			id, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return Frame{}, 0, ErrTruncated
			}
			off += n
			matches = append(matches, id)
		}
		return MatchSetFrame(eventID, matches), off, nil
	default:
		return Frame{}, 0, fmt.Errorf("wire: unknown frame type %d", data[0])
	}
}

// FrameSize returns the encoded size of f in bytes; the network simulation
// charges this per link transmission. Invalid frames size to 0. It walks the
// frame with the size visitor and never encodes or allocates — callers that
// only need the number pay only the number.
func FrameSize(f Frame) int {
	switch f.Type {
	case FrameSubscribe:
		if f.Sub == nil {
			return 0
		}
		return 1 + subscriptionSize(f.Sub)
	case FrameUnsubscribe:
		return 1 + uvarintLen(f.SubID)
	case FramePublish:
		if f.Msg == nil {
			return 0
		}
		return 1 + messageSize(f.Msg)
	case FrameHello:
		if f.Subscriber == "" {
			return 0
		}
		return 1 + stringSize(f.Subscriber)
	case FramePeerHello:
		if f.Peer == nil || f.Peer.ID == "" {
			return 0
		}
		n := 1 + stringSize(f.Peer.ID) + uvarintLen(uint64(len(f.Peer.Members)))
		for _, m := range f.Peer.Members {
			n += stringSize(m)
		}
		return n
	case FramePeerReject:
		if f.Reason == "" {
			return 0
		}
		return 1 + stringSize(f.Reason)
	case FrameDurableSubscribe:
		if f.Name == "" || f.Sub == nil {
			return 0
		}
		return 1 + stringSize(f.Name) + subscriptionSize(f.Sub)
	case FrameDurablePublish:
		if f.Name == "" || f.Msg == nil {
			return 0
		}
		return 1 + stringSize(f.Name) + uvarintLen(f.Seq) + messageSize(f.Msg)
	case FrameAck:
		if f.Name == "" {
			return 0
		}
		return 1 + stringSize(f.Name) + uvarintLen(f.Seq)
	case FrameMatchSet:
		n := 1 + uvarintLen(f.Seq) + uvarintLen(uint64(len(f.Matches)))
		for _, id := range f.Matches {
			n += uvarintLen(id)
		}
		return n
	default:
		return 0
	}
}

// maxFrameLen bounds stream frames against corrupt or hostile peers.
const maxFrameLen = 16 << 20

// WriteFrame writes f to w with a uvarint length prefix, the stream format
// of the TCP transport. The encoding comes from the shared encode pool and
// goes out as one Write (header and payload together); the header lives in
// the pooled buffer's reserved room, so no per-frame header slice is
// allocated.
func WriteFrame(w io.Writer, f Frame) error {
	e, err := EncodeFrame(f, 1)
	if err != nil {
		return err
	}
	_, werr := e.WriteTo(w)
	e.Release()
	if werr != nil {
		return fmt.Errorf("wire: write frame: %w", werr)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r, which must be buffered
// byte-at-a-time capable (io.ByteReader + io.Reader, e.g. *bufio.Reader).
func ReadFrame(r interface {
	io.Reader
	io.ByteReader
}) (Frame, error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	if length > maxFrameLen {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", length)
	}
	// The payload buffer is pooled scratch: the decoders copy (or intern)
	// every string out, so nothing in the returned Frame aliases it and it
	// is reusable the moment DecodeFrame returns.
	payload, pooled := getPayload(int(length))
	defer putPayload(pooled)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: read frame payload: %w", err)
	}
	f, n, err := DecodeFrame(payload)
	if err != nil {
		return Frame{}, err
	}
	if n != len(payload) {
		return Frame{}, fmt.Errorf("wire: frame has %d trailing bytes", len(payload)-n)
	}
	return f, nil
}
