package wire

import (
	"bufio"
	"bytes"
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func benchWorkload(b *testing.B) (*event.Message, *subscription.Subscription) {
	b.Helper()
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := gen.Event(1)
	s, err := gen.Subscription(1, "client")
	if err != nil {
		b.Fatal(err)
	}
	return m, s
}

func BenchmarkEncodeMessage(b *testing.B) {
	m, _ := benchWorkload(b)
	buf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMessage(buf[:0], m)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodeMessage(b *testing.B) {
	m, _ := benchWorkload(b)
	enc := AppendMessage(nil, m)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSubscription(b *testing.B) {
	_, s := benchWorkload(b)
	buf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendSubscription(buf[:0], s)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodeSubscription(b *testing.B) {
	_, s := benchWorkload(b)
	enc := AppendSubscription(nil, s)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeSubscription(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures one full stream round trip: encode + write
// a length-prefixed publish frame, then read + decode it back. This is the
// per-frame cost both ends of a broker link pay; allocs/op is the headline
// number for the pooled-encode / pooled-decode fast path.
func BenchmarkWireRoundTrip(b *testing.B) {
	m, _ := benchWorkload(b)
	f := PublishFrame(m)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		b.Fatal(err)
	}
	enc := append([]byte(nil), buf.Bytes()...)
	b.SetBytes(int64(len(enc)))
	src := bytes.NewReader(enc)
	br := bufio.NewReader(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		src.Reset(enc)
		br.Reset(src)
		if _, err := ReadFrame(br); err != nil {
			b.Fatal(err)
		}
	}
}
