//go:build race

package wire

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation adds allocations of its own.
const raceEnabled = true
