package wire

import (
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must never
// panic, and anything it accepts must re-encode to the bytes it consumed
// (canonical encoding). Run longer with:
// go test -fuzz=FuzzDecodeFrame ./internal/wire
func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid frames plus noise.
	s, _ := subscription.New(7, "bob", subscription.MustParse(`price <= 20 and category = "a"`))
	sub, _ := AppendFrame(nil, SubscribeFrame(s))
	pub, _ := AppendFrame(nil, PublishFrame(event.Build(9).Str("category", "a").Num("price", 10).Msg()))
	unsub, _ := AppendFrame(nil, UnsubscribeFrame(999))
	hello, _ := AppendFrame(nil, HelloFrame("carol"))
	peer, _ := AppendFrame(nil, PeerHelloFrame(&PeerHello{ID: "b1", Members: []string{"b1", "b2"}}))
	reject, _ := AppendFrame(nil, PeerRejectFrame("cycle"))
	for _, seed := range [][]byte{sub, pub, unsub, hello, peer, reject, {0}, {1, 2, 3}, nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		// encode∘decode must be idempotent. (Byte-level canonicality is not
		// required of arbitrary accepted inputs: Go's varint reader accepts
		// non-minimal length encodings.)
		enc1, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		fr2, n2, err := DecodeFrame(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if n2 != len(enc1) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(enc1))
		}
		enc2, err := AppendFrame(nil, fr2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("encoding not idempotent:\n 1st % x\n 2nd % x", enc1, enc2)
		}
	})
}

// FuzzDecodeNode checks the tree decoder against hostile bytes: no panics,
// no unvalidated trees, canonical re-encoding.
func FuzzDecodeNode(f *testing.F) {
	tree := AppendNode(nil, subscription.MustParse(`(a = 1 or b prefix "x") and not c >= 2.5`))
	for _, seed := range [][]byte{tree, {tagAnd, 2}, {tagLeaf}, nil} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, used, err := DecodeNode(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("DecodeNode consumed %d of %d", used, len(data))
		}
		// Leaves are validated during decode; whole-tree validation may
		// still fail (e.g. single-child AND), which Simplify normalizes.
		// encode∘decode must be idempotent; compare bytes rather than trees
		// so NaN float payloads (never semantically equal) don't trip it.
		enc1 := AppendNode(nil, n)
		n2, used2, err := DecodeNode(enc1)
		if err != nil || used2 != len(enc1) {
			t.Fatalf("re-decode failed: %v (%d of %d)", err, used2, len(enc1))
		}
		enc2 := AppendNode(nil, n2)
		if string(enc1) != string(enc2) {
			t.Fatalf("node encoding not idempotent:\n 1st % x\n 2nd % x", enc1, enc2)
		}
	})
}
