package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []event.Value{
		event.Int(0), event.Int(-1), event.Int(math.MaxInt64), event.Int(math.MinInt64),
		event.Float(0), event.Float(-2.5), event.Float(math.Inf(1)), event.Float(1e-300),
		event.String(""), event.String("Dune"), event.String("with \x00 bytes and ünïcode"),
		event.Bool(true), event.Bool(false),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Errorf("DecodeValue(%s): %v", v, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("DecodeValue(%s) consumed %d of %d bytes", v, n, len(enc))
		}
		if got != v {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
}

func TestValueDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                // unknown tag
		{tagInt},            // missing varint
		{tagFloat, 1, 2, 3}, // short float
		{tagBool},           // missing payload
		{tagString, 5, 'a'}, // short string
	}
	for _, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("DecodeValue(% x) succeeded", c)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := event.Build(12345).
		Str("title", "The Dispossessed").
		Num("price", 14.5).
		Int("bids", 7).
		Flag("signed", false).
		Msg()
	enc := AppendMessage(nil, m)
	if MessageSize(m) != len(enc) {
		t.Errorf("MessageSize = %d, encoded %d", MessageSize(m), len(enc))
	}
	got, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	if got.ID != m.ID || got.Len() != m.Len() {
		t.Fatalf("round trip mismatch: %s vs %s", m, got)
	}
	for _, a := range m.Attrs {
		if v, ok := got.Get(a.Name); !ok || v != a.Value {
			t.Errorf("attribute %s lost: %v", a.Name, v)
		}
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	m := event.Build(1).Int("a", 1).Msg()
	enc := AppendMessage(nil, m)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
	// Duplicate attributes must be rejected by validation.
	bad := AppendMessage(nil, m)
	bad = bad[:1]        // keep id
	bad = append(bad, 2) // two attrs
	for i := 0; i < 2; i++ {
		bad = append(bad, 1, 'a') // name "a"
		bad = AppendValue(bad, event.Int(1))
	}
	if _, _, err := DecodeMessage(bad); err == nil {
		t.Error("duplicate attribute message accepted")
	}
}

func TestNodeRoundTrip(t *testing.T) {
	r := dist.New(3)
	for i := 0; i < 500; i++ {
		n := randomTree(r, 3)
		enc := AppendNode(nil, n)
		got, used, err := DecodeNode(enc)
		if err != nil {
			t.Fatalf("DecodeNode(%s): %v", n, err)
		}
		if used != len(enc) {
			t.Fatalf("consumed %d of %d for %s", used, len(enc), n)
		}
		if !got.Equal(n) {
			t.Fatalf("round trip changed tree: %s -> %s", n, got)
		}
	}
}

func TestNodeDecodeDepthLimit(t *testing.T) {
	// A chain of single-child ANDs deeper than the limit.
	var enc []byte
	for i := 0; i < maxTreeDepth+2; i++ {
		enc = append(enc, tagAnd, 1)
	}
	enc = AppendNode(enc, subscription.Eq("a", event.Int(1)))
	if _, _, err := DecodeNode(enc); err == nil {
		t.Error("over-deep tree accepted")
	}
}

func TestSubscriptionRoundTrip(t *testing.T) {
	s, err := subscription.New(42, "alice",
		subscription.MustParse(`(a = 1 or b prefix "x") and not c >= 2.5 and d exists`))
	if err != nil {
		t.Fatal(err)
	}
	enc := AppendSubscription(nil, s)
	if SubscriptionSize(s) != len(enc) {
		t.Error("SubscriptionSize mismatch")
	}
	got, n, err := DecodeSubscription(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || got.ID != 42 || got.Subscriber != "alice" || !got.Root.Equal(s.Root) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestSubscriptionDecodeRejectsInvalid(t *testing.T) {
	// Leaf with an exists op carrying a value is structurally well-formed on
	// the wire but semantically invalid.
	enc := []byte{1}          // id
	enc = append(enc, 1, 'c') // subscriber "c"
	enc = append(enc, tagLeaf, 1, 'a', byte(subscription.OpExists), 0)
	// no value follows for exists, so this is actually valid; break the op:
	bad := []byte{1, 1, 'c', tagLeaf, 1, 'a', 200, 0}
	if _, _, err := DecodeSubscription(bad); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, _, err := DecodeSubscription(enc); err != nil {
		t.Errorf("valid exists subscription rejected: %v", err)
	}
}

func TestFrameRoundTrips(t *testing.T) {
	s, _ := subscription.New(7, "bob", subscription.MustParse(`price <= 20 and category = "a"`))
	m := event.Build(9).Str("category", "a").Num("price", 10).Msg()
	frames := []Frame{
		SubscribeFrame(s),
		UnsubscribeFrame(999),
		PublishFrame(m),
	}
	for _, f := range frames {
		enc, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		if FrameSize(f) != len(enc) {
			t.Errorf("FrameSize(%s) = %d, encoded %d", f.Type, FrameSize(f), len(enc))
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) || got.Type != f.Type {
			t.Errorf("frame round trip mismatch: %v", got.Type)
		}
		switch f.Type {
		case FrameSubscribe:
			if !got.Sub.Root.Equal(f.Sub.Root) {
				t.Error("subscription payload changed")
			}
		case FrameUnsubscribe:
			if got.SubID != f.SubID {
				t.Error("sub ID changed")
			}
		case FramePublish:
			if got.Msg.ID != f.Msg.ID {
				t.Error("message payload changed")
			}
		}
	}
}

func TestPeerFrameRoundTrips(t *testing.T) {
	hellos := []*PeerHello{
		{ID: "b0"},
		{ID: "b1", Members: []string{"b1"}},
		{ID: "hub", Members: []string{"hub", "leaf-1", "leaf-2", "leaf-3"}},
	}
	for _, h := range hellos {
		enc, err := AppendFrame(nil, PeerHelloFrame(h))
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) || got.Type != FramePeerHello {
			t.Fatalf("peer hello round trip: type %v, %d of %d bytes", got.Type, n, len(enc))
		}
		if got.Peer.ID != h.ID || len(got.Peer.Members) != len(h.Members) {
			t.Fatalf("peer hello payload changed: %+v", got.Peer)
		}
		for i, m := range h.Members {
			if got.Peer.Members[i] != m {
				t.Fatalf("member %d changed: %q != %q", i, got.Peer.Members[i], m)
			}
		}
	}

	enc, err := AppendFrame(nil, PeerRejectFrame("would close a cycle"))
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || got.Type != FramePeerReject || got.Reason != "would close a cycle" {
		t.Fatalf("peer reject round trip: %+v", got)
	}
}

func TestPeerFrameErrors(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Type: FramePeerHello}); err == nil {
		t.Error("peer hello frame without payload accepted")
	}
	if _, err := AppendFrame(nil, PeerHelloFrame(&PeerHello{})); err == nil {
		t.Error("peer hello frame without broker ID accepted")
	}
	if _, err := AppendFrame(nil, Frame{Type: FramePeerReject}); err == nil {
		t.Error("peer reject frame without reason accepted")
	}
	// Member count larger than any possible payload must be rejected, not
	// allocated.
	enc, _ := AppendFrame(nil, PeerHelloFrame(&PeerHello{ID: "x"}))
	enc[len(enc)-1] = 0xff // member count varint → 255 with no payload
	if _, _, err := DecodeFrame(enc); err == nil {
		t.Error("truncated member list accepted")
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Type: FrameSubscribe}); err == nil {
		t.Error("subscribe frame without payload accepted")
	}
	if _, err := AppendFrame(nil, Frame{Type: FramePublish}); err == nil {
		t.Error("publish frame without payload accepted")
	}
	if _, err := AppendFrame(nil, Frame{Type: 99}); err == nil {
		t.Error("unknown frame type accepted")
	}
	if _, _, err := DecodeFrame(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, _, err := DecodeFrame([]byte{77}); err == nil {
		t.Error("unknown type byte accepted")
	}
	if FrameSize(Frame{Type: 99}) != 0 {
		t.Error("invalid frame has nonzero size")
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	s, _ := subscription.New(1, "c", subscription.MustParse(`a = 1`))
	in := []Frame{
		SubscribeFrame(s),
		PublishFrame(event.Build(2).Int("a", 1).Msg()),
		UnsubscribeFrame(1),
	}
	for _, f := range in {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range in {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Errorf("frame %d type %v, want %v", i, got.Type, want.Type)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestStreamRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // huge uvarint length
	if _, err := ReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestStreamTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, UnsubscribeFrame(7)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data))); err == nil {
		t.Error("truncated payload accepted")
	}
}

// randomTree mirrors the generator used across packages.
func randomTree(r *dist.RNG, maxDepth int) *subscription.Node {
	if maxDepth <= 0 || r.Bool(0.4) {
		ops := []subscription.Op{
			subscription.OpEq, subscription.OpNe, subscription.OpLt, subscription.OpLe,
			subscription.OpGt, subscription.OpGe, subscription.OpPrefix, subscription.OpExists,
		}
		op := ops[r.Intn(len(ops))]
		p := subscription.Predicate{Attr: "attr" + string(rune('a'+r.Intn(5))), Op: op}
		if op.NeedsValue() {
			switch r.Intn(3) {
			case 0:
				p.Value = event.Int(int64(r.Intn(100)) - 50)
			case 1:
				p.Value = event.Float(r.Range(-10, 10))
			default:
				p.Value = event.String(string(rune('a' + r.Intn(26))))
			}
			if op == subscription.OpPrefix {
				p.Value = event.String(string(rune('a' + r.Intn(26))))
			}
		}
		if r.Bool(0.2) {
			p = p.Negate()
		}
		return subscription.Leaf(p)
	}
	kind := subscription.NodeAnd
	if r.Bool(0.5) {
		kind = subscription.NodeOr
	}
	n := r.IntRange(2, 4)
	children := make([]*subscription.Node, n)
	for i := range children {
		children[i] = randomTree(r, maxDepth-1)
	}
	return &subscription.Node{Kind: kind, Children: children}
}
