// Package wire defines the binary encoding brokers use to exchange
// subscriptions and events, both over real transports (internal/transport)
// and for byte accounting in the network simulation (internal/simnet).
//
// The format is varint-based and canonical: encoding the same value always
// produces the same bytes, and decode(encode(x)) == x for every valid value
// (property-tested). It has no external dependencies beyond encoding/binary.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// ErrTruncated reports an encoding that ended mid-value.
var ErrTruncated = errors.New("wire: truncated input")

// value kind tags; deliberately decoupled from event.Kind numeric values so
// the in-memory representation can evolve without breaking the wire format.
const (
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
	tagBool   = 4
)

// AppendValue appends the encoding of v to dst.
func AppendValue(dst []byte, v event.Value) []byte {
	switch v.Kind() {
	case event.KindInt:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, v.AsInt())
	case event.KindFloat:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case event.KindString:
		dst = append(dst, tagString)
		return appendString(dst, v.AsString())
	case event.KindBool:
		dst = append(dst, tagBool)
		if v.AsBool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		// Invalid values are rejected before encoding by the frame
		// constructors; encode a recognizable poison tag defensively.
		return append(dst, 0)
	}
}

// DecodeValue decodes a value from data, returning it and the bytes consumed.
func DecodeValue(data []byte) (event.Value, int, error) {
	if len(data) == 0 {
		return event.Value{}, 0, ErrTruncated
	}
	switch data[0] {
	case tagInt:
		i, n := binary.Varint(data[1:])
		if n <= 0 {
			return event.Value{}, 0, ErrTruncated
		}
		return event.Int(i), 1 + n, nil
	case tagFloat:
		if len(data) < 9 {
			return event.Value{}, 0, ErrTruncated
		}
		bits := binary.LittleEndian.Uint64(data[1:9])
		return event.Float(math.Float64frombits(bits)), 9, nil
	case tagString:
		s, n, err := decodeString(data[1:])
		if err != nil {
			return event.Value{}, 0, err
		}
		return event.String(s), 1 + n, nil
	case tagBool:
		if len(data) < 2 {
			return event.Value{}, 0, ErrTruncated
		}
		if data[1] > 1 {
			return event.Value{}, 0, fmt.Errorf("wire: bool payload %d", data[1])
		}
		return event.Bool(data[1] != 0), 2, nil
	default:
		return event.Value{}, 0, fmt.Errorf("wire: unknown value tag %d", data[0])
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeStringBytes parses a length-prefixed string and returns its raw
// bytes (aliasing data) plus the bytes consumed — the shared half of
// decodeString and decodeInternedString, which differ only in how they
// materialize the string.
func decodeStringBytes(data []byte) ([]byte, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	end := n + int(l)
	if l > uint64(len(data)) || end > len(data) {
		return nil, 0, ErrTruncated
	}
	return data[n:end], end, nil
}

func decodeString(data []byte) (string, int, error) {
	b, n, err := decodeStringBytes(data)
	if err != nil {
		return "", 0, err
	}
	return string(b), n, nil
}

// AppendMessage appends the encoding of m to dst.
func AppendMessage(dst []byte, m *event.Message) []byte {
	dst = binary.AppendUvarint(dst, m.ID)
	dst = binary.AppendUvarint(dst, uint64(len(m.Attrs)))
	for _, a := range m.Attrs {
		dst = appendString(dst, a.Name)
		dst = AppendValue(dst, a.Value)
	}
	return dst
}

// DecodeMessage decodes a message and returns the bytes consumed.
func DecodeMessage(data []byte) (*event.Message, int, error) {
	id, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, 0, ErrTruncated
	}
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	off += n
	if count > uint64(len(data)) {
		return nil, 0, ErrTruncated // length larger than any possible payload
	}
	attrs := make([]event.Attr, 0, count)
	for i := uint64(0); i < count; i++ {
		// Attribute names are the protocol's lowest-cardinality strings:
		// intern them so a steady-state decode stream allocates each
		// distinct name once, not once per frame.
		name, n, err := names.decode(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		v, n, err := DecodeValue(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		attrs = append(attrs, event.Attr{Name: name, Value: v})
	}
	// Build the message around attrs directly instead of NewMessage, which
	// would copy the slice once more. Canonical encodings (everything our
	// own encoder produces) arrive strictly sorted with non-empty names, so
	// the common case validates with one comparison pass; only
	// non-canonical input pays Normalize's reflective sort. Decoded values
	// are always valid (DecodeValue never returns KindInvalid), so
	// canonical-path messages need no further checks.
	m := &event.Message{ID: id, Attrs: attrs}
	canonical := true
	for i, a := range attrs {
		if a.Name == "" || (i > 0 && attrs[i-1].Name >= a.Name) {
			canonical = false
			break
		}
	}
	if !canonical {
		if err := m.Normalize(); err != nil {
			return nil, 0, fmt.Errorf("wire: %w", err)
		}
	}
	return m, off, nil
}

// MessageSize returns the encoded size of m in bytes, the unit the network
// simulation charges per link transmission. Computed by the size visitor —
// no encoding, no allocation.
func MessageSize(m *event.Message) int { return messageSize(m) }

// node kind tags.
const (
	tagAnd  = 1
	tagOr   = 2
	tagLeaf = 3
)

// AppendNode appends the encoding of a subscription tree to dst.
func AppendNode(dst []byte, n *subscription.Node) []byte {
	switch n.Kind {
	case subscription.NodeAnd, subscription.NodeOr:
		if n.Kind == subscription.NodeAnd {
			dst = append(dst, tagAnd)
		} else {
			dst = append(dst, tagOr)
		}
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, c := range n.Children {
			dst = AppendNode(dst, c)
		}
		return dst
	default: // leaf
		dst = append(dst, tagLeaf)
		dst = appendString(dst, n.Pred.Attr)
		dst = append(dst, byte(n.Pred.Op))
		neg := byte(0)
		if n.Pred.Negated {
			neg = 1
		}
		dst = append(dst, neg)
		if n.Pred.Op.NeedsValue() {
			dst = AppendValue(dst, n.Pred.Value)
		}
		return dst
	}
}

// maxTreeDepth bounds decoding recursion against malicious inputs.
const maxTreeDepth = 64

// DecodeNode decodes a subscription tree and returns the bytes consumed.
func DecodeNode(data []byte) (*subscription.Node, int, error) {
	return decodeNode(data, 0)
}

func decodeNode(data []byte, depth int) (*subscription.Node, int, error) {
	if depth > maxTreeDepth {
		return nil, 0, fmt.Errorf("wire: subscription tree deeper than %d", maxTreeDepth)
	}
	if len(data) == 0 {
		return nil, 0, ErrTruncated
	}
	switch data[0] {
	case tagAnd, tagOr:
		kind := subscription.NodeAnd
		if data[0] == tagOr {
			kind = subscription.NodeOr
		}
		count, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return nil, 0, ErrTruncated
		}
		if count > uint64(len(data)) {
			return nil, 0, ErrTruncated
		}
		off := 1 + n
		children := make([]*subscription.Node, 0, count)
		for i := uint64(0); i < count; i++ {
			c, n, err := decodeNode(data[off:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			off += n
			children = append(children, c)
		}
		return &subscription.Node{Kind: kind, Children: children}, off, nil
	case tagLeaf:
		attr, n, err := names.decode(data[1:])
		if err != nil {
			return nil, 0, err
		}
		off := 1 + n
		if len(data) < off+2 {
			return nil, 0, ErrTruncated
		}
		op := subscription.Op(data[off])
		if data[off+1] > 1 {
			return nil, 0, fmt.Errorf("wire: negation byte %d", data[off+1])
		}
		neg := data[off+1] != 0
		off += 2
		p := subscription.Predicate{Attr: attr, Op: op, Negated: neg}
		if op.NeedsValue() {
			v, n, err := DecodeValue(data[off:])
			if err != nil {
				return nil, 0, err
			}
			off += n
			p.Value = v
		}
		if err := p.Validate(); err != nil {
			return nil, 0, fmt.Errorf("wire: %w", err)
		}
		return subscription.Leaf(p), off, nil
	default:
		return nil, 0, fmt.Errorf("wire: unknown node tag %d", data[0])
	}
}

// AppendSubscription appends the encoding of s to dst.
func AppendSubscription(dst []byte, s *subscription.Subscription) []byte {
	dst = binary.AppendUvarint(dst, s.ID)
	dst = appendString(dst, s.Subscriber)
	return AppendNode(dst, s.Root)
}

// DecodeSubscription decodes a subscription and returns the bytes consumed.
// The decoded tree is validated.
func DecodeSubscription(data []byte) (*subscription.Subscription, int, error) {
	id, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, 0, ErrTruncated
	}
	sub, n, err := idents.decode(data[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	root, n, err := DecodeNode(data[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	if err := root.Validate(); err != nil {
		return nil, 0, fmt.Errorf("wire: %w", err)
	}
	return &subscription.Subscription{ID: id, Subscriber: sub, Root: root}, off, nil
}

// SubscriptionSize returns the encoded size of s in bytes. Computed by the
// size visitor — no encoding, no allocation.
func SubscriptionSize(s *subscription.Subscription) int {
	return subscriptionSize(s)
}
