package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Golden-bytes fixtures pin the wire format: one hex string per frame type,
// generated before the encode-once refactor (PR 4) from the original
// append-per-call encoder. Any encoder change that alters these bytes breaks
// protocol compatibility between broker versions and invalidates the
// simnet-vs-network byte accounting — it must be a deliberate, versioned
// decision, not a refactoring accident.
var goldenFrames = []struct {
	name string
	hex  string
}{
	{"subscribe", "010705616c696365020301020305707269636504000128030863617465676f727901000305626f6f6b7303057469746c6507010301410304626964730a00"},
	{"unsubscribe", "02ac02"},
	{"publish", "03b960040462696473010d057072696365020000000000002d40067369676e65640401057469746c65030444756e65"},
	{"hello", "04056361726f6c"},
	{"peer-hello", "0502623102026231026232"},
	{"peer-reject", "0613776f756c6420636c6f73652061206379636c65"},
	// The durable-plane frames (PR 8) are pinned from their first release;
	// they reuse the subscription and message encodings of subscribe and
	// publish, prefixed by the durable name (and sequence number).
	{"durable-subscribe", "070561756469740705616c696365020301020305707269636504000128030863617465676f727901000305626f6f6b7303057469746c6507010301410304626964730a00"},
	{"durable-publish", "080561756469742ab960040462696473010d057072696365020000000000002d40067369676e65640401057469746c65030444756e65"},
	{"ack", "090561756469742a"},
	// The fleet plane's match-set reply (PR 10) is pinned from its first
	// release: event ID, then a uvarint-counted list of matched sub IDs.
	{"match-set", "0ab9600207ac02"},
}

// goldenStreamUnsubscribe is WriteFrame's length-prefixed stream encoding of
// UnsubscribeFrame(300): uvarint payload length 3, then the payload.
const goldenStreamUnsubscribe = "0302ac02"

// goldenFixtureFrames builds the live frames matching goldenFrames, in order.
func goldenFixtureFrames(t testing.TB) []Frame {
	t.Helper()
	s, err := subscription.New(7, "alice",
		subscription.MustParse(`(price <= 20 and category = "books") or not title prefix "A" or bids exists`))
	if err != nil {
		t.Fatal(err)
	}
	m := event.Build(12345).
		Int("bids", -7).
		Num("price", 14.5).
		Flag("signed", true).
		Str("title", "Dune").
		Msg()
	return []Frame{
		SubscribeFrame(s),
		UnsubscribeFrame(300),
		PublishFrame(m),
		HelloFrame("carol"),
		PeerHelloFrame(&PeerHello{ID: "b1", Members: []string{"b1", "b2"}}),
		PeerRejectFrame("would close a cycle"),
		DurableSubscribeFrame("audit", s),
		DurablePublishFrame("audit", 42, m),
		AckFrame("audit", 42),
		MatchSetFrame(12345, []uint64{7, 300}),
	}
}

// TestGoldenFrameBytes proves every frame type still encodes to the pinned
// pre-refactor bytes, that the size accounting agrees with those bytes, and
// that the pinned bytes decode back to a frame that re-encodes identically.
func TestGoldenFrameBytes(t *testing.T) {
	frames := goldenFixtureFrames(t)
	if len(frames) != len(goldenFrames) {
		t.Fatalf("fixture count mismatch: %d frames, %d golden entries", len(frames), len(goldenFrames))
	}
	for i, g := range goldenFrames {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad fixture hex: %v", g.name, err)
		}
		enc, err := AppendFrame(nil, frames[i])
		if err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("%s: wire bytes changed\n got %x\nwant %x", g.name, enc, want)
		}
		if got := FrameSize(frames[i]); got != len(want) {
			t.Errorf("%s: FrameSize = %d, golden bytes are %d", g.name, got, len(want))
		}
		dec, n, err := DecodeFrame(want)
		if err != nil {
			t.Fatalf("%s: golden bytes do not decode: %v", g.name, err)
		}
		if n != len(want) {
			t.Errorf("%s: decode consumed %d of %d golden bytes", g.name, n, len(want))
		}
		re, err := AppendFrame(nil, dec)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", g.name, err)
		}
		if !bytes.Equal(re, want) {
			t.Errorf("%s: decode∘encode changed bytes\n got %x\nwant %x", g.name, re, want)
		}
	}
}

// TestGoldenStreamBytes pins the length-prefixed stream format of WriteFrame
// and proves ReadFrame accepts exactly those bytes.
func TestGoldenStreamBytes(t *testing.T) {
	want, err := hex.DecodeString(goldenStreamUnsubscribe)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, UnsubscribeFrame(300)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stream bytes changed\n got %x\nwant %x", buf.Bytes(), want)
	}
	f, err := ReadFrame(bufio.NewReader(bytes.NewReader(want)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameUnsubscribe || f.SubID != 300 {
		t.Errorf("golden stream decoded to %+v", f)
	}
}
