package broker

import (
	"reflect"
	"testing"

	"dimprune/internal/wire"
)

func TestEntryIDsSplitsLocalRemote(t *testing.T) {
	b := newBroker(t, "b0")
	l := b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 5, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l, mustSub(t, 2, "bob", `y = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l, mustSub(t, 9, "carol", `z = 1`)); err != nil {
		t.Fatal(err)
	}
	local, remote := b.EntryIDs()
	if !reflect.DeepEqual(local, []uint64{5}) {
		t.Errorf("local = %v, want [5]", local)
	}
	if !reflect.DeepEqual(remote, []uint64{2, 9}) {
		t.Errorf("remote = %v, want [2 9]", remote)
	}
}

func TestAdvertisedIDsMatchesSyncFrames(t *testing.T) {
	// Two links; a nested cover pair arriving on l1 plus a local sub. The
	// accessor must report exactly the IDs SyncFrames would replay on each
	// link — including the covering plane's suppression of covered entries.
	b := newBroker(t, "b0")
	l1 := b.AddLink()
	l2 := b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `price <= 100`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l1, mustSub(t, 2, "bob", `price <= 50`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l1, mustSub(t, 3, "bob", `price <= 10`)); err != nil {
		t.Fatal(err)
	}
	for _, link := range []LinkID{l1, l2} {
		frames, err := b.SyncFrames(link)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, 0, len(frames))
		for _, o := range frames {
			o.ReleaseEnc()
			if o.Frame.Type != wire.FrameSubscribe || o.Frame.Sub == nil {
				t.Fatalf("unexpected sync frame %v", o.Frame.Type)
			}
			want = append(want, o.Frame.Sub.ID)
		}
		sortIDs(want)
		got, err := b.AdvertisedIDs(link)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("link %d: AdvertisedIDs = %v, SyncFrames = %v", link, got, want)
		}
	}
	if _, err := b.AdvertisedIDs(LinkID(42)); err == nil {
		t.Error("unknown link accepted")
	}
}
