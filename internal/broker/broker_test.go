package broker

import (
	"testing"

	"dimprune/internal/core"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

func mustSub(t *testing.T, id uint64, subscriber, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, subscriber, subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newBroker(t *testing.T, id string) *Broker {
	t.Helper()
	b, err := New(Config{ID: id})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := New(Config{ID: "b", Dimension: core.Dimension(77)}); err == nil {
		t.Error("bad dimension accepted")
	}
	b, err := New(Config{ID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Dimension() != core.DimNetwork {
		t.Errorf("default dimension = %v, want network", b.Dimension())
	}
}

func TestLocalSubscribeDeliver(t *testing.T) {
	b := newBroker(t, "b0")
	out, err := b.SubscribeLocal(mustSub(t, 1, "alice", `category = "scifi" and price <= 25`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("no links, but %d outgoing frames", len(out))
	}
	outs, dels := b.PublishLocal(event.Build(1).Str("category", "scifi").Num("price", 20).Msg())
	if len(outs) != 0 {
		t.Errorf("unexpected forwards: %v", outs)
	}
	if len(dels) != 1 || dels[0].Subscriber != "alice" || dels[0].SubID != 1 {
		t.Fatalf("deliveries = %+v", dels)
	}
	_, dels = b.PublishLocal(event.Build(2).Str("category", "scifi").Num("price", 30).Msg())
	if len(dels) != 0 {
		t.Errorf("non-matching event delivered: %+v", dels)
	}
}

func TestSubscriptionForwarding(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()
	s := mustSub(t, 1, "alice", `a = 1`)
	out, err := b.SubscribeLocal(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("local subscription forwarded to %d links, want 2", len(out))
	}
	// A subscription arriving on l0 goes out only on l1.
	s2 := mustSub(t, 2, "bob", `b = 2`)
	out, err = b.HandleSubscribe(l0, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Link != l1 {
		t.Fatalf("forwarded = %+v, want only link %d", out, l1)
	}
	if out[0].Frame.Type != wire.FrameSubscribe {
		t.Error("wrong frame type")
	}
}

func TestPublishRouting(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()
	// Remote subscription from l0 matches "x=1"; local alice matches "x=1";
	// remote from l1 matches "x=2".
	if _, err := b.HandleSubscribe(l0, mustSub(t, 1, "remote0", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeLocal(mustSub(t, 2, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l1, mustSub(t, 3, "remote1", `x = 2`)); err != nil {
		t.Fatal(err)
	}

	// Local publish of x=1: deliver to alice, forward to l0 only.
	out, dels := b.PublishLocal(event.Build(1).Int("x", 1).Msg())
	if len(dels) != 1 || dels[0].Subscriber != "alice" {
		t.Fatalf("deliveries = %+v", dels)
	}
	if len(out) != 1 || out[0].Link != l0 {
		t.Fatalf("forwards = %+v, want only link %d", out, l0)
	}

	// Event arriving from l0 matching x=1 must NOT go back to l0.
	out, dels, err := b.HandlePublish(l0, event.Build(2).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("event echoed back: %+v", out)
	}
	if len(dels) != 1 {
		t.Errorf("local delivery missing: %+v", dels)
	}

	// Event from l1 matching x=1: forward to l0 and deliver locally.
	out, dels, err = b.HandlePublish(l1, event.Build(3).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Link != l0 {
		t.Errorf("forwards = %+v", out)
	}
	if len(dels) != 1 {
		t.Errorf("deliveries = %+v", dels)
	}
}

func TestForwardOncePerLink(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	// Two remote subscriptions from the same link both match: one frame.
	b.HandleSubscribe(l0, mustSub(t, 1, "r1", `x >= 1`))
	b.HandleSubscribe(l0, mustSub(t, 2, "r2", `x >= 0`))
	out, _ := b.PublishLocal(event.Build(1).Int("x", 5).Msg())
	if len(out) != 1 {
		t.Fatalf("forwarded %d frames, want 1 (dedup per link)", len(out))
	}
}

func TestUnsubscribeFlow(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	b.SubscribeLocal(mustSub(t, 1, "alice", `x = 1`))
	out, err := b.UnsubscribeLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Frame.Type != wire.FrameUnsubscribe || out[0].Frame.SubID != 1 {
		t.Fatalf("unsubscribe forward = %+v", out)
	}
	_, dels := b.PublishLocal(event.Build(1).Int("x", 1).Msg())
	if len(dels) != 0 {
		t.Error("delivery after unsubscribe")
	}
	// Errors.
	if _, err := b.UnsubscribeLocal(1); err == nil {
		t.Error("double unsubscribe accepted")
	}
	b.HandleSubscribe(l0, mustSub(t, 2, "r", `y = 1`))
	if _, err := b.UnsubscribeLocal(2); err == nil {
		t.Error("local unsubscribe of remote entry accepted")
	}
	if _, err := b.HandleUnsubscribe(l0, 2); err != nil {
		t.Errorf("remote unsubscribe failed: %v", err)
	}
	if st := b.Stats(); st.RemoteSubs != 0 {
		t.Errorf("RemoteSubs = %d after unsubscribe", st.RemoteSubs)
	}
}

func TestHandleFrameDispatch(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	s := mustSub(t, 5, "r", `x = 1`)
	if _, _, err := b.HandleFrame(l0, wire.SubscribeFrame(s)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.HandleFrame(l0, wire.PublishFrame(event.Build(1).Int("x", 1).Msg())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.HandleFrame(l0, wire.UnsubscribeFrame(5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.HandleFrame(l0, wire.Frame{Type: 99}); err == nil {
		t.Error("unknown frame accepted")
	}
	if _, _, err := b.HandleFrame(LinkID(9), wire.PublishFrame(event.Build(1).Msg())); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestLocalEntriesNeverPruned(t *testing.T) {
	b := newBroker(t, "b0")
	b.SubscribeLocal(mustSub(t, 1, "alice", `a = 1 and b = 2 and c = 3`))
	if n := b.Prune(100); n != 0 {
		t.Errorf("pruned %d local entries, want 0", n)
	}
	cur, orig, ok := b.CurrentEntry(1)
	if !ok || cur.NumLeaves() != 3 || orig.NumLeaves() != 3 {
		t.Errorf("local entry changed: %v / %v", cur, orig)
	}
}

func TestPruningGeneralizesRoutingEntry(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	// Train the model so ratings are meaningful.
	for i := 0; i < 1000; i++ {
		b.Model().Observe(event.Build(uint64(i)).Int("price", int64(i%100)).Str("category", "a").Msg())
	}
	b.HandleSubscribe(l0, mustSub(t, 1, "r", `price <= 95 and category = "a"`))
	if n := b.Prune(1); n != 1 {
		t.Fatalf("Prune = %d, want 1", n)
	}
	cur, orig, _ := b.CurrentEntry(1)
	if cur.NumLeaves() != 1 {
		t.Errorf("pruned entry has %d leaves", cur.NumLeaves())
	}
	if orig.NumLeaves() != 2 {
		t.Errorf("original mutated: %s", orig)
	}
	// The pruned entry must be more general: an event the original missed
	// can now be forwarded, but everything the original matched still is.
	matchBoth := event.Build(1).Int("price", 50).Str("category", "a").Msg()
	out, _, err := b.HandlePublish(l0, matchBoth)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Error("event echoed to origin link")
	}
	// From the local side it must forward to l0.
	out, _ = b.PublishLocal(matchBoth)
	if len(out) != 1 {
		t.Error("pruned entry no longer forwards matching event")
	}
}

func TestStatsAndCounters(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	b.SubscribeLocal(mustSub(t, 1, "alice", `x = 1`))
	b.HandleSubscribe(l0, mustSub(t, 2, "r", `x = 1 and y = 2`))
	st := b.Stats()
	if st.LocalSubs != 1 || st.RemoteSubs != 1 {
		t.Errorf("subs = %d/%d", st.LocalSubs, st.RemoteSubs)
	}
	if st.Associations != 3 {
		t.Errorf("Associations = %d, want 3", st.Associations)
	}
	if got := b.NonLocalAssociations(); got != 2 {
		t.Errorf("NonLocalAssociations = %d, want 2", got)
	}
	b.PublishLocal(event.Build(1).Int("x", 1).Int("y", 2).Msg())
	st = b.Stats()
	if st.Counters.EventsFiltered != 1 || st.Counters.EventsPublished != 1 {
		t.Errorf("counters = %+v", st.Counters)
	}
	if st.Counters.EventsForwarded != 1 {
		t.Errorf("EventsForwarded = %d, want 1", st.Counters.EventsForwarded)
	}
	if st.Counters.MatchedEntries != 2 {
		t.Errorf("MatchedEntries = %d, want 2", st.Counters.MatchedEntries)
	}
	if st.Counters.Deliveries != 1 {
		t.Errorf("Deliveries = %d, want 1", st.Counters.Deliveries)
	}
	b.ResetCounters()
	if b.Stats().Counters.EventsFiltered != 0 {
		t.Error("ResetCounters did not clear")
	}
}

func TestDuplicateSubscriptionRejected(t *testing.T) {
	b := newBroker(t, "b0")
	b.SubscribeLocal(mustSub(t, 1, "alice", `x = 1`))
	if _, err := b.SubscribeLocal(mustSub(t, 1, "bob", `y = 1`)); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestObserveEventsFeedsModel(t *testing.T) {
	b, err := New(Config{ID: "b", ObserveEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	b.PublishLocal(event.Build(1).Int("price", 10).Msg())
	b.PublishLocal(event.Build(2).Int("price", 20).Msg())
	if b.Model().Events() != 2 {
		t.Errorf("model observed %d events, want 2", b.Model().Events())
	}
}

func TestSetDimension(t *testing.T) {
	b := newBroker(t, "b0")
	if err := b.SetDimension(core.DimMemory); err != nil {
		t.Fatal(err)
	}
	if b.Dimension() != core.DimMemory {
		t.Error("dimension not switched")
	}
	if err := b.SetDimension(core.Dimension(50)); err == nil {
		t.Error("invalid dimension accepted")
	}
}

func TestDeliveryMetadata(t *testing.T) {
	b := newBroker(t, "b0")
	b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(0, mustSub(t, 2, "remote", `x = 1`)); err != nil {
		t.Fatal(err)
	}

	// Local routing meters its own deliveries.
	b.PublishLocal(event.Build(1).Int("x", 1).Msg())
	if d, drop, ok := b.EntryDelivery(1); !ok || d != 1 || drop != 0 {
		t.Errorf("local entry delivery = %d/%d/%v, want 1/0/true", d, drop, ok)
	}

	// External delivery planes report through the entry's meter.
	m := b.DeliveryMeter(2)
	if m == nil {
		t.Fatal("no meter for entry 2")
	}
	m.NoteDelivered(3)
	m.NoteDropped(2)
	if d, drop, ok := b.EntryDelivery(2); !ok || d != 3 || drop != 2 {
		t.Errorf("remote entry delivery = %d/%d/%v, want 3/2/true", d, drop, ok)
	}
	if m.Delivered() != 3 || m.Dropped() != 2 {
		t.Errorf("meter reads %d/%d", m.Delivered(), m.Dropped())
	}

	st := b.Stats()
	if st.Counters.DeliveriesDropped != 2 {
		t.Errorf("DeliveriesDropped = %d, want 2", st.Counters.DeliveriesDropped)
	}
	if len(st.Delivery) != 2 || st.Delivery[0].SubID != 1 || st.Delivery[1].SubID != 2 {
		t.Fatalf("Stats.Delivery = %+v", st.Delivery)
	}
	if !st.Delivery[0].Local || st.Delivery[1].Local {
		t.Errorf("Local flags wrong: %+v", st.Delivery)
	}
	if st.Delivery[1].Delivered != 3 || st.Delivery[1].Dropped != 2 {
		t.Errorf("per-entry stats = %+v", st.Delivery[1])
	}

	// Unknown entries have no meter; reports to a stale meter still land
	// broker-wide.
	if b.DeliveryMeter(99) != nil {
		t.Error("meter for unknown entry")
	}
	if _, err := b.HandleUnsubscribe(0, 2); err != nil {
		t.Fatal(err)
	}
	m.NoteDropped(1)
	if b.Stats().Counters.DeliveriesDropped != 3 {
		t.Error("stale meter report lost")
	}
	if _, _, ok := b.EntryDelivery(2); ok {
		t.Error("EntryDelivery reports a removed entry")
	}
}
