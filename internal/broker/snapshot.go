package broker

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"dimprune/internal/wire"
)

// Routing-table snapshots let a broker restart without replaying the
// subscription history: every entry is persisted with its origin link, its
// original tree, and its current (possibly pruned) tree, so heuristic
// anchors and applied prunings both survive.
//
// Format: magic, version, entry count, then per entry
// [origin+1 uvarint][original subscription][current subscription]. Counters
// and the learned selectivity model are deliberately not persisted: both
// are measurements, not state needed for correct routing.

var snapshotMagic = [4]byte{'d', 'p', 's', '1'}

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("broker: bad snapshot")

// WriteSnapshot serializes the routing table to w. Entries are written in
// ascending subscription-ID order so snapshots of equal state are
// byte-identical. It takes the shared lock: routing may continue while the
// snapshot is written, table mutations wait.
func (b *Broker) WriteSnapshot(w io.Writer) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	buf := binary.AppendUvarint(nil, uint64(len(b.entries)))

	ids := make([]uint64, 0, len(b.entries))
	for id := range b.entries {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for _, id := range ids {
		ent := b.entries[id]
		cur, ok := b.table.Subscription(id)
		if !ok {
			return fmt.Errorf("broker %s: entry %d missing from table", b.id, id)
		}
		buf = binary.AppendUvarint(buf, uint64(ent.origin+1)) // LocalLink (-1) -> 0
		buf = wire.AppendSubscription(buf, ent.original)
		buf = wire.AppendSubscription(buf, cur)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot loads a snapshot into a freshly constructed broker. The
// broker must have no subscriptions yet; static links must already be
// added (the snapshot references link IDs). Pruning state (anchors and
// applied prunings) is reconstructed exactly.
//
// Entries whose origin link is not attached (or is dead) are skipped, not
// errors: a broker that snapshots while holding entries learned over
// managed peer links persists origins that do not exist on restart, and
// those entries are redundant anyway — the peer replays them through the
// reconnect resync. The operator-visible signal is the restored local/
// remote counts (brokerd logs them after a restore).
func (b *Broker) ReadSnapshot(r io.Reader) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.entries) != 0 {
		return fmt.Errorf("broker %s: snapshot restore into non-empty broker", b.id)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if len(data) < len(snapshotMagic) || string(data[:4]) != string(snapshotMagic[:]) {
		return fmt.Errorf("%w: missing magic", ErrBadSnapshot)
	}
	data = data[4:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: truncated count", ErrBadSnapshot)
	}
	data = data[n:]
	if count > uint64(len(data)) {
		return fmt.Errorf("%w: implausible entry count %d", ErrBadSnapshot, count)
	}
	for i := uint64(0); i < count; i++ {
		rawOrigin, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("%w: truncated origin in entry %d", ErrBadSnapshot, i)
		}
		data = data[n:]
		origin := LinkID(rawOrigin) - 1
		original, n, err := wire.DecodeSubscription(data)
		if err != nil {
			return fmt.Errorf("%w: entry %d original: %v", ErrBadSnapshot, i, err)
		}
		data = data[n:]
		current, n, err := wire.DecodeSubscription(data)
		if err != nil {
			return fmt.Errorf("%w: entry %d current: %v", ErrBadSnapshot, i, err)
		}
		data = data[n:]

		if origin != LocalLink && b.checkLink(origin) != nil {
			continue // origin not attached on this run: the peer resyncs it
		}
		if original.ID != current.ID {
			return fmt.Errorf("%w: entry %d: ID mismatch %d vs %d",
				ErrBadSnapshot, i, original.ID, current.ID)
		}
		if err := b.table.Register(current); err != nil {
			return fmt.Errorf("broker %s: restore: %w", b.id, err)
		}
		b.entries[current.ID] = &routeEntry{
			origin:   origin,
			original: original,
			meter:    &DeliveryMeter{counters: &b.counters},
		}
		if origin != LocalLink {
			if err := b.pruner.RegisterAt(original, current); err != nil {
				return fmt.Errorf("broker %s: restore pruner: %w", b.id, err)
			}
		}
		if b.forest != nil {
			// Rebuild the covering plane over the originals; restore emits
			// no frames (peers resync through the reconnect replay), so the
			// transitions are discarded.
			b.forest.Insert(original, int(origin))
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data))
	}
	return nil
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
