package broker

// Read-only oracle accessors. Chaos and differential tests fingerprint a
// broker's routing state — which entries it holds, and which it would
// advertise on each link — and compare the fingerprints against a freshly
// built reference overlay. These mirror the selection logic of SyncFrames
// without encoding frames or touching counters, so observing the state
// never perturbs the traffic accounting under test.

// EntryIDs returns the broker's routing entries, split into locally
// originated and remotely learned, each in ascending ID order.
func (b *Broker) EntryIDs() (local, remote []uint64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for id, ent := range b.entries {
		if ent.origin == LocalLink {
			local = append(local, id)
		} else {
			remote = append(remote, id)
		}
	}
	sortIDs(local)
	sortIDs(remote)
	return local, remote
}

// AdvertisedIDs returns, in ascending order, the IDs of the entries this
// broker currently advertises on link to — exactly the set SyncFrames
// would replay to a neighbor (re)attaching there: every entry not
// originated on that link, minus (with the covering plane on) covered
// entries whose cover is advertised on the same link.
func (b *Broker) AdvertisedIDs(to LinkID) ([]uint64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkLink(to); err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, len(b.entries))
	for id, ent := range b.entries {
		if ent.origin == to {
			continue
		}
		if b.forest != nil {
			if covered, coverOrigin, _, ok := b.forest.State(id); ok && covered && coverOrigin != int(to) {
				continue
			}
		}
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids, nil
}
