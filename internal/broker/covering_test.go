package broker

import (
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/wire"
)

// The covering control plane: a broker forwards a subscription to a peer
// only when no already-forwarded entry covers it, retractions promote
// now-uncovered entries with their subscribes emitted before any
// unsubscribe, and resync replays advertisement sets, not tables.

func TestCoveringSuppressesCoveredForwarding(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()

	// The general entry goes everywhere.
	out, err := b.SubscribeLocal(mustSub(t, 1, "alice", `price <= 50`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("general subscribe emitted %d frames, want 2", len(out))
	}
	// A locally covered entry is advertised nowhere: its cover shares its
	// origin, so every neighbor already holds a subsuming entry.
	out, err = b.SubscribeLocal(mustSub(t, 2, "bob", `price <= 20 and sector = "tech"`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("covered subscribe emitted %d frames, want 0: %+v", len(out), out)
	}
	st := b.Stats()
	if st.CoverRoots != 1 || st.CoverCovered != 1 || st.CoverOpaque != 0 {
		t.Errorf("cover stats = %d/%d/%d, want 1 root, 1 covered, 0 opaque",
			st.CoverRoots, st.CoverCovered, st.CoverOpaque)
	}

	// A remote entry covered by an entry from a different link is still
	// advertised toward its cover's origin — that neighbor never received
	// the cover (entries are not echoed to their origin).
	out, err = b.HandleSubscribe(l0, mustSub(t, 3, "r0", `price <= 10`))
	if err != nil {
		t.Fatal(err)
	}
	// Entry 3 is covered by local entry 1 (coverOrigin = LocalLink ≠ l0),
	// but the advertisement set excludes the entry's own origin; toward l1
	// it is suppressed by the cover. Local covers advertise nowhere.
	if len(out) != 0 {
		t.Fatalf("covered remote subscribe emitted %d frames, want 0: %+v", len(out), out)
	}

	// An opaque (disjunctive) entry always forwards.
	out, err = b.SubscribeLocal(mustSub(t, 4, "carol", `price <= 5 or sector = "oil"`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("opaque subscribe emitted %d frames, want 2", len(out))
	}
	if st := b.Stats(); st.CoverOpaque != 1 {
		t.Errorf("CoverOpaque = %d, want 1", st.CoverOpaque)
	}
	_ = l1
}

func TestCoveringRetractionPromotesCovered(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `price <= 50`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeLocal(mustSub(t, 2, "bob", `price <= 20`)); err != nil {
		t.Fatal(err)
	}

	// Retracting the cover promotes the covered entry: its subscribe must
	// reach both links before the cover's unsubscribe, per link.
	out, err := b.UnsubscribeLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("retraction emitted %d frames, want 4: %+v", len(out), out)
	}
	seenSub := map[LinkID]bool{}
	for _, o := range out {
		switch o.Frame.Type {
		case wire.FrameSubscribe:
			if o.Frame.Sub.ID != 2 {
				t.Errorf("promotion subscribe for %d, want 2", o.Frame.Sub.ID)
			}
			seenSub[o.Link] = true
		case wire.FrameUnsubscribe:
			if o.Frame.SubID != 1 {
				t.Errorf("unsubscribe for %d, want 1", o.Frame.SubID)
			}
			if !seenSub[o.Link] {
				t.Errorf("unsubscribe reached link %d before the promotion subscribe", o.Link)
			}
		}
	}
	if !seenSub[l0] || !seenSub[l1] {
		t.Errorf("promotion subscribe missing on a link: %+v", seenSub)
	}

	// The promoted entry still routes: a matching publish from l0 forwards
	// nowhere (it is local), but matches locally.
	_, dels := b.PublishLocal(event.Build(1).Int("price", int64(10)).Msg())
	if len(dels) != 1 || dels[0].Subscriber != "bob" {
		t.Errorf("deliveries after promotion = %+v", dels)
	}
}

func TestCoveringSyncFramesReplaysAdvertisementSet(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `price <= 50`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeLocal(mustSub(t, 2, "bob", `price <= 20`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeLocal(mustSub(t, 3, "carol", `a = 1 or b = 2`)); err != nil {
		t.Fatal(err)
	}
	// A remote entry covered by the local root is advertised only toward
	// its cover's origin — which for a local cover is no link at all.
	if _, err := b.HandleSubscribe(l0, mustSub(t, 4, "r0", `price <= 5`)); err != nil {
		t.Fatal(err)
	}

	// A fresh link receives the root and the opaque entry; the covered
	// local entry and the covered remote entry are both suppressed.
	l1 := b.AddLink()
	out, err := b.SyncFrames(l1)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	for _, o := range out {
		if o.Link != l1 || o.Frame.Type != wire.FrameSubscribe {
			t.Fatalf("sync frame = link %d %s", o.Link, o.Frame.Type)
		}
		ids[o.Frame.Sub.ID] = true
	}
	if len(ids) != 2 || !ids[1] || !ids[3] {
		t.Errorf("sync replayed %v, want {1, 3}", ids)
	}
}

func TestDisableCoveringForwardsEverything(t *testing.T) {
	b, err := New(Config{ID: "b0", DisableCovering: true})
	if err != nil {
		t.Fatal(err)
	}
	b.AddLink()
	for i, expr := range []string{`price <= 50`, `price <= 20`, `price <= 5`} {
		out, err := b.SubscribeLocal(mustSub(t, uint64(i+1), "alice", expr))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("subscribe %d emitted %d frames with covering off, want 1", i+1, len(out))
		}
	}
	if st := b.Stats(); st.CoverRoots != 0 || st.CoverCovered != 0 || st.CoverOpaque != 0 {
		t.Errorf("cover stats nonzero with covering disabled: %+v", st)
	}
}
