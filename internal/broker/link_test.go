package broker

import (
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/wire"
)

func TestDropLinkRemovesEntriesAndForwardsRetractions(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()
	if _, err := b.HandleSubscribe(l0, mustSub(t, 1, "r0", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l0, mustSub(t, 2, "r0", `x = 2 and y = 3`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l1, mustSub(t, 3, "r1", `z = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeLocal(mustSub(t, 4, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}

	out, removed := b.DropLink(l0)
	if removed != 2 {
		t.Fatalf("DropLink removed %d entries, want 2", removed)
	}
	// Local entry 4 (x = 1) was covered by remote entry 1 (identical tree,
	// lower ID), so l1 never saw it. The drop promotes it — its late
	// subscribe frame must precede the retractions of 1 and 2, which go to
	// l1 only, in ascending ID order.
	if len(out) != 3 {
		t.Fatalf("DropLink emitted %d frames, want 3: %+v", len(out), out)
	}
	if o := out[0]; o.Link != l1 || o.Frame.Type != wire.FrameSubscribe || o.Frame.Sub.ID != 4 {
		t.Errorf("frame 0 = link %d %s, want promotion subscribe for entry 4", o.Link, o.Frame.Type)
	}
	for i, o := range out[1:] {
		if o.Link != l1 || o.Frame.Type != wire.FrameUnsubscribe || o.Frame.SubID != uint64(i+1) {
			t.Errorf("frame %d = link %d %s sub %d", i+1, o.Link, o.Frame.Type, o.Frame.SubID)
		}
	}
	st := b.Stats()
	if st.RemoteSubs != 1 || st.LocalSubs != 1 {
		t.Errorf("after drop: remote=%d local=%d, want 1/1", st.RemoteSubs, st.LocalSubs)
	}

	// The dead link no longer receives or contributes traffic.
	_, dels := b.PublishLocal(event.Build(1).Int("x", 1).Msg())
	if len(dels) != 1 || dels[0].Subscriber != "alice" {
		t.Errorf("deliveries after drop = %+v", dels)
	}
	if _, err := b.HandleSubscribe(l0, mustSub(t, 9, "ghost", `a = 1`)); err == nil {
		t.Error("subscribe from dead link accepted")
	}
	if _, _, err := b.HandlePublish(l0, event.Build(2).Int("x", 1).Msg()); err == nil {
		t.Error("publish from dead link accepted")
	}
	// Control frames skip the dead link.
	fwd, err := b.SubscribeLocal(mustSub(t, 5, "bob", `q = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) != 1 || fwd[0].Link != l1 {
		t.Errorf("local subscribe forwarded to %+v, want only link %d", fwd, l1)
	}

	// Idempotent: a second drop is a no-op.
	if out, removed := b.DropLink(l0); removed != 0 || out != nil {
		t.Errorf("second DropLink = %v, %d", out, removed)
	}
	// Out-of-range links are no-ops too.
	if _, removed := b.DropLink(99); removed != 0 {
		t.Error("dropping unknown link removed entries")
	}
}

func TestSyncFramesReplaysOtherOrigins(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `a = 1 and b = 2`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l0, mustSub(t, 2, "r0", `c = 3`)); err != nil {
		t.Fatal(err)
	}
	// Prune the non-local entry so the table tree diverges from the
	// original; sync must still carry the original.
	if _, err := b.HandleSubscribe(l0, mustSub(t, 3, "r0", `d = 4 and e = 5`)); err != nil {
		t.Fatal(err)
	}
	b.ExhaustPrunings()

	// A freshly attached link learns every entry not originating on it.
	l1 := b.AddLink()
	out, err := b.SyncFrames(l1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("SyncFrames emitted %d frames, want 3", len(out))
	}
	for i, o := range out {
		if o.Link != l1 || o.Frame.Type != wire.FrameSubscribe {
			t.Fatalf("frame %d = link %d %s", i, o.Link, o.Frame.Type)
		}
		if o.Frame.Sub.ID != uint64(i+1) {
			t.Errorf("frame %d carries sub %d, want %d (ascending IDs)", i, o.Frame.Sub.ID, i+1)
		}
	}
	// Entry 3 was pruned in the table, but the sync carries its original.
	if got := out[2].Frame.Sub.Root.String(); got != mustSub(t, 3, "r0", `d = 4 and e = 5`).Root.String() {
		t.Errorf("sync frame for pruned entry carries %q, want the original tree", got)
	}

	// Syncing toward l0 excludes l0's own entries.
	out, err = b.SyncFrames(l0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Frame.Sub.ID != 1 {
		t.Errorf("SyncFrames(l0) = %+v, want only the local entry", out)
	}

	// Dead and unknown targets are errors.
	b.DropLink(l0)
	if _, err := b.SyncFrames(l0); err == nil {
		t.Error("SyncFrames to dead link succeeded")
	}
	if _, err := b.SyncFrames(42); err == nil {
		t.Error("SyncFrames to unknown link succeeded")
	}
}

func TestDuplicateSubscribeFromNetworkConverges(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()
	s := mustSub(t, 1, "r0", `x = 1`)
	if _, err := b.HandleSubscribe(l0, s); err != nil {
		t.Fatal(err)
	}

	// Identical resend (resync replay): no-op, nothing forwarded.
	out, err := b.HandleSubscribe(l0, mustSub(t, 1, "r0", `x = 1`))
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("identical duplicate forwarded %d frames", len(out))
	}
	if st := b.Stats(); st.RemoteSubs != 1 {
		t.Errorf("RemoteSubs = %d after duplicate", st.RemoteSubs)
	}

	// Same ID from a different link (peer moved): replace, forward toward
	// the old origin, and retract the now-wrong advertisement on the new
	// origin (the remote there re-homed the entry itself, so the retraction
	// is a converging no-op on its side).
	out, err = b.HandleSubscribe(l1, mustSub(t, 1, "r0", `x = 1`))
	if err != nil {
		t.Fatalf("origin change rejected: %v", err)
	}
	if len(out) != 2 || out[0].Link != l0 || out[0].Frame.Type != wire.FrameSubscribe ||
		out[1].Link != l1 || out[1].Frame.Type != wire.FrameUnsubscribe {
		t.Errorf("replacement forwarded %+v, want subscribe to %d then unsubscribe to %d", out, l0, l1)
	}
	// Routing follows the new origin: an event matching x=1 arriving on l0
	// now forwards to l1.
	fwd, _, err := b.HandlePublish(l0, event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) != 1 || fwd[0].Link != l1 {
		t.Errorf("event routed to %+v, want link %d", fwd, l1)
	}

	// Changed tree under the same ID and link: replace in place.
	if _, err := b.HandleSubscribe(l1, mustSub(t, 1, "r0", `x = 2`)); err != nil {
		t.Fatal(err)
	}
	cur, _, ok := b.CurrentEntry(1)
	if !ok || cur.Root.String() != mustSub(t, 1, "r0", `x = 2`).Root.String() {
		t.Errorf("replacement tree not installed: %v", cur)
	}

	// Local collisions stay errors in both directions…
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `y = 1`)); err == nil {
		t.Error("local subscribe clobbered a network entry")
	}
	if _, err := b.SubscribeLocal(mustSub(t, 2, "alice", `y = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l0, mustSub(t, 2, "r0", `y = 2`)); err == nil {
		t.Error("network subscribe clobbered a local entry")
	}
	// …except an identical echo of our own local entry (a resyncing peer
	// replaying state it learned from us): no-op, nothing forwarded.
	out, err = b.HandleSubscribe(l0, mustSub(t, 2, "alice", `y = 1`))
	if err != nil {
		t.Fatalf("echoed local entry rejected: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("echoed local entry forwarded %d frames", len(out))
	}
	if cur, _, ok := b.CurrentEntry(2); !ok || cur == nil {
		t.Error("echo handling disturbed the local entry")
	}
}

func TestNetworkRetractionToleratesChurnNoise(t *testing.T) {
	b := newBroker(t, "b0")
	l0 := b.AddLink()
	l1 := b.AddLink()

	// Unknown retraction from the network: no-op, nothing forwarded — a
	// peer attached moments before its state replay can legitimately see
	// one.
	out, err := b.HandleUnsubscribe(l0, 77)
	if err != nil {
		t.Fatalf("unknown network retraction errored: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("unknown retraction forwarded %d frames", len(out))
	}

	// Stale retraction from a link the entry moved away from: no-op.
	if _, err := b.HandleSubscribe(l0, mustSub(t, 1, "r", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(l1, mustSub(t, 1, "r", `x = 1`)); err != nil {
		t.Fatal(err) // replace: origin moves to l1
	}
	if _, err := b.HandleUnsubscribe(l0, 1); err != nil {
		t.Fatalf("stale-origin retraction errored: %v", err)
	}
	if st := b.Stats(); st.RemoteSubs != 1 {
		t.Errorf("stale retraction removed the re-homed entry: %d remote subs", st.RemoteSubs)
	}
	// The current origin's retraction still works.
	if _, err := b.HandleUnsubscribe(l1, 1); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.RemoteSubs != 0 {
		t.Errorf("RemoteSubs = %d after retraction", st.RemoteSubs)
	}

	// Local misuse stays loud.
	if _, err := b.UnsubscribeLocal(99); err == nil {
		t.Error("unknown local unsubscribe accepted")
	}
	// A neighbor flushing entries it learned from us (reconnect cleanup
	// racing the new link) retracts our local entry: drop the frame, keep
	// the entry, keep the link.
	if _, err := b.SubscribeLocal(mustSub(t, 2, "alice", `y = 1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleUnsubscribe(l0, 2); err != nil {
		t.Errorf("stale network retraction of a local entry errored: %v", err)
	}
	if st := b.Stats(); st.LocalSubs != 1 {
		t.Errorf("stale network retraction removed the local entry: %d local subs", st.LocalSubs)
	}
}
