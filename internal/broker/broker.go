// Package broker implements a content-based publish/subscribe broker with
// subscription forwarding (§2.1) and pruning-aware routing tables.
//
// The Broker is a sans-IO state machine: handlers take a frame (or a local
// client action) and return the frames to emit on neighbor links plus the
// notifications for local subscribers. Transports — the deterministic
// simulation in internal/simnet and the TCP server in internal/transport —
// own all goroutines and sockets.
//
// Routing and pruning rules, following §2.2:
//
//   - A subscription registered by a local client is filtered with its exact
//     tree and is never pruned (correctness anchor: the last broker on the
//     path post-filters precisely).
//   - A subscription learned from a neighbor (non-local) is a routing entry;
//     the pruning engine may generalize it. Generalization only ever adds
//     forwarded events, which downstream brokers filter again.
//   - Events are forwarded once per link that has at least one matching
//     routing entry whose origin is that link, never back to the link the
//     event arrived on.
//
// # Concurrency model
//
// The broker is safe for concurrent use and splits into two planes:
//
//   - Data plane (shared, RLock): PublishLocal, HandlePublish, and
//     MatchEntries route events through the filtering table. Any number may
//     run at once — the filter engine matches with per-call scratch, route
//     scratch comes from a pool, traffic counters are atomics, and the
//     selectivity model locks internally.
//   - Control plane (exclusive, Lock): subscribe, unsubscribe, prune, and
//     snapshot restore mutate the routing table and indexes, so they drain
//     all in-flight routing before proceeding.
//
// The deterministic simulation drives brokers from one goroutine; for it
// the locks are uncontended and behavior is unchanged.
package broker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimprune/internal/core"
	"dimprune/internal/covering"
	"dimprune/internal/event"
	"dimprune/internal/filter"
	"dimprune/internal/metrics"
	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// LinkID identifies one neighbor connection of a broker. Links are dense
// indexes assigned by AddLink in order.
type LinkID int

// LocalLink marks entries owned by this broker's own clients.
const LocalLink LinkID = -1

// Delivery is one notification for a local subscriber.
type Delivery struct {
	Subscriber string
	SubID      uint64
	Msg        *event.Message
}

// Outgoing is one frame to transmit on a neighbor link.
//
// Enc, when non-nil, is the frame's encode-once buffer: the broker encodes
// each distinct frame exactly once and shares the buffer across every
// Outgoing that carries it, holding one reference per Outgoing. Whoever
// consumes an Outgoing owns that reference and must drop it exactly once —
// by handing it to a transport outbox that releases after the socket write,
// by charging the simulated network and releasing, or by calling ReleaseEnc
// directly when the frame goes nowhere (detached link, test harness).
// Consumers that ignore Enc (tests asserting on Frame) merely miss the pool;
// the buffer is garbage-collected like any other allocation.
type Outgoing struct {
	Link  LinkID
	Frame wire.Frame
	Enc   *wire.EncodedFrame
}

// ReleaseEnc drops this Outgoing's reference on the shared encoding, if any.
func (o *Outgoing) ReleaseEnc() {
	if o.Enc != nil {
		o.Enc.Release()
		o.Enc = nil
	}
}

// encodeShared encodes f once for n recipients, returning the shared buffer
// (with n references) and the payload size for the byte counters. A frame
// that cannot encode — impossible for broker-built frames — degrades to no
// buffer and size 0, matching FrameSize's invalid-frame convention.
func encodeShared(f wire.Frame, n int) (*wire.EncodedFrame, uint64) {
	enc, err := wire.EncodeFrame(f, int32(n))
	if err != nil {
		return nil, 0
	}
	return enc, uint64(enc.FrameLen())
}

// Config configures a broker.
type Config struct {
	// ID names the broker in diagnostics.
	ID string
	// Dimension selects the pruning heuristic (default DimNetwork, the
	// paper's recommendation for general-purpose systems).
	Dimension core.Dimension
	// PruneOptions tunes the pruning engine (ablations).
	PruneOptions core.Options
	// Model optionally supplies a pre-trained selectivity model; a fresh
	// empty model is created when nil.
	Model *selectivity.Model
	// ObserveEvents updates the selectivity model with every event the
	// broker filters, so Δ≈sel ratings track the live workload.
	ObserveEvents bool
	// MatchShards partitions the filtering table so one match call can fan
	// out across workers. 0 picks an automatic layout from MatchWorkers
	// (serial when the worker count resolves to 1); 1 forces the serial
	// single-shard layout.
	MatchShards int
	// MatchWorkers bounds the goroutines one match call fans out across
	// (capped at MatchShards). 0 sizes from GOMAXPROCS; 1 matches on the
	// calling goroutine. Concurrent publishes parallelize regardless of
	// this setting; workers additionally parallelize within a single large
	// match.
	MatchWorkers int
	// DisableCovering turns off the covering forest (default on): without
	// it every subscription is forwarded to every neighbor, as in the
	// pre-covering control plane. The differential oracle runs both modes.
	DisableCovering bool
}

// DeliveryMeter counts one routing entry's delivery outcomes: how many
// notifications its subscriber accepted and how many its backpressure
// policy shed. The broker's own routing meters local deliveries itself;
// queue-based delivery planes (Embedded handles, networked client
// sessions) obtain the meter once via Broker.DeliveryMeter and report
// through it lock-free on every delivery. A meter outlives its entry —
// reports after unsubscribe still land broker-wide but are no longer
// visible in Stats.
type DeliveryMeter struct {
	delivered atomic.Uint64
	dropped   atomic.Uint64
	counters  *metrics.AtomicCounters
}

// NoteDelivered records n notifications accepted by the subscriber.
func (dm *DeliveryMeter) NoteDelivered(n uint64) {
	if n != 0 {
		dm.delivered.Add(n)
		dm.counters.Deliveries.Add(n)
	}
}

// NoteDropped records n notifications shed by the backpressure policy.
func (dm *DeliveryMeter) NoteDropped(n uint64) {
	if n != 0 {
		dm.dropped.Add(n)
		dm.counters.DeliveriesDropped.Add(n)
	}
}

// Delivered returns the accepted-notification count.
func (dm *DeliveryMeter) Delivered() uint64 { return dm.delivered.Load() }

// Dropped returns the shed-notification count.
func (dm *DeliveryMeter) Dropped() uint64 { return dm.dropped.Load() }

// routeEntry is one routing-table row.
type routeEntry struct {
	origin   LinkID
	original *subscription.Subscription // as registered/received; never pruned
	meter    *DeliveryMeter
}

// Broker routes events among local clients and neighbor brokers. It is
// safe for concurrent use; see the package comment for the two-plane
// locking model.
type Broker struct {
	id string

	// mu separates the planes: routing takes RLock, table mutation takes
	// Lock. links only grows (AddLink) and dead flags only flip once
	// (DropLink), both under the exclusive lock; link IDs are never reused,
	// so a reconnecting peer attaches as a fresh link.
	mu    sync.RWMutex
	links int
	dead  []bool   // dead[l]: link l dropped; no frames accepted or emitted
	live  []LinkID // live links in ascending order — the forwarding set.
	// Reconnect churn allocates a fresh ID per link, so control forwarding
	// iterates live rather than every ID ever issued.

	table   *filter.Engine
	model   *selectivity.Model
	pruner  *core.Engine
	entries map[uint64]*routeEntry
	observe bool

	// forest is the covering plane: the partial-order index deciding which
	// entries are advertised on which links (nil when covering is
	// disabled). It tracks original, never-pruned trees — pruning
	// generalizes this broker's copy of a routing entry, covering decides
	// which entries neighbors need at all; the two compose (prune the
	// cover, not the member).
	forest *covering.Forest

	counters metrics.AtomicCounters

	// routeScratch pools per-call routing buffers so concurrent publishes
	// neither share state nor allocate per event.
	routeScratch sync.Pool // *routeBuffers
}

// routeBuffers is the per-call scratch of one route pass.
type routeBuffers struct {
	matchLinks []bool
	deliveries []Delivery
}

// New creates a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("broker: empty ID")
	}
	dim := cfg.Dimension
	if dim == 0 {
		dim = core.DimNetwork
	}
	model := cfg.Model
	if model == nil {
		model = selectivity.NewModel()
	}
	pruner, err := core.NewEngine(dim, model, cfg.PruneOptions)
	if err != nil {
		return nil, fmt.Errorf("broker %s: %w", cfg.ID, err)
	}
	b := &Broker{
		id:      cfg.ID,
		table:   filter.NewSharded(cfg.MatchShards, cfg.MatchWorkers),
		model:   model,
		pruner:  pruner,
		entries: make(map[uint64]*routeEntry),
		observe: cfg.ObserveEvents,
	}
	if !cfg.DisableCovering {
		b.forest = covering.NewForest()
	}
	return b, nil
}

// ID returns the broker's name.
func (b *Broker) ID() string { return b.id }

// Model returns the broker's selectivity model (shared with the pruner).
func (b *Broker) Model() *selectivity.Model { return b.model }

// AddLink registers a neighbor connection and returns its LinkID. Links
// may be added at any time (peers join and rejoin a running overlay); a
// new link learns the existing routing state via SyncFrames.
func (b *Broker) AddLink() LinkID {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := LinkID(b.links)
	b.links++
	b.dead = append(b.dead, false)
	b.live = append(b.live, id)
	return id
}

// DropLink retires a neighbor link: the link is marked dead (no further
// frames are accepted from or emitted to it) and every routing entry that
// originated on it is removed from the filtering table and the pruning
// engine, exactly as if those subscribers had unsubscribed. The returned
// frames forward the retractions to the remaining live links; the count
// is the number of entries removed. Dropping an unknown or already dead
// link is a no-op. Link IDs are never reused — a reconnecting peer
// attaches as a fresh link and is brought up to date via SyncFrames.
func (b *Broker) DropLink(l LinkID) ([]Outgoing, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if l < 0 || int(l) >= b.links || b.dead[l] {
		return nil, 0
	}
	b.dead[l] = true
	for i, ll := range b.live {
		if ll == l {
			b.live = append(b.live[:i], b.live[i+1:]...)
			break
		}
	}
	ids := make([]uint64, 0, 16)
	for id, ent := range b.entries {
		if ent.origin == l {
			ids = append(ids, id)
		}
	}
	sortIDs(ids) // deterministic retraction order
	var out []Outgoing
	if b.forest != nil {
		// Batch removal: covered entries retract only toward their cover's
		// origin, and children of dying covers are re-advertised (late
		// subscribe frames) before any retraction goes out.
		for _, id := range ids {
			b.table.Unregister(id)
			b.pruner.Unregister(id)
			delete(b.entries, id)
		}
		out = b.applyTransitions(b.forest.RemoveBatch(ids), 0)
	} else {
		for _, id := range ids {
			b.table.Unregister(id)
			b.pruner.Unregister(id)
			delete(b.entries, id)
			out = append(out, b.forwardControl(wire.UnsubscribeFrame(id), l)...)
		}
	}
	return out, len(ids)
}

// SyncFrames returns the subscribe frames that bring a newly attached
// neighbor up to date: one per routing entry this broker would advertise
// to it, carrying the entry's original (never pruned) tree, in ascending
// ID order. With the covering plane on that is covers only — roots of the
// covering forest plus opaque (uncoverable) entries, skipping every
// covered member; without it, every entry not originated on that link.
// Transports send them right after a peer link is (re)established; this
// is what makes reconnects converge, since the peer dropped this broker's
// entries when the old link died.
func (b *Broker) SyncFrames(to LinkID) ([]Outgoing, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkLink(to); err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, len(b.entries))
	for id, ent := range b.entries {
		if ent.origin == to {
			continue
		}
		if b.forest != nil {
			if covered, coverOrigin, _, ok := b.forest.State(id); ok && covered && coverOrigin != int(to) {
				continue // an advertised ancestor subsumes it on this link
			}
		}
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := make([]Outgoing, 0, len(ids))
	for _, id := range ids {
		f := wire.SubscribeFrame(b.entries[id].original)
		enc, size := encodeShared(f, 1)
		out = append(out, Outgoing{Link: to, Frame: f, Enc: enc})
		b.counters.ControlSent.Add(1)
		b.counters.BytesSent.Add(size)
	}
	return out, nil
}

// NumLinks returns the number of neighbor links.
func (b *Broker) NumLinks() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.links
}

// SubscribeLocal registers a subscription from a local client and returns
// the subscribe frames to forward to every neighbor.
func (b *Broker) SubscribeLocal(s *subscription.Subscription) ([]Outgoing, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addSubscription(s, LocalLink)
}

// HandleSubscribe processes a subscription forwarded by a neighbor: it
// becomes a prunable routing entry and is forwarded to all other neighbors.
func (b *Broker) HandleSubscribe(from LinkID, s *subscription.Subscription) ([]Outgoing, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkLink(from); err != nil {
		return nil, err
	}
	b.counters.ControlRecv.Add(1)
	return b.addSubscription(s, from)
}

// addSubscription mutates the routing table; callers hold the write lock.
//
//dimlint:locked
func (b *Broker) addSubscription(s *subscription.Subscription, origin LinkID) ([]Outgoing, error) {
	replaced := false
	if prev, dup := b.entries[s.ID]; dup {
		if prev.origin == LocalLink && origin != LocalLink &&
			prev.original.Subscriber == s.Subscriber && prev.original.Root.Equal(s.Root) {
			// Our own local entry echoed back by a neighbor — a reconnect
			// resync can replay entries it learned from us before it
			// finished dropping our dead link. Keep the local original.
			return nil, nil
		}
		if origin == LocalLink || prev.origin == LocalLink {
			// Local duplicates are API misuse; a remote frame claiming a
			// local entry's ID with different content is an ID-namespace
			// violation. Neither is the overlay's to repair.
			return nil, fmt.Errorf("broker %s: subscription %d already present", b.id, s.ID)
		}
		// Duplicate from the network path: an overlay resync (a peer that
		// reconnected replays its table, possibly racing this broker's own
		// cleanup of the dead link). An identical entry is a no-op; anything
		// else replaces the old entry, so the overlay converges instead of
		// dropping the link on a protocol error.
		if prev.origin == origin && prev.original.Subscriber == s.Subscriber &&
			prev.original.Root.Equal(s.Root) {
			return nil, nil
		}
		b.table.Unregister(s.ID)
		b.pruner.Unregister(s.ID)
		delete(b.entries, s.ID)
		replaced = true
	}
	if err := b.table.Register(s); err != nil {
		return nil, fmt.Errorf("broker %s: %w", b.id, err)
	}
	b.entries[s.ID] = &routeEntry{
		origin:   origin,
		original: s,
		meter:    &DeliveryMeter{counters: &b.counters},
	}
	if origin != LocalLink {
		if err := b.pruner.Register(s); err != nil {
			return nil, fmt.Errorf("broker %s: pruner: %w", b.id, err)
		}
	}
	if b.forest == nil {
		return b.forwardControl(wire.SubscribeFrame(s), origin), nil
	}
	// The forest reports which advertisements change: the new entry itself
	// (nowhere, when covered by a same-origin entry; one link, when covered
	// by a remote one; everywhere else otherwise) plus any roots it demotes,
	// whose now-redundant advertisements are retracted. A replaced entry is
	// re-advertised wherever it remains advertised so remote replace
	// semantics converge the content.
	resub := uint64(0)
	if replaced {
		resub = s.ID
	}
	return b.applyTransitions(b.forest.Insert(s, int(origin)), resub), nil
}

// UnsubscribeLocal retracts a local client's subscription.
func (b *Broker) UnsubscribeLocal(id uint64) ([]Outgoing, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.removeSubscription(id, LocalLink)
}

// HandleUnsubscribe processes a retraction forwarded by a neighbor.
func (b *Broker) HandleUnsubscribe(from LinkID, id uint64) ([]Outgoing, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkLink(from); err != nil {
		return nil, err
	}
	b.counters.ControlRecv.Add(1)
	return b.removeSubscription(id, from)
}

// removeSubscription mutates the routing table; callers hold the write lock.
//
//dimlint:locked
func (b *Broker) removeSubscription(id uint64, origin LinkID) ([]Outgoing, error) {
	ent, ok := b.entries[id]
	if !ok {
		if origin != LocalLink {
			// Network path: a retraction for an entry this broker never
			// held is overlay-churn noise — e.g. dispatched to a peer link
			// attached moments before its state replay. In a tree the
			// entry could only have reached downstream through this
			// broker, so there is nothing to forward either; converge
			// with a no-op instead of dropping the link.
			return nil, nil
		}
		return nil, fmt.Errorf("broker %s: unknown subscription %d", b.id, id)
	}
	if ent.origin != origin {
		if origin != LocalLink {
			// Stale network retraction: either the entry re-homed to
			// another link (replace semantics during a resync), or a
			// neighbor is flushing entries it learned from us over a link
			// that died (our local entry, still live here). The current
			// owner's state wins; drop the frame, not the link.
			return nil, nil
		}
		return nil, fmt.Errorf("broker %s: unsubscribe for %d from link %d, registered via %d",
			b.id, id, origin, ent.origin)
	}
	b.table.Unregister(id)
	if ent.origin != LocalLink {
		b.pruner.Unregister(id)
	}
	delete(b.entries, id)
	if b.forest == nil {
		return b.forwardControl(wire.UnsubscribeFrame(id), origin), nil
	}
	// Children covered by the retracted entry promote: they re-parent (a
	// subscribe toward the new cover's origin when it differs) or become
	// roots (late subscribe frames everywhere). Subscribes are emitted
	// before the retraction so no link ever has a coverage gap.
	return b.applyTransitions(b.forest.Remove(id), 0), nil
}

// forwardControl emits a control frame on every live link except the
// origin, encoding it once and sharing the buffer across all recipients.
func (b *Broker) forwardControl(f wire.Frame, except LinkID) []Outgoing {
	targets := 0
	for _, l := range b.live {
		if l != except {
			targets++
		}
	}
	if targets == 0 {
		return nil
	}
	enc, size := encodeShared(f, targets)
	out := make([]Outgoing, 0, targets)
	for _, l := range b.live {
		if l == except {
			continue
		}
		out = append(out, Outgoing{Link: l, Frame: f, Enc: enc})
		b.counters.ControlSent.Add(1)
		b.counters.BytesSent.Add(size)
	}
	return out
}

// advertSet appends to dst the live links entry state (origin, covered,
// coverOrigin) is advertised on: a covered entry only toward its cover's
// origin (and not even there when it is the entry's own origin), anything
// else — roots and opaque entries — everywhere except its origin.
func (b *Broker) advertSet(dst []LinkID, origin LinkID, covered bool, coverOrigin LinkID) []LinkID {
	if covered {
		if coverOrigin == origin {
			return dst
		}
		for _, l := range b.live {
			if l == coverOrigin {
				return append(dst, l)
			}
		}
		return dst
	}
	for _, l := range b.live {
		if l != origin {
			dst = append(dst, l)
		}
	}
	return dst
}

// applyTransitions converts a forest mutation's transitions into control
// frames: per affected entry, the diff between its old and new
// advertisement sets. All subscribe frames are emitted before any
// unsubscribe — per-link FIFO then guarantees a neighbor always holds a
// cover of everything it is meant to know, even mid-churn. resubID, when
// non-zero, names a replaced entry whose content changed: it is
// re-advertised on its whole new set (remote replace semantics converge
// the content), not just on newly added links. Callers hold the write
// lock.
func (b *Broker) applyTransitions(trs []covering.Transition, resubID uint64) []Outgoing {
	if len(trs) == 0 {
		return nil
	}
	// Merge per entry: the first transition's old state and the last's new
	// state bracket the mutation (an entry can transition twice, e.g.
	// promoted by a removal then demoted by the replacing insert).
	first := make(map[uint64]int, len(trs))
	last := make(map[uint64]int, len(trs))
	ids := make([]uint64, 0, len(trs))
	for i, tr := range trs {
		if _, seen := first[tr.ID]; !seen {
			first[tr.ID] = i
			ids = append(ids, tr.ID)
		}
		last[tr.ID] = i
	}
	sortIDs(ids)

	var out []Outgoing
	var oldSet, newSet []LinkID
	emit := func(f wire.Frame, links []LinkID) {
		enc, size := encodeShared(f, len(links))
		for _, l := range links {
			out = append(out, Outgoing{Link: l, Frame: f, Enc: enc})
			b.counters.ControlSent.Add(1)
			b.counters.BytesSent.Add(size)
		}
	}
	var retractions []uint64
	var retractLinks [][]LinkID
	for _, id := range ids {
		o, n := trs[first[id]], trs[last[id]]
		oldSet, newSet = oldSet[:0], newSet[:0]
		if o.Existed {
			oldSet = b.advertSet(oldSet, LinkID(o.OldOrigin), o.OldCovered, LinkID(o.OldCoverOrigin))
		}
		if n.Exists {
			newSet = b.advertSet(newSet, LinkID(n.NewOrigin), n.NewCovered, LinkID(n.NewCoverOrigin))
		}
		var subs, unsubs []LinkID
		for _, l := range newSet {
			if id == resubID || !containsLink(oldSet, l) {
				subs = append(subs, l)
			}
		}
		for _, l := range oldSet {
			if !containsLink(newSet, l) {
				unsubs = append(unsubs, l)
			}
		}
		if len(subs) > 0 {
			ent := b.entries[id]
			if ent == nil {
				continue // unreachable: advertised entries are registered
			}
			emit(wire.SubscribeFrame(ent.original), subs)
		}
		if len(unsubs) > 0 {
			retractions = append(retractions, id)
			retractLinks = append(retractLinks, append([]LinkID(nil), unsubs...))
		}
	}
	for i, id := range retractions {
		emit(wire.UnsubscribeFrame(id), retractLinks[i])
	}
	return out
}

func containsLink(set []LinkID, l LinkID) bool {
	for _, x := range set {
		if x == l {
			return true
		}
	}
	return false
}

// PublishLocal routes an event injected by a local client.
func (b *Broker) PublishLocal(m *event.Message) ([]Outgoing, []Delivery) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.counters.EventsPublished.Add(1)
	return b.route(m, LocalLink)
}

// PublishLocalBatch routes a burst of locally injected events under one
// lock acquisition, concatenating the outgoing frames and deliveries in
// batch order. Transports use it to amortize the shared-lock handoff when
// publishers send bursts.
func (b *Broker) PublishLocalBatch(ms []*event.Message) ([]Outgoing, []Delivery) {
	if len(ms) == 0 {
		return nil, nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Outgoing
	var dels []Delivery
	for _, m := range ms {
		b.counters.EventsPublished.Add(1)
		o, d := b.route(m, LocalLink)
		out = append(out, o...)
		dels = append(dels, d...)
	}
	return out, dels
}

// HandlePublish routes an event forwarded by a neighbor (post-filtering:
// the event is matched again against this broker's routing table).
func (b *Broker) HandlePublish(from LinkID, m *event.Message) ([]Outgoing, []Delivery, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkLink(from); err != nil {
		return nil, nil, err
	}
	out, del := b.route(m, from)
	return out, del, nil
}

// route matches the event against the routing table; matching local entries
// produce deliveries, matching remote entries mark their origin link for one
// forwarded copy. The link the event arrived on never gets a copy back.
// Callers hold the read lock; scratch comes from the pool so concurrent
// routes never share buffers.
//
//dimlint:hotpath
func (b *Broker) route(m *event.Message, arrived LinkID) ([]Outgoing, []Delivery) {
	if b.observe {
		b.model.Observe(m)
	}
	rb, _ := b.routeScratch.Get().(*routeBuffers)
	if rb == nil {
		rb = &routeBuffers{}
	}
	if cap(rb.matchLinks) < b.links {
		rb.matchLinks = make([]bool, b.links)
	}
	rb.matchLinks = rb.matchLinks[:b.links]
	// Clear only the live positions: a dead position can hold a stale
	// flag, but the emit loop below never reads one, and link IDs are
	// never reused — so the per-event cost stays O(live links) no matter
	// how many IDs reconnect churn has burned through.
	for _, l := range b.live {
		rb.matchLinks[l] = false
	}
	rb.deliveries = rb.deliveries[:0]

	start := time.Now()
	matched := 0
	b.table.MatchVisit(m, func(s *subscription.Subscription) {
		matched++
		ent := b.entries[s.ID]
		if ent == nil {
			return // unreachable: table and entries change together
		}
		if ent.origin == LocalLink {
			// Deliver exactly: local entries are never pruned, so a table
			// match is a true match. (Deliveries lands via the counter
			// batch below, so only the per-entry meter is touched here.)
			ent.meter.delivered.Add(1)
			rb.deliveries = append(rb.deliveries, Delivery{
				Subscriber: s.Subscriber,
				SubID:      s.ID,
				Msg:        m,
			})
			return
		}
		if ent.origin != arrived {
			rb.matchLinks[ent.origin] = true
		}
	})
	b.counters.AddFilterTime(time.Since(start))
	b.counters.EventsFiltered.Add(1)
	b.counters.MatchedEntries.Add(uint64(matched))
	b.counters.Deliveries.Add(uint64(len(rb.deliveries)))

	var out []Outgoing
	if len(b.live) > 0 {
		// Count recipients first so the event is encoded exactly once, with
		// one reference per forwarded copy — and not at all when no link
		// matched.
		targets := 0
		for _, l := range b.live {
			if rb.matchLinks[l] {
				targets++
			}
		}
		if targets > 0 {
			f := wire.PublishFrame(m)
			enc, size := encodeShared(f, targets)
			out = make([]Outgoing, 0, targets)
			for _, l := range b.live {
				if rb.matchLinks[l] {
					out = append(out, Outgoing{Link: l, Frame: f, Enc: enc})
					b.counters.EventsForwarded.Add(1)
					b.counters.BytesSent.Add(size)
				}
			}
		}
	}
	var dels []Delivery
	if len(rb.deliveries) > 0 {
		dels = make([]Delivery, len(rb.deliveries))
		copy(dels, rb.deliveries)
		for i := range rb.deliveries {
			rb.deliveries[i] = Delivery{} // release message references while pooled
		}
	}
	b.routeScratch.Put(rb)
	return out, dels
}

// MatchEntries matches m against every routing-table entry — local and
// non-local, pruned or not — invoking fn per match with the entry's ID and
// subscriber. It updates the filtering counters and (when configured) the
// selectivity model, but makes no routing decision; single-broker
// deployments use it as their dispatch primitive. Safe for concurrent use;
// fn runs on the calling goroutine.
func (b *Broker) MatchEntries(m *event.Message, fn func(subID uint64, subscriber string)) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.observe {
		b.model.Observe(m)
	}
	start := time.Now()
	matched := 0
	b.table.MatchVisit(m, func(s *subscription.Subscription) {
		matched++
		fn(s.ID, s.Subscriber)
	})
	b.counters.AddFilterTime(time.Since(start))
	b.counters.EventsFiltered.Add(1)
	b.counters.MatchedEntries.Add(uint64(matched))
}

// MatchEntriesBatch runs MatchEntries for a burst of events under a single
// shared-lock acquisition, invoking fn with the batch index of the matched
// event. Single-broker deployments use it as their batched dispatch
// primitive.
func (b *Broker) MatchEntriesBatch(ms []*event.Message, fn func(i int, subID uint64, subscriber string)) {
	if len(ms) == 0 {
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	for i, m := range ms {
		if b.observe {
			b.model.Observe(m)
		}
		start := time.Now()
		matched := 0
		b.table.MatchVisit(m, func(s *subscription.Subscription) {
			matched++
			fn(i, s.ID, s.Subscriber)
		})
		b.counters.AddFilterTime(time.Since(start))
		b.counters.EventsFiltered.Add(1)
		b.counters.MatchedEntries.Add(uint64(matched))
	}
}

// DeliveryMeter returns entry id's delivery meter, or nil for an unknown
// entry. Delivery planes fetch it once at subscribe time and report
// per-delivery outcomes without further table lookups.
func (b *Broker) DeliveryMeter(id uint64) *DeliveryMeter {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if ent := b.entries[id]; ent != nil {
		return ent.meter
	}
	return nil
}

// EntryDelivery reads one entry's delivery meter.
func (b *Broker) EntryDelivery(id uint64) (delivered, dropped uint64, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ent, found := b.entries[id]
	if !found {
		return 0, 0, false
	}
	return ent.meter.delivered.Load(), ent.meter.dropped.Load(), true
}

// HandleFrame dispatches any protocol frame from a neighbor.
func (b *Broker) HandleFrame(from LinkID, f wire.Frame) ([]Outgoing, []Delivery, error) {
	switch f.Type {
	case wire.FrameSubscribe:
		out, err := b.HandleSubscribe(from, f.Sub)
		return out, nil, err
	case wire.FrameUnsubscribe:
		out, err := b.HandleUnsubscribe(from, f.SubID)
		return out, nil, err
	case wire.FramePublish:
		return b.HandlePublish(from, f.Msg)
	default:
		return nil, nil, fmt.Errorf("broker %s: unknown frame type %d", b.id, f.Type)
	}
}

// checkLink validates a neighbor link ID; callers hold either lock.
func (b *Broker) checkLink(l LinkID) error {
	if l < 0 || int(l) >= b.links {
		return fmt.Errorf("broker %s: invalid link %d (have %d)", b.id, l, b.links)
	}
	if b.dead[l] {
		return fmt.Errorf("broker %s: link %d is dead", b.id, l)
	}
	return nil
}

// Prune applies up to n pruning steps to the non-local routing entries,
// updating the filtering table in place, and returns the number performed.
// Pruning is control-plane: it drains in-flight routing and runs exclusively.
func (b *Broker) Prune(n int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	done := 0
	for done < n {
		op, ok := b.pruner.Step()
		if !ok {
			break
		}
		// The entry may have been unsubscribed between rating and stepping;
		// pruner.Unregister prevents that, so Update must succeed.
		if err := b.table.Update(op.Subscription); err != nil {
			panic(fmt.Sprintf("broker %s: pruned unknown subscription: %v", b.id, err))
		}
		done++
	}
	return done
}

// PruneRemaining reports how many subscriptions still support a pruning.
func (b *Broker) PruneRemaining() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pruner.Remaining()
}

// ExhaustPrunings applies prunings until none remain and returns the count.
func (b *Broker) ExhaustPrunings() int {
	n := 0
	for {
		done := b.Prune(1 << 20)
		n += done
		if done == 0 {
			return n
		}
	}
}

// SetDimension switches the pruning dimension at runtime (adaptive control).
func (b *Broker) SetDimension(dim core.Dimension) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pruner.SetDimension(dim)
}

// Dimension returns the active pruning dimension.
func (b *Broker) Dimension() core.Dimension {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pruner.Dimension()
}

// EntryDelivery is one routing entry's delivery metadata in a Stats
// snapshot.
type EntryDelivery struct {
	SubID      uint64
	Subscriber string
	Local      bool
	Delivered  uint64
	Dropped    uint64
}

// Stats summarizes the broker's state and counters.
type Stats struct {
	ID            string
	LocalSubs     int
	RemoteSubs    int
	Associations  int
	Predicates    int
	PruningsDone  int
	PruneRemained int
	// Covering-plane shape (all zero when covering is disabled):
	// CoverRoots + CoverOpaque is the number of entries this broker
	// advertises per link; CoverCovered entries ride under a cover.
	CoverRoots   int
	CoverCovered int
	CoverOpaque  int
	Counters     metrics.Counters
	// Delivery holds per-entry delivery metadata, ordered by SubID.
	Delivery []EntryDelivery
}

// Stats returns a snapshot of state and counters. It may run concurrently
// with routing; counters land atomically per field. Only the entry-map
// walk happens under the routing lock — the per-entry delivery rows are
// built and sorted after it is released (routeEntry's fields are
// immutable and its meter is atomic, so holding the lock buys nothing).
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	local := 0
	type entryRef struct {
		id  uint64
		ent *routeEntry
	}
	refs := make([]entryRef, 0, len(b.entries))
	for id, ent := range b.entries {
		if ent.origin == LocalLink {
			local++
		}
		refs = append(refs, entryRef{id: id, ent: ent})
	}
	st := Stats{
		ID:            b.id,
		LocalSubs:     local,
		RemoteSubs:    len(b.entries) - local,
		Associations:  b.table.Associations(),
		Predicates:    b.table.NumPredicates(),
		PruningsDone:  b.pruner.Steps(),
		PruneRemained: b.pruner.Remaining(),
		Counters:      b.counters.Snapshot(),
	}
	if b.forest != nil {
		st.CoverRoots = b.forest.Roots()
		st.CoverOpaque = b.forest.Opaque()
		st.CoverCovered = b.forest.Len() - st.CoverRoots - st.CoverOpaque
	}
	b.mu.RUnlock()

	st.Delivery = make([]EntryDelivery, 0, len(refs))
	for _, r := range refs {
		st.Delivery = append(st.Delivery, EntryDelivery{
			SubID:      r.id,
			Subscriber: r.ent.original.Subscriber,
			Local:      r.ent.origin == LocalLink,
			Delivered:  r.ent.meter.delivered.Load(),
			Dropped:    r.ent.meter.dropped.Load(),
		})
	}
	sort.Slice(st.Delivery, func(i, j int) bool { return st.Delivery[i].SubID < st.Delivery[j].SubID })
	return st
}

// ResetCounters zeroes the measurement counters (state is untouched); the
// experiment harness calls this between the warm-up and measured phases.
func (b *Broker) ResetCounters() { b.counters.Reset() }

// CurrentEntry returns the current (possibly pruned) routing entry and its
// original subscription.
func (b *Broker) CurrentEntry(id uint64) (current, original *subscription.Subscription, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ent, found := b.entries[id]
	if !found {
		return nil, nil, false
	}
	cur, found := b.table.Subscription(id)
	if !found {
		return nil, nil, false
	}
	return cur, ent.original, true
}

// NonLocalAssociations counts predicate/subscription associations of
// non-local entries only — the ordinate of Fig 1(f).
func (b *Broker) NonLocalAssociations() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for id, ent := range b.entries {
		if ent.origin == LocalLink {
			continue
		}
		if cur, ok := b.table.Subscription(id); ok {
			n += cur.NumLeaves()
		}
	}
	return n
}
