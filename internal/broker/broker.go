// Package broker implements a content-based publish/subscribe broker with
// subscription forwarding (§2.1) and pruning-aware routing tables.
//
// The Broker is a sans-IO state machine: handlers take a frame (or a local
// client action) and return the frames to emit on neighbor links plus the
// notifications for local subscribers. Transports — the deterministic
// simulation in internal/simnet and the TCP server in internal/transport —
// own all goroutines and sockets.
//
// Routing and pruning rules, following §2.2:
//
//   - A subscription registered by a local client is filtered with its exact
//     tree and is never pruned (correctness anchor: the last broker on the
//     path post-filters precisely).
//   - A subscription learned from a neighbor (non-local) is a routing entry;
//     the pruning engine may generalize it. Generalization only ever adds
//     forwarded events, which downstream brokers filter again.
//   - Events are forwarded once per link that has at least one matching
//     routing entry whose origin is that link, never back to the link the
//     event arrived on.
package broker

import (
	"fmt"
	"time"

	"dimprune/internal/core"
	"dimprune/internal/event"
	"dimprune/internal/filter"
	"dimprune/internal/metrics"
	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// LinkID identifies one neighbor connection of a broker. Links are dense
// indexes assigned by AddLink in order.
type LinkID int

// LocalLink marks entries owned by this broker's own clients.
const LocalLink LinkID = -1

// Delivery is one notification for a local subscriber.
type Delivery struct {
	Subscriber string
	SubID      uint64
	Msg        *event.Message
}

// Outgoing is one frame to transmit on a neighbor link.
type Outgoing struct {
	Link  LinkID
	Frame wire.Frame
}

// Config configures a broker.
type Config struct {
	// ID names the broker in diagnostics.
	ID string
	// Dimension selects the pruning heuristic (default DimNetwork, the
	// paper's recommendation for general-purpose systems).
	Dimension core.Dimension
	// PruneOptions tunes the pruning engine (ablations).
	PruneOptions core.Options
	// Model optionally supplies a pre-trained selectivity model; a fresh
	// empty model is created when nil.
	Model *selectivity.Model
	// ObserveEvents updates the selectivity model with every event the
	// broker filters, so Δ≈sel ratings track the live workload.
	ObserveEvents bool
}

// routeEntry is one routing-table row.
type routeEntry struct {
	origin   LinkID
	original *subscription.Subscription // as registered/received; never pruned
}

// Broker routes events among local clients and neighbor brokers.
// It is not safe for concurrent use; transports serialize access.
type Broker struct {
	id    string
	links int

	table   *filter.Engine
	model   *selectivity.Model
	pruner  *core.Engine
	entries map[uint64]*routeEntry
	observe bool

	counters metrics.Counters

	// scratch buffers reused across events.
	matchLinks []bool
	deliveries []Delivery
}

// New creates a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("broker: empty ID")
	}
	dim := cfg.Dimension
	if dim == 0 {
		dim = core.DimNetwork
	}
	model := cfg.Model
	if model == nil {
		model = selectivity.NewModel()
	}
	pruner, err := core.NewEngine(dim, model, cfg.PruneOptions)
	if err != nil {
		return nil, fmt.Errorf("broker %s: %w", cfg.ID, err)
	}
	return &Broker{
		id:      cfg.ID,
		table:   filter.New(),
		model:   model,
		pruner:  pruner,
		entries: make(map[uint64]*routeEntry),
		observe: cfg.ObserveEvents,
	}, nil
}

// ID returns the broker's name.
func (b *Broker) ID() string { return b.id }

// Model returns the broker's selectivity model (shared with the pruner).
func (b *Broker) Model() *selectivity.Model { return b.model }

// AddLink registers a neighbor connection and returns its LinkID. Topology
// is fixed before traffic starts (acyclic overlays per §2.1).
func (b *Broker) AddLink() LinkID {
	id := LinkID(b.links)
	b.links++
	b.matchLinks = append(b.matchLinks, false)
	return id
}

// NumLinks returns the number of neighbor links.
func (b *Broker) NumLinks() int { return b.links }

// SubscribeLocal registers a subscription from a local client and returns
// the subscribe frames to forward to every neighbor.
func (b *Broker) SubscribeLocal(s *subscription.Subscription) ([]Outgoing, error) {
	return b.addSubscription(s, LocalLink)
}

// HandleSubscribe processes a subscription forwarded by a neighbor: it
// becomes a prunable routing entry and is forwarded to all other neighbors.
func (b *Broker) HandleSubscribe(from LinkID, s *subscription.Subscription) ([]Outgoing, error) {
	if err := b.checkLink(from); err != nil {
		return nil, err
	}
	return b.addSubscription(s, from)
}

func (b *Broker) addSubscription(s *subscription.Subscription, origin LinkID) ([]Outgoing, error) {
	if _, dup := b.entries[s.ID]; dup {
		return nil, fmt.Errorf("broker %s: subscription %d already present", b.id, s.ID)
	}
	if err := b.table.Register(s); err != nil {
		return nil, fmt.Errorf("broker %s: %w", b.id, err)
	}
	b.entries[s.ID] = &routeEntry{origin: origin, original: s}
	if origin != LocalLink {
		if err := b.pruner.Register(s); err != nil {
			return nil, fmt.Errorf("broker %s: pruner: %w", b.id, err)
		}
	}
	return b.forwardControl(wire.SubscribeFrame(s), origin), nil
}

// UnsubscribeLocal retracts a local client's subscription.
func (b *Broker) UnsubscribeLocal(id uint64) ([]Outgoing, error) {
	return b.removeSubscription(id, LocalLink)
}

// HandleUnsubscribe processes a retraction forwarded by a neighbor.
func (b *Broker) HandleUnsubscribe(from LinkID, id uint64) ([]Outgoing, error) {
	if err := b.checkLink(from); err != nil {
		return nil, err
	}
	return b.removeSubscription(id, from)
}

func (b *Broker) removeSubscription(id uint64, origin LinkID) ([]Outgoing, error) {
	ent, ok := b.entries[id]
	if !ok {
		return nil, fmt.Errorf("broker %s: unknown subscription %d", b.id, id)
	}
	if ent.origin != origin {
		return nil, fmt.Errorf("broker %s: unsubscribe for %d from link %d, registered via %d",
			b.id, id, origin, ent.origin)
	}
	b.table.Unregister(id)
	if ent.origin != LocalLink {
		b.pruner.Unregister(id)
	}
	delete(b.entries, id)
	return b.forwardControl(wire.UnsubscribeFrame(id), origin), nil
}

// forwardControl emits a control frame on every link except the origin.
func (b *Broker) forwardControl(f wire.Frame, except LinkID) []Outgoing {
	if b.links == 0 {
		return nil
	}
	out := make([]Outgoing, 0, b.links)
	for l := LinkID(0); l < LinkID(b.links); l++ {
		if l == except {
			continue
		}
		out = append(out, Outgoing{Link: l, Frame: f})
		b.counters.ControlSent++
		b.counters.BytesSent += uint64(wire.FrameSize(f))
	}
	return out
}

// PublishLocal routes an event injected by a local client.
func (b *Broker) PublishLocal(m *event.Message) ([]Outgoing, []Delivery) {
	b.counters.EventsPublished++
	return b.route(m, LocalLink)
}

// HandlePublish routes an event forwarded by a neighbor (post-filtering:
// the event is matched again against this broker's routing table).
func (b *Broker) HandlePublish(from LinkID, m *event.Message) ([]Outgoing, []Delivery, error) {
	if err := b.checkLink(from); err != nil {
		return nil, nil, err
	}
	out, del := b.route(m, from)
	return out, del, nil
}

// route matches the event against the routing table; matching local entries
// produce deliveries, matching remote entries mark their origin link for one
// forwarded copy. The link the event arrived on never gets a copy back.
func (b *Broker) route(m *event.Message, arrived LinkID) ([]Outgoing, []Delivery) {
	if b.observe {
		b.model.Observe(m)
	}
	for i := range b.matchLinks {
		b.matchLinks[i] = false
	}
	b.deliveries = b.deliveries[:0]

	start := time.Now()
	matched := 0
	b.table.MatchVisit(m, func(s *subscription.Subscription) {
		matched++
		ent := b.entries[s.ID]
		if ent == nil {
			return // unreachable: table and entries change together
		}
		if ent.origin == LocalLink {
			// Deliver exactly: local entries are never pruned, so a table
			// match is a true match.
			b.deliveries = append(b.deliveries, Delivery{
				Subscriber: s.Subscriber,
				SubID:      s.ID,
				Msg:        m,
			})
			return
		}
		if ent.origin != arrived {
			b.matchLinks[ent.origin] = true
		}
	})
	b.counters.FilterTime += time.Since(start)
	b.counters.EventsFiltered++
	b.counters.MatchedEntries += uint64(matched)
	b.counters.Deliveries += uint64(len(b.deliveries))

	var out []Outgoing
	if b.links > 0 {
		f := wire.PublishFrame(m)
		size := uint64(wire.FrameSize(f))
		for l := LinkID(0); l < LinkID(b.links); l++ {
			if b.matchLinks[l] {
				out = append(out, Outgoing{Link: l, Frame: f})
				b.counters.EventsForwarded++
				b.counters.BytesSent += size
			}
		}
	}
	dels := make([]Delivery, len(b.deliveries))
	copy(dels, b.deliveries)
	return out, dels
}

// MatchEntries matches m against every routing-table entry — local and
// non-local, pruned or not — invoking fn per match with the entry's ID and
// subscriber. It updates the filtering counters and (when configured) the
// selectivity model, but makes no routing decision; single-broker
// deployments use it as their dispatch primitive.
func (b *Broker) MatchEntries(m *event.Message, fn func(subID uint64, subscriber string)) {
	if b.observe {
		b.model.Observe(m)
	}
	start := time.Now()
	matched := 0
	b.table.MatchVisit(m, func(s *subscription.Subscription) {
		matched++
		fn(s.ID, s.Subscriber)
	})
	b.counters.FilterTime += time.Since(start)
	b.counters.EventsFiltered++
	b.counters.MatchedEntries += uint64(matched)
}

// HandleFrame dispatches any protocol frame from a neighbor.
func (b *Broker) HandleFrame(from LinkID, f wire.Frame) ([]Outgoing, []Delivery, error) {
	switch f.Type {
	case wire.FrameSubscribe:
		out, err := b.HandleSubscribe(from, f.Sub)
		return out, nil, err
	case wire.FrameUnsubscribe:
		out, err := b.HandleUnsubscribe(from, f.SubID)
		return out, nil, err
	case wire.FramePublish:
		return b.HandlePublish(from, f.Msg)
	default:
		return nil, nil, fmt.Errorf("broker %s: unknown frame type %d", b.id, f.Type)
	}
}

func (b *Broker) checkLink(l LinkID) error {
	if l < 0 || int(l) >= b.links {
		return fmt.Errorf("broker %s: invalid link %d (have %d)", b.id, l, b.links)
	}
	return nil
}

// Prune applies up to n pruning steps to the non-local routing entries,
// updating the filtering table in place, and returns the number performed.
func (b *Broker) Prune(n int) int {
	done := 0
	for done < n {
		op, ok := b.pruner.Step()
		if !ok {
			break
		}
		// The entry may have been unsubscribed between rating and stepping;
		// pruner.Unregister prevents that, so Update must succeed.
		if err := b.table.Update(op.Subscription); err != nil {
			panic(fmt.Sprintf("broker %s: pruned unknown subscription: %v", b.id, err))
		}
		done++
	}
	return done
}

// PruneRemaining reports how many subscriptions still support a pruning.
func (b *Broker) PruneRemaining() int { return b.pruner.Remaining() }

// ExhaustPrunings applies prunings until none remain and returns the count.
func (b *Broker) ExhaustPrunings() int {
	n := 0
	for {
		done := b.Prune(1 << 20)
		n += done
		if done == 0 {
			return n
		}
	}
}

// SetDimension switches the pruning dimension at runtime (adaptive control).
func (b *Broker) SetDimension(dim core.Dimension) error {
	return b.pruner.SetDimension(dim)
}

// Dimension returns the active pruning dimension.
func (b *Broker) Dimension() core.Dimension { return b.pruner.Dimension() }

// Stats summarizes the broker's state and counters.
type Stats struct {
	ID            string
	LocalSubs     int
	RemoteSubs    int
	Associations  int
	Predicates    int
	PruningsDone  int
	PruneRemained int
	Counters      metrics.Counters
}

// Stats returns a snapshot of state and counters.
func (b *Broker) Stats() Stats {
	local := 0
	for _, ent := range b.entries {
		if ent.origin == LocalLink {
			local++
		}
	}
	return Stats{
		ID:            b.id,
		LocalSubs:     local,
		RemoteSubs:    len(b.entries) - local,
		Associations:  b.table.Associations(),
		Predicates:    b.table.NumPredicates(),
		PruningsDone:  b.pruner.Steps(),
		PruneRemained: b.pruner.Remaining(),
		Counters:      b.counters,
	}
}

// ResetCounters zeroes the measurement counters (state is untouched); the
// experiment harness calls this between the warm-up and measured phases.
func (b *Broker) ResetCounters() { b.counters = metrics.Counters{} }

// CurrentEntry returns the current (possibly pruned) routing entry and its
// original subscription.
func (b *Broker) CurrentEntry(id uint64) (current, original *subscription.Subscription, ok bool) {
	ent, found := b.entries[id]
	if !found {
		return nil, nil, false
	}
	cur, found := b.table.Subscription(id)
	if !found {
		return nil, nil, false
	}
	return cur, ent.original, true
}

// NonLocalAssociations counts predicate/subscription associations of
// non-local entries only — the ordinate of Fig 1(f).
func (b *Broker) NonLocalAssociations() int {
	n := 0
	for id, ent := range b.entries {
		if ent.origin == LocalLink {
			continue
		}
		if cur, ok := b.table.Subscription(id); ok {
			n += cur.NumLeaves()
		}
	}
	return n
}
