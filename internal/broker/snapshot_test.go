package broker

import (
	"bytes"
	"errors"
	"testing"

	"dimprune/internal/event"
)

// buildSnapshotSource makes a broker with local and remote entries, a
// trained model, and some applied prunings.
func buildSnapshotSource(t *testing.T) *Broker {
	t.Helper()
	b := newBroker(t, "src")
	b.AddLink()
	b.AddLink()
	for i := 0; i < 800; i++ {
		b.Model().Observe(event.Build(uint64(i)).
			Int("price", int64(i%100)).
			Str("category", string(rune('a'+i%3))).
			Msg())
	}
	if _, err := b.SubscribeLocal(mustSub(t, 1, "alice", `price <= 10 and category = "a"`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(0, mustSub(t, 2, "r0", `price <= 95 and category = "a"`)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.HandleSubscribe(1, mustSub(t, 3, "r1", `price <= 50 and category = "b" and price >= 10`)); err != nil {
		t.Fatal(err)
	}
	if n := b.Prune(1); n != 1 {
		t.Fatalf("Prune = %d", n)
	}
	return b
}

// restore round-trips the snapshot into a fresh broker with equal links and
// a matching model.
func restore(t *testing.T, src *Broker) *Broker {
	t.Helper()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(Config{ID: "dst", Model: src.Model()})
	if err != nil {
		t.Fatal(err)
	}
	dst.AddLink()
	dst.AddLink()
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestSnapshotRoundTripState(t *testing.T) {
	src := buildSnapshotSource(t)
	dst := restore(t, src)

	srcStats, dstStats := src.Stats(), dst.Stats()
	if dstStats.LocalSubs != srcStats.LocalSubs || dstStats.RemoteSubs != srcStats.RemoteSubs {
		t.Errorf("subs: src %d/%d dst %d/%d",
			srcStats.LocalSubs, srcStats.RemoteSubs, dstStats.LocalSubs, dstStats.RemoteSubs)
	}
	if dstStats.Associations != srcStats.Associations {
		t.Errorf("associations: src %d dst %d", srcStats.Associations, dstStats.Associations)
	}
	// Pruned trees and originals survive.
	for id := uint64(1); id <= 3; id++ {
		sc, so, ok1 := src.CurrentEntry(id)
		dc, do, ok2 := dst.CurrentEntry(id)
		if !ok1 || !ok2 {
			t.Fatalf("entry %d lost", id)
		}
		if !sc.Root.Equal(dc.Root) || !so.Root.Equal(do.Root) {
			t.Errorf("entry %d trees differ after restore", id)
		}
	}
}

func TestSnapshotRoutingEquivalence(t *testing.T) {
	src := buildSnapshotSource(t)
	dst := restore(t, src)
	for i := 0; i < 200; i++ {
		m := event.Build(uint64(5000+i)).
			Int("price", int64(i%120)).
			Str("category", string(rune('a'+i%4))).
			Msg()
		so, sd := src.PublishLocal(m)
		do, dd := dst.PublishLocal(m)
		if len(so) != len(do) || len(sd) != len(dd) {
			t.Fatalf("event %s: src routed %d/%d, dst %d/%d", m, len(so), len(sd), len(do), len(dd))
		}
	}
}

func TestSnapshotPruningContinues(t *testing.T) {
	src := buildSnapshotSource(t)
	dst := restore(t, src)
	// Both brokers must agree on the remaining pruning sequence.
	for {
		n1, n2 := src.Prune(1), dst.Prune(1)
		if n1 != n2 {
			t.Fatalf("pruning diverged: src %d dst %d", n1, n2)
		}
		if n1 == 0 {
			break
		}
		for id := uint64(2); id <= 3; id++ {
			sc, _, _ := src.CurrentEntry(id)
			dc, _, _ := dst.CurrentEntry(id)
			if !sc.Root.Equal(dc.Root) {
				t.Fatalf("entry %d diverged after restored pruning", id)
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	src := buildSnapshotSource(t)
	var a, b bytes.Buffer
	if err := src.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of identical state differ")
	}
}

func TestSnapshotErrors(t *testing.T) {
	src := buildSnapshotSource(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	fresh := func(links int) *Broker {
		b := newBroker(t, "x")
		for i := 0; i < links; i++ {
			b.AddLink()
		}
		return b
	}

	// Restore into non-empty broker.
	nonEmpty := fresh(2)
	nonEmpty.SubscribeLocal(mustSub(t, 9, "z", `a = 1`))
	if err := nonEmpty.ReadSnapshot(bytes.NewReader(snap)); err == nil {
		t.Error("restore into non-empty broker accepted")
	}

	// Too few links for the snapshot's origins: entries from the missing
	// link are skipped (a managed peer link resyncs them on reconnect),
	// the rest restore.
	short := fresh(1)
	if err := short.ReadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Errorf("restore with missing origin link failed: %v", err)
	}
	full := fresh(2)
	if err := full.ReadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if s, f := short.Stats(), full.Stats(); s.LocalSubs != f.LocalSubs || s.RemoteSubs >= f.RemoteSubs {
		t.Errorf("skip semantics off: short local=%d remote=%d vs full local=%d remote=%d",
			s.LocalSubs, s.RemoteSubs, f.LocalSubs, f.RemoteSubs)
	}

	// Corrupt magic.
	bad := append([]byte{}, snap...)
	bad[0] ^= 0xff
	if err := fresh(2).ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupt magic error = %v", err)
	}

	// Truncations at every boundary must error, never panic.
	for cut := 4; cut < len(snap); cut += 7 {
		if err := fresh(2).ReadSnapshot(bytes.NewReader(snap[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}

	// Trailing garbage.
	withTrailer := append(append([]byte{}, snap...), 0xde, 0xad)
	if err := fresh(2).ReadSnapshot(bytes.NewReader(withTrailer)); err == nil {
		t.Error("snapshot with trailing bytes accepted")
	}
}
