package ticker

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// The differential oracles (simnet vs networked vs exact) and the
// experiment harness all assume that one seed names one workload, stable
// across refactors of this package: the golden hashes below pin the
// rendered form of the first events and subscriptions of the default
// config. If a generator change is intentional, update the constants —
// knowingly invalidating comparability with previously recorded runs.
const (
	goldenEvents        = 64
	goldenSubscriptions = 64
	goldenEventHash     = uint64(0xb2274759cc09c388)
	goldenSubHash       = uint64(0xbcb0bcc3d4cb39cf)
)

// workloadHashes renders the first n events and subscriptions of a fresh
// default-config generator (seed pinned) into two FNV-64a hashes.
func workloadHashes(t *testing.T, nEvents, nSubs int) (uint64, uint64) {
	t.Helper()
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	he := fnv.New64a()
	for i, m := range gen.Events(1, nEvents) {
		fmt.Fprintf(he, "%d|%s\n", i, m)
	}
	hs := fnv.New64a()
	for i := 0; i < nSubs; i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(hs, "%d|%s|%s\n", i, s.Subscriber, s)
	}
	return he.Sum64(), hs.Sum64()
}

func TestGoldenSeedDeterminism(t *testing.T) {
	ev, sub := workloadHashes(t, goldenEvents, goldenSubscriptions)
	if ev != goldenEventHash {
		t.Errorf("event stream hash = %#x, want %#x — the fixed-seed workload changed; "+
			"oracle comparisons against recorded runs are no longer valid", ev, goldenEventHash)
	}
	if sub != goldenSubHash {
		t.Errorf("subscription stream hash = %#x, want %#x — the fixed-seed workload changed; "+
			"oracle comparisons against recorded runs are no longer valid", sub, goldenSubHash)
	}
}

// TestGeneratorRunsAreIdentical guards the property the golden hashes
// build on: two independent generators with the same config produce
// byte-identical streams, and the event and subscription streams do not
// perturb each other (documented independence).
func TestGeneratorRunsAreIdentical(t *testing.T) {
	e1, s1 := workloadHashes(t, 128, 128)
	e2, s2 := workloadHashes(t, 128, 128)
	if e1 != e2 || s1 != s2 {
		t.Fatalf("same-seed runs diverge: events %#x vs %#x, subs %#x vs %#x", e1, e2, s1, s2)
	}

	// Interleaving consumption must match split consumption.
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	he := fnv.New64a()
	hs := fnv.New64a()
	for i := 0; i < 128; i++ {
		fmt.Fprintf(he, "%d|%s\n", i, gen.Event(uint64(i+1)))
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(hs, "%d|%s|%s\n", i, s.Subscriber, s)
	}
	if he.Sum64() != e1 || hs.Sum64() != s1 {
		t.Errorf("interleaved consumption perturbs the streams: events %#x vs %#x, subs %#x vs %#x",
			he.Sum64(), e1, hs.Sum64(), s1)
	}
}
