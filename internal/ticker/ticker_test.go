package ticker

import (
	"testing"

	"dimprune/internal/subscription"
)

func TestDefaultConfigGenerates(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := g.Event(1)
	for _, attr := range []string{"symbol", "sector", "exchange", "price", "change", "volume", "trades", "halted"} {
		if !m.Has(attr) {
			t.Errorf("event missing attribute %q: %s", attr, m)
		}
	}
	s, err := g.Subscription(1, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Root.Validate(); err != nil {
		t.Errorf("generated subscription invalid: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := func() (string, string) {
		g, err := NewGenerator(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ev := g.Event(1).String()
		s, _ := g.Subscription(1, "x")
		return ev, s.String()
	}
	e1, s1 := gen()
	e2, s2 := gen()
	if e1 != e2 {
		t.Errorf("event streams diverge:\n%s\n%s", e1, e2)
	}
	if s1 != s2 {
		t.Errorf("subscription streams diverge:\n%s\n%s", s1, s2)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := DefaultConfig()
	g1, _ := NewGenerator(cfg)
	cfg.Seed = 2
	g2, _ := NewGenerator(cfg)
	if g1.Event(1).String() == g2.Event(1).String() {
		t.Error("different seeds produced identical first events")
	}
}

func TestEventValueRanges(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m := g.Event(uint64(i))
		if price, _ := m.Get("price"); price.AsFloat() <= 0 || price.AsFloat() > 1200 {
			t.Fatalf("price out of range: %v", price)
		}
		if change, _ := m.Get("change"); change.AsFloat() < -9 || change.AsFloat() > 9 {
			t.Fatalf("change out of range: %v", change)
		}
		if v, _ := m.Get("volume"); v.AsInt() < 0 || v.AsInt() > 500000 {
			t.Fatalf("volume out of range: %v", v)
		}
	}
}

func TestSymbolPopularitySkewed(t *testing.T) {
	// "Few hot symbols" is the scenario's defining property: the head of
	// the Zipf must carry a large share of the tape.
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		sym, _ := g.Event(uint64(i)).Get("symbol")
		counts[sym.AsString()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf s=1.25 over 48 symbols: the top symbol carries >20% of events.
	if max < n/10 {
		t.Errorf("top symbol seen %d times out of %d; tape not concentrated", max, n)
	}
	if len(counts) < 10 {
		t.Errorf("only %d distinct symbols in %d events; tail missing", len(counts), n)
	}
}

func TestClassShapes(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		pa, err := g.OfClass(ClassPriceAlert, uint64(i*3+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(pa.Root, "symbol") || !hasLeafOn(pa.Root, "price") {
			t.Fatalf("price alert missing core predicates: %s", pa)
		}
		ms, err := g.OfClass(ClassMomentumScreen, uint64(i*3+2), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(ms.Root, "symbol") || !hasLeafOn(ms.Root, "change") || !hasLeafOn(ms.Root, "volume") {
			t.Fatalf("momentum screen missing core predicates: %s", ms)
		}
		ss, err := g.OfClass(ClassSectorScanner, uint64(i*3+3), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(ss.Root, "sector") || !hasLeafOn(ss.Root, "change") {
			t.Fatalf("sector scanner missing core predicates: %s", ss)
		}
	}
}

func TestShapesAreShallowConjunctions(t *testing.T) {
	// Covering-friendliness rests on the subscriptions being conjunctions
	// of leaves — no OR nodes anywhere in this workload.
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s, err := g.Subscription(uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		s.Root.Walk(func(n, _ *subscription.Node) bool {
			if n.Kind == subscription.NodeOr {
				t.Fatalf("ticker subscription contains an OR node: %s", s)
			}
			return true
		})
	}
}

func TestSubscriptionsArePrunable(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s, err := g.Subscription(uint64(i), "c")
		if err != nil {
			t.Fatal(err)
		}
		if len(subscription.Candidates(s.Root, nil)) == 0 {
			t.Fatalf("unprunable subscription generated: %s", s)
		}
	}
}

func TestSubscriptionsMatchSomeEvents(t *testing.T) {
	// Liveness: a reasonable share of subscriptions match at least one
	// event in a large sample, and the overall match rate is neither zero
	// nor saturated (the auction's "workload too cold" check).
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	events := g.Events(1, 5000)
	subs := make([]*subscription.Subscription, 300)
	for i := range subs {
		s, err := g.Subscription(uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	matchedSubs := 0
	totalMatches := 0
	for _, s := range subs {
		hit := 0
		for _, m := range events {
			if s.Matches(m) {
				hit++
			}
		}
		if hit > 0 {
			matchedSubs++
		}
		totalMatches += hit
	}
	if matchedSubs < len(subs)/10 {
		t.Errorf("only %d/%d subscriptions ever match; workload too cold", matchedSubs, len(subs))
	}
	rate := float64(totalMatches) / float64(len(events)*len(subs))
	if rate <= 0 || rate > 0.5 {
		t.Errorf("average match rate %v; want sparse but nonzero", rate)
	}
	t.Logf("matched subs: %d/%d, avg match rate %.4f", matchedSubs, len(subs), rate)
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClassWeights = [3]float64{0, 0, 0}
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("zero class weights accepted")
	}
	cfg = DefaultConfig()
	cfg.Symbols = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestOfClassUnknown(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	if _, err := g.OfClass(Class(99), 1, "c"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestSymbolNamesUnique(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range g.symbols {
		if seen[s.name] {
			t.Fatalf("duplicate symbol name %q", s.name)
		}
		seen[s.name] = true
	}
}

func hasLeafOn(n *subscription.Node, attr string) bool {
	found := false
	n.Walk(func(node, _ *subscription.Node) bool {
		if node.Kind == subscription.NodeLeaf && node.Pred.Attr == attr {
			found = true
		}
		return !found
	})
	return found
}
