// Package ticker generates a stock-ticker workload: a small universe of
// symbols with strongly skewed trading popularity, a high-rate stream of
// quote events, and shallow conjunctive subscriptions built from numeric
// range predicates (price limits, momentum thresholds).
//
// The scenario is deliberately covering-friendly — the opposite pole from
// internal/sensornet. Interest piles onto a few hot symbols, so routing
// tables hold many subscriptions that share the identical symbol-equality
// predicate and differ only in nested numeric thresholds; subscription
// covering and aggregation thrive in this regime, and dimension-based
// pruning has comparatively little left to win (see EXPERIMENTS.md for
// the expected figure shapes).
package ticker

import (
	"fmt"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:        "ticker",
		Description: "stock ticker: few hot symbols, numeric range predicates, shallow conjunctions (covering-friendly)",
		New: func(seed uint64) (workload.Generator, error) {
			cfg := DefaultConfig()
			cfg.Seed = seed
			return NewGenerator(cfg)
		},
	})
}

// Class identifies the three subscription classes of the workload.
type Class int

// Subscription classes.
const (
	// ClassPriceAlert waits for one symbol to cross a price level — the
	// shallowest shape: symbol equality plus one price bound.
	ClassPriceAlert Class = iota + 1
	// ClassMomentumScreen watches one symbol for a move on volume:
	// symbol = S ∧ change >= C ∧ volume >= V.
	ClassMomentumScreen
	// ClassSectorScanner watches a whole sector for drops — the broadest
	// equality predicate in the workload (sector cardinality is tiny).
	ClassSectorScanner
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPriceAlert:
		return "price-alert"
	case ClassMomentumScreen:
		return "momentum-screen"
	case ClassSectorScanner:
		return "sector-scanner"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config parameterizes the workload generator.
type Config struct {
	// Seed makes the whole workload deterministic.
	Seed uint64
	// Symbols sizes the listed universe; Sectors and Exchanges cap the
	// respective name lists.
	Symbols, Sectors, Exchanges int
	// SymbolSkew is the Zipf exponent of trading popularity over symbols;
	// the default keeps a handful of symbols carrying most of the tape.
	SymbolSkew float64
	// ClassWeights gives the relative frequency of the three subscription
	// classes, in the order price-alert, momentum-screen, sector-scanner.
	ClassWeights [3]float64
}

// DefaultConfig returns the stock-ticker scenario parameters.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Symbols:      48,
		Sectors:      10,
		Exchanges:    3,
		SymbolSkew:   1.25,
		ClassWeights: [3]float64{0.45, 0.30, 0.25},
	}
}

var sectorNames = []string{
	"tech", "energy", "finance", "health", "consumer",
	"industrials", "materials", "utilities", "telecom", "realestate",
}

var exchangeNames = []string{"NYX", "NSQ", "LSE"}

// symbol is one listed instrument; quotes about the same symbol share
// sector, exchange, and hover around the same base price.
type symbol struct {
	name      string
	sector    string
	exchange  string
	basePrice float64
}

// Generator produces ticker events and subscriptions. Events and
// subscriptions use independent random streams — each owns its RNG and
// its own symbol-popularity picker — so consuming more of one does not
// perturb the other (property-tested by the golden-seed tests). Not safe
// for concurrent use.
type Generator struct {
	cfg     Config
	symbols []symbol
	evRNG   *dist.RNG
	subRNG  *dist.RNG
	evPick  *dist.Zipf // event-stream popularity over symbols
	subPick *dist.Zipf // subscription-stream popularity over symbols
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	total := cfg.ClassWeights[0] + cfg.ClassWeights[1] + cfg.ClassWeights[2]
	if total <= 0 {
		return nil, fmt.Errorf("ticker: class weights sum to %v", total)
	}
	if cfg.Symbols < 1 || cfg.Sectors < 1 || cfg.Exchanges < 1 {
		return nil, fmt.Errorf("ticker: universe sizes must be positive (symbols=%d sectors=%d exchanges=%d)",
			cfg.Symbols, cfg.Sectors, cfg.Exchanges)
	}
	if cfg.Sectors > len(sectorNames) {
		cfg.Sectors = len(sectorNames)
	}
	if cfg.Exchanges > len(exchangeNames) {
		cfg.Exchanges = len(exchangeNames)
	}
	root := dist.New(cfg.Seed)
	uniRNG := root.Split()
	g := &Generator{
		cfg:     cfg,
		symbols: make([]symbol, cfg.Symbols),
		evRNG:   root.Split(),
		subRNG:  root.Split(),
	}
	// Sectors follow a mild popularity skew (tech lists more symbols than
	// realestate), exchanges are near-uniform.
	sectorPick, err := dist.NewZipf(uniRNG, 0.7, cfg.Sectors)
	if err != nil {
		return nil, err
	}
	for i := range g.symbols {
		g.symbols[i] = symbol{
			name:      symbolName(i),
			sector:    sectorNames[sectorPick.Draw()],
			exchange:  exchangeNames[uniRNG.Intn(cfg.Exchanges)],
			basePrice: uniRNG.Exponential(60, 900) + 4, // long-tailed, >= 4
		}
	}
	if g.evPick, err = dist.NewZipf(g.evRNG, cfg.SymbolSkew, cfg.Symbols); err != nil {
		return nil, err
	}
	if g.subPick, err = dist.NewZipf(g.subRNG, cfg.SymbolSkew, cfg.Symbols); err != nil {
		return nil, err
	}
	return g, nil
}

// Name returns the registry name of the scenario.
func (g *Generator) Name() string { return "ticker" }

// symbolName builds a deterministic unique three-letter code.
func symbolName(i int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return string([]byte{
		letters[(i/(26*26))%26],
		letters[(i/26)%26],
		letters[i%26],
	})
}

// Event generates the next quote: a trade snapshot for a popularity-
// weighted symbol. Prices wander tightly around the symbol's base, so
// alert thresholds set near the base keep the workload live without
// saturating it.
func (g *Generator) Event(id uint64) *event.Message {
	r := g.evRNG
	s := &g.symbols[g.evPick.Draw()]
	price := s.basePrice * r.Normal(1.0, 0.045, 0.75, 1.3)
	change := r.Normal(0, 1.6, -9, 9)
	return event.Build(id).
		Str("symbol", s.name).
		Str("sector", s.sector).
		Str("exchange", s.exchange).
		Num("price", round2(price)).
		Num("change", round2(change)).
		Int("volume", int64(r.Exponential(20000, 500000))).
		Int("trades", int64(r.Exponential(150, 5000))).
		Flag("halted", r.Bool(0.002)).
		Msg()
}

// Events generates n events with ascending IDs starting at startID.
func (g *Generator) Events(startID uint64, n int) []*event.Message {
	out := make([]*event.Message, n)
	for i := range out {
		out[i] = g.Event(startID + uint64(i))
	}
	return out
}

// Subscription generates the next subscription with the given ID and
// subscriber, drawing its class from the configured weights.
func (g *Generator) Subscription(id uint64, subscriber string) (*subscription.Subscription, error) {
	w := g.cfg.ClassWeights
	u := g.subRNG.Float64() * (w[0] + w[1] + w[2])
	switch {
	case u < w[0]:
		return g.OfClass(ClassPriceAlert, id, subscriber)
	case u < w[0]+w[1]:
		return g.OfClass(ClassMomentumScreen, id, subscriber)
	default:
		return g.OfClass(ClassSectorScanner, id, subscriber)
	}
}

// OfClass generates a subscription of a specific class.
func (g *Generator) OfClass(c Class, id uint64, subscriber string) (*subscription.Subscription, error) {
	var root *subscription.Node
	switch c {
	case ClassPriceAlert:
		root = g.priceAlert()
	case ClassMomentumScreen:
		root = g.momentumScreen()
	case ClassSectorScanner:
		root = g.sectorScanner()
	default:
		return nil, fmt.Errorf("ticker: unknown class %d", int(c))
	}
	return subscription.New(id, subscriber, root)
}

// priceAlert: symbol = S ∧ price <= L (bargain) or symbol = S ∧ price >= U
// (breakout) [∧ exchange = E]. Thresholds sit near the symbol's base price;
// many alerts on the same hot symbol differ only in the bound — the nesting
// structure subscription covering exploits.
func (g *Generator) priceAlert() *subscription.Node {
	r := g.subRNG
	s := &g.symbols[g.subPick.Draw()]
	children := []*subscription.Node{
		subscription.Eq("symbol", event.String(s.name)),
	}
	if r.Bool(0.7) {
		children = append(children,
			subscription.Le("price", event.Float(round2(s.basePrice*r.Range(0.92, 1.06)))))
	} else {
		children = append(children,
			subscription.Ge("price", event.Float(round2(s.basePrice*r.Range(0.97, 1.12)))))
	}
	if r.Bool(0.2) {
		children = append(children,
			subscription.Eq("exchange", event.String(s.exchange)))
	}
	return subscription.And(children...)
}

// momentumScreen: symbol = S ∧ change >= C ∧ volume >= V [∧ trades >= T].
func (g *Generator) momentumScreen() *subscription.Node {
	r := g.subRNG
	s := &g.symbols[g.subPick.Draw()]
	children := []*subscription.Node{
		subscription.Eq("symbol", event.String(s.name)),
		subscription.Ge("change", event.Float(round2(r.Range(0.5, 3)))),
		subscription.Ge("volume", event.Int(int64(r.Exponential(15000, 250000)))),
	}
	if r.Bool(0.3) {
		children = append(children,
			subscription.Ge("trades", event.Int(int64(r.Exponential(100, 2000)))))
	}
	return subscription.And(children...)
}

// sectorScanner: sector = X ∧ change <= -C [∧ volume >= V] [∧ exchange = E]
// — a drop alert over a whole sector, the workload's broadest shape.
func (g *Generator) sectorScanner() *subscription.Node {
	r := g.subRNG
	s := &g.symbols[g.subPick.Draw()]
	children := []*subscription.Node{
		subscription.Eq("sector", event.String(s.sector)),
		subscription.Le("change", event.Float(round2(-r.Range(0.5, 2.5)))),
	}
	if r.Bool(0.4) {
		children = append(children,
			subscription.Ge("volume", event.Int(int64(r.Exponential(10000, 150000)))))
	}
	if r.Bool(0.3) {
		children = append(children,
			subscription.Eq("exchange", event.String(exchangeNames[r.Intn(g.cfg.Exchanges)])))
	}
	return subscription.And(children...)
}

// round2 keeps prices and percentages to two decimals so rendered
// subscriptions stay readable.
func round2(f float64) float64 {
	if f < 0 {
		return -float64(int(-f*100+0.5)) / 100
	}
	return float64(int(f*100+0.5)) / 100
}
