package selectivity

import (
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/subscription"
)

func benchModelAndTrees(b *testing.B) (*Model, []*subscription.Node) {
	b.Helper()
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := NewModel()
	for _, ev := range gen.Events(1, 4000) {
		m.Observe(ev)
	}
	trees := make([]*subscription.Node, 128)
	for i := range trees {
		s, err := gen.Subscription(uint64(i+1), "c")
		if err != nil {
			b.Fatal(err)
		}
		trees[i] = s.Root
	}
	return m, trees
}

func BenchmarkEstimate(b *testing.B) {
	m, trees := benchModelAndTrees(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Estimate(trees[i%len(trees)])
	}
}

func BenchmarkObserve(b *testing.B) {
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	events := gen.Events(1, 4096)
	m := NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(events[i%len(events)])
	}
}
