package selectivity

import (
	"strings"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Estimate is the three-component selectivity estimate sel≈ of §3.1:
// the share of events a subscription matches, bounded below and above, plus
// an independence-assumption average. Invariant: 0 ≤ Min ≤ Avg ≤ Max ≤ 1.
type Estimate struct {
	Min float64
	Avg float64
	Max float64
}

// Point returns an estimate with all three components equal.
func Point(p float64) Estimate { return Estimate{Min: p, Avg: p, Max: p} }

// Degradation is Δ≈sel(sx, sy) of §3.1: the maximum of the component-wise
// differences between the pruned estimate e2 and the original estimate e1.
// It estimates how much less selective the pruned subscription is; higher
// means more additional events will be matched and routed.
func Degradation(e1, e2 Estimate) float64 {
	d := e2.Min - e1.Min
	if v := e2.Avg - e1.Avg; v > d {
		d = v
	}
	if v := e2.Max - e1.Max; v > d {
		d = v
	}
	return d
}

// defaultSel is used for predicates on attributes with no observations: with
// no evidence either way, assume a moderately selective predicate rather
// than an extreme.
const defaultSel = 0.1

// Predicate estimates the probability that a predicate matches a random
// event drawn from the observed distribution.
func (m *Model) Predicate(p subscription.Predicate) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.predicateLocked(p)
}

func (m *Model) predicateLocked(p subscription.Predicate) float64 {
	raw := m.rawPredicate(p)
	if p.Negated {
		return clamp01(1 - raw)
	}
	return raw
}

// rawPredicate estimates P(attribute present ∧ operator holds).
func (m *Model) rawPredicate(p subscription.Predicate) float64 {
	st := m.attrs[p.Attr]
	if st == nil || m.events == 0 || st.present == 0 {
		if p.Op == subscription.OpExists {
			return 0
		}
		return defaultSel
	}
	presence := float64(st.present) / float64(m.events)
	return clamp01(presence * st.conditional(p))
}

// conditional estimates P(operator holds | attribute present).
func (s *attrStats) conditional(p subscription.Predicate) float64 {
	switch p.Op {
	case subscription.OpExists:
		return 1
	case subscription.OpEq:
		return s.eqProb(p.Value)
	case subscription.OpNe:
		return clamp01(1 - s.eqProb(p.Value))
	case subscription.OpLt, subscription.OpLe, subscription.OpGt, subscription.OpGe:
		return s.rangeProb(p.Op, p.Value)
	case subscription.OpPrefix, subscription.OpSuffix, subscription.OpContains:
		return s.stringProb(p.Op, p.Value)
	default:
		return defaultSel
	}
}

func (s *attrStats) eqProb(v event.Value) float64 {
	key := canonical(v)
	if n, ok := s.freq[key]; ok {
		return float64(n) / float64(s.present)
	}
	if s.overflow == 0 {
		return 0
	}
	// The value was never tracked; spread the overflow mass uniformly over an
	// assumed long tail as wide as the tracked head.
	return float64(s.overflow) / float64(s.present) / float64(maxTrackedValues)
}

func (s *attrStats) rangeProb(op subscription.Op, v event.Value) float64 {
	if f, ok := v.Numeric(); ok {
		nums := s.sortedNums()
		if len(nums) == 0 {
			return defaultSel
		}
		lower := search(nums, func(x float64) bool { return x >= f })
		upper := search(nums, func(x float64) bool { return x > f })
		n := float64(len(nums))
		numericShare := float64(s.numsTotal) / float64(s.present)
		var frac float64
		switch op {
		case subscription.OpLt:
			frac = float64(lower) / n
		case subscription.OpLe:
			frac = float64(upper) / n
		case subscription.OpGt:
			frac = float64(len(nums)-upper) / n
		default: // OpGe
			frac = float64(len(nums)-lower) / n
		}
		return clamp01(frac * numericShare)
	}
	if v.Kind() == event.KindString {
		strs := s.sortedStrs()
		if len(strs) == 0 {
			return defaultSel
		}
		t := v.AsString()
		lower := searchStr(strs, func(x string) bool { return x >= t })
		upper := searchStr(strs, func(x string) bool { return x > t })
		n := float64(len(strs))
		stringShare := float64(s.strsTotal) / float64(s.present)
		var frac float64
		switch op {
		case subscription.OpLt:
			frac = float64(lower) / n
		case subscription.OpLe:
			frac = float64(upper) / n
		case subscription.OpGt:
			frac = float64(len(strs)-upper) / n
		default:
			frac = float64(len(strs)-lower) / n
		}
		return clamp01(frac * stringShare)
	}
	return 0 // unorderable value kind never satisfies a range operator
}

func (s *attrStats) stringProb(op subscription.Op, v event.Value) float64 {
	if v.Kind() != event.KindString {
		return 0
	}
	strs := s.sortedStrs()
	if len(strs) == 0 {
		return defaultSel
	}
	t := v.AsString()
	match := 0
	for _, x := range strs {
		switch op {
		case subscription.OpPrefix:
			if strings.HasPrefix(x, t) {
				match++
			}
		case subscription.OpSuffix:
			if strings.HasSuffix(x, t) {
				match++
			}
		default: // OpContains
			if strings.Contains(x, t) {
				match++
			}
		}
	}
	stringShare := float64(s.strsTotal) / float64(s.present)
	return clamp01(float64(match) / float64(len(strs)) * stringShare)
}

// Estimate computes the three-component estimate of a subscription tree.
// Leaves receive point estimates; AND combines with the Fréchet lower bound,
// independence average, and min upper bound; OR with the max lower bound,
// inclusion–exclusion-under-independence average, and capped-sum upper
// bound. These bounds hold for any correlation structure among subtrees, so
// the true selectivity of the tree lies in [Min, Max] whenever the leaf
// estimates are exact.
func (m *Model) Estimate(n *subscription.Node) Estimate {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.estimateLocked(n)
}

func (m *Model) estimateLocked(n *subscription.Node) Estimate {
	switch n.Kind {
	case subscription.NodeLeaf:
		return Point(m.predicateLocked(n.Pred))
	case subscription.NodeAnd:
		e := Estimate{Min: 1, Avg: 1, Max: 1}
		for _, c := range n.Children {
			ce := m.estimateLocked(c)
			e.Min = clamp01(e.Min + ce.Min - 1)
			e.Avg *= ce.Avg
			if ce.Max < e.Max {
				e.Max = ce.Max
			}
		}
		return e.normalize()
	case subscription.NodeOr:
		var e Estimate
		for _, c := range n.Children {
			ce := m.estimateLocked(c)
			if ce.Min > e.Min {
				e.Min = ce.Min
			}
			e.Avg = 1 - (1-e.Avg)*(1-ce.Avg)
			e.Max = clamp01(e.Max + ce.Max)
		}
		return e.normalize()
	default:
		return Estimate{}
	}
}

// normalize repairs floating-point drift so Min ≤ Avg ≤ Max stays true.
func (e Estimate) normalize() Estimate {
	e.Min = clamp01(e.Min)
	e.Avg = clamp01(e.Avg)
	e.Max = clamp01(e.Max)
	if e.Avg < e.Min {
		e.Avg = e.Min
	}
	if e.Max < e.Avg {
		e.Max = e.Avg
	}
	return e
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// search returns the first index i in the ascending slice for which
// pred(s[i]) is true, or len(s).
func search(s []float64, pred func(float64) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func searchStr(s []string, pred func(string) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if pred(s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
