package selectivity

import (
	"math"
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// uniformModel observes n events with price uniform over [0,100) (ints) and
// category drawn from {a: 50%, b: 30%, c: 20%}.
func uniformModel(t *testing.T, n int) *Model {
	t.Helper()
	m := NewModel()
	r := dist.New(1)
	for i := 0; i < n; i++ {
		b := event.Build(uint64(i)).Int("price", int64(r.Intn(100)))
		u := r.Float64()
		switch {
		case u < 0.5:
			b.Str("category", "a")
		case u < 0.8:
			b.Str("category", "b")
		default:
			b.Str("category", "c")
		}
		if r.Bool(0.25) { // rating present on 25% of events
			b.Int("rating", int64(r.Intn(5)))
		}
		m.Observe(b.Msg())
	}
	return m
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func TestPredicateEquality(t *testing.T) {
	m := uniformModel(t, 20000)
	approx(t, "category = a", m.Predicate(subscription.Pred("category", subscription.OpEq, event.String("a"))), 0.5, 0.02)
	approx(t, "category = c", m.Predicate(subscription.Pred("category", subscription.OpEq, event.String("c"))), 0.2, 0.02)
	approx(t, "category = zz", m.Predicate(subscription.Pred("category", subscription.OpEq, event.String("zz"))), 0, 0.001)
}

func TestPredicateRange(t *testing.T) {
	m := uniformModel(t, 20000)
	approx(t, "price < 50", m.Predicate(subscription.Pred("price", subscription.OpLt, event.Int(50))), 0.5, 0.03)
	approx(t, "price <= 9", m.Predicate(subscription.Pred("price", subscription.OpLe, event.Int(9))), 0.1, 0.02)
	approx(t, "price > 89", m.Predicate(subscription.Pred("price", subscription.OpGt, event.Int(89))), 0.1, 0.02)
	approx(t, "price >= 0", m.Predicate(subscription.Pred("price", subscription.OpGe, event.Int(0))), 1, 0.01)
	approx(t, "price < 0", m.Predicate(subscription.Pred("price", subscription.OpLt, event.Int(0))), 0, 0.001)
}

func TestPredicatePresence(t *testing.T) {
	m := uniformModel(t, 20000)
	// rating present on ~25% of events; rating >= 0 always true given present.
	approx(t, "rating exists", m.Predicate(subscription.Pred("rating", subscription.OpExists, event.Value{})), 0.25, 0.02)
	approx(t, "rating >= 0", m.Predicate(subscription.Pred("rating", subscription.OpGe, event.Int(0))), 0.25, 0.02)
	// Negation includes absent-attribute events.
	approx(t, "not rating >= 0", m.Predicate(subscription.Pred("rating", subscription.OpGe, event.Int(0)).Negate()), 0.75, 0.02)
}

func TestPredicateUnknownAttribute(t *testing.T) {
	m := uniformModel(t, 100)
	got := m.Predicate(subscription.Pred("nosuch", subscription.OpEq, event.Int(1)))
	if got != defaultSel {
		t.Errorf("unknown attribute selectivity = %v, want default %v", got, defaultSel)
	}
	if got := m.Predicate(subscription.Pred("nosuch", subscription.OpExists, event.Value{})); got != 0 {
		t.Errorf("exists on unknown attribute = %v, want 0", got)
	}
}

func TestPredicateNe(t *testing.T) {
	m := uniformModel(t, 20000)
	approx(t, "category != a", m.Predicate(subscription.Pred("category", subscription.OpNe, event.String("a"))), 0.5, 0.02)
}

func TestStringOps(t *testing.T) {
	m := NewModel()
	titles := []string{"The Hobbit", "The Silmarillion", "Dune", "Dune Messiah", "Emma"}
	for i, s := range titles {
		for k := 0; k < 100; k++ {
			m.Observe(event.Build(uint64(i*100+k)).Str("title", s).Msg())
		}
	}
	approx(t, `title prefix "The"`, m.Predicate(subscription.Pred("title", subscription.OpPrefix, event.String("The"))), 0.4, 0.01)
	approx(t, `title prefix "Dune"`, m.Predicate(subscription.Pred("title", subscription.OpPrefix, event.String("Dune"))), 0.4, 0.01)
	approx(t, `title contains "il"`, m.Predicate(subscription.Pred("title", subscription.OpContains, event.String("il"))), 0.2, 0.01)
	approx(t, `title suffix "iah"`, m.Predicate(subscription.Pred("title", subscription.OpSuffix, event.String("iah"))), 0.2, 0.01)
}

func TestCrossKindEquality(t *testing.T) {
	m := NewModel()
	for i := 0; i < 100; i++ {
		m.Observe(event.Build(uint64(i)).Int("x", 7).Msg())
	}
	// Predicate written as float must hit the int observations.
	approx(t, "x = 7.0", m.Predicate(subscription.Pred("x", subscription.OpEq, event.Float(7))), 1, 0.001)
}

func TestEstimateInvariants(t *testing.T) {
	m := uniformModel(t, 5000)
	trees := []*subscription.Node{
		subscription.MustParse(`price < 50`),
		subscription.MustParse(`price < 50 and category = "a"`),
		subscription.MustParse(`price < 50 or category = "a"`),
		subscription.MustParse(`(price < 10 or price > 90) and category = "b" and rating >= 2`),
		subscription.MustParse(`not price < 50 and category != "c"`),
	}
	for _, tr := range trees {
		e := m.Estimate(tr)
		if !(e.Min >= 0 && e.Min <= e.Avg && e.Avg <= e.Max && e.Max <= 1) {
			t.Errorf("estimate invariant violated for %s: %+v", tr, e)
		}
	}
}

func TestEstimateAndOrSemantics(t *testing.T) {
	m := uniformModel(t, 20000)
	and := m.Estimate(subscription.MustParse(`price < 50 and category = "a"`))
	// Independence average: 0.5 * 0.5 = 0.25.
	approx(t, "AND avg", and.Avg, 0.25, 0.02)
	// Fréchet: max(0, 0.5+0.5-1) = 0, min(0.5, 0.5) = 0.5.
	approx(t, "AND min", and.Min, 0, 0.02)
	approx(t, "AND max", and.Max, 0.5, 0.02)

	or := m.Estimate(subscription.MustParse(`price < 50 or category = "a"`))
	approx(t, "OR avg", or.Avg, 0.75, 0.02)
	approx(t, "OR min", or.Min, 0.5, 0.02)
	approx(t, "OR max", or.Max, 1.0, 0.02)
}

func TestEmpiricalSelectivityWithinBounds(t *testing.T) {
	// Invariant 3 of DESIGN.md §6: measured match ratio falls inside
	// [Min, Max] for independently drawn attributes.
	m := NewModel()
	r := dist.New(9)
	gen := func(id uint64) *event.Message {
		return event.Build(id).
			Int("price", int64(r.Intn(100))).
			Int("rating", int64(r.Intn(5))).
			Msg()
	}
	var train []*event.Message
	for i := 0; i < 20000; i++ {
		msg := gen(uint64(i))
		train = append(train, msg)
		m.Observe(msg)
	}
	trees := []*subscription.Node{
		subscription.MustParse(`price < 30 and rating >= 3`),
		subscription.MustParse(`price < 30 or rating >= 3`),
		subscription.MustParse(`price >= 20 and price < 80 and rating >= 1`),
	}
	for _, tr := range trees {
		match := 0
		for _, msg := range train {
			if tr.Matches(msg) {
				match++
			}
		}
		ratio := float64(match) / float64(len(train))
		e := m.Estimate(tr)
		if ratio < e.Min-0.01 || ratio > e.Max+0.01 {
			t.Errorf("%s: empirical %v outside [%v, %v]", tr, ratio, e.Min, e.Max)
		}
		// Independent attributes: the average should be close too.
		approx(t, tr.String()+" avg", e.Avg, ratio, 0.05)
	}
}

func TestDegradation(t *testing.T) {
	e1 := Estimate{Min: 0.1, Avg: 0.2, Max: 0.3}
	e2 := Estimate{Min: 0.15, Avg: 0.5, Max: 0.4}
	if got := Degradation(e1, e2); got != 0.3 {
		t.Errorf("Degradation = %v, want 0.3 (avg component)", got)
	}
	if got := Degradation(e1, e1); got != 0 {
		t.Errorf("self-degradation = %v, want 0", got)
	}
}

func TestDegradationNonNegativeForPrunings(t *testing.T) {
	// Pruning generalizes, so each component can only grow: the maximum of
	// the differences is non-negative.
	m := uniformModel(t, 5000)
	root := subscription.MustParse(`price < 40 and category = "a" and rating >= 2`)
	e1 := m.Estimate(root)
	for _, cand := range subscription.Candidates(root, nil) {
		pruned := subscription.PruneAt(root, cand)
		if pruned == nil {
			t.Fatal("candidate rejected")
		}
		if d := Degradation(e1, m.Estimate(pruned)); d < 0 {
			t.Errorf("negative degradation %v for pruning to %s", d, pruned)
		}
	}
}

func TestEstimateEmptyModel(t *testing.T) {
	m := NewModel()
	e := m.Estimate(subscription.MustParse(`price < 50 and category = "a"`))
	if !(e.Min >= 0 && e.Min <= e.Avg && e.Avg <= e.Max && e.Max <= 1) {
		t.Errorf("empty-model estimate invariant violated: %+v", e)
	}
}

func TestPointAndNormalize(t *testing.T) {
	p := Point(0.4)
	if p.Min != 0.4 || p.Avg != 0.4 || p.Max != 0.4 {
		t.Errorf("Point = %+v", p)
	}
	n := (Estimate{Min: 0.5, Avg: 0.2, Max: 0.1}).normalize()
	if !(n.Min <= n.Avg && n.Avg <= n.Max) {
		t.Errorf("normalize failed: %+v", n)
	}
}

func TestReservoirOverflowStaysSane(t *testing.T) {
	m := NewModel()
	r := dist.New(5)
	// More distinct values than the reservoir holds.
	for i := 0; i < 3*maxSamples; i++ {
		m.Observe(event.Build(uint64(i)).Int("x", int64(r.Intn(1000000))).Msg())
	}
	p := m.Predicate(subscription.Pred("x", subscription.OpLt, event.Int(500000)))
	approx(t, "x < 500000 under subsampling", p, 0.5, 0.08)
}
