// Package selectivity estimates how many events a subscription (or a pruned
// variant of it) matches. The network-load heuristic of the paper (§3.1)
// compares three-component estimates — minimal, average, and maximal possible
// selectivity — of the original and the pruned subscription.
//
// Per-predicate selectivities are learned from observed (or generated) event
// samples; tree-level estimates combine them with bounds that hold under any
// correlation between subtrees (Fréchet inequalities) plus an independence
// assumption for the average. This mirrors the estimation design of [4],
// which keeps the estimate cheap to compute and store.
package selectivity

import (
	"sort"
	"sync"

	"dimprune/internal/event"
)

// maxTrackedValues bounds the per-attribute frequency table. Attribute
// domains beyond the bound fall back to the sample reservoir and a uniform
// remainder estimate.
const maxTrackedValues = 4096

// maxSamples bounds the per-attribute value reservoir used for range and
// string-operator estimates.
const maxSamples = 4096

// attrStats accumulates per-attribute observations.
type attrStats struct {
	present int // events carrying the attribute

	freq     map[event.Value]int // canonical value -> occurrences
	overflow int                 // occurrences beyond maxTrackedValues distinct values

	nums      []float64 // numeric sample reservoir (sorted on demand)
	numsTotal int       // numeric observations (reservoir may subsample)
	numsDirty bool

	strs      []string // string sample reservoir (sorted on demand)
	strsTotal int
	strsDirty bool
}

// Model holds the learned statistics. Build one with NewModel, feed it
// events with Observe, then query Predicate/Estimate. Observing and querying
// may interleave; estimates always reflect the events seen so far.
//
// Model is safe for concurrent use: brokers call Observe from their
// parallel publish path while the pruning engine queries estimates. One
// internal mutex guards all state — observation is a handful of map and
// slice updates, so the critical section stays short.
type Model struct {
	mu     sync.Mutex
	attrs  map[string]*attrStats
	events int
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{attrs: make(map[string]*attrStats)}
}

// Events returns the number of observed events.
func (m *Model) Events() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Observe folds one event message into the statistics.
//
// Under concurrent publishing, observation degrades to sampling rather
// than serializing the data plane: when the model lock is contended the
// event is skipped. Selectivity estimates are statistical over the event
// distribution, so an unbiased contention-driven subsample preserves them,
// while a hard lock here would funnel every parallel publisher through one
// mutex. Single-threaded callers (the simulation, the experiment harness)
// never contend, so for them every event is observed, deterministically.
func (m *Model) Observe(msg *event.Message) {
	if !m.mu.TryLock() {
		return
	}
	defer m.mu.Unlock()
	m.events++
	for _, a := range msg.Attrs {
		st := m.attrs[a.Name]
		if st == nil {
			st = &attrStats{freq: make(map[event.Value]int)}
			m.attrs[a.Name] = st
		}
		st.observe(a.Value)
	}
}

func (s *attrStats) observe(v event.Value) {
	s.present++
	key := canonical(v)
	if _, tracked := s.freq[key]; tracked || len(s.freq) < maxTrackedValues {
		s.freq[key]++
	} else {
		s.overflow++
	}
	if f, ok := v.Numeric(); ok {
		s.numsTotal++
		if len(s.nums) < maxSamples {
			s.nums = append(s.nums, f)
			s.numsDirty = true
		} else {
			// Deterministic systematic subsample: overwrite a rotating slot.
			s.nums[s.numsTotal%maxSamples] = f
			s.numsDirty = true
		}
	}
	if v.Kind() == event.KindString {
		s.strsTotal++
		if len(s.strs) < maxSamples {
			s.strs = append(s.strs, v.AsString())
			s.strsDirty = true
		} else {
			s.strs[s.strsTotal%maxSamples] = v.AsString()
			s.strsDirty = true
		}
	}
}

// canonical maps numerically equal values to one key so Int(3) and
// Float(3.0) share a frequency bucket, matching predicate equality
// semantics. Integers beyond 2^53 keep their exact representation.
func canonical(v event.Value) event.Value {
	if v.Kind() == event.KindInt {
		f := float64(v.AsInt())
		if int64(f) == v.AsInt() {
			return event.Float(f)
		}
	}
	return v
}

// sortedNums returns the numeric reservoir in ascending order.
func (s *attrStats) sortedNums() []float64 {
	if s.numsDirty {
		sort.Float64s(s.nums)
		s.numsDirty = false
	}
	return s.nums
}

// sortedStrs returns the string reservoir in ascending order.
func (s *attrStats) sortedStrs() []string {
	if s.strsDirty {
		sort.Strings(s.strs)
		s.strsDirty = false
	}
	return s.strs
}
