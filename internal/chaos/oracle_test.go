package chaos

import (
	"fmt"
	"testing"
	"time"

	"dimprune/internal/simnet"
)

// TestChaosOracleTable is the tentpole oracle: a (topology × schedule)
// matrix where each cell builds a fresh overlay, loads the canonical
// population, runs a seeded fault schedule with convergence asserted
// after every heal, then proves post-heal delivery exactness and a clean
// teardown. Four topology shapes (line, star, balanced tree, seeded
// random acyclic) × three seeds each.
func TestChaosOracleTable(t *testing.T) {
	type topo struct {
		name  string
		edges []simnet.Edge
	}
	topos := []topo{
		{"line5", simnet.LineEdges(5)},
		{"star5", simnet.StarEdges(5)},
		{"tree7", simnet.TreeEdges(7, 2)},
		{"random8", simnet.RandomTreeEdges(8, 77)},
	}
	seeds := []int64{101, 202, 303}
	steps := 4
	if testing.Short() {
		seeds = seeds[:1]
		steps = 2
	}
	for _, tp := range topos {
		for _, seed := range seeds {
			tp, seed := tp, seed
			t.Run(fmt.Sprintf("%s/seed%d", tp.name, seed), func(t *testing.T) {
				runOracleCell(t, tp.edges, seed, steps)
			})
		}
	}
}

func runOracleCell(t *testing.T, edges []simnet.Edge, seed int64, steps int) {
	base := CaptureLeakBaseline()
	cfg := Config{Edges: edges}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			h.Close()
		}
	}()
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 20*time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	sc := GenSchedule(seed, edges, steps)
	sink := h.Sink()
	n := h.NumBrokers()
	// Phase 1: traffic published while faults are live. Loss is allowed
	// here (ephemeral events during a cut are legitimately dropped); the
	// oracle only requires these events never go negative — no broker may
	// deliver an event to a subscription that doesn't match it.
	sink.Mark(1)
	nextID := uint64(10_000)
	during := func(step int) {
		for k := 0; k < n; k++ {
			at := (step + k) % n
			if !h.Alive(at) {
				continue
			}
			m := famEvent(nextID, k, 5)
			nextID++
			if err := h.PublishAt(at, m); err != nil {
				t.Logf("phase-1 publish at b%d during step %d: %v", at, step, err)
			}
		}
	}
	if err := h.RunSchedule(sc, ref, during, 45*time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the overlay has reconverged; from here on delivery must be
	// exact — every matching subscription hears every event exactly once,
	// and nothing else.
	sink.Mark(2)
	var want []DeliveryKey
	for k := 0; k < n; k++ {
		m := famEvent(nextID, k, 5)
		nextID++
		want = append(want, expectedDeliveries(h.Population(), m)...)
		if err := h.PublishAt((k+1)%n, m); err != nil {
			t.Fatalf("phase-2 publish: %v", err)
		}
	}
	waitDelivered(t, sink, want, 20*time.Second)
	// Stability window: catch late duplicates or spurious deliveries.
	time.Sleep(50 * time.Millisecond)
	wantSet := make(map[DeliveryKey]bool, len(want))
	for _, k := range want {
		wantSet[k] = true
	}
	for key, cnt := range sink.Counts() {
		if sink.Phase(key) != 2 {
			continue
		}
		if !wantSet[key] {
			t.Errorf("spurious post-heal delivery %+v (x%d)", key, cnt)
		} else if cnt != 1 {
			t.Errorf("post-heal delivery %+v duplicated: count=%d", key, cnt)
		}
	}
	// Phase-1 sanity: any delivery observed must have been a true match.
	for key := range sink.Counts() {
		if sink.Phase(key) != 1 {
			continue
		}
		if !matchesPopulation(h.Population(), key) {
			t.Errorf("phase-1 delivery %+v does not match any placed subscription", key)
		}
	}

	if s := sink.E2E(); s.Count == 0 {
		t.Error("e2e latency histogram empty after chaos run")
	}

	h.Close()
	closed = true
	if err := base.Check(15 * time.Second); err != nil {
		t.Error(err)
	}
}

// matchesPopulation reports whether a delivery key names a subscription
// that is actually placed at that broker. (Message content is keyed by ID
// in the sink, so this validates placement, the part crashes can corrupt.)
func matchesPopulation(pop []PlacedSub, key DeliveryKey) bool {
	for _, p := range pop {
		if p.Broker == key.Broker && p.Sub.ID == key.SubID {
			return true
		}
	}
	return false
}
