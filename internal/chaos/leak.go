package chaos

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Leak checks: a chaos run that converges but leaves goroutines or file
// descriptors behind has only deferred its failure. Snapshot before the
// harness is built, assert after Close.

// LeakBaseline captures the process's goroutine and FD counts.
type LeakBaseline struct {
	Goroutines int
	FDs        int
}

// CaptureLeakBaseline snapshots current goroutine and open-FD counts.
func CaptureLeakBaseline() LeakBaseline {
	return LeakBaseline{Goroutines: runtime.NumGoroutine(), FDs: countFDs()}
}

// Check polls until goroutine and FD counts return to (at or below) the
// baseline or the timeout passes. Polling, not a single sample: readers
// and outbox writers exit asynchronously after Close, and the runtime
// retires goroutines lazily.
func (b LeakBaseline) Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var g, f int
	for {
		runtime.GC() // finalize dropped conns so their FDs close
		g, f = runtime.NumGoroutine(), countFDs()
		if g <= b.Goroutines && (f <= b.FDs || f < 0) {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("chaos: leak after teardown: %d goroutines (baseline %d), %d fds (baseline %d)",
		g, b.Goroutines, f, b.FDs)
}

// countFDs counts open file descriptors via /proc (linux); -1 where /proc
// is unavailable, which disables the FD half of the check.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
