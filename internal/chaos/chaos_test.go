package chaos

import (
	"fmt"
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/simnet"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
)

func init() {
	// Every chaos run replays exactly: redial jitter included.
	transport.SetRedialJitterSeed(0xC0FFEE)
}

// chaosPopulation builds the oracle's canonical subscription population
// for an n-broker overlay: per broker k, one plain root subscription on a
// broker-private attribute, plus a covering family — a broad cover
// anchored at broker k and a narrow covered member at broker (k+1)%n.
// Families use disjoint attributes, and each covered entry has exactly
// one possible cover, so the covering forest's advertisement sets are
// canonical — identical regardless of arrival order — which is what makes
// exact fingerprint comparison against a fresh reference sound even
// though heals replay entries in resync order, not subscribe order.
func chaosPopulation(t *testing.T, h *Harness) {
	t.Helper()
	n := h.NumBrokers()
	for k := 0; k < n; k++ {
		root := mustSub(t, uint64(2000+k), fmt.Sprintf("root%d", k), fmt.Sprintf("r%d exists", k))
		if err := h.SubscribeAt(k, root); err != nil {
			t.Fatal(err)
		}
		broad := mustSub(t, uint64(1000+k*10+1), fmt.Sprintf("fam%d", k), fmt.Sprintf("f%d <= 100", k))
		if err := h.SubscribeAt(k, broad); err != nil {
			t.Fatal(err)
		}
		narrow := mustSub(t, uint64(1000+k*10+2), fmt.Sprintf("fam%d", k), fmt.Sprintf("f%d <= 10", k))
		if err := h.SubscribeAt((k+1)%n, narrow); err != nil {
			t.Fatal(err)
		}
	}
}

func mustSub(t *testing.T, id uint64, subscriber, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, subscriber, subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// famEvent builds an event on family k's attribute with the given value:
// value <= 10 matches broad and narrow, <= 100 broad only.
func famEvent(id uint64, k int, value int64) *event.Message {
	return event.Build(id).Int(fmt.Sprintf("f%d", k), value).Msg()
}

// expectedDeliveries computes the exact-match ground truth for one event:
// every placed subscription whose tree matches it.
func expectedDeliveries(pop []PlacedSub, m *event.Message) []DeliveryKey {
	var keys []DeliveryKey
	for _, p := range pop {
		if p.Sub.Root.Matches(m) {
			keys = append(keys, DeliveryKey{Broker: p.Broker, SubID: p.Sub.ID, MsgID: m.ID})
		}
	}
	return keys
}

// waitDelivered polls until every key has been delivered at least once.
func waitDelivered(t *testing.T, s *Sink, keys []DeliveryKey, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		missing := 0
		for _, k := range keys {
			if s.Count(k) == 0 {
				missing++
			}
		}
		if missing == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d expected deliveries missing", missing, len(keys))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHarnessBuildsAndConverges(t *testing.T) {
	base := CaptureLeakBaseline()
	cfg := Config{Edges: simnet.LineEdges(4)}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// A healthy overlay delivers exactly.
	m := famEvent(1, 0, 5)
	want := expectedDeliveries(h.Population(), m)
	if len(want) != 2 {
		t.Fatalf("expected 2 matches (broad+narrow), got %d", len(want))
	}
	if err := h.PublishAt(2, m); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, h.Sink(), want, 10*time.Second)
	if s := h.Sink().E2E(); s.Count < 2 {
		t.Errorf("e2e histogram count = %d, want >= 2", s.Count)
	}
	h.Close()
	if err := base.Check(10 * time.Second); err != nil {
		t.Error(err)
	}
}

func TestKillRestartRestoresFingerprint(t *testing.T) {
	cfg := Config{Edges: simnet.StarEdges(4)}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 15*time.Second); err != nil {
		t.Fatalf("pre-fault: %v", err)
	}
	// Kill the hub — the worst case: every spoke loses its only route.
	h.Kill(0)
	if err := h.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 30*time.Second); err != nil {
		t.Fatalf("post-restart: %v", err)
	}
}

func TestCutHealRestoresFingerprint(t *testing.T) {
	cfg := Config{Edges: simnet.TreeEdges(5, 2)}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 15*time.Second); err != nil {
		t.Fatalf("pre-fault: %v", err)
	}
	h.CutEdge(0, 1)
	// While cut, the two sides hold reduced tables — must NOT equal ref.
	time.Sleep(50 * time.Millisecond)
	if fp, err := h.Fingerprint(); err == nil && fp.Equal(ref) {
		t.Fatal("fingerprint unchanged during cut — the oracle cannot distinguish faulted from healthy")
	}
	if err := h.HealEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 30*time.Second); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}

func TestLatencyInjectionDelaysButConverges(t *testing.T) {
	cfg := Config{Edges: simnet.LineEdges(3)}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	h.SetLinkLatency(0, 1, 30*time.Millisecond)
	defer h.SetLinkLatency(0, 1, 0)
	// An event published at 0 for a subscriber at 2 crosses the slowed
	// link: end-to-end latency must reflect the injection.
	m := famEvent(50, 2, 5) // narrow member of family 2 lives at broker 0? narrow k=2 is at (2+1)%3=0
	want := expectedDeliveries(h.Population(), m)
	start := time.Now()
	if err := h.PublishAt(0, m); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, h.Sink(), want, 10*time.Second)
	// At least one delivery needed the 0→1 hop (broad sub for family 2
	// lives at broker 2), so wall time includes the injected delay.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("deliveries completed in %v despite 30ms injected latency", elapsed)
	}
	if err := h.WaitConverged(ref, 15*time.Second); err != nil {
		t.Errorf("latency injection disturbed routing state: %v", err)
	}
}
