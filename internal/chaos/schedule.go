package chaos

import (
	"fmt"
	"strings"
	"time"

	"dimprune/internal/dist"
	"dimprune/internal/simnet"
)

// FaultKind enumerates the injectable faults.
type FaultKind int

const (
	// FaultKillRestart kills a broker (WAL frozen mid-state) and restarts
	// it on its pinned address.
	FaultKillRestart FaultKind = iota
	// FaultCutHeal severs one edge (no redial) and later heals it.
	FaultCutHeal
	// FaultBounce drops an edge's connection transiently; the jittered
	// redial loop heals it without harness help.
	FaultBounce
	// FaultPartition cuts every edge crossing a random broker bipartition,
	// then heals them all.
	FaultPartition
	// FaultLatency injects one-way latency on an edge for the step's
	// duration, then clears it. Degradation, not disconnection: the oracle
	// expects no convergence disruption at all.
	FaultLatency
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultKillRestart:
		return "kill-restart"
	case FaultCutHeal:
		return "cut-heal"
	case FaultBounce:
		return "bounce"
	case FaultPartition:
		return "partition"
	case FaultLatency:
		return "latency"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one schedule step.
type Fault struct {
	Kind   FaultKind
	Broker int           // FaultKillRestart
	Edge   simnet.Edge   // FaultCutHeal, FaultBounce, FaultLatency
	Edges  []simnet.Edge // FaultPartition: the cut set
	Delay  time.Duration // FaultLatency
}

// String renders one step for logs and failure messages.
func (f Fault) String() string {
	switch f.Kind {
	case FaultKillRestart:
		return fmt.Sprintf("kill-restart b%d", f.Broker)
	case FaultCutHeal, FaultBounce:
		return fmt.Sprintf("%s b%d-b%d", f.Kind, f.Edge.A, f.Edge.B)
	case FaultPartition:
		parts := make([]string, len(f.Edges))
		for i, e := range f.Edges {
			parts[i] = fmt.Sprintf("b%d-b%d", e.A, e.B)
		}
		return "partition " + strings.Join(parts, ",")
	case FaultLatency:
		return fmt.Sprintf("latency b%d-b%d %v", f.Edge.A, f.Edge.B, f.Delay)
	default:
		return f.Kind.String()
	}
}

// Schedule is a seeded fault sequence over one topology.
type Schedule struct {
	Seed  int64
	Steps []Fault
}

// GenSchedule draws a deterministic fault schedule for the given topology:
// steps faults over the named edge set, every choice (kind, target,
// partition boundary, latency magnitude) from one seeded stream. The same
// (seed, edges, steps) triple always yields the same schedule — chaos runs
// replay exactly, and CI pins seeds.
func GenSchedule(seed int64, edges []simnet.Edge, steps int) Schedule {
	rng := dist.New(uint64(seed))
	n := 0
	for _, e := range edges {
		if e.A >= n {
			n = e.A + 1
		}
		if e.B >= n {
			n = e.B + 1
		}
	}
	sc := Schedule{Seed: seed, Steps: make([]Fault, 0, steps)}
	for len(sc.Steps) < steps {
		var f Fault
		switch FaultKind(rng.Intn(5)) {
		case FaultKillRestart:
			f = Fault{Kind: FaultKillRestart, Broker: rng.Intn(n)}
		case FaultCutHeal:
			f = Fault{Kind: FaultCutHeal, Edge: edges[rng.Intn(len(edges))]}
		case FaultBounce:
			f = Fault{Kind: FaultBounce, Edge: edges[rng.Intn(len(edges))]}
		case FaultPartition:
			f = Fault{Kind: FaultPartition, Edges: partitionEdges(rng, n, edges)}
			if len(f.Edges) == 0 {
				continue // degenerate bipartition; redraw
			}
		case FaultLatency:
			f = Fault{
				Kind:  FaultLatency,
				Edge:  edges[rng.Intn(len(edges))],
				Delay: time.Duration(rng.IntRange(1, 20)) * time.Millisecond,
			}
		}
		sc.Steps = append(sc.Steps, f)
	}
	return sc
}

// partitionEdges draws a random bipartition of the brokers and returns
// the edges crossing it — on a tree, cutting them splits the overlay into
// exactly the two sides.
func partitionEdges(rng *dist.RNG, n int, edges []simnet.Edge) []simnet.Edge {
	side := make([]bool, n)
	for i := range side {
		side[i] = rng.Bool(0.5)
	}
	var cut []simnet.Edge
	for _, e := range edges {
		if side[e.A] != side[e.B] {
			cut = append(cut, e)
		}
	}
	if len(cut) == len(edges) {
		// Every edge crossing means one side is all leaves of the other —
		// legal, but keep at least one edge intact so the step exercises
		// partial connectivity rather than total isolation.
		cut = cut[1:]
	}
	return cut
}
