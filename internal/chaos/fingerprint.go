package chaos

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/core"
	"dimprune/internal/simnet"
	"dimprune/internal/transport"
)

// BrokerPrint is one broker's routing fingerprint: its table split into
// local and remote entries, plus the advertisement set it holds toward
// each neighbor (by the neighbor's broker ID, so simulated and networked
// overlays — whose link numbering histories differ — compare directly).
type BrokerPrint struct {
	Local   []uint64
	Remote  []uint64
	Adverts map[string][]uint64
}

// Fingerprint maps broker ID → routing fingerprint for a whole overlay.
type Fingerprint map[string]BrokerPrint

// Equal reports whether two fingerprints are identical.
func (f Fingerprint) Equal(o Fingerprint) bool { return reflect.DeepEqual(f, o) }

// Diff renders a human-oriented summary of where two fingerprints differ —
// the failure message of a convergence oracle.
func (f Fingerprint) Diff(o Fingerprint) string {
	var b strings.Builder
	ids := make(map[string]bool)
	for id := range f {
		ids[id] = true
	}
	for id := range o {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		a, aok := f[id]
		c, cok := o[id]
		switch {
		case !aok:
			fmt.Fprintf(&b, "%s: only in other\n", id)
		case !cok:
			fmt.Fprintf(&b, "%s: only in this\n", id)
		case !reflect.DeepEqual(a, c):
			fmt.Fprintf(&b, "%s: local %v vs %v, remote %v vs %v, adverts %v vs %v\n",
				id, a.Local, c.Local, a.Remote, c.Remote, a.Adverts, c.Adverts)
		}
	}
	if b.Len() == 0 {
		return "(identical)"
	}
	return b.String()
}

// Fingerprint captures the live overlay's routing fingerprint. A broker
// that is down yields an error; a link still redialing simply misses from
// its endpoints' advert maps — either way the convergence wait treats the
// mismatch against the reference as "not yet".
func (h *Harness) Fingerprint() (Fingerprint, error) {
	h.mu.Lock()
	servers := append([]*transport.Server(nil), h.servers...)
	h.mu.Unlock()
	fp := make(Fingerprint, len(servers))
	for i, s := range servers {
		if s == nil {
			return nil, fmt.Errorf("chaos: broker %d is down", i)
		}
		local, remote := s.Broker().EntryIDs()
		adverts := make(map[string][]uint64)
		for name, link := range s.PeerLinkIDs() {
			ids, err := s.Broker().AdvertisedIDs(link)
			if err != nil {
				continue // link died between the two snapshots; retry resolves
			}
			adverts[name] = ids
		}
		fp[brokerID(i)] = BrokerPrint{Local: local, Remote: remote, Adverts: adverts}
	}
	return fp, nil
}

// ReferenceFingerprint builds the ground truth a healed overlay must
// converge to: a fresh deterministic simulation (simnet) of the same
// topology, brokers, and subscription population, fingerprinted the same
// way. Subscriptions are cloned — the simulation's pruning must not share
// tree nodes with the live overlay under test.
func ReferenceFingerprint(cfg Config, pop []PlacedSub) (Fingerprint, error) {
	n := 0
	for _, e := range cfg.Edges {
		if e.A >= n {
			n = e.A + 1
		}
		if e.B >= n {
			n = e.B + 1
		}
	}
	dim := cfg.Dimension
	if dim == 0 {
		dim = core.DimNetwork
	}
	brokers := make([]*broker.Broker, n)
	for i := range brokers {
		b, err := broker.New(broker.Config{
			ID:              brokerID(i),
			Dimension:       dim,
			ObserveEvents:   true,
			DisableCovering: cfg.DisableCovering,
		})
		if err != nil {
			return nil, err
		}
		brokers[i] = b
	}
	net, err := simnet.NewNetwork(brokers, cfg.Edges)
	if err != nil {
		return nil, err
	}
	for _, p := range pop {
		if err := net.SubscribeAt(p.Broker, p.Sub.Clone()); err != nil {
			return nil, err
		}
	}
	fp := make(Fingerprint, n)
	for i := 0; i < n; i++ {
		local, remote := brokers[i].EntryIDs()
		adverts := make(map[string][]uint64)
		for j, link := range net.NeighborLinks(i) {
			ids, err := brokers[i].AdvertisedIDs(link)
			if err != nil {
				return nil, err
			}
			adverts[brokerID(j)] = ids
		}
		fp[brokerID(i)] = BrokerPrint{Local: local, Remote: remote, Adverts: adverts}
	}
	return fp, nil
}

// WaitConverged polls the live overlay's fingerprint until it equals the
// reference or the deadline passes, returning the final diff on failure.
// This is the oracle's post-heal assertion: after every heal, routing
// tables and advertisement sets must return to exactly what a freshly
// built overlay would hold.
func (h *Harness) WaitConverged(ref Fingerprint, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last Fingerprint
	var lastErr error
	for {
		fp, err := h.Fingerprint()
		if err == nil && fp.Equal(ref) {
			return nil
		}
		last, lastErr = fp, err
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		return fmt.Errorf("chaos: overlay never converged: %w", lastErr)
	}
	return fmt.Errorf("chaos: overlay never converged; diff:\n%s", last.Diff(ref))
}
