package chaos

import (
	"time"

	"dimprune/internal/transport"
	"dimprune/internal/wire"
)

// delayConn wraps a peer-link connection with injected one-way latency:
// each Send sleeps the link's current delay before the frame leaves, so
// frames from broker from toward addr arrive late but in order — a slow
// link, not a lossy one. The delay is read from the harness per send, so
// SetLinkLatency changes apply to live connections immediately. Recv is
// untouched: latency injection is directional by design (inject both
// orientations of an edge to slow it symmetrically).
//
// The sleep runs on the link's outbox writer goroutine, which is exactly
// the semantics wanted: that one link backs up while every other link and
// the broker's matching pipeline run at full speed.
type delayConn struct {
	transport.Conn
	h    *Harness
	from int
	addr string
}

func (c *delayConn) Send(f wire.Frame) error {
	if d := c.h.linkDelay(c.from, c.addr); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Send(f)
}
