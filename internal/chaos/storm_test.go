package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimprune/internal/simnet"
	"dimprune/internal/subscription"
)

// subscriptionSub pairs a churn-toggled subscription with its ID so the
// churn goroutine never has to construct one (and thus never t.Fatals).
type subscriptionSub struct {
	id  uint64
	sub *subscription.Subscription
}

// TestChaosStorm races the control and data planes against the fault
// plane: publisher goroutines pump events and a churn goroutine toggles
// covering-family members (forcing promote/demote traffic) while a seeded
// kill/partition/cut/heal schedule runs. Per-step convergence cannot be
// asserted here — the population itself is in motion — so the oracle is
// the post-storm state: once the workload quiesces, every broker's remote
// tables and per-link advertisement sets must exactly equal a freshly
// built overlay holding the final population, and post-heal delivery must
// be exact. Run under -race in CI.
func TestChaosStorm(t *testing.T) {
	base := CaptureLeakBaseline()
	edges := simnet.TreeEdges(6, 2)
	cfg := Config{Edges: edges}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			h.Close()
		}
	}()
	chaosPopulation(t, h)
	ref, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(ref, 20*time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	n := h.NumBrokers()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var nextID atomic.Uint64
	nextID.Store(500_000)
	h.Sink().Mark(1)

	// Racing publishers: events may be lost during faults (ephemeral), but
	// every delivery that does happen must be a true match — checked below.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				at := (g + i) % n
				if h.Alive(at) {
					_ = h.PublishAt(at, famEvent(nextID.Add(1), i%n, 5))
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(g)
	}

	// Covering churn: repeatedly retract and re-register narrow family
	// members, each toggle forcing a demote→promote→demote wave through
	// the forest while links are dying. Records stay consistent because
	// SubscribeAt/UnsubscribeAt only update them on success. (Subs are
	// prebuilt here: mustSub may t.Fatal, which is off-limits in goroutines.)
	narrowByK := make([]*subscriptionSub, n)
	for k := 0; k < n; k++ {
		narrowByK[k] = &subscriptionSub{
			id:  uint64(1000 + k*10 + 2),
			sub: mustSub(t, uint64(1000+k*10+2), fmt.Sprintf("fam%d", k), fmt.Sprintf("f%d <= 10", k)),
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % n
			at := (k + 1) % n
			if err := h.UnsubscribeAt(at, narrowByK[k].id); err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			time.Sleep(2 * time.Millisecond)
			// Re-register before moving on; the broker may be mid-restart,
			// so retry until it takes (or the storm ends — the final
			// reference is computed from the recorded population either way).
			for h.SubscribeAt(at, narrowByK[k].sub) != nil {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	steps := 6
	if testing.Short() {
		steps = 3
	}
	sc := GenSchedule(424242, edges, steps)
	for i, f := range sc.Steps {
		if err := h.Apply(f, func() { time.Sleep(20 * time.Millisecond) }); err != nil {
			t.Fatalf("storm step %d (%s): %v", i, f, err)
		}
	}

	close(stop)
	wg.Wait()

	// Quiesce: the final population (whatever the churn left) is the
	// ground truth the healed overlay must reconverge to — exactly.
	finalRef, err := ReferenceFingerprint(cfg, h.Population())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(finalRef, 60*time.Second); err != nil {
		t.Fatalf("post-storm convergence: %v", err)
	}

	// Post-heal exactness, same contract as the oracle table.
	h.Sink().Mark(2)
	var want []DeliveryKey
	for k := 0; k < n; k++ {
		m := famEvent(nextID.Add(1), k, 5)
		want = append(want, expectedDeliveries(h.Population(), m)...)
		if err := h.PublishAt((k+2)%n, m); err != nil {
			t.Fatalf("post-storm publish: %v", err)
		}
	}
	waitDelivered(t, h.Sink(), want, 20*time.Second)
	time.Sleep(50 * time.Millisecond)
	wantSet := make(map[DeliveryKey]bool, len(want))
	for _, k := range want {
		wantSet[k] = true
	}
	for key, cnt := range h.Sink().Counts() {
		switch h.Sink().Phase(key) {
		case 2:
			if !wantSet[key] {
				t.Errorf("spurious post-storm delivery %+v (x%d)", key, cnt)
			} else if cnt != 1 {
				t.Errorf("post-storm delivery %+v duplicated: count=%d", key, cnt)
			}
		case 1:
			if !matchesStormDelivery(key) {
				t.Errorf("storm delivery %+v to a subscription family that never existed", key)
			}
		}
	}

	h.Close()
	closed = true
	if err := base.Check(15 * time.Second); err != nil {
		t.Error(err)
	}
}

// matchesStormDelivery validates a during-storm delivery key against the
// static ID scheme: only IDs the test ever subscribed may appear. (The
// churn means a sub may have been live at delivery time but gone now, so
// placement is checked against the scheme, not the final population.)
func matchesStormDelivery(key DeliveryKey) bool {
	id := key.SubID
	return (id >= 1000 && id < 2000) || (id >= 2000 && id < 3000)
}
