package chaos

import (
	"sync"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/metrics"
)

// DeliveryKey identifies one (broker, subscription, event) delivery.
type DeliveryKey struct {
	Broker int
	SubID  uint64
	MsgID  uint64
}

// Sink collects every local delivery of the overlay under test, with
// phase marking and end-to-end latency accounting. Events published
// through Harness.PublishAt are stamped; a delivery of a stamped event
// records publish-to-deliver wall time in the e2e histogram.
type Sink struct {
	e2e metrics.Histogram

	mu       sync.Mutex
	counts   map[DeliveryKey]int
	phase    map[DeliveryKey]int // phase of the key's message, stamped at publish
	mark     int                 // current phase label
	pub      map[uint64]time.Time
	pubPhase map[uint64]int
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{
		counts:   make(map[DeliveryKey]int),
		phase:    make(map[DeliveryKey]int),
		pub:      make(map[uint64]time.Time),
		pubPhase: make(map[uint64]int),
	}
}

// Mark sets the current phase label; events PUBLISHED from now on carry
// it. The phase travels with the message, not the delivery: an event
// published during a fault window but delivered after the heal still
// counts against the fault window's (looser) exactness rules.
func (s *Sink) Mark(phase int) {
	s.mu.Lock()
	s.mark = phase
	s.mu.Unlock()
}

// published stamps an event's publish time and current phase.
func (s *Sink) published(msgID uint64) {
	now := time.Now()
	s.mu.Lock()
	s.pub[msgID] = now
	s.pubPhase[msgID] = s.mark
	s.mu.Unlock()
}

// deliver records one local delivery (the harness's onDeliver hook).
func (s *Sink) deliver(atBroker int, d broker.Delivery) {
	now := time.Now()
	k := DeliveryKey{Broker: atBroker, SubID: d.SubID, MsgID: d.Msg.ID}
	s.mu.Lock()
	if s.counts[k] == 0 {
		s.phase[k] = s.pubPhase[k.MsgID]
	}
	s.counts[k]++
	t, ok := s.pub[k.MsgID]
	s.mu.Unlock()
	if ok {
		s.e2e.Observe(now.Sub(t))
	}
}

// Counts snapshots the delivery multiset.
func (s *Sink) Counts() map[DeliveryKey]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[DeliveryKey]int, len(s.counts))
	for k, c := range s.counts {
		out[k] = c
	}
	return out
}

// Count returns one key's delivery count.
func (s *Sink) Count(k DeliveryKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[k]
}

// Phase returns the publish-phase tag of k's message (0 when undelivered
// or when the message was not published through the harness).
func (s *Sink) Phase(k DeliveryKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phase[k]
}

// Total returns the total number of deliveries observed.
func (s *Sink) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, c := range s.counts {
		total += c
	}
	return total
}

// E2E snapshots the end-to-end latency histogram.
func (s *Sink) E2E() metrics.HistogramSnapshot { return s.e2e.Snapshot() }
