package chaos

import (
	"fmt"
	"time"
)

// Apply executes one fault step end to end: inject the fault, run the
// caller's during hook (traffic, covering churn, or just dwell time)
// while the fault is active, then heal. Convergence is the caller's
// assertion — run WaitConverged against a ReferenceFingerprint after
// each Apply.
func (h *Harness) Apply(f Fault, during func()) error {
	if during == nil {
		during = func() {}
	}
	switch f.Kind {
	case FaultKillRestart:
		h.Kill(f.Broker)
		during()
		return h.Restart(f.Broker)
	case FaultCutHeal:
		h.CutEdge(f.Edge.A, f.Edge.B)
		during()
		return h.HealEdge(f.Edge.A, f.Edge.B)
	case FaultBounce:
		h.BounceEdge(f.Edge.A, f.Edge.B)
		during()
		return nil
	case FaultPartition:
		for _, e := range f.Edges {
			h.CutEdge(e.A, e.B)
		}
		during()
		for _, e := range f.Edges {
			if err := h.HealEdge(e.A, e.B); err != nil {
				return err
			}
		}
		return nil
	case FaultLatency:
		h.SetLinkLatency(f.Edge.A, f.Edge.B, f.Delay)
		during()
		h.SetLinkLatency(f.Edge.A, f.Edge.B, 0)
		return nil
	default:
		return fmt.Errorf("chaos: unknown fault kind %v", f.Kind)
	}
}

// RunSchedule drives a whole schedule: each step is applied, dwelled via
// during (passed the step index), healed, and then the overlay must
// reconverge to ref within convergeTimeout before the next step fires —
// the oracle's core loop.
func (h *Harness) RunSchedule(sc Schedule, ref Fingerprint, during func(step int), convergeTimeout time.Duration) error {
	for i, f := range sc.Steps {
		var hook func()
		if during != nil {
			i := i
			hook = func() { during(i) }
		}
		if err := h.Apply(f, hook); err != nil {
			return fmt.Errorf("chaos: seed %d step %d (%s): %w", sc.Seed, i, f, err)
		}
		if err := h.WaitConverged(ref, convergeTimeout); err != nil {
			return fmt.Errorf("chaos: seed %d step %d (%s): %w", sc.Seed, i, f, err)
		}
	}
	return nil
}
