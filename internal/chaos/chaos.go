// Package chaos is the overlay's fault-injection plane: a seeded,
// deterministic driver that kills and restarts brokers (riding the WAL),
// cuts and heals peer links, partitions the overlay, and injects per-link
// latency — against a live networked overlay on an arbitrary acyclic
// topology — and the convergence oracles that make those runs assertions
// rather than demos.
//
// The harness owns one Server per broker, with pinned listen addresses so
// a restarted broker comes back where its neighbors' redial loops are
// already knocking. Local subscriptions are recorded and re-registered on
// restart (an ephemeral subscription does not survive its broker; the
// population under test does). Faults are driven by a Schedule generated
// from a seed, so every run replays exactly.
//
// Convergence is judged by fingerprint: each broker's routing table
// (local/remote entry IDs) and per-neighbor advertisement sets, compared
// against a freshly built deterministic simulation of the same topology
// and population (see fingerprint.go). Delivery exactness and latency
// accounting run through Sink.
package chaos

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/core"
	"dimprune/internal/event"
	"dimprune/internal/simnet"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
	"dimprune/internal/wal"
)

// Config assembles a chaos harness.
type Config struct {
	// Edges is the acyclic overlay topology by broker index (see
	// simnet.LineEdges and friends). The broker count is the highest index
	// plus one. Each edge's A side dials.
	Edges []simnet.Edge
	// Dimension is every broker's pruning dimension (default DimNetwork).
	Dimension core.Dimension
	// DisableCovering turns the covering plane off on every broker.
	DisableCovering bool
	// WALRoot, when set, gives every broker a WAL under WALRoot/b<i> —
	// kills freeze the log mid-state (wal.Crash) and restarts recover it,
	// so durable subscriptions survive the chaos.
	WALRoot string
	// Logf, when set, receives harness and peer lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// edgeKey identifies an edge in fault maps, in dial orientation.
type edgeKey struct{ a, b int }

// Harness is a running networked overlay under fault injection. Methods
// are safe for concurrent use except Close.
type Harness struct {
	cfg Config
	n   int

	sink *Sink

	mu      sync.Mutex
	servers []*transport.Server
	addrs   []string // pinned peer-listener addresses
	wals    []*wal.Store
	alive   []bool
	subs    [][]*subscription.Subscription // live local subs per broker
	placed  []PlacedSub                    // global subscribe order (reference replay)
	peers   map[edgeKey]*transport.Peer
	cut     map[edgeKey]bool
	// delay[i] maps a dial address to the injected one-way latency of
	// frames broker i sends toward it; delayConn reads it per Send, so a
	// change applies to live links without redialing.
	delay []map[string]time.Duration
}

// PlacedSub is one subscription and the broker it lives at.
type PlacedSub struct {
	Broker int
	Sub    *subscription.Subscription
}

// New builds the overlay and connects every edge. The caller must Close.
func New(cfg Config) (*Harness, error) {
	n := 0
	for _, e := range cfg.Edges {
		if e.A < 0 || e.B < 0 {
			return nil, fmt.Errorf("chaos: negative broker index in edge %+v", e)
		}
		if e.A >= n {
			n = e.A + 1
		}
		if e.B >= n {
			n = e.B + 1
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("chaos: topology needs >= 2 brokers, got %d", n)
	}
	if cfg.Dimension == 0 {
		cfg.Dimension = core.DimNetwork
	}
	h := &Harness{
		cfg:     cfg,
		n:       n,
		sink:    NewSink(),
		servers: make([]*transport.Server, n),
		addrs:   make([]string, n),
		wals:    make([]*wal.Store, n),
		alive:   make([]bool, n),
		subs:    make([][]*subscription.Subscription, n),
		peers:   make(map[edgeKey]*transport.Peer),
		cut:     make(map[edgeKey]bool),
		delay:   make([]map[string]time.Duration, n),
	}
	for i := 0; i < n; i++ {
		h.delay[i] = make(map[string]time.Duration)
		if err := h.startServer(i, ""); err != nil {
			h.Close()
			return nil, err
		}
	}
	for _, e := range cfg.Edges {
		if err := h.dialEdge(e.A, e.B, 5*time.Second); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// startServer builds broker i's server and starts its peer listener on
// addr ("" = fresh ephemeral port; otherwise the pinned restart address).
// Callers must not hold h.mu for the first start; Restart passes the
// pinned address.
func (h *Harness) startServer(i int, addr string) error {
	b, err := broker.New(broker.Config{
		ID:              brokerID(i),
		Dimension:       h.cfg.Dimension,
		ObserveEvents:   true,
		DisableCovering: h.cfg.DisableCovering,
	})
	if err != nil {
		return err
	}
	s := transport.NewServer(b, func(d broker.Delivery) { h.sink.deliver(i, d) })
	if h.cfg.Logf != nil {
		logf, id := h.cfg.Logf, brokerID(i)
		s.SetLogf(func(format string, args ...any) {
			logf("%s: "+format, append([]any{id}, args...)...)
		})
	}
	s.SetPeerDialer(h.dialerFor(i))
	if h.cfg.WALRoot != "" {
		w, err := wal.Open(wal.Options{Dir: filepath.Join(h.cfg.WALRoot, brokerID(i))})
		if err != nil {
			s.Shutdown()
			return err
		}
		s.SetWAL(w)
		h.mu.Lock()
		h.wals[i] = w
		h.mu.Unlock()
	}
	listen := addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	// A restart reuses the pinned address; the dead listener's port can
	// linger briefly, so retry rather than fail the whole scenario.
	var got string
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err = s.Listen(listen)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			s.Shutdown()
			return fmt.Errorf("chaos: broker %d listen %s: %w", i, listen, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.mu.Lock()
	h.servers[i] = s
	h.addrs[i] = got
	h.alive[i] = true
	h.mu.Unlock()
	return nil
}

// dialEdge establishes edge a→b, retrying until the deadline: right after
// a heal or restart the remote can still hold stale membership from the
// dead link and refuse the handshake until its detach completes.
func (h *Harness) dialEdge(a, b int, timeout time.Duration) error {
	h.mu.Lock()
	s := h.servers[a]
	addr := h.addrs[b]
	h.mu.Unlock()
	if s == nil {
		return fmt.Errorf("chaos: edge %d-%d: broker %d is down", a, b, a)
	}
	deadline := time.Now().Add(timeout)
	for {
		p, err := s.DialPeer(addr)
		if err == nil {
			h.mu.Lock()
			h.peers[edgeKey{a, b}] = p
			delete(h.cut, edgeKey{a, b})
			h.mu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: edge %d-%d: %w", a, b, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func brokerID(i int) string { return "b" + strconv.Itoa(i) }

// brokerIndex inverts brokerID; -1 for an unknown ID.
func brokerIndex(id string) int {
	if !strings.HasPrefix(id, "b") {
		return -1
	}
	i, err := strconv.Atoi(id[1:])
	if err != nil {
		return -1
	}
	return i
}

// NumBrokers returns the broker count.
func (h *Harness) NumBrokers() int { return h.n }

// Edges returns the configured topology.
func (h *Harness) Edges() []simnet.Edge {
	return append([]simnet.Edge(nil), h.cfg.Edges...)
}

// Server returns broker i's current server (nil while killed).
func (h *Harness) Server(i int) *transport.Server {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.servers[i]
}

// ClientAddr returns broker i's peer-listener address (clients in tests
// use dedicated client listeners; see Server().ListenClients).
func (h *Harness) Addr(i int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addrs[i]
}

// Alive reports whether broker i is currently up.
func (h *Harness) Alive(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alive[i]
}

// Sink returns the delivery sink shared by every broker.
func (h *Harness) Sink() *Sink { return h.sink }

// SubscribeAt registers a local subscription at broker i and records it:
// if i is later killed, the restart re-registers it (the population under
// test survives the fault; the broker's ephemeral table does not).
func (h *Harness) SubscribeAt(i int, s *subscription.Subscription) error {
	h.mu.Lock()
	srv := h.servers[i]
	h.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("chaos: subscribe at dead broker %d", i)
	}
	if _, err := srv.Subscribe(s); err != nil {
		return err
	}
	h.mu.Lock()
	h.subs[i] = append(h.subs[i], s)
	h.placed = append(h.placed, PlacedSub{Broker: i, Sub: s})
	h.mu.Unlock()
	return nil
}

// UnsubscribeAt retracts a local subscription at broker i.
func (h *Harness) UnsubscribeAt(i int, id uint64) error {
	h.mu.Lock()
	srv := h.servers[i]
	h.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("chaos: unsubscribe at dead broker %d", i)
	}
	if err := srv.Unsubscribe(id); err != nil {
		return err
	}
	h.mu.Lock()
	live := h.subs[i][:0]
	for _, s := range h.subs[i] {
		if s.ID != id {
			live = append(live, s)
		}
	}
	h.subs[i] = live
	placed := h.placed[:0]
	for _, p := range h.placed {
		if p.Sub.ID != id {
			placed = append(placed, p)
		}
	}
	h.placed = placed
	h.mu.Unlock()
	return nil
}

// PublishAt injects an event at broker i, stamping its publish time for
// end-to-end latency accounting. Publishing at a dead broker is an error —
// schedules avoid it; workload drivers racing a kill should tolerate it.
func (h *Harness) PublishAt(i int, m *event.Message) error {
	h.mu.Lock()
	srv := h.servers[i]
	h.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("chaos: publish at dead broker %d", i)
	}
	h.sink.published(m.ID)
	srv.Publish(m)
	return nil
}

// Population returns the current subscription placement in global
// subscribe order — the reference overlay replays it.
func (h *Harness) Population() []PlacedSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PlacedSub(nil), h.placed...)
}

// Kill abruptly stops broker i: connections die, neighbors drop its
// entries and begin redialing, and its WAL (if any) is frozen mid-state
// exactly as a process kill would leave it. Local subscriptions are
// remembered for Restart.
func (h *Harness) Kill(i int) {
	h.mu.Lock()
	srv := h.servers[i]
	w := h.wals[i]
	h.servers[i] = nil
	h.wals[i] = nil
	h.alive[i] = false
	// The dead broker's own dialed peers die with it (Shutdown stops their
	// redial loops); drop the handles so Restart re-dials fresh. Handles
	// of live neighbors dialing INTO i stay — those loops keep knocking on
	// the pinned address and heal the edge when i returns.
	for k := range h.peers {
		if k.a == i {
			delete(h.peers, k)
		}
	}
	h.mu.Unlock()
	if srv != nil {
		srv.Shutdown()
	}
	if w != nil {
		w.Crash()
	}
	h.logf("killed %s", brokerID(i))
}

// Restart brings a killed broker back on its pinned address: reopen the
// WAL, rebuild the broker and server, re-register the recorded local
// subscriptions, and re-dial the edges this broker owns. Edges owned by
// live neighbors heal through their redial loops.
func (h *Harness) Restart(i int) error {
	h.mu.Lock()
	if h.alive[i] {
		h.mu.Unlock()
		return fmt.Errorf("chaos: restart of live broker %d", i)
	}
	addr := h.addrs[i]
	subs := append([]*subscription.Subscription(nil), h.subs[i]...)
	h.mu.Unlock()
	if err := h.startServer(i, addr); err != nil {
		return err
	}
	h.mu.Lock()
	srv := h.servers[i]
	h.mu.Unlock()
	for _, s := range subs {
		if _, err := srv.Subscribe(s); err != nil {
			return fmt.Errorf("chaos: restart %d: resubscribe %d: %w", i, s.ID, err)
		}
	}
	for _, e := range h.cfg.Edges {
		if e.A != i && e.B != i {
			continue
		}
		h.mu.Lock()
		cut := h.cut[edgeKey{e.A, e.B}]
		otherAlive := h.alive[e.A] && h.alive[e.B]
		h.mu.Unlock()
		if cut || !otherAlive {
			continue // healed explicitly later, or waits for the other end
		}
		if e.A == i {
			if err := h.dialEdge(e.A, e.B, 10*time.Second); err != nil {
				return err
			}
		}
		// e.B == i: the A side's redial loop finds the pinned address.
	}
	h.logf("restarted %s", brokerID(i))
	return nil
}

// CutEdge severs one overlay edge and keeps it severed: the dialing side
// stops redialing until HealEdge. Both endpoints drop the routing entries
// learned through the link and retract them onward — a partition is a set
// of cut edges.
func (h *Harness) CutEdge(a, b int) {
	h.mu.Lock()
	p := h.peers[edgeKey{a, b}]
	delete(h.peers, edgeKey{a, b})
	h.cut[edgeKey{a, b}] = true
	h.mu.Unlock()
	if p != nil {
		p.Close()
	}
	h.logf("cut edge %s-%s", brokerID(a), brokerID(b))
}

// HealEdge re-establishes a cut edge (handshake, resync).
func (h *Harness) HealEdge(a, b int) error {
	h.mu.Lock()
	alive := h.alive[a] && h.alive[b]
	h.mu.Unlock()
	if !alive {
		h.mu.Lock()
		delete(h.cut, edgeKey{a, b}) // Restart re-dials it when both return
		h.mu.Unlock()
		return nil
	}
	err := h.dialEdge(a, b, 10*time.Second)
	if err == nil {
		h.logf("healed edge %s-%s", brokerID(a), brokerID(b))
	}
	return err
}

// BounceEdge drops an edge's live connection without stopping its redial
// loop — a transient link loss that heals itself through the jittered
// backoff path.
func (h *Harness) BounceEdge(a, b int) {
	h.mu.Lock()
	p := h.peers[edgeKey{a, b}]
	h.mu.Unlock()
	if p != nil {
		p.Bounce()
		h.logf("bounced edge %s-%s", brokerID(a), brokerID(b))
	}
}

// SetLinkLatency injects a fixed one-way latency on frames broker a sends
// toward broker b (0 clears it). Applies to the live connection
// immediately — delayConn reads the current value per send.
func (h *Harness) SetLinkLatency(a, b int, d time.Duration) {
	h.mu.Lock()
	addr := h.addrs[b]
	if d > 0 {
		h.delay[a][addr] = d
	} else {
		delete(h.delay[a], addr)
	}
	h.mu.Unlock()
}

// linkDelay reads the injected latency for frames broker i sends to addr.
func (h *Harness) linkDelay(i int, addr string) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delay[i][addr]
}

// dialerFor wraps the default peer dial with the harness's latency
// injection for broker i's outgoing links.
func (h *Harness) dialerFor(i int) func(addr string) (transport.Conn, error) {
	return func(addr string) (transport.Conn, error) {
		c, err := transport.Dial(addr)
		if err != nil {
			return nil, err
		}
		return &delayConn{Conn: c, h: h, from: i, addr: addr}, nil
	}
}

// Close shuts every live broker down and closes the WALs cleanly.
func (h *Harness) Close() {
	h.mu.Lock()
	servers := append([]*transport.Server(nil), h.servers...)
	wals := append([]*wal.Store(nil), h.wals...)
	for i := range h.servers {
		h.servers[i] = nil
		h.wals[i] = nil
		h.alive[i] = false
	}
	h.mu.Unlock()
	for _, s := range servers {
		if s != nil {
			s.Shutdown()
		}
	}
	for _, w := range wals {
		if w != nil {
			_ = w.Close()
		}
	}
}

func (h *Harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf("chaos: "+format, args...)
	}
}
