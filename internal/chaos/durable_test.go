package chaos

import (
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/simnet"
	"dimprune/internal/transport"
)

// dialDurable attaches a fresh client session to broker i and opens the
// named durable subscription on it.
func dialDurable(t *testing.T, h *Harness, i int, subscriber, name, expr string) (*transport.Client, *transport.DurableHandle) {
	t.Helper()
	srv := h.Server(i)
	if srv == nil {
		t.Fatalf("broker %d is down", i)
	}
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewClient(subscriber, conn)
	d, err := c.DurableSubscribeExpr(name, expr)
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	// The subscribe frame is asynchronous: wait until the server has
	// registered the durable, or a direct srv.Publish can race ahead of it
	// and the event never reaches the WAL.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().LocalSubs == 0 {
		if time.Now().After(deadline) {
			c.Close()
			t.Fatal("durable subscription never registered server-side")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c, d
}

// drainDurable collects durable deliveries until the channel stays silent
// for the given window, returning event-ID → delivery count and the
// highest sequence seen.
func drainDurable(d *transport.DurableHandle, quiet time.Duration) (map[uint64]int, uint64) {
	got := make(map[uint64]int)
	var lastSeq uint64
	for {
		select {
		case ev, ok := <-d.C():
			if !ok {
				return got, lastSeq
			}
			got[ev.Msg.ID]++
			if ev.Seq > lastSeq {
				lastSeq = ev.Seq
			}
		case <-time.After(quiet):
			return got, lastSeq
		}
	}
}

// TestDurableSurvivesChaosKill is the durable delivery oracle under
// chaos: a WAL-backed durable subscription at one end of the overlay,
// its broker killed mid-backlog (WAL frozen, acks possibly unsynced),
// then restarted. Contract: duplicates allowed, losses never — every
// unacked matching event must replay, and events from the far side of
// the overlay must flow again once the heal completes.
func TestDurableSurvivesChaosKill(t *testing.T) {
	cfg := Config{Edges: simnet.LineEdges(3), WALRoot: t.TempDir()}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	c1, d1 := dialDurable(t, h, 0, "eve", "audit", "d0 >= 0")
	// Backlog: five matching events at the durable's home broker.
	for id := uint64(1); id <= 5; id++ {
		if err := h.PublishAt(0, event.Build(id).Int("d0", int64(id)).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	seqOf := make(map[uint64]uint64)
	deadline := time.Now().Add(5 * time.Second)
	for len(seqOf) < 5 && time.Now().Before(deadline) {
		select {
		case ev := <-d1.C():
			seqOf[ev.Msg.ID] = ev.Seq
		case <-time.After(100 * time.Millisecond):
		}
	}
	if len(seqOf) < 5 {
		t.Fatalf("pre-kill delivery incomplete: %v", seqOf)
	}
	// Ack only through event 2; 3..5 stay outstanding across the crash.
	if err := d1.Ack(seqOf[2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the ack land in the WAL

	h.Kill(0)
	c1.Close()
	if err := h.Restart(0); err != nil {
		t.Fatal(err)
	}

	c3, d3 := dialDurable(t, h, 0, "eve", "audit", "d0 >= 0")
	defer c3.Close()
	replay, lastSeq := drainDurable(d3, 500*time.Millisecond)
	// Losses never: everything past the ack cursor must replay.
	for id := uint64(3); id <= 5; id++ {
		if replay[id] == 0 {
			t.Errorf("post-crash replay lost event %d (got %v)", id, replay)
		}
	}
	// No spurious events: only the original five may appear (acked ones
	// may legitimately replay if the crash beat the ack's sync).
	for id := range replay {
		if id < 1 || id > 5 {
			t.Errorf("post-crash replay invented event %d", id)
		}
	}

	// The durable must also hear the far side of the overlay again: the
	// restart re-advertised it, so an event published at broker 2 routes
	// across two hops into the WAL. Poll-publish with fresh IDs until one
	// lands (the advert may still be propagating).
	heard := false
	for id := uint64(100); id < 140 && !heard; id++ {
		if err := h.PublishAt(2, event.Build(id).Int("d0", 7).Msg()); err != nil {
			t.Fatal(err)
		}
		more, seq := drainDurable(d3, 100*time.Millisecond)
		if seq > lastSeq {
			lastSeq = seq
		}
		for got := range more {
			if got >= 100 {
				heard = true
			}
		}
	}
	if !heard {
		t.Fatal("durable never heard a post-restart event published across the overlay")
	}
	if err := d3.Ack(lastSeq); err != nil {
		t.Fatal(err)
	}
}
