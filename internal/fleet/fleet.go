// Package fleet partitions the subscription space across broker shards and
// scatter/gathers publishes over them — the horizontal axis the paper's
// pruning does not cover: pruning and covering shrink what each hop
// carries, but every broker still matches the full subscription space. A
// fleet Coordinator owns placement (consistent hash ring over subscription
// IDs), forwards each subscription to exactly one shard, and scatters each
// publish only to the shards whose advertised covers can match it, gathering
// and deduping the match results.
//
// Each shard is a full broker (in-process LocalShard or an OS-process
// reached via DialShard/ServeShard) holding its partition as local, exact,
// never-pruned entries. The shard's covering forest advertises only cover
// roots and opaque entries on its coordinator link; the coordinator folds
// those advertisements into one scatter index, so a publish skips every
// shard with no candidate cover — the same O(covers) state PR 6 built for
// the overlay, reused as a partition router. With covering disabled the
// shards advertise everything and the scatter index degenerates to an exact
// replica, trading control-plane size for zero false scatters.
//
// Membership changes rebalance by replaying moved subscriptions
// make-before-break (subscribe on the gaining shard before retracting from
// the losing one); a shard that dies mid-publish is retracted from the ring
// and its retained subscriptions are redistributed to the survivors, so the
// fleet degrades to a smaller exact fleet rather than losing deliveries.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/filter"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// Shard is one partition of the subscription space: a full broker that
// holds its share as local, exact entries. Subscribe, Unsubscribe, and Sync
// return the shard's advertisement frames (subscribe/unsubscribe of cover
// roots) for the coordinator's scatter index; Publish returns the IDs of
// the shard's subscriptions the event matched. Publish may be called
// concurrently with itself; the coordinator serializes control calls.
type Shard interface {
	// Name identifies the shard on the ring; it must be stable across
	// reattach, since placement hashes it.
	Name() string
	// Subscribe places one subscription on the shard.
	Subscribe(s *subscription.Subscription) ([]wire.Frame, error)
	// Unsubscribe retracts one subscription by ID.
	Unsubscribe(id uint64) ([]wire.Frame, error)
	// Publish matches one event against the shard's partition.
	Publish(m *event.Message) ([]uint64, error)
	// Sync replays the shard's full advertisement state (reattach).
	Sync() ([]wire.Frame, error)
	// Close releases the shard's resources.
	Close() error
}

// Stats counts the coordinator's scatter/gather work.
type Stats struct {
	// Publishes is the number of events scattered.
	Publishes uint64
	// ShardPublishes is the total per-shard publish fan-out; divided by
	// Publishes it is the average scatter width.
	ShardPublishes uint64
	// ShardsSkipped counts shard publishes avoided because the scatter
	// index held no candidate cover for the event on that shard.
	ShardsSkipped uint64
	// Deduped counts gathered matches dropped as duplicates (the
	// double-placement window of a rebalance).
	Deduped uint64
	// Moved counts subscriptions replayed by membership rebalances.
	Moved uint64
}

// Coordinator owns a fleet: placement, the scatter index, and the
// originals of every live subscription (the redistribution source when a
// shard dies). All control operations (subscribe, membership) serialize on
// the write lock; publishes share the read lock, so scatters run
// concurrently with each other but never interleave with a rebalance —
// which is what makes the make-before-break window invisible to matching.
type Coordinator struct {
	mu     sync.RWMutex
	shards map[string]Shard
	ring   ring
	index  *filter.Engine                        // advertised covers, all shards
	owner  map[uint64]map[string]struct{}        // advertised ID -> shards advertising it
	subs   map[uint64]*subscription.Subscription // every live subscription's original
	placed map[uint64]string                     // subscription ID -> holding shard

	publishes      atomic.Uint64
	shardPublishes atomic.Uint64
	shardsSkipped  atomic.Uint64
	deduped        atomic.Uint64
	moved          atomic.Uint64
}

// NewCoordinator creates an empty fleet; add shards with AddShard.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		shards: make(map[string]Shard),
		index:  filter.New(),
		owner:  make(map[uint64]map[string]struct{}),
		subs:   make(map[uint64]*subscription.Subscription),
		placed: make(map[uint64]string),
	}
}

// AddShard joins a shard to the fleet: its advertisement state is synced
// into the scatter index (a reattaching shard may carry prior state) and
// every subscription whose ring placement moved onto it is replayed there
// before being retracted from its old holder.
func (c *Coordinator) AddShard(s Shard) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := s.Name()
	if name == "" {
		return errors.New("fleet: shard with empty name")
	}
	if _, dup := c.shards[name]; dup {
		return fmt.Errorf("fleet: shard %q already joined", name)
	}
	frames, err := s.Sync()
	if err != nil {
		return fmt.Errorf("fleet: sync shard %q: %w", name, err)
	}
	c.shards[name] = s
	c.ring.add(name)
	c.applyFramesLocked(name, frames)
	return c.rebalanceLocked()
}

// RemoveShard drains a shard gracefully: its subscriptions are replayed to
// their new ring owners, its advertisements leave the scatter index, and
// the shard is closed.
func (c *Coordinator) RemoveShard(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.shards[name]; !ok {
		return fmt.Errorf("fleet: unknown shard %q", name)
	}
	return c.removeLocked(name)
}

// KillShard retracts a dead shard: like RemoveShard, but the shard is
// assumed unreachable — nothing is sent to it, its advertisements are
// dropped, and its retained subscriptions are redistributed to the
// survivors. The chaos plane and the publish path's failure handling both
// land here.
func (c *Coordinator) KillShard(name string) error {
	return c.RemoveShard(name)
}

// removeLocked drops a shard and redistributes its subscriptions. The
// shard may already be dead, so every call into it is best-effort.
//dimlint:locked
func (c *Coordinator) removeLocked(name string) error {
	sh := c.shards[name]
	delete(c.shards, name)
	c.ring.remove(name)
	c.dropAdvertsLocked(name)
	// Redistribute in ascending ID order so every run of the same failure
	// replays identically.
	ids := make([]uint64, 0, 16)
	for id, holder := range c.placed {
		if holder == name {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var firstErr error
	for _, id := range ids {
		delete(c.placed, id)
		if err := c.placeLocked(id); err != nil && firstErr == nil {
			firstErr = err
		}
		c.moved.Add(1)
	}
	if sh != nil {
		_ = sh.Close() // best-effort: the shard may be the reason we are here
	}
	return firstErr
}

// rebalanceLocked replays every subscription whose ring placement changed,
// make-before-break: subscribe on the gaining shard, then retract from the
// losing one. The gather path dedupes by subscription ID, so the
// double-placement window cannot double-deliver.
//dimlint:locked
func (c *Coordinator) rebalanceLocked() error {
	ids := make([]uint64, 0, len(c.placed))
	for id := range c.placed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var firstErr error
	for _, id := range ids {
		want := c.ring.lookup(id)
		cur := c.placed[id]
		if want == cur || want == "" {
			continue
		}
		delete(c.placed, id)
		if err := c.placeLocked(id); err != nil && firstErr == nil {
			firstErr = err
			continue
		}
		c.unplaceLocked(id, cur)
		c.moved.Add(1)
	}
	return firstErr
}

// placeLocked subscribes c.subs[id] on its ring owner, retrying over
// survivor shards when the owner fails mid-placement.
//dimlint:locked
func (c *Coordinator) placeLocked(id uint64) error {
	s := c.subs[id]
	if s == nil {
		return fmt.Errorf("fleet: no retained subscription %d", id)
	}
	for {
		name := c.ring.lookup(id)
		if name == "" {
			return errors.New("fleet: no shards")
		}
		frames, err := c.shards[name].Subscribe(s)
		if err != nil {
			// The owner died under us: retract it (redistributing whatever
			// else it held) and place on the next owner.
			_ = c.removeLocked(name)
			continue
		}
		c.applyFramesLocked(name, frames)
		c.placed[id] = name
		return nil
	}
}

// unplaceLocked retracts a subscription from a shard, best-effort: a
// failing holder is handled when the next operation touches it.
//dimlint:locked
func (c *Coordinator) unplaceLocked(id uint64, name string) {
	sh := c.shards[name]
	if sh == nil {
		return
	}
	frames, err := sh.Unsubscribe(id)
	if err != nil {
		return
	}
	c.applyFramesLocked(name, frames)
}

// applyFramesLocked folds a shard's advertisement frames into the scatter
// index. Subscribe frames advertise an ID on that shard (the first
// advertiser registers it in the index); unsubscribe frames retract the
// advertisement, unregistering when no shard advertises the ID anymore.
//dimlint:locked
func (c *Coordinator) applyFramesLocked(name string, frames []wire.Frame) {
	for _, f := range frames {
		switch f.Type {
		case wire.FrameSubscribe:
			set := c.owner[f.Sub.ID]
			if set == nil {
				set = make(map[string]struct{}, 1)
				c.owner[f.Sub.ID] = set
				_ = c.index.Register(f.Sub)
			}
			set[name] = struct{}{}
		case wire.FrameUnsubscribe:
			set := c.owner[f.SubID]
			if set == nil {
				continue
			}
			delete(set, name)
			if len(set) == 0 {
				delete(c.owner, f.SubID)
				c.index.Unregister(f.SubID)
			}
		}
	}
}

// dropAdvertsLocked removes every advertisement a shard holds in the
// scatter index (shard death: its frames will never arrive).
//dimlint:locked
func (c *Coordinator) dropAdvertsLocked(name string) {
	for id, set := range c.owner {
		if _, ok := set[name]; !ok {
			continue
		}
		delete(set, name)
		if len(set) == 0 {
			delete(c.owner, id)
			c.index.Unregister(id)
		}
	}
}

// Subscribe retains the subscription and places it on its ring owner. A
// duplicate ID replaces the previous subscription (the overlay's
// replace-on-duplicate convergence).
func (c *Coordinator) Subscribe(s *subscription.Subscription) error {
	if s == nil {
		return errors.New("fleet: nil subscription")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.subs[s.ID]; dup {
		c.unplaceLocked(s.ID, c.placed[s.ID])
		delete(c.placed, s.ID)
	}
	c.subs[s.ID] = s
	if err := c.placeLocked(s.ID); err != nil {
		delete(c.subs, s.ID)
		return err
	}
	return nil
}

// Unsubscribe retracts a subscription from the fleet.
func (c *Coordinator) Unsubscribe(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[id]; !ok {
		return nil
	}
	c.unplaceLocked(id, c.placed[id])
	delete(c.placed, id)
	delete(c.subs, id)
	return nil
}

// Publish scatters one event to the shards whose advertised covers can
// match it, gathers their exact match results, and returns the deduped
// deliveries. A shard failing mid-scatter is retracted and redistributed,
// and the event retries on the degraded fleet, so a publish observes
// either the old membership or the new one — never a hole.
func (c *Coordinator) Publish(m *event.Message) ([]broker.Delivery, error) {
	if m == nil {
		return nil, errors.New("fleet: nil message")
	}
	for {
		dels, failed := c.scatter(m)
		if len(failed) == 0 {
			return dels, nil
		}
		c.mu.Lock()
		for _, name := range failed {
			if _, ok := c.shards[name]; ok {
				_ = c.removeLocked(name)
			}
		}
		c.mu.Unlock()
	}
}

// scatter runs one scatter/gather pass under the read lock. It returns
// the gathered deliveries and the names of shards that failed (the caller
// retracts them and retries).
func (c *Coordinator) scatter(m *event.Message) ([]broker.Delivery, []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.publishes.Add(1)
	// Candidate set: every shard advertising a cover the event matches.
	candSet := make(map[string]struct{}, len(c.shards))
	c.index.MatchVisit(m, func(s *subscription.Subscription) {
		for name := range c.owner[s.ID] {
			candSet[name] = struct{}{}
		}
	})
	if len(candSet) == 0 {
		c.shardsSkipped.Add(uint64(len(c.shards)))
		return nil, nil
	}
	names := make([]string, 0, len(candSet))
	for name := range candSet {
		// A shard can linger in an owner set briefly after removal when its
		// retraction frames were lost; it is not dialable, so drop it here.
		if _, ok := c.shards[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	c.shardPublishes.Add(uint64(len(names)))
	c.shardsSkipped.Add(uint64(len(c.shards) - len(names)))

	results := make([][]uint64, len(names))
	errs := make([]error, len(names))
	if len(names) == 1 {
		results[0], errs[0] = c.shards[names[0]].Publish(m)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(names))
		for i, name := range names {
			go func(i int, sh Shard) {
				defer wg.Done()
				results[i], errs[i] = sh.Publish(m)
			}(i, c.shards[name])
		}
		wg.Wait()
	}

	var failed []string
	var dels []broker.Delivery
	seen := make(map[uint64]struct{})
	for i, ids := range results {
		if errs[i] != nil {
			failed = append(failed, names[i])
			continue
		}
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				c.deduped.Add(1)
				continue
			}
			seen[id] = struct{}{}
			s := c.subs[id]
			if s == nil {
				continue // retracted while the shard still held it
			}
			dels = append(dels, broker.Delivery{Subscriber: s.Subscriber, SubID: id, Msg: m})
		}
	}
	return dels, failed
}

// Shards returns the fleet's live shard names, sorted.
func (c *Coordinator) Shards() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.shards))
	for name := range c.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NumSubscriptions returns the number of retained live subscriptions.
func (c *Coordinator) NumSubscriptions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.subs)
}

// IndexSize returns the scatter index's advertisement count — the
// coordinator-side routing state, the fleet analogue of PR 6's O(covers)
// claim.
func (c *Coordinator) IndexSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.index.NumSubscriptions()
}

// Stats snapshots the scatter/gather counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Publishes:      c.publishes.Load(),
		ShardPublishes: c.shardPublishes.Load(),
		ShardsSkipped:  c.shardsSkipped.Load(),
		Deduped:        c.deduped.Load(),
		Moved:          c.moved.Load(),
	}
}

// Close closes every shard.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, sh := range c.shards {
		if err := sh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.shards = make(map[string]Shard)
	c.ring = ring{}
	return firstErr
}
