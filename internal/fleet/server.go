package fleet

import (
	"fmt"
	"net"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/transport"
	"dimprune/internal/wire"
)

// ClientServer fronts a fleet coordinator with the client wire protocol:
// sessions introduce themselves with a hello, subscribe and publish like
// against a single broker, and receive matching events back as publish
// frames. Subscribers cannot tell a fleet from one big exact broker —
// which is precisely the differential oracle's claim.
type ClientServer struct {
	coord *Coordinator
	logf  func(string, ...any)

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]transport.Conn // subscriber name -> session
	owned    map[string][]uint64       // session -> its subscription IDs
	closed   bool
	wg       sync.WaitGroup
}

// NewClientServer fronts the coordinator.
func NewClientServer(c *Coordinator) *ClientServer {
	return &ClientServer{
		coord:    c,
		logf:     func(string, ...any) {},
		sessions: make(map[string]transport.Conn),
		owned:    make(map[string][]uint64),
	}
}

// SetLogf installs a diagnostics logger. Call before Listen.
func (s *ClientServer) SetLogf(logf func(string, ...any)) {
	if logf == nil {
		return
	}
	s.mu.Lock()
	s.logf = logf
	s.mu.Unlock()
}

// Listen starts accepting client sessions on addr, returning the bound
// address.
func (s *ClientServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", transport.ErrClosed
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = nc.Close()
				return
			}
			s.wg.Add(1)
			s.mu.Unlock()
			go func() {
				defer s.wg.Done()
				s.serve(transport.NewTCPConn(nc))
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serve runs one client session: hello first, then subscribes and
// publishes against the coordinator.
func (s *ClientServer) serve(conn transport.Conn) {
	defer func() { _ = conn.Close() }()
	f, err := conn.Recv()
	if err != nil || f.Type != wire.FrameHello {
		return // rogue connection: drop without registering anything
	}
	name := f.Subscriber
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.sessions[name] = conn
	s.mu.Unlock()
	defer s.detach(name, conn)
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FrameSubscribe:
			if f.Sub.Subscriber != name {
				s.logf("fleet clients: session %q subscribing as %q, dropped", name, f.Sub.Subscriber)
				return
			}
			if err := s.coord.Subscribe(f.Sub); err != nil {
				s.logf("fleet clients: subscribe %d: %v", f.Sub.ID, err)
				continue
			}
			s.mu.Lock()
			s.owned[name] = append(s.owned[name], f.Sub.ID)
			s.mu.Unlock()
		case wire.FrameUnsubscribe:
			if err := s.coord.Unsubscribe(f.SubID); err != nil {
				s.logf("fleet clients: unsubscribe %d: %v", f.SubID, err)
			}
		case wire.FramePublish:
			dels, err := s.coord.Publish(f.Msg)
			if err != nil {
				s.logf("fleet clients: publish %d: %v", f.Msg.ID, err)
				continue
			}
			s.deliver(dels)
		}
	}
}

// deliver sends each event once per matched subscriber session (client
// handles demultiplex by re-matching, so one frame per subscriber is the
// exact feed).
func (s *ClientServer) deliver(dels []broker.Delivery) {
	if len(dels) == 0 {
		return
	}
	sent := make(map[string]struct{}, len(dels))
	for _, d := range dels {
		if _, dup := sent[d.Subscriber]; dup {
			continue
		}
		sent[d.Subscriber] = struct{}{}
		s.mu.Lock()
		conn := s.sessions[d.Subscriber]
		s.mu.Unlock()
		if conn == nil {
			continue // subscriber without an attached session
		}
		if err := conn.Send(wire.PublishFrame(d.Msg)); err != nil {
			s.logf("fleet clients: deliver to %q: %v", d.Subscriber, err)
		}
	}
}

// detach retracts a closing session's subscriptions from the fleet.
func (s *ClientServer) detach(name string, conn transport.Conn) {
	s.mu.Lock()
	if s.sessions[name] != conn {
		s.mu.Unlock()
		return // superseded by a newer session under the same name
	}
	delete(s.sessions, name)
	ids := s.owned[name]
	delete(s.owned, name)
	s.mu.Unlock()
	for _, id := range ids {
		_ = s.coord.Unsubscribe(id)
	}
}

// Shutdown closes the listener and every session, then waits for the
// session goroutines.
func (s *ClientServer) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]transport.Conn, 0, len(s.sessions))
	for _, c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}
