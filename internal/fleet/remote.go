package fleet

import (
	"fmt"
	"net"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
	"dimprune/internal/wire"
)

// Remote shards put a fleet partition in its own OS process: a ShardServer
// wraps the shard-side broker and answers a coordinator connection; a
// RemoteShard is the coordinator-side stub implementing Shard over that
// connection.
//
// The protocol is strict request/reply over one FIFO connection, so no
// correlation IDs are needed beyond the event ID the match-set frame
// already carries. Every request is answered by zero or more advertisement
// frames (subscribe/unsubscribe of cover roots) terminated by exactly one
// match-set frame:
//
//	hello                 -> sync advertisements, match-set terminator
//	subscribe (sub)       -> advertisement delta,  match-set terminator
//	unsubscribe (id)      -> advertisement delta,  match-set terminator
//	publish (event)       -> match-set carrying the matched sub IDs
//
// A publish's match set echoes the event ID; control terminators echo the
// subscription ID (zero for hello).

// ShardServer serves one broker as a fleet shard. The coordinator link is
// allocated at construction, so advertisement frames and publishes flow
// through the same broker link whether the coordinator is in-process or
// remote.
type ShardServer struct {
	b    *broker.Broker
	link broker.LinkID
	logf func(string, ...any)
}

// NewShardServer wraps a broker for fleet shard duty.
func NewShardServer(b *broker.Broker) *ShardServer {
	return &ShardServer{b: b, link: b.AddLink(), logf: func(string, ...any) {}}
}

// SetLogf installs a diagnostics logger.
func (s *ShardServer) SetLogf(logf func(string, ...any)) {
	if logf != nil {
		s.logf = logf
	}
}

// Serve accepts coordinator connections until the listener closes.
// Connections are served one at a time — a fleet shard has one
// coordinator; a reconnecting coordinator resyncs with a hello.
func (s *ShardServer) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		s.logf("fleet shard: coordinator attached from %s", nc.RemoteAddr())
		s.ServeConn(transport.NewTCPConn(nc))
		s.logf("fleet shard: coordinator detached")
	}
}

// ServeConn answers one coordinator connection until it closes.
func (s *ShardServer) ServeConn(conn transport.Conn) {
	defer func() { _ = conn.Close() }()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FrameHello:
			out, err := s.b.SyncFrames(s.link)
			if err != nil {
				s.logf("fleet shard: sync: %v", err)
			}
			if !s.reply(conn, out, wire.MatchSetFrame(0, nil)) {
				return
			}
		case wire.FrameSubscribe:
			out, err := s.b.SubscribeLocal(f.Sub)
			if err != nil {
				s.logf("fleet shard: subscribe %d: %v", f.Sub.ID, err)
			}
			if !s.reply(conn, out, wire.MatchSetFrame(f.Sub.ID, nil)) {
				return
			}
		case wire.FrameUnsubscribe:
			out, err := s.b.UnsubscribeLocal(f.SubID)
			if err != nil {
				s.logf("fleet shard: unsubscribe %d: %v", f.SubID, err)
			}
			if !s.reply(conn, out, wire.MatchSetFrame(f.SubID, nil)) {
				return
			}
		case wire.FramePublish:
			out, dels, err := s.b.HandlePublish(s.link, f.Msg)
			releaseFrames(out) // a shard has no other links to forward to
			if err != nil {
				s.logf("fleet shard: publish %d: %v", f.Msg.ID, err)
			}
			var ids []uint64
			if len(dels) > 0 {
				ids = make([]uint64, len(dels))
				for i, d := range dels {
					ids[i] = d.SubID
				}
			}
			if !s.reply(conn, nil, wire.MatchSetFrame(f.Msg.ID, ids)) {
				return
			}
		default:
			// Tolerate unknown coordinator frames the way the transport
			// server does; the terminator keeps the reply stream aligned.
			if !s.reply(conn, nil, wire.MatchSetFrame(0, nil)) {
				return
			}
		}
	}
}

// reply sends a batch's advertisement frames and its terminator; false
// means the connection broke.
func (s *ShardServer) reply(conn transport.Conn, out []broker.Outgoing, term wire.Frame) bool {
	for i := range out {
		f := out[i].Frame
		out[i].ReleaseEnc() // Conn.Send re-encodes; the shared buffer goes unused
		if err := conn.Send(f); err != nil {
			releaseFrames(out[i+1:])
			return false
		}
	}
	return conn.Send(term) == nil
}

// RemoteShard is the coordinator-side stub of an OS-process shard. All
// calls round-trip on one FIFO connection under a mutex; a transport
// error marks the shard dead, which the coordinator turns into retraction
// and redistribution.
type RemoteShard struct {
	name string
	mu   sync.Mutex
	conn transport.Conn
	dead bool
}

// DialShard connects to a shard's listener.
func DialShard(name, addr string) (*RemoteShard, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial shard %q: %w", name, err)
	}
	return &RemoteShard{name: name, conn: conn}, nil
}

// Name identifies the shard on the ring.
func (r *RemoteShard) Name() string { return r.name }

// Subscribe places one subscription on the remote shard.
func (r *RemoteShard) Subscribe(sub *subscription.Subscription) ([]wire.Frame, error) {
	frames, _, err := r.roundTrip(wire.SubscribeFrame(sub))
	return frames, err
}

// Unsubscribe retracts one subscription on the remote shard.
func (r *RemoteShard) Unsubscribe(id uint64) ([]wire.Frame, error) {
	frames, _, err := r.roundTrip(wire.UnsubscribeFrame(id))
	return frames, err
}

// Publish matches one event on the remote shard.
func (r *RemoteShard) Publish(m *event.Message) ([]uint64, error) {
	_, ids, err := r.roundTrip(wire.PublishFrame(m))
	return ids, err
}

// Sync requests the shard's full advertisement replay.
func (r *RemoteShard) Sync() ([]wire.Frame, error) {
	frames, _, err := r.roundTrip(wire.HelloFrame("fleet-sync"))
	return frames, err
}

// Close tears the connection down; the shard process keeps running and a
// new DialShard can reattach.
func (r *RemoteShard) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dead = true
	return r.conn.Close()
}

// roundTrip sends one request and reads its reply batch: advertisement
// frames up to the match-set terminator.
func (r *RemoteShard) roundTrip(req wire.Frame) ([]wire.Frame, []uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return nil, nil, errShardDown
	}
	if err := r.conn.Send(req); err != nil {
		r.dead = true
		return nil, nil, err
	}
	var frames []wire.Frame
	for {
		f, err := r.conn.Recv()
		if err != nil {
			r.dead = true
			return nil, nil, err
		}
		switch f.Type {
		case wire.FrameMatchSet:
			return frames, f.Matches, nil
		case wire.FrameSubscribe, wire.FrameUnsubscribe:
			frames = append(frames, f)
		}
	}
}
