package fleet

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual points each shard contributes to
// the hash ring. More points smooth the partition sizes; 64 keeps the
// spread within a few percent for small fleets while membership changes
// stay cheap.
const ringReplicas = 64

// ring is a consistent-hash placement: subscription IDs map to the first
// virtual point clockwise from their hash, so adding or removing one shard
// moves only the IDs in the arcs it gains or loses (~1/N of the space),
// which is what keeps rebalance traffic proportional to the change.
type ring struct {
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash  uint64
	shard string
}

// mix64 is a full-avalanche 64-bit finalizer (murmur3's fmix64). FNV-1a
// alone clusters sequential IDs — over 8-byte inputs differing only in the
// low bytes, its high bits barely move, which would park the whole ID
// space on one arc of the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// add inserts the shard's virtual points. Adding a present shard is a
// no-op.
func (r *ring) add(shard string) {
	for _, p := range r.points {
		if p.shard == shard {
			return
		}
	}
	var buf [8]byte
	for i := 0; i < ringReplicas; i++ {
		h := fnv.New64a()
		_, _ = h.Write([]byte(shard))
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		_, _ = h.Write(buf[:])
		r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) order by name so every
		// coordinator agrees on the winner.
		return r.points[i].shard < r.points[j].shard
	})
}

// remove deletes the shard's virtual points.
func (r *ring) remove(shard string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// lookup places a subscription ID: the owning shard is the first virtual
// point at or clockwise past the ID's hash. Empty ring returns "".
func (r *ring) lookup(id uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	key := mix64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: past the highest point, the first point owns it
	}
	return r.points[i].shard
}
