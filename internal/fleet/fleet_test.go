package fleet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
)

func mustSub(t *testing.T, id uint64, subscriber, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, subscriber, subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newLocalFleet builds a coordinator over n in-process shards.
func newLocalFleet(t *testing.T, n int, covering bool) *Coordinator {
	t.Helper()
	c := NewCoordinator()
	for i := 0; i < n; i++ {
		sh, err := NewLocalShard(fmt.Sprintf("s%d", i), broker.Config{DisableCovering: !covering})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddShard(sh); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestRingConsistency(t *testing.T) {
	var r ring
	for _, s := range []string{"a", "b", "c", "d"} {
		r.add(s)
	}
	// Placement is deterministic.
	before := make(map[uint64]string)
	for id := uint64(0); id < 1000; id++ {
		before[id] = r.lookup(id)
		if got := r.lookup(id); got != before[id] {
			t.Fatalf("lookup(%d) unstable: %s then %s", id, before[id], got)
		}
	}
	// Every shard owns a nontrivial share.
	byShard := make(map[string]int)
	for _, s := range before {
		byShard[s]++
	}
	for _, s := range []string{"a", "b", "c", "d"} {
		if byShard[s] == 0 {
			t.Errorf("shard %s owns nothing", s)
		}
	}
	// Removing one shard moves only its keys.
	r.remove("c")
	for id := uint64(0); id < 1000; id++ {
		got := r.lookup(id)
		if before[id] != "c" && got != before[id] {
			t.Errorf("id %d moved %s -> %s though only c left", id, before[id], got)
		}
		if before[id] == "c" && got == "c" {
			t.Errorf("id %d still on removed shard", id)
		}
	}
}

func TestFleetSubscribePublishUnsubscribe(t *testing.T) {
	for _, covering := range []bool{true, false} {
		t.Run(fmt.Sprintf("covering=%v", covering), func(t *testing.T) {
			c := newLocalFleet(t, 4, covering)
			defer c.Close()
			for i := uint64(1); i <= 40; i++ {
				expr := `x > 10`
				if i%2 == 0 {
					expr = `x <= 10`
				}
				if err := c.Subscribe(mustSub(t, i, fmt.Sprintf("u%d", i), expr)); err != nil {
					t.Fatal(err)
				}
			}
			dels, err := c.Publish(event.Build(1).Int("x", 42).Msg())
			if err != nil {
				t.Fatal(err)
			}
			if len(dels) != 20 {
				t.Fatalf("got %d deliveries, want 20", len(dels))
			}
			for _, d := range dels {
				if d.SubID%2 == 0 {
					t.Errorf("sub %d (x <= 10) matched x=42", d.SubID)
				}
			}
			// Retract the odd half; nothing should match anymore.
			for i := uint64(1); i <= 40; i += 2 {
				if err := c.Unsubscribe(i); err != nil {
					t.Fatal(err)
				}
			}
			dels, err = c.Publish(event.Build(2).Int("x", 42).Msg())
			if err != nil {
				t.Fatal(err)
			}
			if len(dels) != 0 {
				t.Fatalf("deliveries after unsubscribe: %d", len(dels))
			}
		})
	}
}

// TestFleetScatterSkipsShards proves the scatter index consults covering
// state: an event matching no cover on a shard never reaches it.
func TestFleetScatterSkipsShards(t *testing.T) {
	c := newLocalFleet(t, 4, true)
	defer c.Close()
	// Narrow, disjoint subscriptions: most events match on few shards.
	for i := uint64(1); i <= 64; i++ {
		expr := fmt.Sprintf(`x = %d`, i)
		if err := c.Subscribe(mustSub(t, i, fmt.Sprintf("u%d", i), expr)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 64; i++ {
		dels, err := c.Publish(event.Build(i).Int("x", int64(i)).Msg())
		if err != nil {
			t.Fatal(err)
		}
		if len(dels) != 1 || dels[0].SubID != i {
			t.Fatalf("event %d: deliveries %v", i, dels)
		}
	}
	st := c.Stats()
	if st.ShardsSkipped == 0 {
		t.Error("no shard publishes were skipped; scatter index unused")
	}
	if st.ShardPublishes >= st.Publishes*4 {
		t.Errorf("scatter width %d/%d events — no pruning of the shard set",
			st.ShardPublishes, st.Publishes)
	}
}

// TestFleetRebalanceOnMembership grows and shrinks the fleet and asserts
// deliveries stay exact throughout.
func TestFleetRebalanceOnMembership(t *testing.T) {
	c := newLocalFleet(t, 2, true)
	defer c.Close()
	for i := uint64(1); i <= 50; i++ {
		if err := c.Subscribe(mustSub(t, i, fmt.Sprintf("u%d", i), `x > 0`)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		t.Helper()
		dels, err := c.Publish(event.Build(99).Int("x", 5).Msg())
		if err != nil {
			t.Fatal(err)
		}
		if len(dels) != 50 {
			t.Fatalf("%s: %d deliveries, want 50", stage, len(dels))
		}
	}
	check("initial")
	sh, err := NewLocalShard("s2", broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddShard(sh); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Moved == 0 {
		t.Error("adding a shard moved nothing")
	}
	check("after add")
	if err := c.RemoveShard("s0"); err != nil {
		t.Fatal(err)
	}
	check("after graceful remove")
}

// TestFleetShardDeathRedistributes kills a shard abruptly mid-workload:
// the publish path must retract it and the retained subscriptions must
// land on the survivors with no lost deliveries.
func TestFleetShardDeathRedistributes(t *testing.T) {
	c := NewCoordinator()
	shards := make([]*LocalShard, 3)
	for i := range shards {
		sh, err := NewLocalShard(fmt.Sprintf("s%d", i), broker.Config{})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
		if err := c.AddShard(sh); err != nil {
			t.Fatal(err)
		}
	}
	defer c.Close()
	for i := uint64(1); i <= 60; i++ {
		if err := c.Subscribe(mustSub(t, i, fmt.Sprintf("u%d", i), `x > 0`)); err != nil {
			t.Fatal(err)
		}
	}
	shards[1].Kill()
	dels, err := c.Publish(event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 60 {
		t.Fatalf("after shard death: %d deliveries, want 60", len(dels))
	}
	if got := c.Shards(); len(got) != 2 {
		t.Fatalf("dead shard still listed: %v", got)
	}
}

// TestRemoteShardRoundTrip runs one shard behind the wire protocol and
// the others in-process; the mix must behave like any other fleet.
func TestRemoteShardRoundTrip(t *testing.T) {
	b, err := broker.New(broker.Config{ID: "remote"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewShardServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()

	c := NewCoordinator()
	defer c.Close()
	remote, err := DialShard("s0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddShard(remote); err != nil {
		t.Fatal(err)
	}
	local, err := NewLocalShard("s1", broker.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddShard(local); err != nil {
		t.Fatal(err)
	}

	for i := uint64(1); i <= 30; i++ {
		if err := c.Subscribe(mustSub(t, i, fmt.Sprintf("u%d", i), `x >= 5`)); err != nil {
			t.Fatal(err)
		}
	}
	dels, err := c.Publish(event.Build(7).Int("x", 9).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 30 {
		t.Fatalf("mixed fleet delivered %d, want 30", len(dels))
	}
	// The remote conn dying must degrade, not break: survivors take over.
	_ = remote.Close()
	dels, err = c.Publish(event.Build(8).Int("x", 9).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 30 {
		t.Fatalf("after remote death: %d deliveries, want 30", len(dels))
	}
}

// TestClientServerSessions drives the coordinator through the client wire
// protocol end to end.
func TestClientServerSessions(t *testing.T) {
	c := newLocalFleet(t, 2, true)
	defer c.Close()
	cs := NewClientServer(c)
	defer cs.Shutdown()
	addr, err := cs.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := transport.NewClient("dora", conn)
	defer cl.Close()
	h, err := cl.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	// The session goroutine applies the subscribe asynchronously; keep
	// publishing until the delivery arrives.
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case m := <-h.C():
			if m == nil {
				t.Fatal("handle closed before delivering")
			}
			return
		case <-tick.C:
			if err := cl.Publish(event.Build(1).Int("x", 1).Msg()); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("client session never received its delivery")
		}
	}
}
