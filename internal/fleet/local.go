package fleet

import (
	"errors"
	"sync/atomic"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// LocalShard is an in-process shard: a full broker holding its partition
// as local entries, with one link (link 0) playing the coordinator. The
// broker's covering forest decides what that link advertises, which is
// exactly what the coordinator's scatter index needs.
type LocalShard struct {
	name string
	b    *broker.Broker
	link broker.LinkID
	dead atomic.Bool
}

// errShardDown is what a killed shard answers everything with.
var errShardDown = errors.New("fleet: shard down")

// NewLocalShard builds an in-process shard. cfg.ID is overridden by name;
// everything else (dimension, match layout, covering) passes through.
func NewLocalShard(name string, cfg broker.Config) (*LocalShard, error) {
	cfg.ID = name
	b, err := broker.New(cfg)
	if err != nil {
		return nil, err
	}
	return &LocalShard{name: name, b: b, link: b.AddLink()}, nil
}

// Name identifies the shard on the ring.
func (s *LocalShard) Name() string { return s.name }

// Broker exposes the underlying broker (stats, pruning).
func (s *LocalShard) Broker() *broker.Broker { return s.b }

// Subscribe places one subscription as a local, exact entry and returns
// the advertisement frames the shard's covering plane emits on the
// coordinator link.
func (s *LocalShard) Subscribe(sub *subscription.Subscription) ([]wire.Frame, error) {
	if s.dead.Load() {
		return nil, errShardDown
	}
	out, err := s.b.SubscribeLocal(sub)
	if err != nil {
		return nil, err
	}
	return collectFrames(out), nil
}

// Unsubscribe retracts one subscription; the returned frames carry the
// retraction and any re-advertisements of formerly covered entries.
func (s *LocalShard) Unsubscribe(id uint64) ([]wire.Frame, error) {
	if s.dead.Load() {
		return nil, errShardDown
	}
	out, err := s.b.UnsubscribeLocal(id)
	if err != nil {
		return nil, err
	}
	return collectFrames(out), nil
}

// Publish matches one event against the partition and returns the matched
// subscription IDs. All entries are local, so the broker's deliveries are
// exact — never pruned, never false.
func (s *LocalShard) Publish(m *event.Message) ([]uint64, error) {
	if s.dead.Load() {
		return nil, errShardDown
	}
	out, dels, err := s.b.HandlePublish(s.link, m)
	releaseFrames(out)
	if err != nil {
		return nil, err
	}
	if len(dels) == 0 {
		return nil, nil
	}
	ids := make([]uint64, len(dels))
	for i, d := range dels {
		ids[i] = d.SubID
	}
	return ids, nil
}

// Sync replays the shard's full advertisement state (covers only when the
// covering plane is on) — the reattach path of AddShard.
func (s *LocalShard) Sync() ([]wire.Frame, error) {
	if s.dead.Load() {
		return nil, errShardDown
	}
	out, err := s.b.SyncFrames(s.link)
	if err != nil {
		return nil, err
	}
	return collectFrames(out), nil
}

// Close marks the shard down. Kill is the chaos alias: a killed shard
// answers every call with an error, which is how the coordinator's publish
// path discovers the death.
func (s *LocalShard) Close() error {
	s.dead.Store(true)
	return nil
}

// Kill abruptly fails the shard (chaos hook): identical to Close, named
// for the fault it models.
func (s *LocalShard) Kill() { s.dead.Store(true) }

// collectFrames strips the transport envelope off broker output: the
// frames are consumed here (applied to the scatter index, or re-encoded by
// a remote serve loop), so each Outgoing's shared-encoding reference is
// released.
func collectFrames(out []broker.Outgoing) []wire.Frame {
	if len(out) == 0 {
		return nil
	}
	frames := make([]wire.Frame, len(out))
	for i := range out {
		frames[i] = out[i].Frame
		out[i].ReleaseEnc()
	}
	return frames
}

// releaseFrames drops the shared-encoding references of broker output that
// goes nowhere (a shard has no neighbor links to forward publishes to, but
// the refbalance discipline holds regardless).
func releaseFrames(out []broker.Outgoing) {
	for i := range out {
		out[i].ReleaseEnc()
	}
}
