// Package delivery implements the per-subscriber delivery plane: bounded
// notification queues with explicit backpressure policies.
//
// A Queue decouples the parallel match path from consumers the same way
// transport's per-peer outboxes decouple the broker from slow sockets:
// publishers enqueue and move on, consumers drain at their own pace, and a
// per-subscription Policy decides what happens when the consumer falls
// behind its buffer. Both the embedded engine's subscription handles and
// the networked client's handles are built on it.
package delivery

import (
	"sync"
	"sync/atomic"
)

// Policy decides what Enqueue does when a queue's buffer is full.
type Policy int

const (
	// Block waits for the consumer to make room; backpressure propagates
	// to the enqueuing goroutine (never to the matching lock — callers
	// enqueue after releasing it).
	Block Policy = iota
	// DropOldest evicts the oldest buffered item to admit the new one;
	// the consumer sees the most recent window of notifications.
	DropOldest
	// DropNewest discards the new item when the buffer is full; the
	// consumer sees the oldest notifications until it catches up.
	DropNewest
	// Persist marks a durable, WAL-backed subscription: notifications are
	// replayed from the broker's event log until acked, so nothing is shed
	// and nothing is lost across reconnects or restarts. It is not a queue
	// policy — Queue rejects it (Valid is false); the durable plane
	// implements it with a cursor over the log feeding an internal Block
	// queue.
	Persist
)

// Synchronous is the reported policy of legacy subscriptions that deliver
// synchronously on the publishing goroutine (the deprecated OnNotify API).
// They have no queue, so none of the buffered policies applies; reporting
// Block for them — as earlier versions did — misled consumers of the
// policy, e.g. brokerd's delivery-hotspot stats. Like Persist it is not a
// queue policy and Valid is false.
const Synchronous Policy = -1

// String names the policy for logs and stats.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	case Persist:
		return "persist"
	case Synchronous:
		return "synchronous"
	default:
		return "invalid"
	}
}

// Valid reports whether p is a queue-implementable policy, i.e. one a
// Queue can be constructed with. Persist and Synchronous are real policies
// for reporting purposes but are implemented outside the queue, so they
// are not Valid here.
func (p Policy) Valid() bool { return p >= Block && p <= DropNewest }

// Queue is a bounded FIFO with a backpressure policy, safe for any number
// of concurrent enqueuers and one or more consumers receiving from C().
//
// Close is safe to call concurrently with Enqueue: it first unblocks any
// Block-policy enqueuers, then fences out in-flight ones before closing
// the channel, so the "send on closed channel" race cannot occur.
type Queue[T any] struct {
	policy Policy
	ch     chan T
	quit   chan struct{}

	// mu fences Enqueue against Close: enqueuers hold the read side for
	// the whole attempt, Close takes the write side before closing ch.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once

	enqueued atomic.Uint64
	dropped  atomic.Uint64
}

// New creates a queue holding up to buffer items (minimum 1).
func New[T any](buffer int, policy Policy) *Queue[T] {
	if buffer < 1 {
		buffer = 1
	}
	return &Queue[T]{
		policy: policy,
		ch:     make(chan T, buffer),
		quit:   make(chan struct{}),
	}
}

// C returns the receive side of the queue. It is closed by Close; items
// buffered at close time remain receivable.
func (q *Queue[T]) C() <-chan T { return q.ch }

// Cap returns the buffer capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Policy returns the queue's backpressure policy.
func (q *Queue[T]) Policy() Policy { return q.policy }

// Enqueue offers v to the queue under the configured policy. It reports
// whether v was accepted and how many notifications this call lost to the
// policy: evicted predecessors under DropOldest (accepted=true), or v
// itself under DropNewest when full (accepted=false). A closed queue
// accepts nothing and drops nothing — the subscription is gone.
func (q *Queue[T]) Enqueue(v T) (accepted bool, dropped int) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false, 0
	}
	// Every path tries the buffered send first via the non-blocking
	// single-case fast path; only Block ever falls into a multi-case
	// select (and only when actually full).
	switch q.policy {
	case DropNewest:
		select {
		case q.ch <- v:
		default:
			q.dropped.Add(1)
			return false, 1
		}
	case DropOldest:
	evict:
		for {
			select {
			case q.ch <- v:
				break evict
			default:
			}
			// Full: a racing Close must stop the loop…
			select {
			case <-q.quit:
				return false, dropped
			default:
			}
			// …otherwise evict the head and retry. The receive races
			// with the consumer; losing it just means room appeared.
			select {
			case <-q.ch:
				q.dropped.Add(1)
				dropped++
			default:
			}
		}
	default: // Block
		select {
		case q.ch <- v:
		default:
			select {
			case q.ch <- v:
			case <-q.quit:
				// When both cases are ready the runtime picks one at
				// random, so quit being chosen does not mean the buffer
				// was full — room may have appeared together with (or
				// just before) the close. Re-attempt the non-blocking
				// send once: an item that had room at close time must be
				// accepted, not refused. Safe under mu's read side — ch
				// is only closed after Close acquires the write side.
				select {
				case q.ch <- v:
				default:
					return false, 0
				}
			}
		}
	}
	q.enqueued.Add(1)
	return true, dropped
}

// Enqueued returns the number of items accepted so far.
func (q *Queue[T]) Enqueued() uint64 { return q.enqueued.Load() }

// Dropped returns the number of items lost to the policy: evictions under
// DropOldest plus rejections under DropNewest.
func (q *Queue[T]) Dropped() uint64 { return q.dropped.Load() }

// Close rejects further enqueues and closes the channel returned by C.
// Blocked enqueuers return without delivering. Idempotent.
func (q *Queue[T]) Close() {
	q.closeOnce.Do(func() {
		// Wake parked Block/DropOldest enqueuers first — they hold mu's
		// read side, so quit must close before the write lock is taken.
		close(q.quit)
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		// mu.Lock drained all read-side holders and any new Enqueue
		// observes closed before touching ch, so closing ch is safe.
		close(q.ch)
	})
}
