package delivery

import (
	"sync"
	"testing"
	"time"
)

func TestBlockWaitsForConsumer(t *testing.T) {
	q := New[int](1, Block)
	if ok, ev := q.Enqueue(1); !ok || ev != 0 {
		t.Fatalf("first enqueue = %v, %d", ok, ev)
	}
	done := make(chan struct{})
	go func() {
		q.Enqueue(2) // full: must wait for the receive below
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blocked enqueue returned before consumer made room")
	case <-time.After(20 * time.Millisecond):
	}
	if got := <-q.C(); got != 1 {
		t.Fatalf("received %d, want 1", got)
	}
	<-done
	if got := <-q.C(); got != 2 {
		t.Fatalf("received %d, want 2", got)
	}
	if q.Dropped() != 0 || q.Enqueued() != 2 {
		t.Errorf("dropped=%d enqueued=%d", q.Dropped(), q.Enqueued())
	}
}

func TestDropOldestKeepsNewestWindow(t *testing.T) {
	q := New[int](3, DropOldest)
	for i := 1; i <= 10; i++ {
		if ok, _ := q.Enqueue(i); !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", q.Dropped())
	}
	q.Close()
	var got []int
	for v := range q.C() {
		got = append(got, v)
	}
	want := []int{8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestDropNewestKeepsOldest(t *testing.T) {
	q := New[int](2, DropNewest)
	accepted := 0
	for i := 1; i <= 5; i++ {
		if ok, _ := q.Enqueue(i); ok {
			accepted++
		}
	}
	if accepted != 2 || q.Dropped() != 3 {
		t.Errorf("accepted=%d dropped=%d, want 2/3", accepted, q.Dropped())
	}
	if got := <-q.C(); got != 1 {
		t.Errorf("head = %d, want 1", got)
	}
}

func TestCloseUnblocksAndRejects(t *testing.T) {
	q := New[int](1, Block)
	q.Enqueue(1)
	unblocked := make(chan bool)
	go func() {
		ok, _ := q.Enqueue(2)
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-unblocked; ok {
		t.Error("enqueue accepted during close")
	}
	if ok, _ := q.Enqueue(3); ok {
		t.Error("enqueue accepted after close")
	}
	// The buffered item survives; the channel then reports closure.
	if got := <-q.C(); got != 1 {
		t.Errorf("buffered item = %d, want 1", got)
	}
	if _, open := <-q.C(); open {
		t.Error("channel still open after close and drain")
	}
	q.Close() // idempotent
}

func TestMinimumBuffer(t *testing.T) {
	q := New[int](0, DropNewest)
	if q.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", q.Cap())
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{Block: "block", DropOldest: "drop-oldest", DropNewest: "drop-newest", Policy(9): "invalid"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Policy(9).Valid() || !DropOldest.Valid() {
		t.Error("Valid misclassifies")
	}
}

// TestConcurrentEnqueueCloseRace hammers every policy with concurrent
// enqueuers, one consumer, and a racing Close; the race detector and the
// absence of a send-on-closed panic are the assertions.
func TestConcurrentEnqueueCloseRace(t *testing.T) {
	for _, p := range []Policy{Block, DropOldest, DropNewest} {
		t.Run(p.String(), func(t *testing.T) {
			q := New[int](4, p)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						q.Enqueue(g*1000 + i)
					}
				}(g)
			}
			consumed := make(chan struct{})
			go func() {
				defer close(consumed)
				for range q.C() {
				}
			}()
			time.Sleep(time.Millisecond)
			q.Close()
			wg.Wait()
			<-consumed
		})
	}
}

// TestDropOldestAccounting checks exact bookkeeping with a sequential
// producer and no consumer: accepted - capacity items must be evicted.
func TestDropOldestAccounting(t *testing.T) {
	const n, buf = 100, 8
	q := New[int](buf, DropOldest)
	evictions := 0
	for i := 0; i < n; i++ {
		ok, ev := q.Enqueue(i)
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
		evictions += ev
	}
	if q.Enqueued() != n {
		t.Errorf("Enqueued = %d, want %d", q.Enqueued(), n)
	}
	if q.Dropped() != n-buf || evictions != n-buf {
		t.Errorf("Dropped = %d, evictions = %d, want %d", q.Dropped(), evictions, n-buf)
	}
}
