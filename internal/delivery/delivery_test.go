package delivery

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBlockWaitsForConsumer(t *testing.T) {
	q := New[int](1, Block)
	if ok, ev := q.Enqueue(1); !ok || ev != 0 {
		t.Fatalf("first enqueue = %v, %d", ok, ev)
	}
	done := make(chan struct{})
	go func() {
		q.Enqueue(2) // full: must wait for the receive below
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blocked enqueue returned before consumer made room")
	case <-time.After(20 * time.Millisecond):
	}
	if got := <-q.C(); got != 1 {
		t.Fatalf("received %d, want 1", got)
	}
	<-done
	if got := <-q.C(); got != 2 {
		t.Fatalf("received %d, want 2", got)
	}
	if q.Dropped() != 0 || q.Enqueued() != 2 {
		t.Errorf("dropped=%d enqueued=%d", q.Dropped(), q.Enqueued())
	}
}

func TestDropOldestKeepsNewestWindow(t *testing.T) {
	q := New[int](3, DropOldest)
	for i := 1; i <= 10; i++ {
		if ok, _ := q.Enqueue(i); !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", q.Dropped())
	}
	q.Close()
	var got []int
	for v := range q.C() {
		got = append(got, v)
	}
	want := []int{8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestDropNewestKeepsOldest(t *testing.T) {
	q := New[int](2, DropNewest)
	accepted := 0
	for i := 1; i <= 5; i++ {
		if ok, _ := q.Enqueue(i); ok {
			accepted++
		}
	}
	if accepted != 2 || q.Dropped() != 3 {
		t.Errorf("accepted=%d dropped=%d, want 2/3", accepted, q.Dropped())
	}
	if got := <-q.C(); got != 1 {
		t.Errorf("head = %d, want 1", got)
	}
}

func TestCloseUnblocksAndRejects(t *testing.T) {
	q := New[int](1, Block)
	q.Enqueue(1)
	unblocked := make(chan bool)
	go func() {
		ok, _ := q.Enqueue(2)
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-unblocked; ok {
		t.Error("enqueue accepted during close")
	}
	if ok, _ := q.Enqueue(3); ok {
		t.Error("enqueue accepted after close")
	}
	// The buffered item survives; the channel then reports closure.
	if got := <-q.C(); got != 1 {
		t.Errorf("buffered item = %d, want 1", got)
	}
	if _, open := <-q.C(); open {
		t.Error("channel still open after close and drain")
	}
	q.Close() // idempotent
}

func TestMinimumBuffer(t *testing.T) {
	q := New[int](0, DropNewest)
	if q.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", q.Cap())
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{Block: "block", DropOldest: "drop-oldest", DropNewest: "drop-newest", Persist: "persist", Synchronous: "synchronous", Policy(9): "invalid"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Policy(9).Valid() || !DropOldest.Valid() {
		t.Error("Valid misclassifies")
	}
	// Persist and Synchronous are reportable but not queue-implementable.
	if Persist.Valid() || Synchronous.Valid() {
		t.Error("non-queue policies must not be Valid")
	}
}

// TestBlockCloseDoesNotRefuseRoom is the regression test for the Block
// close race. The racy window is between an enqueuer's failed fast-path
// poll (buffer momentarily full) and its entry into the blocking select:
// when a consumer makes room and quit fires inside that window, both
// select cases are ready and the runtime picks one at random — pre-fix,
// the quit pick refused an item that had room. The test aligns a
// drain-then-close against concurrent enqueue attempts with a start gate
// and a scanned delay so some iterations land in the window. Once the
// lone buffered item is drained nothing else ever fills the queue, so
// room exists continuously from the drain onward and any refusal is the
// bug; post-fix the re-attempt makes acceptance deterministic. Run with
// -race.
func TestBlockCloseDoesNotRefuseRoom(t *testing.T) {
	var sink atomic.Uint64
	for i := 0; i < 4000; i++ {
		q := New[int](1, Block)
		q.Enqueue(0) // full: the enqueuer's fast path must fail
		start := make(chan struct{})
		res := make(chan bool)
		go func() {
			<-start
			// Scan alignments: a small, iteration-varying busy delay
			// sweeps the drain+close across the enqueuer's window.
			for d := 0; d < i%64; d++ {
				sink.Add(1)
			}
			<-q.ch // room appears…
			// …and quit fires right behind it. Whitebox: closing quit
			// directly is the exact moment Close arms the quit case,
			// without the close fence, so only the select race is under
			// test (q is discarded afterwards, never Closed).
			close(q.quit)
		}()
		// Created last so the gate wakes it first: the enqueuer must reach
		// its failed fast-path poll before the drain lands.
		go func() {
			<-start
			ok, _ := q.Enqueue(1)
			res <- ok
		}()
		close(start)
		if ok := <-res; !ok {
			t.Fatalf("iteration %d: enqueue refused despite buffer room from close time on", i)
		}
	}
}

// TestBlockCloseStillRejectsWhenFull pins the other side of the fix: a
// queue that is genuinely full when quit fires must still refuse the item
// (the re-attempt is non-blocking, not a second wait).
func TestBlockCloseStillRejectsWhenFull(t *testing.T) {
	q := New[int](1, Block)
	q.Enqueue(0)
	res := make(chan bool, 1)
	go func() {
		ok, _ := q.Enqueue(1)
		res <- ok
	}()
	time.Sleep(time.Millisecond)
	close(q.quit) // whitebox, as above; buffer stays full
	if ok := <-res; ok {
		t.Fatal("enqueue accepted while full at close")
	}
}

// TestConcurrentEnqueueCloseRace hammers every policy with concurrent
// enqueuers, one consumer, and a racing Close; the race detector and the
// absence of a send-on-closed panic are the assertions.
func TestConcurrentEnqueueCloseRace(t *testing.T) {
	for _, p := range []Policy{Block, DropOldest, DropNewest} {
		t.Run(p.String(), func(t *testing.T) {
			q := New[int](4, p)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						q.Enqueue(g*1000 + i)
					}
				}(g)
			}
			consumed := make(chan struct{})
			go func() {
				defer close(consumed)
				for range q.C() {
				}
			}()
			time.Sleep(time.Millisecond)
			q.Close()
			wg.Wait()
			<-consumed
		})
	}
}

// TestDropOldestAccounting checks exact bookkeeping with a sequential
// producer and no consumer: accepted - capacity items must be evicted.
func TestDropOldestAccounting(t *testing.T) {
	const n, buf = 100, 8
	q := New[int](buf, DropOldest)
	evictions := 0
	for i := 0; i < n; i++ {
		ok, ev := q.Enqueue(i)
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
		evictions += ev
	}
	if q.Enqueued() != n {
		t.Errorf("Enqueued = %d, want %d", q.Enqueued(), n)
	}
	if q.Dropped() != n-buf || evictions != n-buf {
		t.Errorf("Dropped = %d, evictions = %d, want %d", q.Dropped(), evictions, n-buf)
	}
}
