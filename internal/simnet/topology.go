package simnet

import (
	"fmt"

	"dimprune/internal/broker"
	"dimprune/internal/dist"
)

// Edge is one undirected overlay link between two broker indices. The
// (A, B) order is preserved by constructors — networked harnesses use it
// as the dial direction (A dials B) — but the link itself is symmetric.
type Edge struct {
	A, B int
}

// LineEdges returns the paper's line topology b0 — b1 — … — bn-1.
func LineEdges(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{A: i - 1, B: i})
	}
	return edges
}

// StarEdges returns a hub-and-spoke topology with broker 0 as the hub.
func StarEdges(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{A: 0, B: i})
	}
	return edges
}

// TreeEdges returns a complete fanout-ary tree: broker i's children are
// fanout·i+1 … fanout·i+fanout (while they exist).
func TreeEdges(n, fanout int) []Edge {
	if fanout < 1 {
		fanout = 2
	}
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{A: (i - 1) / fanout, B: i})
	}
	return edges
}

// RandomTreeEdges returns a seeded uniformly-random recursive tree on n
// nodes: node i attaches to a parent drawn uniformly from [0, i). Every
// acyclic connected shape from degenerate lines to near-stars is reachable,
// and the same seed always yields the same shape — the chaos oracle's
// "arbitrary topology" axis stays reproducible.
func RandomTreeEdges(n int, seed int64) []Edge {
	rng := dist.New(uint64(seed))
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{A: rng.Intn(i), B: i})
	}
	return edges
}

// NewNetwork builds an overlay of the given brokers connected by edges —
// the general form of NewLine/NewStar/NewBalancedTree. Edges must form an
// acyclic graph over valid indices (Connect enforces both).
func NewNetwork(brokers []*broker.Broker, edges []Edge) (*Network, error) {
	n := New()
	for _, b := range brokers {
		n.Add(b)
	}
	for _, e := range edges {
		if err := n.Connect(e.A, e.B); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// NewRandomTree builds a seeded random recursive tree overlay; see
// RandomTreeEdges.
func NewRandomTree(brokers []*broker.Broker, seed int64) (*Network, error) {
	return NewNetwork(brokers, RandomTreeEdges(len(brokers), seed))
}

// Edges returns the overlay's links in Connect order, one Edge per
// undirected link, with A carrying the Connect-time first argument.
func (n *Network) Edges() []Edge {
	edges := make([]Edge, len(n.edges))
	copy(edges, n.edges)
	return edges
}

// NeighborLinks returns broker i's links keyed by the neighbor broker's
// index — the per-neighbor view oracles need to compare a simulated
// broker's advertisement sets against a networked overlay's.
func (n *Network) NeighborLinks(i int) map[int]broker.LinkID {
	m := make(map[int]broker.LinkID, len(n.peers[i]))
	for l, ep := range n.peers[i] {
		m[ep.broker] = broker.LinkID(l)
	}
	return m
}

// ParseTopology resolves a topology name — "line", "star", "tree" (binary),
// "tree:<fanout>", or "random:<seed>" — into its edge list over n brokers.
func ParseTopology(name string, n int) ([]Edge, error) {
	if n < 2 {
		return nil, fmt.Errorf("simnet: topology %q needs >= 2 brokers, got %d", name, n)
	}
	switch {
	case name == "" || name == "line":
		return LineEdges(n), nil
	case name == "star":
		return StarEdges(n), nil
	case name == "tree":
		return TreeEdges(n, 2), nil
	case len(name) > 5 && name[:5] == "tree:":
		var fanout int
		if _, err := fmt.Sscanf(name[5:], "%d", &fanout); err != nil || fanout < 1 {
			return nil, fmt.Errorf("simnet: bad tree fanout in %q", name)
		}
		return TreeEdges(n, fanout), nil
	case len(name) > 7 && name[:7] == "random:":
		var seed int64
		if _, err := fmt.Sscanf(name[7:], "%d", &seed); err != nil {
			return nil, fmt.Errorf("simnet: bad random seed in %q", name)
		}
		return RandomTreeEdges(n, seed), nil
	default:
		return nil, fmt.Errorf("simnet: unknown topology %q (want line, star, tree[:fanout], random:<seed>)", name)
	}
}
