package simnet

import (
	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Random workload helpers shared by the simnet tests.

var testAttrs = []string{"price", "rating", "category", "alpha", "beta"}

func randomPredicate(r *dist.RNG) subscription.Predicate {
	attr := testAttrs[r.Intn(len(testAttrs))]
	switch r.Intn(5) {
	case 0:
		return subscription.Pred(attr, subscription.OpEq, event.Int(int64(r.Intn(10))))
	case 1:
		return subscription.Pred(attr, subscription.OpLe, event.Int(int64(r.Intn(100))))
	case 2:
		return subscription.Pred(attr, subscription.OpGt, event.Int(int64(r.Intn(100))))
	case 3:
		return subscription.Pred(attr, subscription.OpEq, event.String(string(rune('a'+r.Intn(3)))))
	default:
		return subscription.Pred(attr, subscription.OpExists, event.Value{})
	}
}

func randomTree(r *dist.RNG, maxDepth int) *subscription.Node {
	if maxDepth <= 0 || r.Bool(0.35) {
		return subscription.Leaf(randomPredicate(r))
	}
	kind := subscription.NodeAnd
	if r.Bool(0.4) {
		kind = subscription.NodeOr
	}
	n := r.IntRange(2, 4)
	children := make([]*subscription.Node, n)
	for i := range children {
		children[i] = randomTree(r, maxDepth-1)
	}
	return &subscription.Node{Kind: kind, Children: children}
}

func randomMessage(r *dist.RNG, id uint64) *event.Message {
	b := event.Build(id)
	for _, a := range testAttrs {
		if r.Bool(0.3) {
			continue
		}
		switch r.Intn(3) {
		case 0:
			b.Int(a, int64(r.Intn(100)))
		case 1:
			b.Num(a, r.Range(0, 100))
		default:
			b.Str(a, string(rune('a'+r.Intn(3))))
		}
	}
	return b.Msg()
}
