package simnet

import (
	"reflect"
	"testing"

	"dimprune/internal/event"
)

func TestEdgeHelpersShapes(t *testing.T) {
	if got := LineEdges(4); !reflect.DeepEqual(got, []Edge{{0, 1}, {1, 2}, {2, 3}}) {
		t.Errorf("LineEdges(4) = %v", got)
	}
	if got := StarEdges(4); !reflect.DeepEqual(got, []Edge{{0, 1}, {0, 2}, {0, 3}}) {
		t.Errorf("StarEdges(4) = %v", got)
	}
	if got := TreeEdges(5, 2); !reflect.DeepEqual(got, []Edge{{0, 1}, {0, 2}, {1, 3}, {1, 4}}) {
		t.Errorf("TreeEdges(5, 2) = %v", got)
	}
}

func TestRandomTreeEdgesSeededAndAcyclic(t *testing.T) {
	a := RandomTreeEdges(16, 7)
	b := RandomTreeEdges(16, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different trees")
	}
	c := RandomTreeEdges(16, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical trees (suspicious)")
	}
	// n-1 edges each attaching a fresh node to an earlier one: connected
	// and acyclic by construction — verify the invariant anyway.
	if len(a) != 15 {
		t.Fatalf("edge count = %d, want 15", len(a))
	}
	for i, e := range a {
		if e.B != i+1 || e.A < 0 || e.A >= e.B {
			t.Fatalf("edge %d = %v violates recursive-tree shape", i, e)
		}
	}
	// And the network must accept it (Connect re-checks acyclicity).
	if _, err := NewNetwork(makeBrokers(t, 16), a); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkMatchesNamedConstructors(t *testing.T) {
	n1, err := NewNetwork(makeBrokers(t, 5), LineEdges(5))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewLine(makeBrokers(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n1.Edges(), n2.Edges()) {
		t.Errorf("edge lists differ: %v vs %v", n1.Edges(), n2.Edges())
	}
	// Routing through the generalized constructor behaves identically.
	if err := n1.SubscribeAt(4, mustSub(t, 1, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	dels, err := n1.PublishAt(0, event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Broker != 4 {
		t.Errorf("deliveries = %+v, want one at broker 4", dels)
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want []Edge
		err  bool
	}{
		{name: "line", n: 3, want: []Edge{{0, 1}, {1, 2}}},
		{name: "", n: 3, want: []Edge{{0, 1}, {1, 2}}},
		{name: "star", n: 3, want: []Edge{{0, 1}, {0, 2}}},
		{name: "tree", n: 4, want: []Edge{{0, 1}, {0, 2}, {1, 3}}},
		{name: "tree:3", n: 5, want: []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 4}}},
		{name: "random:7", n: 16, want: RandomTreeEdges(16, 7)},
		{name: "ring", n: 3, err: true},
		{name: "tree:0", n: 3, err: true},
		{name: "random:x", n: 3, err: true},
		{name: "line", n: 1, err: true},
	}
	for _, tc := range cases {
		got, err := ParseTopology(tc.name, tc.n)
		if tc.err {
			if err == nil {
				t.Errorf("ParseTopology(%q, %d): expected error", tc.name, tc.n)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTopology(%q, %d): %v", tc.name, tc.n, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseTopology(%q, %d) = %v, want %v", tc.name, tc.n, got, tc.want)
		}
	}
}
