package simnet

import (
	"fmt"
	"sort"
	"testing"

	"dimprune/internal/broker"
	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

func makeBrokers(t *testing.T, n int) []*broker.Broker {
	t.Helper()
	bs := make([]*broker.Broker, n)
	for i := range bs {
		b, err := broker.New(broker.Config{ID: fmt.Sprintf("b%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		bs[i] = b
	}
	return bs
}

func mustSub(t *testing.T, id uint64, subscriber, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, subscriber, subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConnectRejectsCycles(t *testing.T) {
	n := New()
	for _, b := range makeBrokers(t, 3) {
		n.Add(b)
	}
	if err := n.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(2, 0); err == nil {
		t.Error("cycle accepted")
	}
	if err := n.Connect(0, 0); err == nil {
		t.Error("self-link accepted")
	}
	if err := n.Connect(0, 9); err == nil {
		t.Error("unknown broker accepted")
	}
}

func TestLineSubscriptionPropagation(t *testing.T) {
	n, err := NewLine(makeBrokers(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe at broker 0: every other broker learns a remote entry.
	if err := n.SubscribeAt(0, mustSub(t, 1, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	stats := n.Stats()
	if stats[0].LocalSubs != 1 || stats[0].RemoteSubs != 0 {
		t.Errorf("broker 0 stats: %+v", stats[0])
	}
	for i := 1; i < 5; i++ {
		if stats[i].LocalSubs != 0 || stats[i].RemoteSubs != 1 {
			t.Errorf("broker %d stats: local=%d remote=%d", i, stats[i].LocalSubs, stats[i].RemoteSubs)
		}
	}
	// 4 links, one subscribe frame each.
	if tr := n.Traffic(); tr.ControlFrames != 4 {
		t.Errorf("ControlFrames = %d, want 4", tr.ControlFrames)
	}
}

func TestEndToEndDeliveryAcrossLine(t *testing.T) {
	n, err := NewLine(makeBrokers(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Subscriber at the far end, publisher at the near end.
	if err := n.SubscribeAt(4, mustSub(t, 1, "eve", `category = "scifi" and price <= 25`)); err != nil {
		t.Fatal(err)
	}
	n.ResetTraffic()
	dels, err := n.PublishAt(0, event.Build(1).Str("category", "scifi").Num("price", 20).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Broker != 4 || dels[0].Subscriber != "eve" {
		t.Fatalf("deliveries = %+v", dels)
	}
	// The event traverses exactly 4 links.
	if tr := n.Traffic(); tr.PublishFrames != 4 {
		t.Errorf("PublishFrames = %d, want 4", tr.PublishFrames)
	}
	// Non-matching event goes nowhere.
	n.ResetTraffic()
	dels, err = n.PublishAt(0, event.Build(2).Str("category", "crime").Num("price", 5).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 0 {
		t.Errorf("unexpected deliveries: %+v", dels)
	}
	if tr := n.Traffic(); tr.PublishFrames != 0 {
		t.Errorf("non-matching event routed %d hops", tr.PublishFrames)
	}
}

func TestSelectiveRoutingStopsEarly(t *testing.T) {
	n, err := NewLine(makeBrokers(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Subscriber in the middle: events from broker 0 travel only 2 hops.
	if err := n.SubscribeAt(2, mustSub(t, 1, "mid", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	n.ResetTraffic()
	if _, err := n.PublishAt(0, event.Build(1).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	if tr := n.Traffic(); tr.PublishFrames != 2 {
		t.Errorf("PublishFrames = %d, want 2 (0→1→2)", tr.PublishFrames)
	}
}

func TestPublishAtSubscriberBroker(t *testing.T) {
	n, err := NewLine(makeBrokers(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubscribeAt(1, mustSub(t, 1, "bob", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	dels, err := n.PublishAt(1, event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Broker != 1 {
		t.Fatalf("deliveries = %+v", dels)
	}
	if tr := n.Traffic(); tr.PublishFrames != 0 {
		t.Errorf("local-only match routed %d frames", tr.PublishFrames)
	}
}

func TestUnsubscribePropagates(t *testing.T) {
	n, err := NewLine(makeBrokers(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubscribeAt(3, mustSub(t, 1, "d", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	if err := n.UnsubscribeAt(3, 1); err != nil {
		t.Fatal(err)
	}
	for i, st := range n.Stats() {
		if st.LocalSubs+st.RemoteSubs != 0 {
			t.Errorf("broker %d still holds entries", i)
		}
	}
	dels, err := n.PublishAt(0, event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 0 {
		t.Errorf("delivery after unsubscribe: %+v", dels)
	}
}

func TestStarTopologyRouting(t *testing.T) {
	n, err := NewStar(makeBrokers(t, 4)) // hub 0, spokes 1..3
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubscribeAt(1, mustSub(t, 1, "s1", `x >= 0`)); err != nil {
		t.Fatal(err)
	}
	if err := n.SubscribeAt(2, mustSub(t, 2, "s2", `x >= 5`)); err != nil {
		t.Fatal(err)
	}
	n.ResetTraffic()
	dels, err := n.PublishAt(3, event.Build(1).Int("x", 7).Msg())
	if err != nil {
		t.Fatal(err)
	}
	subscribers := map[string]bool{}
	for _, d := range dels {
		subscribers[d.Subscriber] = true
	}
	if !subscribers["s1"] || !subscribers["s2"] || len(dels) != 2 {
		t.Errorf("deliveries = %+v", dels)
	}
	// 3 hops: 3→0, 0→1, 0→2.
	if tr := n.Traffic(); tr.PublishFrames != 3 {
		t.Errorf("PublishFrames = %d, want 3", tr.PublishFrames)
	}
}

func TestBalancedTreeRouting(t *testing.T) {
	// 7 brokers, fanout 2: 0-(1,2), 1-(3,4), 2-(5,6).
	n, err := NewBalancedTree(makeBrokers(t, 7), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBalancedTree(makeBrokers(t, 3), 0); err == nil {
		t.Error("zero fanout accepted")
	}
	// Subscriber at leaf 6, publisher at leaf 3: path 3→1→0→2→6, 4 hops.
	if err := n.SubscribeAt(6, mustSub(t, 1, "leaf6", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	n.ResetTraffic()
	dels, err := n.PublishAt(3, event.Build(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Broker != 6 {
		t.Fatalf("deliveries = %+v", dels)
	}
	if tr := n.Traffic(); tr.PublishFrames != 4 {
		t.Errorf("PublishFrames = %d, want 4", tr.PublishFrames)
	}
}

// TestExactlyOnceUnderPruning is invariant 4 of DESIGN.md §6: pruning adds
// overlay traffic but never false or missed deliveries.
func TestExactlyOnceUnderPruning(t *testing.T) {
	r := dist.New(99)
	brokers := makeBrokers(t, 5)
	n, err := NewLine(brokers)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-train every broker's model with a sample of events.
	sample := make([]*event.Message, 400)
	for i := range sample {
		sample[i] = randomMessage(r, uint64(i))
		for _, b := range brokers {
			b.Model().Observe(sample[i])
		}
	}

	// Random subscriptions spread across brokers.
	subs := map[uint64]*subscription.Subscription{}
	home := map[uint64]int{}
	for id := uint64(1); id <= 120; id++ {
		s, err := subscription.New(id, fmt.Sprintf("client-%d", id), randomTree(r, 3).Simplify())
		if err != nil {
			t.Fatal(err)
		}
		at := r.Intn(5)
		if err := n.SubscribeAt(at, s); err != nil {
			t.Fatal(err)
		}
		subs[id] = s
		home[id] = at
	}

	check := func(phase string) {
		for i := 0; i < 60; i++ {
			m := randomMessage(r, uint64(1000+i))
			pub := r.Intn(5)
			dels, err := n.PublishAt(pub, m)
			if err != nil {
				t.Fatal(err)
			}
			got := map[uint64]int{}
			for _, d := range dels {
				got[d.SubID]++
				if d.Broker != home[d.SubID] {
					t.Fatalf("%s: delivery for %d at broker %d, home is %d",
						phase, d.SubID, d.Broker, home[d.SubID])
				}
			}
			for id, s := range subs {
				want := 0
				if s.Matches(m) {
					want = 1
				}
				if got[id] != want {
					t.Fatalf("%s: subscription %d delivered %d times for %s, want %d",
						phase, id, got[id], m, want)
				}
			}
		}
	}

	check("unpruned")
	unpruned := n.Traffic().PublishFrames

	// Prune roughly half of everything prunable, then everything.
	n.PruneEach(2)
	check("half pruned")

	for n.PruneEach(1000) > 0 {
	}
	n.ResetTraffic()
	check("fully pruned")
	pruned := n.Traffic().PublishFrames
	if pruned < unpruned/10 {
		t.Logf("traffic sanity: unpruned=%d fullyPruned=%d", unpruned, pruned)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, []uint64) {
		r := dist.New(7)
		brokers := makeBrokers(t, 4)
		n, err := NewLine(brokers)
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(1); id <= 40; id++ {
			s, _ := subscription.New(id, "c", randomTree(r, 2).Simplify())
			if err := n.SubscribeAt(r.Intn(4), s); err != nil {
				t.Fatal(err)
			}
		}
		n.PruneEach(1)
		var delivered []uint64
		for i := 0; i < 50; i++ {
			dels, err := n.PublishAt(r.Intn(4), randomMessage(r, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]uint64, 0, len(dels))
			for _, d := range dels {
				ids = append(ids, d.SubID)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			delivered = append(delivered, ids...)
		}
		return n.Traffic().PublishFrames, delivered
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 {
		t.Errorf("publish frame counts differ: %d vs %d", f1, f2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("delivery streams differ in length: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery streams diverge at %d", i)
		}
	}
}

func TestPruningIncreasesTrafficMonotone(t *testing.T) {
	// Fully pruned routing forwards at least as many frames as unpruned
	// routing for the same publish sequence.
	load := func(pruneAll bool) uint64 {
		r := dist.New(21)
		brokers := makeBrokers(t, 5)
		n, err := NewLine(brokers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			m := randomMessage(r, uint64(i))
			for _, b := range brokers {
				b.Model().Observe(m)
			}
		}
		for id := uint64(1); id <= 80; id++ {
			s, _ := subscription.New(id, "c", randomTree(r, 3).Simplify())
			if err := n.SubscribeAt(r.Intn(5), s); err != nil {
				t.Fatal(err)
			}
		}
		if pruneAll {
			for n.PruneEach(1000) > 0 {
			}
		}
		n.ResetTraffic()
		for i := 0; i < 100; i++ {
			if _, err := n.PublishAt(r.Intn(5), randomMessage(r, uint64(5000+i))); err != nil {
				t.Fatal(err)
			}
		}
		return n.Traffic().PublishFrames
	}
	unpruned, pruned := load(false), load(true)
	if pruned < unpruned {
		t.Errorf("full pruning reduced traffic: %d -> %d", unpruned, pruned)
	}
}
