// Package simnet runs a set of brokers over a deterministic in-memory
// network: frames are delivered FIFO, single-threaded, until quiescence.
// Every transmission is counted (frames and encoded bytes), providing the
// actual-network-load measurements of Fig 1(e) without real sockets.
//
// The simulation enforces the paper's acyclic-overlay assumption: Connect
// refuses edges that would close a cycle.
package simnet

import (
	"fmt"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// endpoint addresses one side of a link.
type endpoint struct {
	broker int
	link   broker.LinkID
}

// envelope is one in-flight frame.
type envelope struct {
	to    endpoint
	frame wire.Frame
}

// TrafficCounters aggregates link-level transmissions.
type TrafficCounters struct {
	// PublishFrames counts event transmissions over links — the paper's
	// "routed events" unit.
	PublishFrames uint64
	// ControlFrames counts subscribe/unsubscribe transmissions.
	ControlFrames uint64
	// Bytes counts encoded frame bytes over links.
	Bytes uint64
	// ControlBytes counts the share of Bytes carried by control frames —
	// the covering plane's cost metric (control bytes per hop).
	ControlBytes uint64
}

// Delivery tags a broker.Delivery with the index of the broker that
// delivered it.
type Delivery struct {
	Broker int
	broker.Delivery
}

// Network is a deterministic broker overlay. Not safe for concurrent use.
type Network struct {
	brokers []*broker.Broker
	peers   [][]endpoint // peers[b][l] = remote endpoint of broker b's link l
	parent  []int        // union-find for acyclicity
	edges   []Edge       // Connect history, one per undirected link

	queue   []envelope
	traffic TrafficCounters
}

// New returns an empty network.
func New() *Network { return &Network{} }

// Add registers a broker and returns its index.
func (n *Network) Add(b *broker.Broker) int {
	n.brokers = append(n.brokers, b)
	n.peers = append(n.peers, nil)
	n.parent = append(n.parent, len(n.parent))
	return len(n.brokers) - 1
}

// Broker returns the broker at index i.
func (n *Network) Broker(i int) *broker.Broker { return n.brokers[i] }

// NumBrokers returns the number of brokers.
func (n *Network) NumBrokers() int { return len(n.brokers) }

// Traffic returns the accumulated link-level counters.
func (n *Network) Traffic() TrafficCounters { return n.traffic }

// Links returns the number of overlay edges (hops).
func (n *Network) Links() int {
	total := 0
	for _, p := range n.peers {
		total += len(p)
	}
	return total / 2
}

// ResetTraffic zeroes the link-level counters (topology unchanged).
func (n *Network) ResetTraffic() { n.traffic = TrafficCounters{} }

func (n *Network) find(x int) int {
	for n.parent[x] != x {
		n.parent[x] = n.parent[n.parent[x]]
		x = n.parent[x]
	}
	return x
}

// Connect links brokers a and b bidirectionally. It returns an error when
// either index is unknown or when the edge would close a cycle.
func (n *Network) Connect(a, b int) error {
	if a < 0 || a >= len(n.brokers) || b < 0 || b >= len(n.brokers) {
		return fmt.Errorf("simnet: connect %d-%d: unknown broker", a, b)
	}
	if a == b {
		return fmt.Errorf("simnet: broker %d cannot link to itself", a)
	}
	ra, rb := n.find(a), n.find(b)
	if ra == rb {
		return fmt.Errorf("simnet: connecting %d and %d would create a cycle", a, b)
	}
	n.parent[ra] = rb
	la := n.brokers[a].AddLink()
	lb := n.brokers[b].AddLink()
	n.peers[a] = append(n.peers[a], endpoint{broker: b, link: lb})
	n.peers[b] = append(n.peers[b], endpoint{broker: a, link: la})
	n.edges = append(n.edges, Edge{A: a, B: b})
	return nil
}

// NewLine builds the paper's distributed topology: brokers connected as a
// line b0 — b1 — … — bn.
func NewLine(brokers []*broker.Broker) (*Network, error) {
	n := New()
	for _, b := range brokers {
		n.Add(b)
	}
	for i := 1; i < len(brokers); i++ {
		if err := n.Connect(i-1, i); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// NewStar builds a hub-and-spoke overlay with brokers[0] as the hub.
func NewStar(brokers []*broker.Broker) (*Network, error) {
	n := New()
	for _, b := range brokers {
		n.Add(b)
	}
	for i := 1; i < len(brokers); i++ {
		if err := n.Connect(0, i); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// NewBalancedTree builds a complete k-ary tree overlay: broker i's children
// are brokers k·i+1 … k·i+k (while they exist). fanout must be at least 1.
func NewBalancedTree(brokers []*broker.Broker, fanout int) (*Network, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("simnet: tree fanout must be >= 1, got %d", fanout)
	}
	n := New()
	for _, b := range brokers {
		n.Add(b)
	}
	for i := 1; i < len(brokers); i++ {
		parent := (i - 1) / fanout
		if err := n.Connect(parent, i); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// send enqueues outgoing frames from broker from. Delivery is in-memory
// (the decoded frame travels, not bytes), so the broker's encode-once
// buffer is consumed here: its already-computed length is charged to the
// byte counter and the simulation's reference released back to the pool.
func (n *Network) send(from int, out []broker.Outgoing) error {
	for i := range out {
		o := &out[i]
		if int(o.Link) >= len(n.peers[from]) {
			for j := i; j < len(out); j++ {
				out[j].ReleaseEnc() // consume the rest of the batch's references too
			}
			return fmt.Errorf("simnet: broker %d emitted frame on unconnected link %d", from, o.Link)
		}
		n.queue = append(n.queue, envelope{to: n.peers[from][o.Link], frame: o.Frame})
		var size uint64
		if o.Enc != nil {
			size = uint64(o.Enc.FrameLen())
			o.ReleaseEnc()
		} else {
			size = uint64(wire.FrameSize(o.Frame))
		}
		n.traffic.Bytes += size
		switch o.Frame.Type {
		case wire.FramePublish:
			n.traffic.PublishFrames++
		default:
			n.traffic.ControlFrames++
			n.traffic.ControlBytes += size
		}
	}
	return nil
}

// run processes queued frames FIFO until the network is quiescent,
// appending deliveries to dst.
func (n *Network) run(dst []Delivery) ([]Delivery, error) {
	for head := 0; head < len(n.queue); head++ {
		env := n.queue[head]
		out, dels, err := n.brokers[env.to.broker].HandleFrame(env.to.link, env.frame)
		if err != nil {
			return dst, fmt.Errorf("simnet: broker %d: %w", env.to.broker, err)
		}
		for _, d := range dels {
			dst = append(dst, Delivery{Broker: env.to.broker, Delivery: d})
		}
		if err := n.send(env.to.broker, out); err != nil {
			return dst, err
		}
	}
	n.queue = n.queue[:0]
	return dst, nil
}

// SubscribeAt registers a subscription with the broker at index i and
// propagates it through the overlay.
func (n *Network) SubscribeAt(i int, s *subscription.Subscription) error {
	out, err := n.brokers[i].SubscribeLocal(s)
	if err != nil {
		return err
	}
	if err := n.send(i, out); err != nil {
		return err
	}
	_, err = n.run(nil)
	return err
}

// UnsubscribeAt retracts a subscription at broker i and propagates the
// retraction.
func (n *Network) UnsubscribeAt(i int, id uint64) error {
	out, err := n.brokers[i].UnsubscribeLocal(id)
	if err != nil {
		return err
	}
	if err := n.send(i, out); err != nil {
		return err
	}
	_, err = n.run(nil)
	return err
}

// PublishAt injects an event at broker i, routes it to quiescence, and
// returns every local delivery it caused anywhere in the overlay.
func (n *Network) PublishAt(i int, m *event.Message) ([]Delivery, error) {
	out, dels := n.brokers[i].PublishLocal(m)
	acc := make([]Delivery, 0, len(dels))
	for _, d := range dels {
		acc = append(acc, Delivery{Broker: i, Delivery: d})
	}
	if err := n.send(i, out); err != nil {
		return acc, err
	}
	return n.run(acc)
}

// PruneEach applies up to count pruning steps at every broker and returns
// the total performed.
func (n *Network) PruneEach(count int) int {
	total := 0
	for _, b := range n.brokers {
		total += b.Prune(count)
	}
	return total
}

// Stats returns every broker's stats snapshot.
func (n *Network) Stats() []broker.Stats {
	stats := make([]broker.Stats, len(n.brokers))
	for i, b := range n.brokers {
		stats[i] = b.Stats()
	}
	return stats
}
