package sensornet

import (
	"testing"

	"dimprune/internal/subscription"
)

func TestDefaultConfigGenerates(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := g.Event(1)
	for _, attr := range []string{"device", "site", "zone", "kind", "firmware",
		"temp", "humidity", "battery", "vibration", "rssi", "uptime_h", "fault"} {
		if !m.Has(attr) {
			t.Errorf("event missing attribute %q: %s", attr, m)
		}
	}
	s, err := g.Subscription(1, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Root.Validate(); err != nil {
		t.Errorf("generated subscription invalid: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := func() (string, string) {
		g, err := NewGenerator(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ev := g.Event(1).String()
		s, _ := g.Subscription(1, "x")
		return ev, s.String()
	}
	e1, s1 := gen()
	e2, s2 := gen()
	if e1 != e2 {
		t.Errorf("event streams diverge:\n%s\n%s", e1, e2)
	}
	if s1 != s2 {
		t.Errorf("subscription streams diverge:\n%s\n%s", s1, s2)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := DefaultConfig()
	g1, _ := NewGenerator(cfg)
	cfg.Seed = 2
	g2, _ := NewGenerator(cfg)
	if g1.Event(1).String() == g2.Event(1).String() {
		t.Error("different seeds produced identical first events")
	}
}

func TestEventValueRanges(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m := g.Event(uint64(i))
		if b, _ := m.Get("battery"); b.AsFloat() < 0 || b.AsFloat() > 100 {
			t.Fatalf("battery out of range: %v", b)
		}
		if temp, _ := m.Get("temp"); temp.AsFloat() < -20 || temp.AsFloat() > 120 {
			t.Fatalf("temp out of range: %v", temp)
		}
		if rssi, _ := m.Get("rssi"); rssi.AsInt() < -110 || rssi.AsInt() > -30 {
			t.Fatalf("rssi out of range: %v", rssi)
		}
		if h, _ := m.Get("humidity"); h.AsFloat() < 0 || h.AsFloat() > 100 {
			t.Fatalf("humidity out of range: %v", h)
		}
	}
}

func TestHighAttributeCardinality(t *testing.T) {
	// The scenario's defining property: equality predicates draw from
	// thousands of device names and hundreds of zone names, so values
	// rarely repeat across subscribers (covering-hostile).
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	devices := map[string]bool{}
	zones := map[string]bool{}
	const n = 20000
	for i := 0; i < n; i++ {
		m := g.Event(uint64(i))
		d, _ := m.Get("device")
		devices[d.AsString()] = true
		z, _ := m.Get("zone")
		zones[z.AsString()] = true
	}
	if len(devices) < 500 {
		t.Errorf("only %d distinct devices in %d events; cardinality too low", len(devices), n)
	}
	if len(zones) < 100 {
		t.Errorf("only %d distinct zones in %d events; cardinality too low", len(zones), n)
	}
}

func TestClassShapes(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		dw, err := g.OfClass(ClassDeviceWatcher, uint64(i*3+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(dw.Root, "device") || !hasLeafOn(dw.Root, "battery") {
			t.Fatalf("device watcher missing core predicates: %s", dw)
		}
		sa, err := g.OfClass(ClassSiteAlert, uint64(i*3+2), "c")
		if err != nil {
			t.Fatal(err)
		}
		if !hasLeafOn(sa.Root, "site") || !hasLeafOn(sa.Root, "temp") {
			t.Fatalf("site alert missing core predicates: %s", sa)
		}
		fa, err := g.OfClass(ClassFleetAuditor, uint64(i*3+3), "c")
		if err != nil {
			t.Fatal(err)
		}
		zoneLeaves := 0
		fa.Root.Walk(func(n, _ *subscription.Node) bool {
			if n.Kind == subscription.NodeLeaf && n.Pred.Attr == "zone" {
				zoneLeaves++
			}
			return true
		})
		if zoneLeaves < 2 {
			t.Fatalf("fleet auditor has %d zone leaves: %s", zoneLeaves, fa)
		}
	}
}

func TestShapesAreDisjunctiveAlertTrees(t *testing.T) {
	// Every class anchors an OR alert tree under its root conjunction —
	// the covering-hostile shape the scenario exists to exercise.
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	withOr := 0
	const n = 500
	for i := 0; i < n; i++ {
		s, err := g.Subscription(uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		hasOr := false
		s.Root.Walk(func(node, _ *subscription.Node) bool {
			if node.Kind == subscription.NodeOr {
				hasOr = true
			}
			return !hasOr
		})
		if hasOr {
			withOr++
		}
	}
	if withOr < n*9/10 {
		t.Errorf("only %d/%d subscriptions contain a disjunction; alert trees missing", withOr, n)
	}
}

func TestSubscriptionsArePrunable(t *testing.T) {
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s, err := g.Subscription(uint64(i), "c")
		if err != nil {
			t.Fatal(err)
		}
		if len(subscription.Candidates(s.Root, nil)) == 0 {
			t.Fatalf("unprunable subscription generated: %s", s)
		}
	}
}

func TestSubscriptionsMatchSomeEvents(t *testing.T) {
	// Liveness: a reasonable share of subscriptions match at least one
	// event in a large sample, and the overall match rate is neither zero
	// nor saturated (the auction's "workload too cold" check).
	g, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	events := g.Events(1, 5000)
	subs := make([]*subscription.Subscription, 300)
	for i := range subs {
		s, err := g.Subscription(uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	matchedSubs := 0
	totalMatches := 0
	for _, s := range subs {
		hit := 0
		for _, m := range events {
			if s.Matches(m) {
				hit++
			}
		}
		if hit > 0 {
			matchedSubs++
		}
		totalMatches += hit
	}
	if matchedSubs < len(subs)/10 {
		t.Errorf("only %d/%d subscriptions ever match; workload too cold", matchedSubs, len(subs))
	}
	rate := float64(totalMatches) / float64(len(events)*len(subs))
	if rate <= 0 || rate > 0.5 {
		t.Errorf("average match rate %v; want sparse but nonzero", rate)
	}
	t.Logf("matched subs: %d/%d, avg match rate %.4f", matchedSubs, len(subs), rate)
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClassWeights = [3]float64{0, 0, 0}
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("zero class weights accepted")
	}
	cfg = DefaultConfig()
	cfg.Devices = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestDegenerateFleetTerminates(t *testing.T) {
	// A fleet with a single zone must still generate fleet auditors (the
	// zone disjunction clamps to the distinct zones that exist) instead of
	// spinning forever looking for a second zone.
	cfg := DefaultConfig()
	cfg.Devices, cfg.Sites, cfg.ZonesPerSite = 1, 1, 1
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s, err := g.OfClass(ClassFleetAuditor, uint64(i+1), "c")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Root.Validate(); err != nil {
			t.Fatalf("degenerate-fleet auditor invalid: %v\n%s", err, s)
		}
	}
}

func TestOfClassUnknown(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	if _, err := g.OfClass(Class(99), 1, "c"); err == nil {
		t.Error("unknown class accepted")
	}
}

func hasLeafOn(n *subscription.Node, attr string) bool {
	found := false
	n.Walk(func(node, _ *subscription.Node) bool {
		if node.Kind == subscription.NodeLeaf && node.Pred.Attr == attr {
			found = true
		}
		return !found
	})
	return found
}
