// Package sensornet generates a fleet-telemetry workload: thousands of
// devices spread over sites and zones emit sensor readings, and
// subscriptions are alert trees — disjunctions of threshold conditions
// anchored by high-cardinality equality predicates (one device out of
// thousands, one zone out of hundreds).
//
// The scenario is deliberately covering-hostile — the opposite pole from
// internal/ticker. Equality predicates rarely repeat across subscribers
// and the disjunctive alert shapes give covering little to aggregate, so
// dimension-based pruning is the optimization that still bites: this is
// pruning's home turf (see EXPERIMENTS.md for the expected figure
// shapes). The nested AND-below-OR alert terms also exercise the paper's
// §3.2 innermost pruning restriction on shapes the auction workload only
// touches occasionally.
package sensornet

import (
	"fmt"
	"strconv"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

func init() {
	workload.Register(workload.Info{
		Name:        "sensornet",
		Description: "fleet telemetry: high attribute cardinality, disjunctive alert trees (covering-hostile, pruning's home turf)",
		New: func(seed uint64) (workload.Generator, error) {
			cfg := DefaultConfig()
			cfg.Seed = seed
			return NewGenerator(cfg)
		},
	})
}

// Class identifies the three subscription classes of the workload.
type Class int

// Subscription classes.
const (
	// ClassDeviceWatcher tracks one device out of thousands for trouble:
	// device = D ∧ (battery <= B ∨ fault = true [∨ rssi <= R]).
	ClassDeviceWatcher Class = iota + 1
	// ClassSiteAlert watches one site's environmental readings:
	// site = S ∧ (temp >= T ∨ vibration >= V [∨ humidity >= H]), with the
	// temperature term sometimes a nested conjunction (temp ∧ kind).
	ClassSiteAlert
	// ClassFleetAuditor sweeps a few zones of one sensor kind for aging
	// units: (zone = Z₁ ∨ …) ∧ kind = K ∧ (uptime ∨ battery ∨ firmware).
	ClassFleetAuditor
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassDeviceWatcher:
		return "device-watcher"
	case ClassSiteAlert:
		return "site-alert"
	case ClassFleetAuditor:
		return "fleet-auditor"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config parameterizes the workload generator.
type Config struct {
	// Seed makes the whole workload deterministic.
	Seed uint64
	// Devices, Sites, ZonesPerSite size the fleet universe. Zone names are
	// site-qualified, so zone cardinality is Sites × ZonesPerSite.
	Devices, Sites, ZonesPerSite int
	// DeviceSkew is the Zipf exponent of reporting popularity over devices
	// (gateways and busy sensors report more often, but far less skewed
	// than the ticker's hot symbols).
	DeviceSkew float64
	// ClassWeights gives the relative frequency of the three subscription
	// classes, in the order device-watcher, site-alert, fleet-auditor.
	ClassWeights [3]float64
}

// DefaultConfig returns the fleet-telemetry scenario parameters.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Devices:      3000,
		Sites:        120,
		ZonesPerSite: 4,
		DeviceSkew:   0.9,
		ClassWeights: [3]float64{0.40, 0.35, 0.25},
	}
}

var kindNames = []string{"thermal", "vibration", "power", "flow", "gateway"}
var kindWeights = []float64{0.30, 0.25, 0.20, 0.15, 0.10}

var firmwareNames = []string{"1.9.2", "2.0.1", "2.1.0", "2.1.3"}
var firmwareWeights = []float64{0.10, 0.25, 0.40, 0.25}

// device is one fleet unit; readings from the same device share site,
// zone, kind, and firmware, correlating attributes the way a deployed
// fleet does.
type device struct {
	name     string
	site     string
	zone     string
	kind     string
	firmware string
}

// Generator produces telemetry events and subscriptions. Events and
// subscriptions use independent random streams — each owns its RNG and
// its own device-popularity picker — so consuming more of one does not
// perturb the other (property-tested by the golden-seed tests). Not safe
// for concurrent use.
type Generator struct {
	cfg     Config
	devices []device
	sites   []string
	evRNG   *dist.RNG
	subRNG  *dist.RNG
	evPick  *dist.Zipf // event-stream popularity over devices
	subPick *dist.Zipf // subscription-stream popularity over devices

	zoneSeen  map[string]bool // construction-time scratch for zoneCount
	zoneCount int             // distinct zones actually held by devices
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	total := cfg.ClassWeights[0] + cfg.ClassWeights[1] + cfg.ClassWeights[2]
	if total <= 0 {
		return nil, fmt.Errorf("sensornet: class weights sum to %v", total)
	}
	if cfg.Devices < 1 || cfg.Sites < 1 || cfg.ZonesPerSite < 1 {
		return nil, fmt.Errorf("sensornet: fleet sizes must be positive (devices=%d sites=%d zones=%d)",
			cfg.Devices, cfg.Sites, cfg.ZonesPerSite)
	}
	root := dist.New(cfg.Seed)
	uniRNG := root.Split()
	g := &Generator{
		cfg:      cfg,
		devices:  make([]device, cfg.Devices),
		sites:    make([]string, cfg.Sites),
		evRNG:    root.Split(),
		subRNG:   root.Split(),
		zoneSeen: make(map[string]bool),
	}
	for i := range g.sites {
		g.sites[i] = "site-" + strconv.Itoa(i)
	}
	// Site occupancy is mildly skewed: big depots hold more devices.
	sitePick, err := dist.NewZipf(uniRNG, 0.8, cfg.Sites)
	if err != nil {
		return nil, err
	}
	for i := range g.devices {
		site := g.sites[sitePick.Draw()]
		g.devices[i] = device{
			name:     "dev-" + strconv.Itoa(i),
			site:     site,
			zone:     site + "/z" + strconv.Itoa(uniRNG.Intn(cfg.ZonesPerSite)),
			kind:     kindNames[uniRNG.Weighted(kindWeights)],
			firmware: firmwareNames[uniRNG.Weighted(firmwareWeights)],
		}
		if !g.zoneSeen[g.devices[i].zone] {
			g.zoneSeen[g.devices[i].zone] = true
			g.zoneCount++
		}
	}
	g.zoneSeen = nil
	if g.evPick, err = dist.NewZipf(g.evRNG, cfg.DeviceSkew, cfg.Devices); err != nil {
		return nil, err
	}
	if g.subPick, err = dist.NewZipf(g.subRNG, cfg.DeviceSkew, cfg.Devices); err != nil {
		return nil, err
	}
	return g, nil
}

// Name returns the registry name of the scenario.
func (g *Generator) Name() string { return "sensornet" }

// Event generates the next telemetry reading for a popularity-weighted
// device. Readings are mostly nominal with alert-worthy tails — low
// batteries, heat spikes, weak radio — so the alert-tree subscriptions
// fire on a small share of the traffic.
func (g *Generator) Event(id uint64) *event.Message {
	r := g.evRNG
	d := &g.devices[g.evPick.Draw()]
	return event.Build(id).
		Str("device", d.name).
		Str("site", d.site).
		Str("zone", d.zone).
		Str("kind", d.kind).
		Str("firmware", d.firmware).
		Num("temp", round1(r.Normal(45, 18, -20, 120))).
		Num("humidity", round1(r.Normal(40, 15, 0, 100))).
		Num("battery", round1(100-r.Exponential(25, 100))).
		Num("vibration", round1(r.Exponential(1.2, 30))).
		Int("rssi", int64(r.Normal(-72, 12, -110, -30))).
		Int("uptime_h", int64(r.Exponential(400, 20000))).
		Flag("fault", r.Bool(0.04)).
		Msg()
}

// Events generates n events with ascending IDs starting at startID.
func (g *Generator) Events(startID uint64, n int) []*event.Message {
	out := make([]*event.Message, n)
	for i := range out {
		out[i] = g.Event(startID + uint64(i))
	}
	return out
}

// Subscription generates the next subscription with the given ID and
// subscriber, drawing its class from the configured weights.
func (g *Generator) Subscription(id uint64, subscriber string) (*subscription.Subscription, error) {
	w := g.cfg.ClassWeights
	u := g.subRNG.Float64() * (w[0] + w[1] + w[2])
	switch {
	case u < w[0]:
		return g.OfClass(ClassDeviceWatcher, id, subscriber)
	case u < w[0]+w[1]:
		return g.OfClass(ClassSiteAlert, id, subscriber)
	default:
		return g.OfClass(ClassFleetAuditor, id, subscriber)
	}
}

// OfClass generates a subscription of a specific class.
func (g *Generator) OfClass(c Class, id uint64, subscriber string) (*subscription.Subscription, error) {
	var root *subscription.Node
	switch c {
	case ClassDeviceWatcher:
		root = g.deviceWatcher()
	case ClassSiteAlert:
		root = g.siteAlert()
	case ClassFleetAuditor:
		root = g.fleetAuditor()
	default:
		return nil, fmt.Errorf("sensornet: unknown class %d", int(c))
	}
	return subscription.New(id, subscriber, root)
}

// pickDevice draws a popularity-weighted device for the subscription
// stream (watchers track the units that report most).
func (g *Generator) pickDevice() *device { return &g.devices[g.subPick.Draw()] }

// deviceWatcher: device = D ∧ (battery <= B ∨ fault = true [∨ rssi <= R]).
// The device equality predicate carries the fleet's full cardinality —
// thousands of distinct values that almost never repeat across watchers.
func (g *Generator) deviceWatcher() *subscription.Node {
	r := g.subRNG
	d := g.pickDevice()
	alerts := []*subscription.Node{
		subscription.Le("battery", event.Float(round1(r.Range(20, 55)))),
		subscription.Eq("fault", event.Bool(true)),
	}
	if r.Bool(0.5) {
		alerts = append(alerts,
			subscription.Le("rssi", event.Int(int64(r.IntRange(-100, -85)))))
	}
	return subscription.And(
		subscription.Eq("device", event.String(d.name)),
		subscription.Or(alerts...),
	)
}

// siteAlert: site = S ∧ (temp-term ∨ vibration >= V [∨ humidity >= H]),
// where the temperature term is sometimes a nested conjunction
// (temp >= T ∧ kind = "thermal") — AND below OR, the shape on which the
// §3.2 innermost pruning restriction bites.
func (g *Generator) siteAlert() *subscription.Node {
	r := g.subRNG
	d := g.pickDevice()
	tempTerm := subscription.Ge("temp", event.Float(round1(r.Range(60, 85))))
	if r.Bool(0.3) {
		tempTerm = subscription.And(tempTerm,
			subscription.Eq("kind", event.String("thermal")))
	}
	alerts := []*subscription.Node{
		tempTerm,
		subscription.Ge("vibration", event.Float(round1(r.Range(4, 12)))),
	}
	if r.Bool(0.5) {
		alerts = append(alerts,
			subscription.Ge("humidity", event.Float(round1(r.Range(70, 90)))))
	}
	return subscription.And(
		subscription.Eq("site", event.String(d.site)),
		subscription.Or(alerts...),
	)
}

// fleetAuditor: (zone = Z₁ ∨ … ∨ zone = Zₖ) ∧ kind = K ∧
// (uptime_h >= U ∨ battery <= B ∨ firmware = F) — wide disjunctions over
// site-qualified zone names (hundreds of distinct values) hunting aging
// or outdated units.
func (g *Generator) fleetAuditor() *subscription.Node {
	r := g.subRNG
	k := r.IntRange(2, 3)
	// A degenerate fleet can hold fewer distinct zones than the audit
	// wants; clamp so the dedup loop below always terminates.
	if k > g.zoneCount {
		k = g.zoneCount
	}
	seen := make(map[string]bool, k)
	zones := make([]*subscription.Node, 0, k)
	for len(zones) < k {
		z := g.pickDevice().zone
		if seen[z] {
			continue
		}
		seen[z] = true
		zones = append(zones, subscription.Eq("zone", event.String(z)))
	}
	aging := []*subscription.Node{
		subscription.Ge("uptime_h", event.Int(int64(r.IntRange(1000, 8000)))),
		subscription.Le("battery", event.Float(round1(r.Range(15, 40)))),
	}
	if r.Bool(0.4) {
		aging = append(aging,
			subscription.Eq("firmware", event.String(firmwareNames[0])))
	}
	return subscription.And(
		subscription.Or(zones...),
		subscription.Eq("kind", event.String(kindNames[r.Weighted(kindWeights)])),
		subscription.Or(aging...),
	)
}

// round1 keeps readings to one decimal so rendered subscriptions stay
// readable.
func round1(f float64) float64 {
	if f < 0 {
		return -float64(int(-f*10+0.5)) / 10
	}
	return float64(int(f*10+0.5)) / 10
}
