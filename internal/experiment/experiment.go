// Package experiment reproduces the paper's evaluation (§4): sweeps over
// the proportional number of prunings for the three heuristics, in a
// centralized single-broker setting (Fig 1(a)–(c)) and a distributed
// five-broker line (Fig 1(d)–(f)).
//
// Abscissa normalization follows the paper: ratio r means ⌈r·T⌉ prunings
// were performed, where T is the total the heuristic can perform before
// every subscription is exhausted ("1, i.e., any other pruning removes a
// complete subscription"). T is measured by exhausting a scratch engine
// before the measured run (DESIGN.md §1 note 5).
package experiment

import (
	"fmt"
	"math"
	"time"

	"dimprune/internal/core"
	"dimprune/internal/simnet"
	"dimprune/internal/workload"

	// Populate the workload registry with the standard scenarios so any
	// Config.Workload name resolves without the caller importing generator
	// packages.
	_ "dimprune/internal/auction"
	_ "dimprune/internal/sensornet"
	_ "dimprune/internal/ticker"
)

// Config parameterizes a sweep.
type Config struct {
	// Subs and Events size the workload (paper: 200000 / 100000).
	Subs, Events int
	// TrainEvents seeds every selectivity model before measurement.
	TrainEvents int
	// Checkpoints is the number of abscissa points including 0 and 1
	// (11 gives steps of 0.1).
	Checkpoints int
	// Brokers is the overlay size of the distributed setting (paper: 5).
	Brokers int
	// Topology names the distributed overlay shape: "line" (default),
	// "star", "tree", "tree:<fanout>", or "random:<seed>" (see
	// simnet.ParseTopology). The paper evaluates a line; the other shapes
	// probe how routing state and latency respond to the overlay diameter.
	Topology string
	// Dimensions lists the heuristics to sweep (default: all three).
	Dimensions []core.Dimension
	// Workload names the registered scenario generating events and
	// subscriptions (default "auction", the paper's evaluation workload).
	Workload string
	// Seed makes the workload deterministic.
	Seed uint64
	// PruneOptions feeds through to the engines (ablations).
	PruneOptions core.Options
	// DisableCovering turns off the covering plane on the distributed
	// brokers: every subscription is forwarded to every peer. The default
	// (covering on) is what a deployment runs; the off switch isolates the
	// covering plane's routing-state and control-traffic contribution.
	DisableCovering bool
}

// DefaultConfig returns a laptop-scale configuration; cmd/prunesim raises
// Subs/Events to paper scale.
func DefaultConfig() Config {
	return Config{
		Subs:        20000,
		Events:      10000,
		TrainEvents: 5000,
		Checkpoints: 11,
		Brokers:     5,
		Dimensions:  []core.Dimension{core.DimNetwork, core.DimThroughput, core.DimMemory},
		Workload:    "auction",
		Seed:        1,
	}
}

func (c Config) validate() error {
	if c.Subs <= 0 || c.Events <= 0 {
		return fmt.Errorf("experiment: need positive Subs/Events, got %d/%d", c.Subs, c.Events)
	}
	if c.Checkpoints < 2 {
		return fmt.Errorf("experiment: need at least 2 checkpoints, got %d", c.Checkpoints)
	}
	if c.Brokers < 2 {
		return fmt.Errorf("experiment: distributed setting needs >= 2 brokers, got %d", c.Brokers)
	}
	if len(c.Dimensions) == 0 {
		return fmt.Errorf("experiment: no dimensions selected")
	}
	for _, d := range c.Dimensions {
		if !d.Valid() {
			return fmt.Errorf("experiment: invalid dimension %d", int(d))
		}
	}
	if _, ok := workload.Lookup(c.Workload); !ok {
		return fmt.Errorf("experiment: unknown workload %q", c.Workload)
	}
	if _, err := simnet.ParseTopology(c.Topology, c.Brokers); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

// topologyName returns the effective topology label ("" means "line").
func (c Config) topologyName() string {
	if c.Topology == "" {
		return "line"
	}
	return c.Topology
}

// Point is one checkpoint measurement; which fields are meaningful depends
// on the setting (centralized vs. distributed).
type Point struct {
	// Ratio is the proportional number of prunings in [0, 1].
	Ratio float64
	// Prunings is the absolute number of prunings performed system-wide.
	Prunings int

	// FilterTimePerEvent is the ordinate of Fig 1(a)/(d): average wall time
	// spent filtering per published event (summed over brokers in the
	// distributed setting).
	FilterTimePerEvent time.Duration
	// MatchFraction is the ordinate of Fig 1(b): matched routing entries
	// divided by (events × subscriptions) — the expected share of events a
	// subscription's routing entry matches.
	MatchFraction float64
	// AssocReduction is the ordinate of Fig 1(c): 1 − current/initial
	// predicate/subscription associations over all routing entries.
	AssocReduction float64

	// NetworkIncrease is the ordinate of Fig 1(e): proportional increase in
	// publish-frame transmissions over the unoptimized run (0 = unchanged,
	// 1.0 = doubled).
	NetworkIncrease float64
	// NonLocalAssocReduction is the ordinate of Fig 1(f): association
	// reduction over non-local routing entries only.
	NonLocalAssocReduction float64

	// DeliveryP50 and DeliveryP99 are end-to-end delivery latency
	// quantiles over the checkpoint's published events: the wall time from
	// publish until every hop has matched and delivered the event
	// system-wide (distributed setting only; zero when centralized).
	DeliveryP50, DeliveryP99 time.Duration
}

// Sweep is one heuristic's measurement series.
type Sweep struct {
	Dimension core.Dimension
	Total     int // prunings at exhaustion (the abscissa normalizer)
	Points    []Point
	// Routing captures the distributed control plane after subscription
	// propagation (zero value in the centralized setting). It is a
	// per-sweep capture, but covering is dimension-independent, so every
	// sweep of a run reports the same numbers.
	Routing RoutingStats
}

// RoutingStats summarizes the routing state and control traffic the
// subscription phase of a distributed run left behind — the covering
// plane's two cost metrics (routing-table entries per hop, control bytes
// per hop).
type RoutingStats struct {
	// CoveringOn records whether the covering plane was active.
	CoveringOn bool
	// Brokers and Links describe the overlay (a line has Brokers-1 links).
	Brokers, Links int
	// RemoteEntries is the system-wide count of non-local routing entries —
	// the O(covers) state the overlay holds after forwarding.
	RemoteEntries int
	// CoverRoots is the system-wide count of advertised entries (forest
	// roots plus opaque entries); zero when covering is off.
	CoverRoots int
	// ControlFrames and ControlBytes count the subscribe/unsubscribe
	// transmissions that built the tables.
	ControlFrames, ControlBytes uint64
}

// EntriesPerHop returns the average non-local routing entries per overlay
// link.
func (r RoutingStats) EntriesPerHop() float64 {
	if r.Links == 0 {
		return 0
	}
	return float64(r.RemoteEntries) / float64(r.Links)
}

// ControlBytesPerHop returns the average control bytes transmitted per
// overlay link during the subscription phase.
func (r RoutingStats) ControlBytesPerHop() float64 {
	if r.Links == 0 {
		return 0
	}
	return float64(r.ControlBytes) / float64(r.Links)
}

// Result bundles the sweeps of one setting.
type Result struct {
	Setting string // "centralized" or "distributed"
	Config  Config
	Sweeps  []Sweep
}

// ratios returns the checkpoint abscissae.
func ratios(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

// targetSteps converts a ratio into an absolute pruning target.
func targetSteps(ratio float64, total int) int {
	return int(math.Round(ratio * float64(total)))
}
