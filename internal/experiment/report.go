package experiment

import (
	"fmt"
	"strings"
)

// Figure is one reproduced paper figure as plottable series.
type Figure struct {
	// ID is the paper's figure number, e.g. "1a".
	ID string
	// Title matches the paper's caption.
	Title string
	// YLabel describes the ordinate.
	YLabel string
	// Series holds one line per heuristic, labelled sel/eff/mem as in the
	// paper.
	Series []FigureSeries
}

// FigureSeries is one heuristic's curve.
type FigureSeries struct {
	Label string
	X, Y  []float64
}

// Figures converts a Result into its paper figures: 1(a)–(c) for the
// centralized setting, 1(d)–(f) for the distributed one.
func Figures(res *Result) []Figure {
	type spec struct {
		id, title, ylabel string
		y                 func(Point) float64
	}
	var specs []spec
	if res.Setting == "centralized" {
		specs = []spec{
			{"1a", "Time efficiency (centralized)", "Filtering time per event in sec",
				func(p Point) float64 { return p.FilterTimePerEvent.Seconds() }},
			{"1b", "Expected network load (centralized)", "Proport. no. of matching events",
				func(p Point) float64 { return p.MatchFraction }},
			{"1c", "Memory usage (centralized)", "Prop. reduction in pred/sub assoc.",
				func(p Point) float64 { return p.AssocReduction }},
		}
	} else {
		specs = []spec{
			{"1d", "Time efficiency (distributed)", "Filtering time per event in sec",
				func(p Point) float64 { return p.FilterTimePerEvent.Seconds() }},
			{"1e", "Actual network load (distributed)", "Proport. increase in network load",
				func(p Point) float64 { return p.NetworkIncrease }},
			{"1f", "Memory usage (distributed)", "Prop. reduction in pred/sub assoc.",
				func(p Point) float64 { return p.NonLocalAssocReduction }},
		}
	}
	figs := make([]Figure, 0, len(specs))
	for _, sp := range specs {
		fig := Figure{ID: sp.id, Title: sp.title, YLabel: sp.ylabel}
		for _, sweep := range res.Sweeps {
			series := FigureSeries{Label: sweep.Dimension.String()}
			for _, p := range sweep.Points {
				series.X = append(series.X, p.Ratio)
				series.Y = append(series.Y, sp.y(p))
			}
			fig.Series = append(fig.Series, series)
		}
		figs = append(figs, fig)
	}
	return figs
}

// RenderTable renders a figure as an aligned text table, one row per
// abscissa checkpoint and one column per heuristic.
func RenderTable(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "ordinate: %s\n", fig.YLabel)
	fmt.Fprintf(&b, "%-8s", "ratio")
	for _, s := range fig.Series {
		fmt.Fprintf(&b, "%14s", s.Label)
	}
	b.WriteByte('\n')
	if len(fig.Series) == 0 {
		return b.String()
	}
	for i := range fig.Series[0].X {
		fmt.Fprintf(&b, "%-8.2f", fig.Series[0].X[i])
		for _, s := range fig.Series {
			fmt.Fprintf(&b, "%14.6f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV renders a figure as CSV with a ratio column and one column per
// heuristic.
func RenderCSV(fig Figure) string {
	var b strings.Builder
	b.WriteString("ratio")
	for _, s := range fig.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	if len(fig.Series) == 0 {
		return b.String()
	}
	for i := range fig.Series[0].X {
		fmt.Fprintf(&b, "%.3f", fig.Series[0].X[i])
		for _, s := range fig.Series {
			fmt.Fprintf(&b, ",%.8f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary reports headline comparisons between the heuristics of a result,
// in the spirit of the paper's §4.2 discussion. It is best-effort prose for
// tools; EXPERIMENTS.md records the full numbers.
func Summary(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "setting: %s (%d subscriptions, %d events)\n",
		res.Setting, res.Config.Subs, res.Config.Events)
	if res.Setting == "distributed" && len(res.Sweeps) > 0 {
		r := res.Sweeps[0].Routing
		covering := "on"
		if !r.CoveringOn {
			covering = "off"
		}
		fmt.Fprintf(&b, "  routing: covering %s; %s topology, %d brokers / %d hops; %d remote entries (%.1f/hop)",
			covering, res.Config.topologyName(), r.Brokers, r.Links, r.RemoteEntries, r.EntriesPerHop())
		if r.CoveringOn {
			fmt.Fprintf(&b, ", %d advertised roots", r.CoverRoots)
		}
		fmt.Fprintf(&b, "; control %d frames, %d bytes (%.1f/hop)\n",
			r.ControlFrames, r.ControlBytes, r.ControlBytesPerHop())
	}
	for _, sweep := range res.Sweeps {
		last := sweep.Points[len(sweep.Points)-1]
		fmt.Fprintf(&b, "  %s: total prunings %d;", sweep.Dimension, sweep.Total)
		fmt.Fprintf(&b, " final time/event %v, match fraction %.4f, assoc reduction %.2f",
			last.FilterTimePerEvent, last.MatchFraction, last.AssocReduction)
		if res.Setting == "distributed" {
			fmt.Fprintf(&b, ", network increase %.2f, non-local assoc reduction %.2f",
				last.NetworkIncrease, last.NonLocalAssocReduction)
			fmt.Fprintf(&b, ", delivery p50 %v p99 %v", last.DeliveryP50, last.DeliveryP99)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
