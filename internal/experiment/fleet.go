package experiment

import (
	"fmt"
	"strings"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/fleet"
	"dimprune/internal/metrics"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

// FleetConfig parameterizes the horizontal-scaling sweep: one workload run
// against fleets of increasing shard count.
type FleetConfig struct {
	// Subs and Events size the workload.
	Subs, Events int
	// ShardCounts lists the fleet sizes to measure, in order; the first is
	// the speedup baseline (1 measures the single-broker floor).
	ShardCounts []int
	// Workload names the registered scenario; Seed makes it deterministic.
	Workload string
	Seed     uint64
	// DisableCovering turns off the covering plane on the shards: every
	// shard advertises every subscription, so the coordinator broadcasts
	// each publish (the scatter index has nothing to skip with).
	DisableCovering bool
}

// DefaultFleetConfig returns the laptop-scale sweep the fleet figure uses.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Subs:        20000,
		Events:      5000,
		ShardCounts: []int{1, 2, 4},
		Workload:    "auction",
		Seed:        1,
	}
}

func (c FleetConfig) validate() error {
	if c.Subs <= 0 || c.Events <= 0 {
		return fmt.Errorf("experiment: need positive Subs/Events, got %d/%d", c.Subs, c.Events)
	}
	if len(c.ShardCounts) == 0 {
		return fmt.Errorf("experiment: no fleet sizes selected")
	}
	for _, n := range c.ShardCounts {
		if n < 1 {
			return fmt.Errorf("experiment: fleet size %d < 1", n)
		}
	}
	if _, ok := workload.Lookup(c.Workload); !ok {
		return fmt.Errorf("experiment: unknown workload %q", c.Workload)
	}
	return nil
}

// FleetPoint is one fleet size's measurement.
type FleetPoint struct {
	// Shards is the fleet size.
	Shards int
	// EventsPerSec is the coordinator's publish throughput: measurement
	// events divided by the wall time of the publish loop.
	EventsPerSec float64
	// Speedup is EventsPerSec relative to the sweep's first point.
	Speedup float64
	// Deliveries counts end-to-end deliveries (identical across fleet
	// sizes — sharding must not change delivery semantics).
	Deliveries uint64
	// DeliveryP50 and DeliveryP99 are per-publish latency quantiles: wall
	// time from handing the event to the coordinator until the full
	// gathered delivery set is back.
	DeliveryP50, DeliveryP99 time.Duration
	// ScatterWidth is the average number of shards a publish reached;
	// ShardsSkipped counts shard publishes the scatter index avoided.
	ScatterWidth  float64
	ShardsSkipped uint64
}

// FleetResult bundles one fleet-scaling sweep.
type FleetResult struct {
	Config FleetConfig
	Points []FleetPoint
}

// RunFleet measures publish throughput and delivery latency across fleet
// sizes: the same subscriptions and events, partitioned over 1, 2, 4, ...
// in-process shards behind one coordinator. Deliveries are asserted
// identical across sizes — a scaling number from a fleet that drops or
// duplicates deliveries would be meaningless.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gen, err := workload.New(cfg.Workload, cfg.Seed)
	if err != nil {
		return nil, err
	}
	subs := make([]*subscription.Subscription, cfg.Subs)
	for i := range subs {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("client-%d", i+1))
		if err != nil {
			return nil, err
		}
		subs[i] = s
	}
	events := gen.Events(1, cfg.Events)

	result := &FleetResult{Config: cfg}
	var baseline float64
	var baseDeliveries uint64
	for _, n := range cfg.ShardCounts {
		pt, err := measureFleet(cfg, n, subs, events)
		if err != nil {
			return nil, err
		}
		if len(result.Points) == 0 {
			baseline = pt.EventsPerSec
			baseDeliveries = pt.Deliveries
		} else if pt.Deliveries != baseDeliveries {
			return nil, fmt.Errorf("experiment: fleet of %d delivered %d events, baseline delivered %d",
				n, pt.Deliveries, baseDeliveries)
		}
		if baseline > 0 {
			pt.Speedup = pt.EventsPerSec / baseline
		}
		result.Points = append(result.Points, pt)
	}
	return result, nil
}

// measureFleet builds one fleet, loads the subscriptions, warms the
// matchers, and times the measurement publish loop.
func measureFleet(cfg FleetConfig, shards int, subs []*subscription.Subscription, events []*event.Message) (FleetPoint, error) {
	c := fleet.NewCoordinator()
	defer func() { _ = c.Close() }()
	for i := 0; i < shards; i++ {
		sh, err := fleet.NewLocalShard(fmt.Sprintf("shard%d", i), broker.Config{
			DisableCovering: cfg.DisableCovering,
		})
		if err != nil {
			return FleetPoint{}, err
		}
		if err := c.AddShard(sh); err != nil {
			return FleetPoint{}, err
		}
	}
	for _, s := range subs {
		// Each size gets its own clone: shards prune and rewrite trees
		// in place, so runs must not share subscription storage.
		cl, err := subscription.New(s.ID, s.Subscriber, s.Root.Clone())
		if err != nil {
			return FleetPoint{}, err
		}
		if err := c.Subscribe(cl); err != nil {
			return FleetPoint{}, err
		}
	}
	for _, m := range events[:min(100, len(events))] {
		if _, err := c.Publish(m); err != nil {
			return FleetPoint{}, err
		}
	}
	preStats := c.Stats()

	var deliveries uint64
	var lat metrics.Histogram
	start := time.Now()
	for _, m := range events {
		t0 := time.Now()
		dels, err := c.Publish(m)
		if err != nil {
			return FleetPoint{}, err
		}
		lat.Observe(time.Since(t0))
		deliveries += uint64(len(dels))
	}
	elapsed := time.Since(start)

	st := c.Stats()
	pubs := st.Publishes - preStats.Publishes
	snap := lat.Snapshot()
	pt := FleetPoint{
		Shards:        shards,
		EventsPerSec:  float64(len(events)) / elapsed.Seconds(),
		Deliveries:    deliveries,
		DeliveryP50:   snap.Quantile(0.5),
		DeliveryP99:   snap.Quantile(0.99),
		ShardsSkipped: st.ShardsSkipped - preStats.ShardsSkipped,
	}
	if pubs > 0 {
		pt.ScatterWidth = float64(st.ShardPublishes-preStats.ShardPublishes) / float64(pubs)
	}
	return pt, nil
}

// FleetSummary renders the sweep as an aligned table — the fleet-scaling
// figure (EXPERIMENTS.md) in text form.
func FleetSummary(r *FleetResult) string {
	var b strings.Builder
	covering := "on"
	if r.Config.DisableCovering {
		covering = "off"
	}
	fmt.Fprintf(&b, "fleet scaling — workload %s, %d subs, %d events, covering %s\n",
		r.Config.Workload, r.Config.Subs, r.Config.Events, covering)
	fmt.Fprintf(&b, "%8s %12s %8s %12s %12s %8s %8s\n",
		"shards", "events/s", "speedup", "p50", "p99", "width", "skipped")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %12.0f %7.2fx %12s %12s %8.2f %8d\n",
			p.Shards, p.EventsPerSec, p.Speedup, p.DeliveryP50, p.DeliveryP99,
			p.ScatterWidth, p.ShardsSkipped)
	}
	return b.String()
}
