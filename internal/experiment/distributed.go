package experiment

import (
	"fmt"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/core"
	"dimprune/internal/metrics"
	"dimprune/internal/simnet"
)

// RunDistributed measures Fig 1(d)–(f): brokers connected as a line,
// subscriptions spread uniformly, events published at every broker in turn.
// Local entries stay exact; every broker prunes its non-local routing
// entries with the heuristic under test.
func RunDistributed(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := newInputs(cfg)
	if err != nil {
		return nil, err
	}
	result := &Result{Setting: "distributed", Config: cfg}
	for _, dim := range cfg.Dimensions {
		sweep, err := runDistributedSweep(cfg, w, dim)
		if err != nil {
			return nil, err
		}
		result.Sweeps = append(result.Sweeps, *sweep)
	}
	return result, nil
}

// buildOverlay constructs the configured overlay topology with all
// subscriptions in place. Subscription i lives at broker i mod Brokers.
func buildOverlay(cfg Config, w *inputs, dim core.Dimension) (*simnet.Network, error) {
	brokers := make([]*broker.Broker, cfg.Brokers)
	for i := range brokers {
		b, err := broker.New(broker.Config{
			ID:              fmt.Sprintf("b%d", i),
			Dimension:       dim,
			PruneOptions:    cfg.PruneOptions,
			Model:           w.model, // shared pre-trained model; read-only here
			DisableCovering: cfg.DisableCovering,
		})
		if err != nil {
			return nil, err
		}
		brokers[i] = b
	}
	edges, err := simnet.ParseTopology(cfg.Topology, cfg.Brokers)
	if err != nil {
		return nil, err
	}
	net, err := simnet.NewNetwork(brokers, edges)
	if err != nil {
		return nil, err
	}
	for i, s := range w.subs {
		if err := net.SubscribeAt(i%cfg.Brokers, s); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// exhaustTotals learns each broker's pruning-exhaustion count on scratch
// engines over its non-local entries.
func exhaustTotals(cfg Config, w *inputs, dim core.Dimension) ([]int, int, error) {
	totals := make([]int, cfg.Brokers)
	grand := 0
	for b := 0; b < cfg.Brokers; b++ {
		eng, err := core.NewEngine(dim, w.model, cfg.PruneOptions)
		if err != nil {
			return nil, 0, err
		}
		for i, s := range w.subs {
			if i%cfg.Brokers == b {
				continue // local at b: never pruned
			}
			if err := eng.Register(s); err != nil {
				return nil, 0, err
			}
		}
		totals[b] = eng.Exhaust()
		grand += totals[b]
	}
	return totals, grand, nil
}

func runDistributedSweep(cfg Config, w *inputs, dim core.Dimension) (*Sweep, error) {
	totals, grand, err := exhaustTotals(cfg, w, dim)
	if err != nil {
		return nil, err
	}
	net, err := buildOverlay(cfg, w, dim)
	if err != nil {
		return nil, err
	}
	routing := captureRouting(cfg, net)

	initialNonLocal := 0
	initialAssocs := 0
	for i := 0; i < cfg.Brokers; i++ {
		initialNonLocal += net.Broker(i).NonLocalAssociations()
		initialAssocs += net.Broker(i).Stats().Associations
	}

	// Warm every broker's matcher before the first measured checkpoint.
	for i, m := range w.events[:min(100, len(w.events))] {
		if _, err := net.PublishAt(i%cfg.Brokers, m); err != nil {
			return nil, err
		}
	}

	sweep := &Sweep{Dimension: dim, Total: grand, Routing: routing}
	var baselineFrames uint64
	var baselineDeliveries uint64
	done := make([]int, cfg.Brokers)
	for _, ratio := range ratios(cfg.Checkpoints) {
		for b := 0; b < cfg.Brokers; b++ {
			target := targetSteps(ratio, totals[b])
			if target > done[b] {
				done[b] += net.Broker(b).Prune(target - done[b])
			}
		}
		pt, frames, deliveries, err := measureDistributed(cfg, w, net)
		if err != nil {
			return nil, err
		}
		pt.Ratio = ratio
		for b := 0; b < cfg.Brokers; b++ {
			pt.Prunings += done[b]
		}
		if ratio == 0 {
			baselineFrames = frames
			baselineDeliveries = deliveries
		} else if deliveries != baselineDeliveries {
			// Invariant 4 (DESIGN.md §6): pruning must not change deliveries.
			return nil, fmt.Errorf("experiment: deliveries changed under pruning: %d -> %d (dim %s, ratio %.2f)",
				baselineDeliveries, deliveries, dim, ratio)
		}
		if baselineFrames > 0 {
			pt.NetworkIncrease = float64(frames)/float64(baselineFrames) - 1
		}
		nonLocal := 0
		assocs := 0
		for b := 0; b < cfg.Brokers; b++ {
			nonLocal += net.Broker(b).NonLocalAssociations()
			assocs += net.Broker(b).Stats().Associations
		}
		pt.NonLocalAssocReduction = reduction(initialNonLocal, nonLocal)
		pt.AssocReduction = reduction(initialAssocs, assocs)
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// captureRouting snapshots the routing state and control traffic the
// subscription phase produced; called after buildOverlay, before events.
func captureRouting(cfg Config, net *simnet.Network) RoutingStats {
	r := RoutingStats{
		CoveringOn: !cfg.DisableCovering,
		Brokers:    cfg.Brokers,
		Links:      net.Links(),
	}
	for i := 0; i < cfg.Brokers; i++ {
		st := net.Broker(i).Stats()
		r.RemoteEntries += st.RemoteSubs
		r.CoverRoots += st.CoverRoots + st.CoverOpaque
	}
	t := net.Traffic()
	r.ControlFrames = t.ControlFrames
	r.ControlBytes = t.ControlBytes
	return r
}

// measureDistributed publishes the measurement events round-robin across
// brokers and reports the aggregate filtering time per event, the number of
// publish-frame transmissions, and the number of end-to-end deliveries.
func measureDistributed(cfg Config, w *inputs, net *simnet.Network) (Point, uint64, uint64, error) {
	for i := 0; i < cfg.Brokers; i++ {
		net.Broker(i).ResetCounters()
	}
	net.ResetTraffic()
	var deliveries uint64
	var e2e metrics.Histogram
	for i, m := range w.events {
		start := time.Now()
		dels, err := net.PublishAt(i%cfg.Brokers, m)
		if err != nil {
			return Point{}, 0, 0, err
		}
		e2e.Observe(time.Since(start))
		deliveries += uint64(len(dels))
	}
	var filterTime time.Duration
	var matched uint64
	for i := 0; i < cfg.Brokers; i++ {
		c := net.Broker(i).Stats().Counters
		filterTime += c.FilterTime
		matched += c.MatchedEntries
	}
	lat := e2e.Snapshot()
	pt := Point{
		FilterTimePerEvent: filterTime / time.Duration(len(w.events)),
		MatchFraction:      float64(matched) / (float64(len(w.events)) * float64(len(w.subs))),
		DeliveryP50:        lat.Quantile(0.5),
		DeliveryP99:        lat.Quantile(0.99),
	}
	return pt, net.Traffic().PublishFrames, deliveries, nil
}
