package experiment

import (
	"strings"
	"testing"

	"dimprune/internal/core"
)

// smallConfig keeps unit-test sweeps fast; the benches and cmd/prunesim use
// realistic scales.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Subs = 600
	cfg.Events = 400
	cfg.TrainEvents = 800
	cfg.Checkpoints = 5
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Subs = 0 },
		func(c *Config) { c.Events = -1 },
		func(c *Config) { c.Checkpoints = 1 },
		func(c *Config) { c.Brokers = 1 },
		func(c *Config) { c.Dimensions = nil },
		func(c *Config) { c.Dimensions = []core.Dimension{core.Dimension(9)} },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := RunCentralized(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunCentralizedShape(t *testing.T) {
	cfg := smallConfig()
	res, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setting != "centralized" || len(res.Sweeps) != 3 {
		t.Fatalf("unexpected result shape: %s, %d sweeps", res.Setting, len(res.Sweeps))
	}
	for _, sweep := range res.Sweeps {
		if len(sweep.Points) != cfg.Checkpoints {
			t.Fatalf("%s: %d points, want %d", sweep.Dimension, len(sweep.Points), cfg.Checkpoints)
		}
		if sweep.Total <= 0 {
			t.Errorf("%s: exhaustion total %d", sweep.Dimension, sweep.Total)
		}
		first, last := sweep.Points[0], sweep.Points[len(sweep.Points)-1]
		if first.Ratio != 0 || last.Ratio != 1 {
			t.Errorf("%s: ratios span [%v, %v]", sweep.Dimension, first.Ratio, last.Ratio)
		}
		if first.Prunings != 0 {
			t.Errorf("%s: prunings at ratio 0 = %d", sweep.Dimension, first.Prunings)
		}
		if last.Prunings != sweep.Total {
			t.Errorf("%s: prunings at ratio 1 = %d, want %d", sweep.Dimension, last.Prunings, sweep.Total)
		}
		// Matching can only grow with pruning; associations can only fall.
		for i := 1; i < len(sweep.Points); i++ {
			if sweep.Points[i].MatchFraction+1e-12 < sweep.Points[i-1].MatchFraction {
				t.Errorf("%s: match fraction decreased at %v", sweep.Dimension, sweep.Points[i].Ratio)
			}
			if sweep.Points[i].AssocReduction+1e-12 < sweep.Points[i-1].AssocReduction {
				t.Errorf("%s: assoc reduction decreased at %v", sweep.Dimension, sweep.Points[i].Ratio)
			}
		}
		if last.AssocReduction <= 0 || last.AssocReduction >= 1 {
			t.Errorf("%s: final assoc reduction %v", sweep.Dimension, last.AssocReduction)
		}
	}
}

func TestCentralizedDimensionCharacter(t *testing.T) {
	// The headline §4.2 orderings at mid-sweep: network-based pruning
	// matches fewest extra events; memory-based reduces associations at
	// least as much as the others.
	cfg := smallConfig()
	cfg.Subs = 1500
	cfg.Events = 600
	res, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byDim := map[core.Dimension]Sweep{}
	for _, s := range res.Sweeps {
		byDim[s.Dimension] = s
	}
	mid := cfg.Checkpoints / 2
	selLoad := byDim[core.DimNetwork].Points[mid].MatchFraction
	memLoad := byDim[core.DimMemory].Points[mid].MatchFraction
	if selLoad > memLoad {
		t.Errorf("network-based pruning matched more events (%.4f) than memory-based (%.4f) at mid-sweep",
			selLoad, memLoad)
	}
	memRed := byDim[core.DimMemory].Points[mid].AssocReduction
	selRed := byDim[core.DimNetwork].Points[mid].AssocReduction
	if memRed+0.02 < selRed {
		t.Errorf("memory-based pruning reduced associations less (%v) than network-based (%v)",
			memRed, selRed)
	}
}

func TestRunDistributedShape(t *testing.T) {
	cfg := smallConfig()
	cfg.Subs = 400
	cfg.Events = 250
	res, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setting != "distributed" {
		t.Fatal("wrong setting")
	}
	for _, sweep := range res.Sweeps {
		if len(sweep.Points) != cfg.Checkpoints {
			t.Fatalf("%s: %d points", sweep.Dimension, len(sweep.Points))
		}
		if sweep.Points[0].NetworkIncrease != 0 {
			t.Errorf("%s: baseline network increase %v", sweep.Dimension, sweep.Points[0].NetworkIncrease)
		}
		for i := 1; i < len(sweep.Points); i++ {
			if sweep.Points[i].NetworkIncrease+1e-9 < sweep.Points[i-1].NetworkIncrease {
				t.Errorf("%s: network increase decreased at ratio %v",
					sweep.Dimension, sweep.Points[i].Ratio)
			}
			if sweep.Points[i].NonLocalAssocReduction+1e-12 < sweep.Points[i-1].NonLocalAssocReduction {
				t.Errorf("%s: non-local assoc reduction decreased", sweep.Dimension)
			}
		}
		last := sweep.Points[len(sweep.Points)-1]
		if last.NetworkIncrease <= 0 {
			t.Errorf("%s: full pruning did not increase network load (%v)",
				sweep.Dimension, last.NetworkIncrease)
		}
		if last.NonLocalAssocReduction <= 0 {
			t.Errorf("%s: no non-local association reduction", sweep.Dimension)
		}
	}
}

func TestFiguresAndRendering(t *testing.T) {
	cfg := smallConfig()
	res, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(res)
	if len(figs) != 3 {
		t.Fatalf("%d figures, want 3", len(figs))
	}
	ids := []string{"1a", "1b", "1c"}
	for i, fig := range figs {
		if fig.ID != ids[i] {
			t.Errorf("figure %d id %s, want %s", i, fig.ID, ids[i])
		}
		if len(fig.Series) != 3 {
			t.Errorf("figure %s has %d series", fig.ID, len(fig.Series))
		}
		table := RenderTable(fig)
		if !strings.Contains(table, "Figure "+fig.ID) || !strings.Contains(table, "sel") {
			t.Errorf("table rendering incomplete:\n%s", table)
		}
		csv := RenderCSV(fig)
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if len(lines) != cfg.Checkpoints+1 {
			t.Errorf("csv has %d lines, want %d", len(lines), cfg.Checkpoints+1)
		}
		if lines[0] != "ratio,sel,eff,mem" {
			t.Errorf("csv header = %q", lines[0])
		}
	}
	if s := Summary(res); !strings.Contains(s, "centralized") {
		t.Errorf("summary = %q", s)
	}
}

func TestDistributedFigures(t *testing.T) {
	cfg := smallConfig()
	cfg.Subs = 300
	cfg.Events = 150
	cfg.Checkpoints = 3
	res, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(res)
	ids := []string{"1d", "1e", "1f"}
	for i, fig := range figs {
		if fig.ID != ids[i] {
			t.Errorf("figure %d id %s, want %s", i, fig.ID, ids[i])
		}
	}
	if s := Summary(res); !strings.Contains(s, "network increase") {
		t.Errorf("summary = %q", s)
	}
}

func TestSweepDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Subs = 300
	cfg.Events = 200
	cfg.Dimensions = []core.Dimension{core.DimNetwork}
	r1, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Sweeps[0].Points {
		p1, p2 := r1.Sweeps[0].Points[i], r2.Sweeps[0].Points[i]
		if p1.MatchFraction != p2.MatchFraction || p1.AssocReduction != p2.AssocReduction ||
			p1.Prunings != p2.Prunings {
			t.Fatalf("sweep not deterministic at point %d: %+v vs %+v", i, p1, p2)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	fig := Figure{
		ID: "1b", Title: "Expected network load (centralized)",
		YLabel: "Proport. no. of matching events",
		Series: []FigureSeries{
			{Label: "sel", X: []float64{0, 0.5, 1}, Y: []float64{0.01, 0.02, 0.2}},
			{Label: "eff", X: []float64{0, 0.5, 1}, Y: []float64{0.01, 0.1, 0.2}},
			{Label: "mem", X: []float64{0, 0.5, 1}, Y: []float64{0.01, 0.3, 0.35}},
		},
	}
	out := RenderASCII(fig, 40, 10)
	for _, want := range []string{"Figure 1b", "s = sel", "e = eff", "m = mem", "prunings"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// All three series start at the same point: the origin cell overlaps.
	if !strings.Contains(out, "*") {
		t.Errorf("coinciding start not marked:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("plot has %d lines", len(lines))
	}
	// Degenerate sizes are clamped, not crashed.
	if small := RenderASCII(fig, 1, 1); !strings.Contains(small, "Figure 1b") {
		t.Error("clamped plot broken")
	}
	// All-zero series must not divide by zero.
	zero := Figure{ID: "z", Series: []FigureSeries{{Label: "sel", X: []float64{0, 1}, Y: []float64{0, 0}}}}
	if z := RenderASCII(zero, 20, 6); !strings.Contains(z, "s") {
		t.Error("zero series not plotted")
	}
}

// TestRunFleetSweep smoke-tests the fleet-scaling sweep at tiny scale and
// pins its delivery-invariance check.
func TestRunFleetSweep(t *testing.T) {
	cfg := FleetConfig{
		Subs:        400,
		Events:      300,
		ShardCounts: []int{1, 2, 4},
		Workload:    "auction",
		Seed:        7,
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
	base := res.Points[0]
	if base.Deliveries == 0 {
		t.Fatal("baseline delivered nothing; sweep is vacuous")
	}
	if base.Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", base.Speedup)
	}
	for _, p := range res.Points {
		if p.Deliveries != base.Deliveries {
			t.Errorf("fleet of %d delivered %d, baseline %d", p.Shards, p.Deliveries, base.Deliveries)
		}
		if p.EventsPerSec <= 0 {
			t.Errorf("fleet of %d: nonpositive throughput", p.Shards)
		}
	}
	if s := FleetSummary(res); !strings.Contains(s, "fleet scaling") {
		t.Errorf("summary missing header:\n%s", s)
	}
}
