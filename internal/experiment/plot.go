package experiment

import (
	"fmt"
	"strings"
)

// RenderASCII draws a figure as a terminal plot, one mark per heuristic:
// s = network-based (sel), e = throughput-based (eff), m = memory-based
// (mem); * marks coinciding points. It is the quickest way to compare curve
// shapes against the paper without leaving the terminal.
func RenderASCII(fig Figure, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	var maxY float64
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}

	// grid[row][col]; row 0 is the top.
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	mark := func(label string) byte {
		if len(label) == 0 {
			return '?'
		}
		return label[0]
	}
	for _, s := range fig.Series {
		for i := range s.X {
			col := int(s.X[i] * float64(width-1))
			row := height - 1 - int(s.Y[i]/maxY*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			cell := &grid[row][col]
			switch *cell {
			case ' ':
				*cell = mark(s.Label)
			case mark(s.Label):
			default:
				*cell = '*'
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "%s (top = %.6g)\n", fig.YLabel, maxY)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " 0%sprunings%s1\n",
		strings.Repeat(" ", (width-10)/2), strings.Repeat(" ", width-10-(width-10)/2))
	legend := make([]string, 0, len(fig.Series))
	for _, s := range fig.Series {
		legend = append(legend, fmt.Sprintf("%c = %s", mark(s.Label), s.Label))
	}
	fmt.Fprintf(&b, " %s, * = overlap\n", strings.Join(legend, ", "))
	return b.String()
}
