package experiment

import (
	"fmt"
	"time"

	"dimprune/internal/auction"
	"dimprune/internal/core"
	"dimprune/internal/event"
	"dimprune/internal/filter"
	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
)

// RunCentralized measures Fig 1(a)–(c): a single broker's routing table
// holding every subscription as a prunable entry (the centralized setting
// isolates the effect of pruning on filtering itself).
func RunCentralized(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := newWorkload(cfg)
	if err != nil {
		return nil, err
	}
	result := &Result{Setting: "centralized", Config: cfg}
	for _, dim := range cfg.Dimensions {
		sweep, err := runCentralizedSweep(cfg, w, dim)
		if err != nil {
			return nil, err
		}
		result.Sweeps = append(result.Sweeps, *sweep)
	}
	return result, nil
}

// workload is the shared deterministic input of every sweep: identical
// subscriptions, training sample, and measurement events for all heuristics.
type workload struct {
	subs   []*subscription.Subscription
	train  []*event.Message
	events []*event.Message
	model  *selectivity.Model
}

func newWorkload(cfg Config) (*workload, error) {
	gen, err := auction.NewGenerator(cfg.Workload)
	if err != nil {
		return nil, err
	}
	w := &workload{
		subs:  make([]*subscription.Subscription, cfg.Subs),
		model: selectivity.NewModel(),
	}
	for i := range w.subs {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("client-%d", i+1))
		if err != nil {
			return nil, err
		}
		w.subs[i] = s
	}
	w.train = gen.Events(1, cfg.TrainEvents)
	for _, m := range w.train {
		w.model.Observe(m)
	}
	w.events = gen.Events(uint64(cfg.TrainEvents+1), cfg.Events)
	return w, nil
}

// newEngine builds a pruning engine over the workload's subscriptions.
func (w *workload) newEngine(cfg Config, dim core.Dimension) (*core.Engine, error) {
	eng, err := core.NewEngine(dim, w.model, cfg.PruneOptions)
	if err != nil {
		return nil, err
	}
	for _, s := range w.subs {
		if err := eng.Register(s); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

func runCentralizedSweep(cfg Config, w *workload, dim core.Dimension) (*Sweep, error) {
	// Pass 1: learn the exhaustion total T on a scratch engine.
	scratch, err := w.newEngine(cfg, dim)
	if err != nil {
		return nil, err
	}
	total := scratch.Exhaust()

	// Pass 2: measured run with incremental pruning between checkpoints.
	eng, err := w.newEngine(cfg, dim)
	if err != nil {
		return nil, err
	}
	table := filter.New()
	for _, s := range w.subs {
		if err := table.Register(s); err != nil {
			return nil, err
		}
	}
	initialAssocs := table.Associations()

	// Warm the matcher (index sort, caches) so the first checkpoint's
	// timing is not polluted by one-time costs.
	for _, m := range w.events[:min(200, len(w.events))] {
		table.MatchCount(m)
	}

	sweep := &Sweep{Dimension: dim, Total: total}
	done := 0
	for _, ratio := range ratios(cfg.Checkpoints) {
		target := targetSteps(ratio, total)
		for done < target {
			op, ok := eng.Step()
			if !ok {
				break
			}
			if err := table.Update(op.Subscription); err != nil {
				return nil, fmt.Errorf("experiment: apply pruning: %w", err)
			}
			done++
		}
		pt := measureCentralized(table, w.events)
		pt.Ratio = ratio
		pt.Prunings = done
		pt.AssocReduction = reduction(initialAssocs, table.Associations())
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// measureCentralized filters every measurement event through the table,
// timing the filter and counting matched entries.
func measureCentralized(table *filter.Engine, events []*event.Message) Point {
	matched := 0
	start := time.Now()
	for _, m := range events {
		matched += table.MatchCount(m)
	}
	elapsed := time.Since(start)
	return Point{
		FilterTimePerEvent: elapsed / time.Duration(len(events)),
		MatchFraction:      float64(matched) / (float64(len(events)) * float64(table.NumSubscriptions())),
	}
}

func reduction(initial, current int) float64 {
	if initial == 0 {
		return 0
	}
	return 1 - float64(current)/float64(initial)
}
