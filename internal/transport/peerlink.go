package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/wire"
)

// Peer links — persistent broker↔broker sessions.
//
// A peer link opens with a handshake: each side sends a wire.PeerHello
// carrying its broker ID and the broker IDs it knows to be in its overlay
// component (itself included). A broker refuses a link — wire.PeerReject,
// then close — when the two member sets intersect: the edge would close a
// cycle, violating the paper's acyclic-overlay assumption (§2.1), or link
// a broker to itself. On acceptance each side merges the other's member
// set into its own, remembers which members arrived through which link —
// a link's death retracts exactly the component it connected — and floods
// the newly learned members over its other links (a PeerHello on an
// established link is a membership update), so even the far ends of two
// joined components refuse a later ring-closing edge. The flood
// terminates because the overlay it crosses is acyclic.
//
// Limits of the connect-time check: member additions propagate, removals
// retract only at the endpoint that lost the link, so after failures a
// distant broker can hold stale members and conservatively refuse a
// legitimate edge (never the unsafe direction) until the departed broker
// rejoins; and two handshakes racing on disjoint knowledge can each
// commit before learning of the other. Sequentially assembled overlays —
// the standard `brokerd -peer` bring-up — are checked exactly. The
// deterministic simulation (internal/simnet) remains the global oracle:
// its union-find Connect refuses cycles with whole-overlay knowledge.
//
// After the handshake the link carries ordinary frames. Each side
// immediately replays its routing table to the other (broker.SyncFrames) —
// as original, never-pruned trees, and covers only: with the covering
// plane on, the replay carries the broker's advertisement set for that
// link (forest roots, opaque entries, and entries covered toward the
// link's peer), not every entry — the same O(covers) set incremental
// forwarding would have built. This same replay is what makes reconnects
// converge: when a link dies, both sides drop the entries learned through
// it (broker.DropLink), promote local entries whose cover died, and
// forward the retractions plus promotion subscribes; when the dialing
// side re-establishes the link, the replay restores the advertisement
// set. Forwarded (non-local) entries learned over peer links are prunable
// routing state, exactly as in the simulation: covering and
// dimension-based pruning generalize them, and downstream brokers
// re-filter, so pruning on a networked overlay can add forwarded traffic
// but never lose a delivery.

// Peer is a dialed broker-to-broker link that the server keeps alive:
// when the connection drops, the server redials with backoff and replays
// routing state on every reconnect. Accepted (listener-side) peer links
// have no Peer handle — reconnecting is the dialer's job.
type Peer struct {
	s    *Server
	addr string
	rng  *rand.Rand // redial jitter; only the redial loop draws from it

	stopOnce sync.Once
	stop     chan struct{}

	mu   sync.Mutex
	conn Conn
	up   bool
}

// reconnect backoff bounds and the ceiling on one dial + handshake pass.
const (
	peerBackoffMin       = 50 * time.Millisecond
	peerBackoffMax       = 2 * time.Second
	peerBackoffFloor     = 5 * time.Millisecond
	peerHandshakeTimeout = 10 * time.Second
)

// Redial jitter seeding. By default every Peer's jitter RNG seeds from the
// clock; tests pin a base seed so redial schedules replay exactly. Each
// Peer still gets a distinct stream (base + golden-ratio stride per dial) —
// deterministic desynchronization, not lockstep.
var (
	redialJitterBase atomic.Int64
	redialJitterSeq  atomic.Int64
)

// SetRedialJitterSeed pins the redial-backoff jitter to a deterministic
// seed for every Peer dialed afterward, process-wide. Pass 0 to restore
// clock seeding. Test-only; calling it mid-traffic only affects new dials.
func SetRedialJitterSeed(seed int64) {
	redialJitterBase.Store(seed)
	redialJitterSeq.Store(0)
}

func newRedialRand() *rand.Rand {
	base := redialJitterBase.Load()
	if base == 0 {
		return rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	n := redialJitterSeq.Add(1)
	return rand.New(rand.NewSource(base + n*0x9e3779b97f4a7c)) // golden-ratio stride per dial
}

// redialJitter draws the sleep before the next redial attempt: full jitter —
// uniform over (0, cap] plus a small floor — rather than the deterministic
// ladder `50ms·2^k`. When one broker's death drops many links at once, the
// deterministic ladder synchronizes every survivor's retries into storms
// that arrive together forever; full jitter spreads each round across the
// whole window, so contention decays instead of repeating.
func redialJitter(rng *rand.Rand, cap time.Duration) time.Duration {
	return peerBackoffFloor + time.Duration(rng.Int63n(int64(cap)))
}

// DialPeer opens a persistent peer link to a neighbor broker's listener:
// handshake (acyclicity check + membership exchange), state sync, and
// automatic redial-with-backoff when the link later drops, resyncing on
// every reconnect. The first connection attempt is synchronous — a broker
// that refuses the link (cycle, self link) or is unreachable surfaces
// here. The returned Peer stops reconnecting on Peer.Close or Shutdown.
func (s *Server) DialPeer(addr string) (*Peer, error) {
	p := &Peer{s: s, addr: addr, rng: newRedialRand(), stop: make(chan struct{})}
	down, err := p.connect()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		p.stopDialing()
		return nil, ErrClosed
	}
	s.peers = append(s.peers, p)
	s.wg.Add(1) // redial-loop slot, reserved while !closed is known
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		p.redialLoop(down)
	}()
	return p, nil
}

// Addr returns the peer's dial address.
func (p *Peer) Addr() string { return p.addr }

// Connected reports whether the link is currently established.
func (p *Peer) Connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// Close stops reconnecting and drops the current link, if any. The
// broker-side cleanup (routing entries, retractions) runs through the
// ordinary detach path. An in-flight redial observes the stop and tears
// its fresh connection down instead of installing it (see connect).
func (p *Peer) Close() {
	p.stopDialing()
	p.mu.Lock()
	conn := p.conn
	p.conn = nil
	p.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	p.s.forgetPeer(p)
}

// Bounce drops the current connection, if any, without stopping the redial
// loop: the link dies through the ordinary detach path (routing entries
// dropped, retractions forwarded) and the peer reconnects through backoff,
// resyncing state — a transient link loss on demand. Chaos harnesses use
// it both as the link-cut fault and to force a redial through a freshly
// installed SetPeerDialer wrapper. No-op while the link is already down.
func (p *Peer) Bounce() {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// forgetPeer drops a closed Peer from the dialer registry so long-lived
// servers do not accumulate one entry per historical dial.
func (s *Server) forgetPeer(p *Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.peers {
		if q == p {
			s.peers = append(s.peers[:i], s.peers[i+1:]...)
			return
		}
	}
}

// stopDialing halts the redial loop without touching the live connection
// (Shutdown closes connections itself).
func (p *Peer) stopDialing() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// connect performs one dial + handshake + attach + sync pass and returns
// the channel closed when the resulting link goes down again.
func (p *Peer) connect() (chan struct{}, error) {
	s := p.s
	conn, err := s.dialPeerConn(p.addr)
	if err != nil {
		return nil, err
	}
	// The handshake must be interruptible: expose the connection to
	// Peer.Close (via p.conn) and Shutdown (via s.pending), and bound a
	// black-holed peer — one that accepts TCP and then goes silent — with
	// a deadline, so neither the redial loop nor a first DialPeer can park
	// in Recv forever.
	p.mu.Lock()
	select {
	case <-p.stop:
		p.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	default:
		p.conn = conn
	}
	p.mu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()
	defer s.unpend(conn)
	timer := time.AfterFunc(peerHandshakeTimeout, func() { _ = conn.Close() })
	defer timer.Stop()

	if err := conn.Send(wire.PeerHelloFrame(s.currentHello())); err != nil {
		_ = conn.Close()
		return nil, err
	}
	f, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: peer %s: handshake: %w", p.addr, err)
	}
	switch f.Type {
	case wire.FramePeerReject:
		_ = conn.Close()
		return nil, fmt.Errorf("transport: peer %s rejected link: %s", p.addr, f.Reason)
	case wire.FramePeerHello:
	default:
		_ = conn.Close()
		return nil, fmt.Errorf("transport: peer %s: unexpected %s during handshake", p.addr, f.Type)
	}
	timer.Stop() // handshake done; the live link must outlast the deadline

	down := make(chan struct{})
	id, err := s.attachLink(conn, f.Peer, nil, func() {
		p.mu.Lock()
		p.up = false
		p.mu.Unlock()
		close(down)
	})
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: peer %s (%s): %w", p.addr, f.Peer.ID, err)
	}
	// Install the link unless Close raced the handshake — Close snapshots
	// p.conn, so a connection it could not see must tear itself down here
	// (the reader's exit then detaches the just-attached link).
	stopped := false
	p.mu.Lock()
	select {
	case <-p.stop:
		stopped = true
	default:
		p.conn = conn
		p.up = true
	}
	p.mu.Unlock()
	if stopped {
		_ = conn.Close()
		return nil, ErrClosed
	}
	s.syncLink(id)
	s.logPeer("peer %s (%s): link %d up", p.addr, f.Peer.ID, id)
	return down, nil
}

// redialLoop waits for the current link to die and re-establishes it with
// exponential backoff, until the peer or server closes.
func (p *Peer) redialLoop(down chan struct{}) {
	for {
		select {
		case <-p.stop:
			return
		case <-down:
		}
		p.s.logPeer("peer %s: link down, reconnecting", p.addr)
		backoff := peerBackoffMin
		for {
			select {
			case <-p.stop:
				return
			default:
			}
			var err error
			down, err = p.connect()
			if err == nil {
				break
			}
			// Keep retrying even on an explicit rejection: a refusal for a
			// would-be cycle can be stale membership that clears once the
			// remote finishes detaching the old link. The log line is the
			// operator's signal when it does not clear.
			delay := redialJitter(p.rng, backoff)
			p.s.logPeer("peer %s: reconnect failed (retrying in %v): %v", p.addr, delay, err)
			select {
			case <-p.stop:
				return
			case <-time.After(delay):
			}
			backoff *= 2
			if backoff > peerBackoffMax {
				backoff = peerBackoffMax
			}
		}
	}
}

// acceptPeer runs the listener side of the handshake: validate the
// dialer's hello, reply with this broker's own (pre-merge) hello, then
// commit + attach and replay routing state over the new link. The reply
// must leave before attachLink starts the link's outbox writer — once the
// writer runs, concurrently dispatched frames could precede the hello on
// the wire and fail the dialer's handshake. On refusal the dialer gets a
// reject frame with the reason, then the connection closes.
func (s *Server) acceptPeer(conn Conn, hello *wire.PeerHello) {
	reply := s.currentHello() // snapshot before merging the dialer's members
	if err := s.precheckPeer(hello); err != nil {
		s.logPeer("peer %s refused: %v", hello.ID, err)
		_ = conn.Send(wire.PeerRejectFrame(err.Error()))
		_ = conn.Close()
		return
	}
	if err := conn.Send(wire.PeerHelloFrame(reply)); err != nil {
		_ = conn.Close()
		return
	}
	// attachLink re-validates under the same lock it commits with; a
	// concurrent handshake that won the race surfaces here. The hello is
	// already on the wire, so the refusal is a plain close — the dialer
	// sees the link die and (if managed) retries through its redial loop.
	id, err := s.attachLink(conn, hello, nil, nil)
	if err != nil {
		s.logPeer("peer %s refused post-hello: %v", hello.ID, err)
		_ = conn.Close()
		return
	}
	s.syncLink(id)
	s.logPeer("peer %s (dialed in): link %d up", hello.ID, id)
}

// precheckPeer runs the acyclicity check without committing membership —
// the deterministic pre-reply refusal of acceptPeer.
func (s *Server) precheckPeer(hello *wire.PeerHello) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkPeerLocked(hello)
}

// currentHello snapshots this broker's hello: its ID plus the overlay
// members of its component, sorted for deterministic frames.
func (s *Server) currentHello() *wire.PeerHello {
	s.mu.RLock()
	defer s.mu.RUnlock()
	members := make([]string, 0, len(s.members))
	for m := range s.members {
		members = append(members, m)
	}
	sort.Strings(members)
	return &wire.PeerHello{ID: s.b.ID(), Members: members}
}

// checkPeerLocked enforces the acyclic-overlay assumption for a new peer
// link; the caller holds the registry lock. A hello naming this broker, or
// any broker already in this component, would close a cycle.
func (s *Server) checkPeerLocked(hello *wire.PeerHello) error {
	if hello.ID == s.b.ID() {
		return fmt.Errorf("transport: broker %q cannot peer with itself", hello.ID)
	}
	if _, dup := s.members[hello.ID]; dup {
		return fmt.Errorf("transport: peering with %q would close a cycle (already in this overlay component)", hello.ID)
	}
	for _, m := range hello.Members {
		if _, dup := s.members[m]; dup {
			return fmt.Errorf("transport: peering with %q would close a cycle (%q is in both components)", hello.ID, m)
		}
	}
	return nil
}

// syncLink replays the broker's routing state over a newly attached peer
// link. It runs under the control-plane ordering lock so the replay is a
// consistent snapshot relative to concurrent subscribes: an entry either
// rides the replay or is forwarded normally afterward (a duplicate is
// converged by the receiving broker's replace semantics).
func (s *Server) syncLink(id broker.LinkID) {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, err := s.b.SyncFrames(id)
	if err != nil {
		return // link already dead again
	}
	s.dispatch(out, nil)
}
