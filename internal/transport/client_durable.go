package transport

// Client-side durable subscriptions. A durable is named, and the name —
// not the session — owns the delivery state: the broker persists a cursor
// per name in its WAL, so a client that disconnects (or a broker that
// crashes and restarts over the same log directory) resumes where the
// acks left off. Subscribing to the same name from a later session is the
// reattach: the broker replays every record after the cursor.
//
// Delivery is at-least-once. Records are redelivered until acked, so a
// consumer that crashes mid-processing sees the record again on
// reattach; consumers needing exactly-once semantics deduplicate by
// DurableEvent.Seq, which is stable across redeliveries.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dimprune/internal/delivery"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// DurableEvent is one replayed record: the matching event plus its
// broker-log sequence number, the token Ack takes and the key for
// consumer-side deduplication.
type DurableEvent struct {
	Seq uint64
	Msg *event.Message
}

// DurableHandle is one attached durable subscription. Events arrive on C
// (default) or via a dedicated-goroutine callback (DurableCallback, which
// auto-acks unless ManualAck is set). Channel consumers must Ack
// explicitly — an unacked event replays on the next attach.
//
// The handle's queue always blocks when full: drop policies make no sense
// under replay (the WAL is the real buffer, and a dropped-but-acked event
// would be lost). As with ephemeral handles, a full queue stalls the
// session's shared connection reader; the broker additionally stops
// sending past a window of unacked records, so backpressure reaches the
// log instead of ballooning in memory.
type DurableHandle struct {
	name string
	id   uint64
	c    *Client

	q         *delivery.Queue[DurableEvent]
	cb        func(DurableEvent)
	manualAck bool

	discard   atomic.Bool
	drainDone chan struct{} // non-nil in callback mode

	retireOnce sync.Once
	retireErr  error
}

// durableOptions collects one durable subscription's settings.
type durableOptions struct {
	callback  func(DurableEvent)
	buffer    int
	manualAck bool
}

// DurableOption configures one durable subscription at attach time.
type DurableOption func(*durableOptions)

// DurableCallback delivers replayed events by invoking fn from the
// subscription's dedicated delivery goroutine, acking each event as fn
// returns (unless ManualAck). fn must not call Unsubscribe or Close —
// they wait for the delivery goroutine and would deadlock.
func DurableCallback(fn func(DurableEvent)) DurableOption {
	return func(o *durableOptions) { o.callback = fn }
}

// DurableBuffer sets the handle's delivery-queue capacity (minimum 1,
// default 64).
func DurableBuffer(n int) DurableOption {
	return func(o *durableOptions) { o.buffer = n }
}

// ManualAck disables the callback mode's automatic ack: fn returning no
// longer marks the event processed, and the consumer acks explicitly via
// Handle.Ack when it has durably handled the event.
func ManualAck() DurableOption {
	return func(o *durableOptions) { o.manualAck = true }
}

// DurableSubscribeExpr attaches the named durable with a subscription
// given in text syntax. See DurableSubscribeNode.
func (c *Client) DurableSubscribeExpr(name, expr string, opts ...DurableOption) (*DurableHandle, error) {
	root, err := subscription.Parse(expr)
	if err != nil {
		return nil, err
	}
	return c.DurableSubscribeNode(name, root, opts...)
}

// DurableSubscribeNode attaches the named durable: the broker registers
// (or resumes) a persistent cursor under name and replays every logged
// matching event after it — first attach starts at the log tail, a
// reattach redelivers whatever was not acked. One handle per name per
// session; the broker likewise runs one replay per name, so attaching
// from a new session supersedes the previous session's attachment.
func (c *Client) DurableSubscribeNode(name string, root *subscription.Node, opts ...DurableOption) (*DurableHandle, error) {
	if name == "" {
		return nil, fmt.Errorf("transport: empty durable name")
	}
	o := durableOptions{buffer: 64}
	for _, opt := range opts {
		opt(&o)
	}
	if o.manualAck && o.callback == nil {
		return nil, fmt.Errorf("transport: ManualAck applies to DurableCallback mode (channel consumers always ack explicitly)")
	}
	// Allocate and register under one lock hold — durable IDs share the
	// session namespace with ephemeral handles, so the allocation reserves
	// the ID in c.durableIDs before the lock drops. Discoverable before the
	// frame leaves: replay can start as soon as the server processes it.
	c.mu.Lock()
	if _, dup := c.durables[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: durable %q already attached in this session", name)
	}
	id, err := c.nextSubIDLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	s, err := subscription.New(id, c.subscriber, root)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	d := &DurableHandle{name: name, id: id, c: c, cb: o.callback, manualAck: o.manualAck}
	d.q = delivery.New[DurableEvent](o.buffer, delivery.Block)
	c.durables[name] = d
	c.durableIDs[id] = struct{}{}
	c.mu.Unlock()
	if d.cb != nil {
		d.drainDone = make(chan struct{})
		go d.drainLoop()
	}
	if err := c.conn.Send(wire.DurableSubscribeFrame(name, s)); err != nil {
		c.mu.Lock()
		delete(c.durables, name)
		delete(c.durableIDs, id)
		c.mu.Unlock()
		d.retire(true)
		return nil, err
	}
	return d, nil
}

// drainLoop is the dedicated delivery goroutine of a callback handle.
func (d *DurableHandle) drainLoop() {
	defer close(d.drainDone)
	for ev := range d.q.C() {
		if d.discard.Load() {
			continue
		}
		d.cb(ev)
		if !d.manualAck {
			_ = d.Ack(ev.Seq)
		}
	}
}

// deliver enqueues one replayed record from the session reader.
func (d *DurableHandle) deliver(ev DurableEvent) { d.q.Enqueue(ev) }

// Name returns the durable's name.
func (d *DurableHandle) Name() string { return d.name }

// ID returns the subscription ID of this attachment (a new one per
// session; the durable's identity is its name).
func (d *DurableHandle) ID() uint64 { return d.id }

// C returns the delivery channel: replayed records in log order, closed
// when the handle retires or the session ends (buffered records stay
// receivable). Nil in callback mode.
func (d *DurableHandle) C() <-chan DurableEvent {
	if d.cb != nil {
		return nil
	}
	return d.q.C()
}

// Delivered returns how many records the broker has handed this
// attachment (redeliveries included).
func (d *DurableHandle) Delivered() uint64 { return d.q.Enqueued() }

// Ack marks every record up to and including seq as processed: the broker
// persists the position, never redelivers past it, and may reclaim the
// log space. Acks are cumulative — acking the latest seq acks everything
// before it.
func (d *DurableHandle) Ack(seq uint64) error {
	return d.c.conn.Send(wire.AckFrame(d.name, seq))
}

// Unsubscribe ends the durable itself, not just this attachment: the
// broker stops replay, forgets the cursor, and releases the log space it
// held. A later subscribe under the same name starts fresh at the tail.
// To merely detach (resume later from the cursor), close the session
// instead. Idempotent after the handle retired.
func (d *DurableHandle) Unsubscribe() error {
	ran := false
	d.retireOnce.Do(func() {
		ran = true
		d.c.mu.Lock()
		if d.c.durables[d.name] == d {
			delete(d.c.durables, d.name)
			delete(d.c.durableIDs, d.id)
		}
		d.c.mu.Unlock()
		d.retireErr = d.c.conn.Send(wire.UnsubscribeFrame(d.id))
		d.shutdown(true)
	})
	if !ran {
		return nil
	}
	return d.retireErr
}

// retire tears the handle down without touching the registry or the wire
// (session teardown paths).
func (d *DurableHandle) retire(discard bool) {
	d.retireOnce.Do(func() { d.shutdown(discard) })
}

// shutdown closes the queue and waits out the delivery goroutine.
func (d *DurableHandle) shutdown(discard bool) {
	d.discard.Store(discard)
	d.q.Close()
	if d.drainDone != nil {
		<-d.drainDone
	}
}
