package transport

import (
	"fmt"
	"io"
	"net"
	"testing"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// newFanoutServer builds a broker server with fanout attached links, each a
// real framed TCP-style connection whose far end discards bytes, and one
// always-matching routing entry per link — so every published event is
// forwarded to every link, the worst-case wire fan-out.
func newFanoutServer(tb testing.TB, fanout int) (*Server, func()) {
	tb.Helper()
	bk, err := broker.New(broker.Config{ID: "hub"})
	if err != nil {
		tb.Fatal(err)
	}
	s := NewServer(bk, nil)
	var closers []func()
	for i := 0; i < fanout; i++ {
		far, near := net.Pipe()
		go func() { _, _ = io.Copy(io.Discard, far) }()
		id, err := s.AttachLink(NewTCPConn(near))
		if err != nil {
			tb.Fatal(err)
		}
		sub, err := subscription.New(uint64(1000+i), fmt.Sprintf("peer%d", i),
			subscription.MustParse(`price exists`))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := s.b.HandleSubscribe(id, sub); err != nil {
			tb.Fatal(err)
		}
		closers = append(closers, func() { _ = far.Close() })
	}
	return s, func() {
		s.Shutdown()
		for _, c := range closers {
			c()
		}
	}
}

// fanoutEvent is the event every fan-out benchmark publishes: a typical
// auction-sized message (four attributes, one string value).
func fanoutEvent() *event.Message {
	return event.Build(1).
		Num("price", 9.99).
		Str("title", "The Dispossessed").
		Int("bids", 3).
		Flag("signed", false).
		Msg()
}

// BenchmarkDispatchFanout measures the broker-to-wire hot path at fan-out 8:
// one published event forwarded to eight peer links. It covers routing, the
// per-link outbox handoff, frame encoding, and the socket writes (to
// in-process pipes with discarding readers). allocs/op is the headline
// number: the encode-once pipeline must not pay per-recipient encodings.
func BenchmarkDispatchFanout(b *testing.B) {
	for _, fanout := range []int{1, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			s, cleanup := newFanoutServer(b, fanout)
			defer cleanup()
			m := fanoutEvent()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Publish(m)
			}
		})
	}
}
