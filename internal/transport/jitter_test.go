package transport

import (
	"testing"
	"time"
)

func TestRedialJitterBoundsAndDeterminism(t *testing.T) {
	SetRedialJitterSeed(1234)
	defer SetRedialJitterSeed(0)
	draw := func() []time.Duration {
		rng := newRedialRand()
		var ds []time.Duration
		cap := peerBackoffMin
		for i := 0; i < 8; i++ {
			ds = append(ds, redialJitter(rng, cap))
			cap *= 2
			if cap > peerBackoffMax {
				cap = peerBackoffMax
			}
		}
		return ds
	}
	a := draw()
	SetRedialJitterSeed(1234)
	b := draw()
	cap := peerBackoffMin
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v — not deterministic under a pinned seed", i, a[i], b[i])
		}
		if a[i] <= peerBackoffFloor || a[i] > peerBackoffFloor+cap {
			t.Fatalf("draw %d: %v outside (floor, floor+%v]", i, a[i], cap)
		}
		cap *= 2
		if cap > peerBackoffMax {
			cap = peerBackoffMax
		}
	}
}

func TestRedialRandStreamsDiverge(t *testing.T) {
	// Even with a pinned base seed, successive dials get distinct jitter
	// streams — determinism must not mean lockstep retry storms.
	SetRedialJitterSeed(99)
	defer SetRedialJitterSeed(0)
	r1, r2 := newRedialRand(), newRedialRand()
	same := 0
	for i := 0; i < 16; i++ {
		if redialJitter(r1, peerBackoffMax) == redialJitter(r2, peerBackoffMax) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("two peers drew identical jitter sequences")
	}
}

func TestPeerBounceReconnects(t *testing.T) {
	a := NewServer(newBroker(t, "a"), nil)
	defer a.Shutdown()
	b := NewServer(newBroker(t, "b"), nil)
	defer b.Shutdown()
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	SetRedialJitterSeed(7)
	defer SetRedialJitterSeed(0)
	p, err := a.DialPeer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.Connected() {
		t.Fatal("peer not connected after DialPeer")
	}
	p.Bounce()
	deadline := time.Now().Add(10 * time.Second)
	for !p.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("peer did not reconnect after Bounce")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
