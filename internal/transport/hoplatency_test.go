package transport

import (
	"testing"

	"dimprune/internal/event"
)

// TestHopLatencyObservesForwardedPublishes: the per-hop histogram must
// record exactly the publish frames a server receives over peer links —
// local publishes and control frames stay out of it.
func TestHopLatencyObservesForwardedPublishes(t *testing.T) {
	s0, _ := newPeerServer(t, "b0")
	s1, dels1 := newPeerServer(t, "b1")
	defer s0.Shutdown()
	defer s1.Shutdown()

	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.DialPeer(addr1); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Subscribe(mustSub(t, 1, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s0.Stats().RemoteSubs == 1 })
	// Subscription propagation is control traffic: no hop samples yet.
	if got := s1.HopLatency(); got.Count != 0 {
		t.Fatalf("control traffic recorded %d hop samples", got.Count)
	}

	// A local publish at b1 must not count as a hop either.
	s1.Publish(event.Build(1).Int("x", 1).Msg())
	<-dels1
	if got := s1.HopLatency(); got.Count != 0 {
		t.Fatalf("local publish recorded %d hop samples", got.Count)
	}

	// Forwarded publishes do count, once per arriving frame.
	for i := uint64(2); i <= 4; i++ {
		s0.Publish(event.Build(i).Int("x", 1).Msg())
		<-dels1
	}
	got := s1.HopLatency()
	if got.Count != 3 {
		t.Fatalf("hop samples = %d, want 3", got.Count)
	}
	if got.Quantile(0.99) <= 0 {
		t.Errorf("p99 = %v, want > 0", got.Quantile(0.99))
	}
	// The sender never receives a publish frame: its histogram stays empty.
	if got := s0.HopLatency(); got.Count != 0 {
		t.Errorf("publisher side recorded %d hop samples", got.Count)
	}
}
