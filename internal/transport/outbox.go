package transport

import "sync"

// outbox decouples the broker's event loop from slow peers: handlers append
// frames under the server lock and return immediately; a writer goroutine
// drains the queue in order.
//
// The queue is unbounded by design: bounding it would let one stalled peer
// block the broker (and, with mutual blocking, deadlock two brokers sending
// to each other). A production deployment would add flow control at the
// subscription-admission level; for this system the trade-off is documented
// rather than hidden.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queuedItem
	closed bool
}

type queuedItem struct {
	send func() error
}

func newOutbox() *outbox {
	o := &outbox{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// push enqueues a send closure. It reports false when the outbox is closed.
func (o *outbox) push(send func() error) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return false
	}
	o.queue = append(o.queue, queuedItem{send: send})
	o.cond.Signal()
	return true
}

// close stops the drain loop after the current item.
func (o *outbox) close() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.closed = true
	o.cond.Broadcast()
}

// drain runs until close, sending items in order. Send errors stop the loop
// (the connection is broken; the reader side reports it).
func (o *outbox) drain() {
	for {
		o.mu.Lock()
		for len(o.queue) == 0 && !o.closed {
			o.cond.Wait()
		}
		if len(o.queue) == 0 && o.closed {
			o.mu.Unlock()
			return
		}
		item := o.queue[0]
		o.queue = o.queue[1:]
		o.mu.Unlock()

		if err := item.send(); err != nil {
			return
		}
	}
}
