package transport

import (
	"sync"

	"dimprune/internal/wire"
)

// outItem is one queued transmission: the pre-encoded bytes shared with
// every other recipient of the same frame (enc, owned: the outbox releases
// its reference once the item is written or discarded) plus the decoded
// frame for connections that transmit frames rather than bytes (in-memory
// pipes, custom Conns).
type outItem struct {
	enc *wire.EncodedFrame
	f   wire.Frame
}

// release drops the item's encoding reference and clears the item so a
// drained queue slot retains nothing (messages, trees, buffers).
func (it *outItem) release() {
	if it.enc != nil {
		it.enc.Release()
	}
	*it = outItem{}
}

// maxIdleQueueCap bounds the queue capacity an idle outbox retains: after a
// backlog spike drains, slices beyond this are dropped for the GC instead
// of pinning the spike's footprint forever.
const maxIdleQueueCap = 4096

// outbox decouples the broker's event loop from slow peers: handlers append
// pre-encoded items under the outbox lock and return immediately; a writer
// goroutine drains the backlog in order.
//
// The drain is batched: the writer swaps the entire queue out under one
// lock acquisition, writes every item to the connection's buffered writer,
// and flushes once when the backlog goes empty (flush coalescing) — a burst
// of n frames costs one lock round trip and one flush, not n of each.
// Drained slots are cleared so a completed backlog is collectible even
// while the slice is retained for reuse (no head-retention: the old
// queue = queue[1:] pop kept every sent item reachable through the backing
// array until the slice happened to reallocate).
//
// The queue is unbounded by design: bounding it would let one stalled peer
// block the broker (and, with mutual blocking, deadlock two brokers sending
// to each other). A production deployment would add flow control at the
// subscription-admission level; for this system the trade-off is documented
// rather than hidden.
type outbox struct {
	conn Conn

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outItem
	closed bool
}

func newOutbox(conn Conn) *outbox {
	o := &outbox{conn: conn}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// push enqueues one item, taking ownership of its encoding reference. It
// reports false when the outbox is closed — the item was not queued and the
// caller keeps the reference.
func (o *outbox) push(it outItem) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return false
	}
	o.queue = append(o.queue, it)
	o.cond.Signal()
	return true
}

// close stops the drain loop and discards anything still queued, releasing
// the backlog's encoding references. Connections are closed by the caller
// in every teardown path, so the undrained frames could no longer be
// written anyway.
func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	backlog := o.queue
	o.queue = nil
	o.cond.Broadcast()
	o.mu.Unlock()
	for i := range backlog {
		backlog[i].release()
	}
}

// drain runs until close, transmitting items in order. Send errors stop the
// writing (the connection is broken; the reader side reports it and closes
// the outbox) but keep consuming the queue so encoding references are still
// released.
func (o *outbox) drain() {
	_, batched := o.conn.(batchWriter)
	var batch []outItem
	broken := false
	for {
		o.mu.Lock()
		for len(o.queue) == 0 && !o.closed {
			o.cond.Wait()
		}
		if len(o.queue) == 0 {
			o.mu.Unlock()
			return // closed and fully drained
		}
		// Swap the whole backlog out under this one lock acquisition; the
		// previous batch slice (slots already cleared) becomes the next
		// queue, so steady state appends into warm capacity.
		batch, o.queue = o.queue, trimIdle(batch)
		o.mu.Unlock()

		if !broken {
			if err := o.writeBatch(batch, batched); err != nil {
				broken = true
			}
		}
		for i := range batch {
			batch[i].release()
		}
	}
}

// writeBatch transmits one swapped-out backlog: for frame-stream
// connections, every item goes to the buffered writer and the wire is
// flushed once at the end; other connections send frame by frame.
func (o *outbox) writeBatch(batch []outItem, batched bool) error {
	if batched {
		return o.conn.(batchWriter).writeItems(batch)
	}
	for i := range batch {
		if err := o.conn.Send(batch[i].f); err != nil {
			return err
		}
	}
	return nil
}

// trimIdle returns batch ready for reuse as the next queue, dropping
// spike-sized capacity.
func trimIdle(batch []outItem) []outItem {
	if cap(batch) > maxIdleQueueCap {
		return nil
	}
	return batch[:0]
}
