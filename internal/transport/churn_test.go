package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
)

// TestPeerChurnUnderLoad connects and disconnects a peer while publishers
// are running (run with -race): local deliveries must never be lost, a
// dead link's routing entries must be removed, and a reconnect must
// restore cross-broker routing.
func TestPeerChurnUnderLoad(t *testing.T) {
	var localDelivered atomic.Uint64
	ba := newBroker(t, "a")
	sa := NewServer(ba, func(d broker.Delivery) {
		if d.Subscriber == "keeper" {
			localDelivered.Add(1)
		}
	})
	defer sa.Shutdown()
	if _, err := sa.Subscribe(mustSub(t, 1, "keeper", `k = 1`)); err != nil {
		t.Fatal(err)
	}
	addr, err := sa.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var remoteDelivered atomic.Uint64
	sb := NewServer(newBroker(t, "b"), func(d broker.Delivery) {
		if d.Subscriber == "bob" {
			remoteDelivered.Add(1)
		}
	})
	defer sb.Shutdown()
	if _, err := sb.Subscribe(mustSub(t, 2, "bob", `k = 1`)); err != nil {
		t.Fatal(err)
	}

	// Publishers hammer broker a until the churn phase completes.
	const (
		publishers  = 4
		churnCycles = 5
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var published, id atomic.Uint64
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sa.Publish(event.Build(id.Add(1)).Int("k", 1).Msg())
				published.Add(1)
			}
		}()
	}

	// Churn: the peer link comes and goes while events flow. Before each
	// redial, both sides must have finished detaching the previous link —
	// a synchronous DialPeer with stale membership is (correctly) refused
	// as a would-be cycle; only the managed redial loop retries through
	// that transient.
	for c := 0; c < churnCycles; c++ {
		peer, err := sb.DialPeer(addr)
		if err != nil {
			t.Fatalf("churn dial %d: %v", c, err)
		}
		waitFor(t, func() bool { return sa.Stats().RemoteSubs == 1 && sb.Stats().RemoteSubs == 1 })
		peer.Close()
		waitFor(t, func() bool { return sa.Stats().RemoteSubs == 0 && sb.Stats().RemoteSubs == 0 })
	}
	close(stop)
	wg.Wait()

	// No lost local deliveries: every published event matched the local
	// keeper subscription exactly once (local delivery is synchronous in
	// Publish, so the count is final once the publishers return).
	if got, want := localDelivered.Load(), published.Load(); got != want {
		t.Fatalf("local deliveries = %d, want %d", got, want)
	}
	if published.Load() == 0 {
		t.Fatal("publishers made no progress during churn")
	}

	// Clean removal: the dead link left no routing entries or members
	// behind on either side.
	if st := sa.Stats(); st.RemoteSubs != 0 {
		t.Errorf("broker a still holds %d remote entries after churn", st.RemoteSubs)
	}
	if st := sb.Stats(); st.RemoteSubs != 0 {
		t.Errorf("broker b still holds %d remote entries after churn", st.RemoteSubs)
	}

	// Reconnect restores routing end to end.
	if _, err := sb.DialPeer(addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa.Stats().RemoteSubs == 1 && sb.Stats().RemoteSubs == 1 })
	before := remoteDelivered.Load()
	sa.Publish(event.Build(id.Add(1)).Int("k", 1).Msg())
	waitFor(t, func() bool { return remoteDelivered.Load() == before+1 })
}

// TestPeerChurnByConnectionLoss kills the transport connection out from
// under a managed peer link (rather than closing the Peer): the dialer
// must reconnect on its own and resync routing state.
func TestPeerChurnByConnectionLoss(t *testing.T) {
	sa, _ := newPeerServer(t, "a")
	defer sa.Shutdown()
	addr, err := sa.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := newPeerServer(t, "b")
	defer sb.Shutdown()
	if _, err := sb.Subscribe(mustSub(t, 1, "bob", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	peer, err := sb.DialPeer(addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa.Stats().RemoteSubs == 1 })

	// Sever the socket directly; both sides detach, then the dialer's
	// redial loop re-establishes the link and replays state.
	peer.mu.Lock()
	conn := peer.conn
	peer.mu.Unlock()
	_ = conn.Close()
	waitFor(t, func() bool { return sa.Stats().RemoteSubs == 1 && peer.Connected() })

	// The replayed entry routes: publish at a, delivered to bob at b.
	var next atomic.Uint64
	waitFor(t, func() bool {
		sa.Publish(event.Build(next.Add(1)).Int("x", 1).Msg())
		time.Sleep(2 * time.Millisecond)
		return sb.Stats().Counters.Deliveries > 0
	})
}
