package transport

import (
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

func TestListenClientsHelloFlow(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient("dora", conn) // sends hello automatically
	defer client.Close()

	if err := client.Subscribe(1, subscription.MustParse(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().LocalSubs == 1 })

	if err := client.Publish(event.Build(1).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-client.Notifications():
		if m.ID != 1 {
			t.Errorf("notification = %s", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification timed out")
	}
}

func TestListenClientsRejectsNonHello(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// First frame is not a hello: the server must drop the connection.
	if err := conn.Send(wire.UnsubscribeFrame(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, err := conn.Recv()
		return err != nil
	})
	if got := srv.Stats().LocalSubs; got != 0 {
		t.Errorf("rogue connection registered %d subs", got)
	}
}

func TestBothListenersCloseOnShutdown(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	linkAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clientAddr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	// Dial may still connect briefly while the OS drains the backlog, but
	// any session must die immediately; loop until both addrs refuse or
	// reset.
	for _, addr := range []string{linkAddr, clientAddr} {
		waitFor(t, func() bool {
			conn, err := Dial(addr)
			if err != nil {
				return true
			}
			defer conn.Close()
			_ = conn.Send(wire.HelloFrame("x"))
			_, err = conn.Recv()
			return err != nil
		})
	}
}
