package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/wal"
)

// durableServer wires a server over a fresh broker with a WAL in dir; the
// store closes with the test.
func durableServer(t *testing.T, dir string, onDeliver func(broker.Delivery)) (*Server, *wal.Store) {
	t.Helper()
	b, err := broker.New(broker.Config{ID: "hub"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b, onDeliver)
	srv.SetWAL(w)
	t.Cleanup(func() {
		srv.Shutdown()
		_ = w.Close()
	})
	return srv, w
}

// attachSession connects one client session over an in-memory pipe.
func attachSession(t *testing.T, srv *Server, name string) *Client {
	t.Helper()
	sc, cc := Pipe()
	if err := srv.AttachClient(name, sc); err != nil {
		t.Fatal(err)
	}
	c := NewClient(name, cc)
	t.Cleanup(func() { c.Close() })
	return c
}

// waitClientGone blocks until the server's reader has noticed the named
// session's connection closing and detached it — only then may the same
// subscriber attach again.
func waitClientGone(t *testing.T, srv *Server, name string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.RLock()
		_, attached := srv.clients[name]
		srv.mu.RUnlock()
		if !attached {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client %q never detached", name)
		}
		time.Sleep(time.Millisecond)
	}
}

func recvDurable(t *testing.T, d *DurableHandle, wantID uint64) DurableEvent {
	t.Helper()
	select {
	case ev := <-d.C():
		if ev.Msg.ID != wantID {
			t.Fatalf("durable received event %d, want %d", ev.Msg.ID, wantID)
		}
		if ev.Seq == 0 {
			t.Fatalf("durable event %d has no sequence", ev.Msg.ID)
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for durable event %d", wantID)
		return DurableEvent{}
	}
}

func expectSilence(t *testing.T, d *DurableHandle) {
	t.Helper()
	select {
	case ev := <-d.C():
		t.Fatalf("unexpected durable delivery: event %d seq %d", ev.Msg.ID, ev.Seq)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDurableClientReplayAcrossReconnect is the transport-level reattach
// contract: a durable's unacked records replay when the same name
// subscribes again from a later session of the same subscriber.
func TestDurableClientReplayAcrossReconnect(t *testing.T) {
	srv, _ := durableServer(t, t.TempDir(), nil)
	c1 := attachSession(t, srv, "eve")
	d1, err := c1.DurableSubscribeExpr("audit", `kind = "hit"`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)

	srv.Publish(event.Build(1).Str("kind", "hit").Msg())
	srv.Publish(event.Build(2).Str("kind", "miss").Msg()) // logged, never delivered
	srv.Publish(event.Build(3).Str("kind", "hit").Msg())
	srv.Publish(event.Build(4).Str("kind", "hit").Msg())

	first := recvDurable(t, d1, 1)
	recvDurable(t, d1, 3)
	recvDurable(t, d1, 4)
	if err := d1.Ack(first.Seq); err != nil {
		t.Fatal(err)
	}
	// Give the ack frame time to land before the session drops.
	time.Sleep(20 * time.Millisecond)
	c1.Close()
	waitClientGone(t, srv, "eve")

	// Reattach from a new session: events 3 and 4 were never acked.
	c2 := attachSession(t, srv, "eve")
	d2, err := c2.DurableSubscribeExpr("audit", `kind = "hit"`)
	if err != nil {
		t.Fatal(err)
	}
	ev3 := recvDurable(t, d2, 3)
	ev4 := recvDurable(t, d2, 4)
	if err := d2.Ack(ev4.Seq); err != nil {
		t.Fatal(err)
	}
	if ev3.Seq >= ev4.Seq {
		t.Fatalf("replay out of order: seq %d then %d", ev3.Seq, ev4.Seq)
	}
	expectSilence(t, d2)
}

// TestDurableSurvivesBrokerRestart re-opens the WAL directory under a
// brand-new broker and server: the durable's cursor (and its unacked
// backlog) must come back from disk alone.
func TestDurableSurvivesBrokerRestart(t *testing.T) {
	dir := t.TempDir()

	b1, err := broker.New(broker.Config{ID: "hub"})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(b1, nil)
	srv1.SetWAL(w1)
	c1 := attachSession(t, srv1, "eve")
	d1, err := c1.DurableSubscribeExpr("audit", `n >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv1, 1)
	srv1.Publish(event.Build(1).Int("n", 10).Msg())
	srv1.Publish(event.Build(2).Int("n", 20).Msg())
	ev := recvDurable(t, d1, 1)
	recvDurable(t, d1, 2)
	if err := d1.Ack(ev.Seq); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	c1.Close()
	srv1.Shutdown()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh broker over the same log: no routing state survives, only the
	// WAL. The reattaching subscribe re-establishes the tree and replays
	// event 2.
	srv2, _ := durableServer(t, dir, nil)
	c2 := attachSession(t, srv2, "eve")
	d2, err := c2.DurableSubscribeExpr("audit", `n >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := recvDurable(t, d2, 2)
	if err := d2.Ack(ev2.Seq); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, d2)
}

// TestDurableCallbackAutoAcks: callback mode acks as each invocation
// returns, so a reattach replays nothing.
func TestDurableCallbackAutoAcks(t *testing.T) {
	srv, _ := durableServer(t, t.TempDir(), nil)
	c1 := attachSession(t, srv, "eve")
	got := make(chan DurableEvent, 8)
	_, err := c1.DurableSubscribeExpr("auto", `n >= 0`, DurableCallback(func(ev DurableEvent) {
		got <- ev
	}))
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("n", 1).Msg())
	srv.Publish(event.Build(2).Int("n", 2).Msg())
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("callback %d never ran", i+1)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the auto-acks land
	c1.Close()
	waitClientGone(t, srv, "eve")

	c2 := attachSession(t, srv, "eve")
	d2, err := c2.DurableSubscribeExpr("auto", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	expectSilence(t, d2)
}

// TestDurableUnsubscribeForgets: Unsubscribe ends the durable itself — a
// later attach under the same name starts fresh at the log tail.
func TestDurableUnsubscribeForgets(t *testing.T) {
	srv, w := durableServer(t, t.TempDir(), nil)
	c := attachSession(t, srv, "eve")
	d, err := c.DurableSubscribeExpr("gone", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("n", 1).Msg())
	recvDurable(t, d, 1)
	if err := d.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	// The broker-side forget is asynchronous from the client's view.
	deadline := time.Now().Add(2 * time.Second)
	for w.HasDurables() {
		if time.Now().After(deadline) {
			t.Fatal("durable registration never forgotten")
		}
		time.Sleep(time.Millisecond)
	}
	waitLocalSubs(t, srv, 0)

	d2, err := c.DurableSubscribeExpr("gone", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	expectSilence(t, d2) // event 1 predates the fresh registration
	srv.Publish(event.Build(2).Int("n", 2).Msg())
	recvDurable(t, d2, 2)
}

// TestDurableEntryNeverHitsOnDeliver: the mangled routing-table entry
// backing a durable must not leak into the onDeliver fallback — the WAL
// pump is its only delivery path, and double delivery here would
// double-count every durable event for embedded consumers.
func TestDurableEntryNeverHitsOnDeliver(t *testing.T) {
	var fallbacks atomic.Int64
	srv, _ := durableServer(t, t.TempDir(), func(d broker.Delivery) {
		fallbacks.Add(1)
	})
	c := attachSession(t, srv, "eve")
	d, err := c.DurableSubscribeExpr("audit", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("n", 1).Msg())
	ev := recvDurable(t, d, 1)
	if err := d.Ack(ev.Seq); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, d) // exactly one copy through the pump
	if n := fallbacks.Load(); n != 0 {
		t.Fatalf("onDeliver saw %d durable deliveries, want 0", n)
	}
}
