package transport

import (
	"io"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/wire"
)

// TestDispatchFanoutEncodeOnce pins the tentpole invariant with the wire
// package's encode-count hook: publishing one event to eight matching peer
// links performs exactly one frame encode — the shared EncodedFrame feeds
// all eight outboxes — where the pre-refactor path encoded once per
// recipient plus once more for byte accounting.
func TestDispatchFanoutEncodeOnce(t *testing.T) {
	const fanout = 8
	s, cleanup := newFanoutServer(t, fanout)
	defer cleanup()
	m := fanoutEvent()

	const events = 200
	start := wire.EncodeCalls()
	for i := 0; i < events; i++ {
		s.Publish(m)
	}
	// Publish encodes synchronously (inside the broker's route pass), and
	// the outbox writers only copy the pre-encoded bytes, so the counter is
	// stable as soon as Publish returns.
	if got := wire.EncodeCalls() - start; got != events {
		t.Errorf("%d events to %d links cost %d encodes, want exactly %d (one per event)",
			events, fanout, got, events)
	}
}

// countConn counts sends without retaining the frames (a recording conn
// would defeat the collectibility assertion below).
type countConn struct{ n atomic.Int64 }

func (c *countConn) Send(wire.Frame) error     { c.n.Add(1); return nil }
func (c *countConn) Recv() (wire.Frame, error) { select {} }
func (c *countConn) Close() error              { return nil }

// TestOutboxDrainedBacklogCollectible checks the head-retention fix: after
// a slow peer's backlog has drained, the outbox's retained queue capacity
// must not keep the sent messages alive. The old queue = queue[1:] pop left
// every item reachable through the backing array.
func TestOutboxDrainedBacklogCollectible(t *testing.T) {
	conn := &countConn{}
	o := newOutbox(conn)

	// Build the whole backlog before the writer starts — the slow-peer
	// shape: a deep queue drained in one batch whose slice is then reused.
	collected := make(chan struct{})
	func() {
		m := event.Build(1).Str("payload", strings.Repeat("x", 1<<16)).Msg()
		runtime.SetFinalizer(m, func(*event.Message) { close(collected) })
		f := wire.PublishFrame(m)
		enc, err := wire.EncodeFrame(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		o.push(outItem{enc: enc, f: f})
	}()
	for i := 0; i < 200; i++ {
		o.push(outItem{f: wire.UnsubscribeFrame(uint64(i))})
	}
	go o.drain()
	waitFor(t, func() bool { return conn.n.Load() == 201 })

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			o.close()
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("drained message still reachable: the outbox retains its completed backlog")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writeCountConn counts the Write calls reaching the real connection — with
// a buffered writer, one per flush (for sub-buffer volumes).
type writeCountConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *writeCountConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestOutboxCoalescesFlushes checks flush coalescing: a backlog of n frames
// drains as one batched write pass with a single flush, not n per-frame
// flushes. The pre-refactor drain flushed the socket once per frame.
func TestOutboxCoalescesFlushes(t *testing.T) {
	far, near := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, far) }()
	defer far.Close()
	counting := &writeCountConn{Conn: near}
	conn := NewTCPConn(counting)
	o := newOutbox(conn)

	const frames = 100
	for i := 0; i < frames; i++ {
		f := wire.UnsubscribeFrame(uint64(i))
		enc, err := wire.EncodeFrame(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		o.push(outItem{enc: enc, f: f})
	}
	done := make(chan struct{})
	go func() {
		o.drain()
		close(done)
	}()
	waitFor(t, func() bool { return o.queueLen() == 0 })
	o.close()
	<-done
	// The whole pre-built backlog swaps out in one batch: one buffered
	// write pass, one flush, one Write on the wire. Allow a little slack
	// for scheduling (the writer may grab a partial queue first).
	if w := counting.writes.Load(); w > 5 {
		t.Errorf("draining %d frames issued %d socket writes, want coalesced (<= 5)", frames, w)
	}
}

// queueLen reads the current backlog length (test helper).
func (o *outbox) queueLen() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queue)
}
