package transport

import (
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// TestAutoIDWraparoundSkipsLiveHandles forces the session's 24-bit ID
// counter to wrap back onto a live subscription and asserts the allocator
// skips it: pre-fix, the 2^24+1-th SubscribeNode reused the live ID, the
// client overwrote the old handle in c.handles, and the server's
// replace-on-duplicate convergence silently dropped the old subscription.
func TestAutoIDWraparoundSkipsLiveHandles(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("wrap", conn)
	defer c.Close()

	h1, err := c.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Rewind the counter one full namespace revolution: the next Add(1)
	// masks to the same low bits h1 holds, which is exactly the state after
	// 2^24 subscribes in one session.
	c.idSeq.Store(c.idSeq.Load() + 1<<idSeqBits - 1)
	h2, err := c.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if h1.ID() == h2.ID() {
		t.Fatalf("wrapped counter reused live subscription ID %d", h1.ID())
	}

	// Both subscriptions must be live broker-side (reuse would have
	// replaced h1's entry) and both handles must keep delivering.
	waitFor(t, func() bool { return srv.Stats().LocalSubs == 2 })
	if err := c.Publish(event.Build(7).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Handle{h1, h2} {
		select {
		case m := <-h.C():
			if m.ID != 7 {
				t.Errorf("handle %d got event %d", h.ID(), m.ID)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("handle %d did not deliver after ID wraparound", h.ID())
		}
	}
}

// TestAutoIDWraparoundSkipsDurables asserts the allocator treats durable
// attachments' IDs as live too: ephemeral handles and durables share the
// session namespace, so a wrapped counter landing on a durable's ID must
// skip it just the same.
func TestAutoIDWraparoundSkipsDurables(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("wrap", conn)
	defer c.Close()

	// The client registers the durable (and reserves its ID) before the
	// frame leaves, so the allocator must respect it whether or not the
	// broker has a WAL attached.
	d, err := c.DurableSubscribeNode("cursor", subscription.MustParse(`x = 1`))
	if err != nil {
		t.Fatal(err)
	}
	c.idSeq.Store(c.idSeq.Load() + 1<<idSeqBits - 1)
	h, err := c.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == d.ID() {
		t.Fatalf("wrapped counter reused live durable ID %d", d.ID())
	}

	// A consecutive run of live IDs is skipped as a block: wind the counter
	// back again; the next allocation must clear both live low values.
	c.idSeq.Store(c.idSeq.Load() + 1<<idSeqBits - 2)
	h2, err := c.SubscribeExpr(`x = 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, live := range []uint64{d.ID(), h.ID()} {
		if h2.ID() == live {
			t.Fatalf("wrapped counter reused live ID %d", live)
		}
	}
}
