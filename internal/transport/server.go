package transport

import (
	"fmt"
	"io"
	"net"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// Server runs one broker over real connections as a concurrent pipeline:
// connection readers decode frames and hand them to the broker, whose
// data plane (publishes) runs shared so many events match at once while
// its control plane (subscribe/unsubscribe/prune/snapshot) runs exclusive;
// resulting frames land in per-peer outboxes drained by writer goroutines.
// Slow peers therefore only stall their own outbox, and publish throughput
// scales with cores instead of serializing behind one server mutex.
//
// The server's own mutex only guards its connection registry (links,
// clients, listener, closed); it is never held across broker calls or
// socket writes.
type Server struct {
	mu sync.RWMutex
	b  *broker.Broker

	// ctl makes a control-plane broker mutation and the dispatch of its
	// resulting frames one atomic step. Without it, two concurrent
	// subscribe/unsubscribe calls could enqueue their neighbor frames in
	// the opposite order of their (correctly serialized) table mutations —
	// and a neighbor receiving an unsubscribe before its subscribe treats
	// it as a protocol error and drops the link. The data plane never
	// takes ctl: publish frames carry no such ordering obligation.
	ctl sync.Mutex

	links   map[broker.LinkID]*peerConn
	clients map[string]*peerConn

	listener  net.Listener
	onDeliver func(broker.Delivery)

	closed bool
	wg     sync.WaitGroup
}

// peerConn is one attached connection (broker link or client session).
type peerConn struct {
	conn Conn
	out  *outbox
}

// NewServer wraps a broker. onDeliver (optional) receives notifications for
// local subscribers that are not attached client sessions; it may be called
// concurrently from publishing goroutines.
func NewServer(b *broker.Broker, onDeliver func(broker.Delivery)) *Server {
	return &Server{
		b:         b,
		links:     make(map[broker.LinkID]*peerConn),
		clients:   make(map[string]*peerConn),
		onDeliver: onDeliver,
	}
}

// Broker exposes the underlying broker for stats; the broker is safe for
// concurrent use.
func (s *Server) Broker() *broker.Broker { return s.b }

// AttachLink registers conn as a neighbor-broker connection and starts its
// reader. The returned LinkID is stable for the server's lifetime.
func (s *Server) AttachLink(conn Conn) (broker.LinkID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	id := s.b.AddLink()
	p := &peerConn{conn: conn, out: newOutbox()}
	s.links[id] = p
	s.mu.Unlock()

	s.startPeer(p, func(f wire.Frame) error { return s.handleLinkFrame(id, f) })
	return id, nil
}

// AttachClient registers conn as a local client session named subscriber.
// Deliveries for that subscriber flow back over the connection as publish
// frames.
func (s *Server) AttachClient(subscriber string, conn Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, dup := s.clients[subscriber]; dup {
		s.mu.Unlock()
		return fmt.Errorf("transport: client %q already attached", subscriber)
	}
	p := &peerConn{conn: conn, out: newOutbox()}
	s.clients[subscriber] = p
	s.mu.Unlock()

	s.startPeer(p, func(f wire.Frame) error { return s.handleClientFrame(subscriber, f) })
	return nil
}

// startPeer spawns the reader and writer goroutines for a connection.
func (s *Server) startPeer(p *peerConn, handle func(wire.Frame) error) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		p.out.drain()
	}()
	go func() {
		defer s.wg.Done()
		for {
			f, err := p.conn.Recv()
			if err != nil {
				p.out.close()
				return
			}
			if err := handle(f); err != nil {
				// A protocol error from this peer; drop the connection.
				p.out.close()
				_ = p.conn.Close()
				return
			}
		}
	}()
}

// handleLinkFrame runs on the link's reader goroutine. The broker picks the
// plane per frame type: publishes route shared, control frames exclusive
// (and atomic with their forwarded frames, see Server.ctl).
func (s *Server) handleLinkFrame(from broker.LinkID, f wire.Frame) error {
	if f.Type != wire.FramePublish {
		s.ctl.Lock()
		defer s.ctl.Unlock()
	}
	out, dels, err := s.b.HandleFrame(from, f)
	s.dispatch(out, dels)
	return err
}

func (s *Server) handleClientFrame(subscriber string, f wire.Frame) error {
	switch f.Type {
	case wire.FrameHello:
		if f.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q sent hello as %q", subscriber, f.Subscriber)
		}
		return nil
	case wire.FrameSubscribe:
		if f.Sub.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q subscribing as %q", subscriber, f.Sub.Subscriber)
		}
		_, err := s.Subscribe(f.Sub)
		return err
	case wire.FrameUnsubscribe:
		return s.Unsubscribe(f.SubID)
	case wire.FramePublish:
		s.Publish(f.Msg)
		return nil
	default:
		return fmt.Errorf("transport: client sent unknown frame type %d", f.Type)
	}
}

// Subscribe registers a local subscription and forwards it to neighbors
// (control plane: exclusive in the broker, atomic with its dispatch).
func (s *Server) Subscribe(sub *subscription.Subscription) (uint64, error) {
	if s.isClosed() {
		return 0, ErrClosed
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, err := s.b.SubscribeLocal(sub)
	if err != nil {
		return 0, err
	}
	s.dispatch(out, nil)
	return sub.ID, nil
}

// Unsubscribe retracts a local subscription (control plane).
func (s *Server) Unsubscribe(id uint64) error {
	if s.isClosed() {
		return ErrClosed
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, err := s.b.UnsubscribeLocal(id)
	if err != nil {
		return err
	}
	s.dispatch(out, nil)
	return nil
}

// Publish injects a local event. Publishes run concurrently: the broker
// routes under its shared lock and per-peer outboxes order the frames.
func (s *Server) Publish(m *event.Message) {
	if s.isClosed() {
		return
	}
	out, dels := s.b.PublishLocal(m)
	s.dispatch(out, dels)
}

// PublishBatch injects a burst of local events under one broker lock
// acquisition and one dispatch pass, amortizing the per-event handoff costs
// for bursty publishers. Deliveries and forwards preserve batch order.
func (s *Server) PublishBatch(ms []*event.Message) {
	if len(ms) == 0 || s.isClosed() {
		return
	}
	out, dels := s.b.PublishLocalBatch(ms)
	s.dispatch(out, dels)
}

// Prune applies up to n pruning steps (exclusive with routing, inside the
// broker).
func (s *Server) Prune(n int) int {
	return s.b.Prune(n)
}

// WriteSnapshot serializes the routing table (routing may continue).
func (s *Server) WriteSnapshot(w io.Writer) error {
	return s.b.WriteSnapshot(w)
}

// ReadSnapshot restores the routing table. Links referenced by the snapshot
// must already be attached, and no subscription may have arrived yet; call
// it between dialing static peers and opening listeners. The broker runs it
// exclusively, so a frame that slips in first fails the restore cleanly
// rather than corrupting it.
func (s *Server) ReadSnapshot(r io.Reader) error {
	return s.b.ReadSnapshot(r)
}

// Stats snapshots the broker (concurrent with traffic).
func (s *Server) Stats() broker.Stats {
	return s.b.Stats()
}

func (s *Server) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// dispatch queues outgoing frames and deliveries onto the per-peer
// outboxes. It holds the connection registry's read lock only — many
// dispatches run concurrently, and outboxes serialize per peer. A peer that
// detaches concurrently just misses the frames (its outbox is closed).
func (s *Server) dispatch(out []broker.Outgoing, dels []broker.Delivery) {
	if len(out) == 0 && len(dels) == 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, o := range out {
		p := s.links[o.Link]
		if p == nil {
			continue // link detached
		}
		f := o.Frame
		conn := p.conn
		p.out.push(func() error { return conn.Send(f) })
	}
	for _, d := range dels {
		if p := s.clients[d.Subscriber]; p != nil {
			f := wire.PublishFrame(d.Msg)
			conn := p.conn
			p.out.push(func() error { return conn.Send(f) })
			continue
		}
		if s.onDeliver != nil {
			s.onDeliver(d)
		}
	}
}

// Listen starts accepting neighbor-broker connections on addr. Every
// accepted connection becomes a link.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if _, err := s.AttachLink(NewTCPConn(nc)); err != nil {
				_ = nc.Close()
				return
			}
		}
	}()
	return ln.Addr().String(), nil
}

// ListenClients starts accepting client sessions on addr. Each connection
// must introduce itself with a hello frame naming its subscriber; the
// session is then attached under that name.
func (s *Server) ListenClients(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen clients %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	// Track as the (single) client listener by reusing the shutdown path:
	// both listeners close on Shutdown.
	if s.listener == nil {
		s.listener = ln
	} else {
		prev := s.listener
		s.listener = &dualListener{a: prev, b: ln}
	}
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				conn := NewTCPConn(nc)
				f, err := conn.Recv()
				if err != nil || f.Type != wire.FrameHello {
					_ = conn.Close()
					return
				}
				if err := s.AttachClient(f.Subscriber, conn); err != nil {
					_ = conn.Close()
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// dualListener lets Shutdown close both the link and client listeners
// through one handle.
type dualListener struct{ a, b net.Listener }

func (d *dualListener) Accept() (net.Conn, error) { return nil, net.ErrClosed }
func (d *dualListener) Addr() net.Addr            { return d.a.Addr() }
func (d *dualListener) Close() error {
	err1 := d.a.Close()
	err2 := d.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// DialLink connects to a neighbor broker's listener and attaches the
// connection as a link.
func (s *Server) DialLink(addr string) (broker.LinkID, error) {
	conn, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	id, err := s.AttachLink(conn)
	if err != nil {
		_ = conn.Close()
		return 0, err
	}
	return id, nil
}

// Shutdown closes the listener and every connection, then waits for all
// goroutines to exit. It is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.listener
	var conns []*peerConn
	for _, p := range s.links {
		conns = append(conns, p)
	}
	for _, p := range s.clients {
		conns = append(conns, p)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, p := range conns {
		p.out.close()
		_ = p.conn.Close()
	}
	s.wg.Wait()
}
