package transport

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/metrics"
	"dimprune/internal/subscription"
	"dimprune/internal/wal"
	"dimprune/internal/wire"
)

// Server runs one broker over real connections as a concurrent pipeline:
// connection readers decode frames and hand them to the broker, whose
// data plane (publishes) runs shared so many events match at once while
// its control plane (subscribe/unsubscribe/prune/snapshot) runs exclusive;
// resulting frames land in per-peer outboxes drained by writer goroutines.
// Slow peers therefore only stall their own outbox, and publish throughput
// scales with cores instead of serializing behind one server mutex.
//
// The server's own mutex only guards its connection registry (links,
// clients, listener, closed); it is never held across broker calls or
// socket writes.
type Server struct {
	mu sync.RWMutex
	b  *broker.Broker

	// ctl makes a control-plane broker mutation and the dispatch of its
	// resulting frames one atomic step. Without it, two concurrent
	// subscribe/unsubscribe calls could enqueue their neighbor frames in
	// the opposite order of their (correctly serialized) table mutations —
	// and a neighbor receiving an unsubscribe before its subscribe treats
	// it as a protocol error and drops the link. The data plane never
	// takes ctl: publish frames carry no such ordering obligation.
	ctl sync.Mutex

	links   map[broker.LinkID]*peerConn
	clients map[string]*peerConn

	// Overlay membership for the connect-time acyclicity check: the broker
	// IDs known to be in this broker's component (own ID included), and the
	// IDs learned through each peer link, removed when that link dies. See
	// peerlink.go.
	members     map[string]struct{}
	linkMembers map[broker.LinkID][]string
	peers       []*Peer
	// pending holds accepted connections whose first frame has not arrived
	// yet (pre-handshake); Shutdown closes them so their readers unblock.
	pending map[Conn]struct{}

	listener  net.Listener
	onDeliver func(broker.Delivery)
	logf      func(format string, args ...any)
	peerDial  func(addr string) (Conn, error)

	// hopLatency tracks the wall time of one forwarded-publish hop through
	// this broker (decode excluded): match + dispatch onto the outboxes.
	// Atomic histogram — the publish hot path records without locks.
	hopLatency metrics.Histogram

	// Durable plane (see durable.go): the broker's event log plus the live
	// replay pumps, keyed by durable name and by their routing-table IDs.
	wal          *wal.Store
	durables     map[string]*durableSession
	durableNames map[uint64]string

	closed bool
	wg     sync.WaitGroup
}

// peerConn is one attached connection (broker link or client session).
type peerConn struct {
	conn Conn
	out  *outbox
	// onDown, if set, runs after the connection's reader exits and the link
	// is detached — the reconnect trigger of a dialed peer link.
	onDown func()
}

// NewServer wraps a broker. onDeliver (optional) receives notifications for
// local subscribers that are not attached client sessions; it may be called
// concurrently from publishing goroutines.
func NewServer(b *broker.Broker, onDeliver func(broker.Delivery)) *Server {
	return &Server{
		b:            b,
		links:        make(map[broker.LinkID]*peerConn),
		clients:      make(map[string]*peerConn),
		members:      map[string]struct{}{b.ID(): {}},
		linkMembers:  make(map[broker.LinkID][]string),
		pending:      make(map[Conn]struct{}),
		durables:     make(map[string]*durableSession),
		durableNames: make(map[uint64]string),
		onDeliver:    onDeliver,
	}
}

// SetLogf installs an optional diagnostic logger for peer-link lifecycle
// events (connect, loss, reconnect, rejection). Call before traffic starts.
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	s.mu.Lock()
	s.logf = logf
	s.mu.Unlock()
}

// SetPeerDialer installs an alternative dialer for outgoing peer links
// (DialPeer first connects and every redial afterward). Chaos harnesses
// wrap the default TCP dial with latency injection or partition drops; nil
// restores the default. Existing connections are untouched — Bounce a Peer
// to route its next redial through the new dialer.
func (s *Server) SetPeerDialer(dial func(addr string) (Conn, error)) {
	s.mu.Lock()
	s.peerDial = dial
	s.mu.Unlock()
}

// dialPeerConn opens one peer-link connection through the installed dialer
// (default: TCP Dial).
func (s *Server) dialPeerConn(addr string) (Conn, error) {
	s.mu.RLock()
	dial := s.peerDial
	s.mu.RUnlock()
	if dial != nil {
		return dial(addr)
	}
	return Dial(addr)
}

// PeerLinkIDs returns the live handshaken peer links keyed by the neighbor
// broker's ID. Oracles use it to ask the broker for per-neighbor
// advertisement sets (broker.AdvertisedIDs) by name rather than by
// transport-internal link number.
func (s *Server) PeerLinkIDs() map[string]broker.LinkID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make(map[string]broker.LinkID, len(s.linkMembers))
	for link, mems := range s.linkMembers {
		if len(mems) > 0 {
			ids[mems[0]] = link
		}
	}
	return ids
}

// HopLatency snapshots the per-hop forwarded-publish latency histogram.
func (s *Server) HopLatency() metrics.HistogramSnapshot {
	return s.hopLatency.Snapshot()
}

// logPeer logs a peer lifecycle event when a logger is installed.
func (s *Server) logPeer(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// Broker exposes the underlying broker for stats; the broker is safe for
// concurrent use.
func (s *Server) Broker() *broker.Broker { return s.b }

// AttachLink registers conn as a neighbor-broker connection (no peer
// handshake — the caller vouches for the topology) and starts its reader.
// The returned LinkID is stable for the server's lifetime. When the
// connection dies, the link's routing entries are dropped and the
// retractions forwarded (see detachLink).
func (s *Server) AttachLink(conn Conn) (broker.LinkID, error) {
	return s.attachLink(conn, nil, nil, nil)
}

// recvResult is one connection read handed from the listener's
// first-frame classifier to the attached link's reader.
type recvResult struct {
	f   wire.Frame
	err error
}

// attachLink registers a link connection: hello (optional) carries the
// handshake membership committed with the link, first (optional) delivers
// a pending pre-attachment read that the reader consumes ahead of the
// stream, and onDown (optional) runs after the link detaches.
func (s *Server) attachLink(conn Conn, hello *wire.PeerHello, first <-chan recvResult, onDown func()) (broker.LinkID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if hello != nil {
		if err := s.checkPeerLocked(hello); err != nil {
			s.mu.Unlock()
			return 0, err
		}
	}
	id := s.b.AddLink()
	p := &peerConn{conn: conn, out: newOutbox(conn), onDown: onDown}
	s.links[id] = p
	var mem []string
	if hello != nil {
		mem = append([]string{hello.ID}, hello.Members...)
		for _, m := range mem {
			s.members[m] = struct{}{}
		}
		s.linkMembers[id] = mem
	}
	// Reserve the reader/writer slots while still holding the lock that
	// proved !s.closed: Shutdown's wg.Wait must never observe a zero
	// counter that a goroutine spawn is about to invalidate.
	s.wg.Add(2)
	s.mu.Unlock()

	s.startLink(id, p, first)
	if mem != nil {
		// The other component just joined this one: announce its members
		// over every existing link so distant brokers can refuse a later
		// edge that would close a cycle through the two far ends.
		s.broadcastMembers(id, mem)
	}
	return id, nil
}

// mergeMembers handles a membership update arriving on an established,
// handshaken peer link: the named brokers joined the component reachable
// through that link. New names are recorded against the link (so its
// death retracts them) and re-announced over the other handshaken links;
// already-known names stop the flood, which terminates because the
// overlay is acyclic. A PeerHello on a link that never handshook — e.g. a
// managed dialer whose hello outlived the raw-link classification grace —
// is a protocol error: dropping the link lets the dialer redial and
// handshake properly instead of committing unchecked membership.
func (s *Server) mergeMembers(from broker.LinkID, hello *wire.PeerHello) error {
	if hello == nil {
		return nil
	}
	s.mu.Lock()
	if _, handshaken := s.linkMembers[from]; !handshaken {
		s.mu.Unlock()
		return fmt.Errorf("transport: peer hello from %q on link %d without a completed handshake", hello.ID, from)
	}
	var delta []string
	for _, m := range append([]string{hello.ID}, hello.Members...) {
		if _, known := s.members[m]; known {
			continue
		}
		s.members[m] = struct{}{}
		delta = append(delta, m)
	}
	if len(delta) > 0 {
		s.linkMembers[from] = append(s.linkMembers[from], delta...)
	}
	s.mu.Unlock()
	if len(delta) > 0 {
		s.broadcastMembers(from, delta)
	}
	return nil
}

// broadcastMembers announces newly learned overlay members on every
// handshaken link except the one they were learned through. Raw links do
// not participate in membership tracking (they reject peer hellos), so
// they are skipped.
func (s *Server) broadcastMembers(except broker.LinkID, members []string) {
	f := wire.PeerHelloFrame(&wire.PeerHello{ID: s.b.ID(), Members: members})
	s.mu.RLock()
	defer s.mu.RUnlock()
	targets := make([]*peerConn, 0, len(s.links))
	for id, p := range s.links {
		if id == except {
			continue
		}
		if _, handshaken := s.linkMembers[id]; !handshaken {
			continue
		}
		targets = append(targets, p)
	}
	if len(targets) == 0 {
		return
	}
	enc, _ := wire.EncodeFrame(f, int32(len(targets)))
	for _, p := range targets {
		if !p.out.push(outItem{enc: enc, f: f}) && enc != nil {
			enc.Release()
		}
	}
}

// startLink spawns the reader and writer goroutines for a link connection;
// the caller has already reserved their two WaitGroup slots under s.mu.
// When the reader exits — connection loss or a protocol error — the link
// detaches: its routing entries are dropped and forwarded as retractions.
func (s *Server) startLink(id broker.LinkID, p *peerConn, first <-chan recvResult) {
	go func() {
		defer s.wg.Done()
		p.out.drain()
	}()
	go func() {
		defer s.wg.Done()
		defer func() {
			p.out.close()
			_ = p.conn.Close()
			s.detachLink(id)
		}()
		if first != nil {
			// Consume the classifier's pending read before touching the
			// connection ourselves (Recv is not concurrency-safe).
			r := <-first
			if r.err != nil || s.handleLinkFrame(id, r.f) != nil {
				return
			}
		}
		for {
			f, err := p.conn.Recv()
			if err != nil {
				return
			}
			if err := s.handleLinkFrame(id, f); err != nil {
				return
			}
		}
	}()
}

// detachLink runs once a link's connection is gone: it removes the link
// from the registry, retracts the overlay members learned through it, and
// has the broker drop the link's routing entries — dispatching the
// resulting unsubscribes to the remaining peers under the control-plane
// ordering lock, exactly as if the entries' subscribers had left.
func (s *Server) detachLink(id broker.LinkID) {
	s.mu.Lock()
	p := s.links[id]
	delete(s.links, id)
	s.mu.Unlock()
	if p == nil {
		return // already detached
	}

	s.ctl.Lock()
	out, removed := s.b.DropLink(id)
	s.dispatch(out, nil)
	s.ctl.Unlock()

	// Retract the members learned through the link only after the broker
	// dropped its entries: a peer redialing during this cleanup is then
	// refused by the (still-present) member check and retries through its
	// backoff, instead of attaching to a broker whose routing state still
	// holds the dead link's entries. The broker-side replace/echo
	// tolerance covers the remaining interleavings.
	s.mu.Lock()
	mem := s.linkMembers[id]
	delete(s.linkMembers, id)
	for _, m := range mem {
		delete(s.members, m)
	}
	s.mu.Unlock()
	if removed > 0 {
		s.logPeer("link %d down: dropped %d routing entries", id, removed)
	}
	if p.onDown != nil {
		p.onDown()
	}
}

// AttachClient registers conn as a local client session named subscriber.
// Deliveries for that subscriber flow back over the connection as publish
// frames.
func (s *Server) AttachClient(subscriber string, conn Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, dup := s.clients[subscriber]; dup {
		s.mu.Unlock()
		return fmt.Errorf("transport: client %q already attached", subscriber)
	}
	p := &peerConn{conn: conn, out: newOutbox(conn)}
	s.clients[subscriber] = p
	s.wg.Add(2) // reader/writer slots, reserved while !closed is known
	s.mu.Unlock()

	s.startClient(subscriber, p)
	return nil
}

// startClient spawns the reader and writer goroutines for a client session;
// the caller has already reserved their two WaitGroup slots under s.mu.
// When the session's reader exits, the client detaches from the registry so
// the subscriber may reconnect under the same name.
func (s *Server) startClient(subscriber string, p *peerConn) {
	go func() {
		defer s.wg.Done()
		p.out.drain()
	}()
	go func() {
		defer s.wg.Done()
		for {
			f, err := p.conn.Recv()
			if err != nil {
				p.out.close()
				break
			}
			if err := s.handleClientFrame(subscriber, f); err != nil {
				// A protocol error from this peer; drop the connection.
				p.out.close()
				_ = p.conn.Close()
				break
			}
		}
		s.mu.Lock()
		if s.clients[subscriber] == p {
			delete(s.clients, subscriber)
		}
		s.mu.Unlock()
	}()
}

// handleLinkFrame runs on the link's reader goroutine. The broker picks the
// plane per frame type: publishes route shared, control frames exclusive
// (and atomic with their forwarded frames, see Server.ctl). A peer hello on
// an established link is an overlay-membership update handled by the
// transport itself — the broker never sees it.
func (s *Server) handleLinkFrame(from broker.LinkID, f wire.Frame) error {
	if f.Type == wire.FramePeerHello {
		return s.mergeMembers(from, f.Peer)
	}
	if f.Type == wire.FramePublish {
		// Forwarded events write-ahead like local ones: a durable's log must
		// capture everything routed through this broker.
		s.logEvent(f.Msg)
		start := time.Now()
		out, dels, err := s.b.HandleFrame(from, f)
		s.dispatch(out, dels)
		s.hopLatency.Observe(time.Since(start))
		return err
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, dels, err := s.b.HandleFrame(from, f)
	s.dispatch(out, dels)
	return err
}

func (s *Server) handleClientFrame(subscriber string, f wire.Frame) error {
	switch f.Type {
	case wire.FrameHello:
		if f.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q sent hello as %q", subscriber, f.Subscriber)
		}
		return nil
	case wire.FrameSubscribe:
		if f.Sub.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q subscribing as %q", subscriber, f.Sub.Subscriber)
		}
		_, err := s.Subscribe(f.Sub)
		return err
	case wire.FrameUnsubscribe:
		if s.durableUnsubscribe(f.SubID) {
			return nil
		}
		return s.Unsubscribe(f.SubID)
	case wire.FramePublish:
		s.Publish(f.Msg)
		return nil
	case wire.FrameDurableSubscribe:
		if f.Sub.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q durable-subscribing as %q", subscriber, f.Sub.Subscriber)
		}
		return s.DurableSubscribe(subscriber, f.Name, f.Sub)
	case wire.FrameAck:
		s.durableAck(f.Name, f.Seq)
		return nil
	default:
		return fmt.Errorf("transport: client sent unknown frame type %d", f.Type)
	}
}

// Subscribe registers a local subscription and forwards it to neighbors
// (control plane: exclusive in the broker, atomic with its dispatch).
func (s *Server) Subscribe(sub *subscription.Subscription) (uint64, error) {
	if s.isClosed() {
		return 0, ErrClosed
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, err := s.b.SubscribeLocal(sub)
	if err != nil {
		return 0, err
	}
	s.dispatch(out, nil)
	return sub.ID, nil
}

// Unsubscribe retracts a local subscription (control plane).
func (s *Server) Unsubscribe(id uint64) error {
	if s.isClosed() {
		return ErrClosed
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	out, err := s.b.UnsubscribeLocal(id)
	if err != nil {
		return err
	}
	s.dispatch(out, nil)
	return nil
}

// Publish injects a local event. Publishes run concurrently: the broker
// routes under its shared lock and per-peer outboxes order the frames.
func (s *Server) Publish(m *event.Message) {
	if s.isClosed() {
		return
	}
	s.logEvent(m)
	out, dels := s.b.PublishLocal(m)
	s.dispatch(out, dels)
}

// PublishBatch injects a burst of local events under one broker lock
// acquisition and one dispatch pass, amortizing the per-event handoff costs
// for bursty publishers. Deliveries and forwards preserve batch order.
func (s *Server) PublishBatch(ms []*event.Message) {
	if len(ms) == 0 || s.isClosed() {
		return
	}
	for _, m := range ms {
		s.logEvent(m)
	}
	out, dels := s.b.PublishLocalBatch(ms)
	s.dispatch(out, dels)
}

// Prune applies up to n pruning steps (exclusive with routing, inside the
// broker).
func (s *Server) Prune(n int) int {
	return s.b.Prune(n)
}

// WriteSnapshot serializes the routing table (routing may continue).
func (s *Server) WriteSnapshot(w io.Writer) error {
	return s.b.WriteSnapshot(w)
}

// ReadSnapshot restores the routing table. Links referenced by the snapshot
// must already be attached, and no subscription may have arrived yet; call
// it between dialing static peers and opening listeners. The broker runs it
// exclusively, so a frame that slips in first fails the restore cleanly
// rather than corrupting it.
func (s *Server) ReadSnapshot(r io.Reader) error {
	return s.b.ReadSnapshot(r)
}

// Stats snapshots the broker (concurrent with traffic).
func (s *Server) Stats() broker.Stats {
	return s.b.Stats()
}

func (s *Server) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// dispatch queues outgoing frames and deliveries onto the per-peer
// outboxes. It holds the connection registry's read lock only — many
// dispatches run concurrently, and outboxes serialize per peer. A peer that
// detaches concurrently just misses the frames (its outbox is closed, and
// the frame's encoding reference is released here instead).
//
// Encode-once bookkeeping: each Outgoing arrives carrying one reference on
// its shared encoding, which pushing transfers to the outbox. Client
// deliveries of an event the broker also forwarded borrow that same buffer
// (deliveries are resolved first, while this call still provably holds the
// out-frames' references); deliveries of a purely local event encode once
// per dispatch and share across the remaining client sessions.
func (s *Server) dispatch(out []broker.Outgoing, dels []broker.Delivery) {
	if len(out) == 0 && len(dels) == 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(dels) > 0 {
		var (
			cacheMsg *event.Message
			cacheEnc *wire.EncodedFrame
			owned    bool // cacheEnc's base reference is ours to drop
		)
		for _, d := range dels {
			p := s.clients[d.Subscriber]
			if p == nil {
				// Mangled durable entries exist only to keep the overlay
				// routing events here; the WAL pump delivers them, so the
				// live match is dropped (onDeliver would double-deliver).
				if s.onDeliver != nil && !isDurableSubscriber(d.Subscriber) {
					s.onDeliver(d)
				}
				continue
			}
			f := wire.PublishFrame(d.Msg)
			if d.Msg != cacheMsg {
				if owned {
					cacheEnc.Release()
				}
				cacheMsg, cacheEnc, owned = d.Msg, nil, false
				for i := range out {
					if out[i].Enc != nil && out[i].Frame.Type == wire.FramePublish && out[i].Frame.Msg == d.Msg {
						cacheEnc = out[i].Enc // borrowed: out's reference is still held
						break
					}
				}
				if cacheEnc == nil {
					if enc, err := wire.EncodeFrame(f, 1); err == nil {
						cacheEnc, owned = enc, true
					}
				}
			}
			var enc *wire.EncodedFrame
			if cacheEnc != nil {
				cacheEnc.Retain(1)
				enc = cacheEnc
			}
			if !p.out.push(outItem{enc: enc, f: f}) && enc != nil {
				enc.Release()
			}
		}
		if owned {
			cacheEnc.Release()
		}
	}
	for i := range out {
		o := &out[i]
		p := s.links[o.Link]
		if p == nil || !p.out.push(outItem{enc: o.Enc, f: o.Frame}) {
			o.ReleaseEnc() // link detached or outbox closed
		}
	}
}

// Listen starts accepting neighbor-broker connections on addr. A
// connection whose first frame is a peer hello goes through the overlay
// handshake (acyclicity check, membership exchange, state sync — see
// peerlink.go); any other first frame attaches the connection as a raw
// link, the pre-handshake protocol still spoken by DialLink.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.wg.Add(1) // accept-loop slot, reserved while !closed is known
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			// Adding from inside a tracked goroutine: the counter is
			// provably nonzero, so this cannot race Shutdown's Wait.
			s.wg.Add(1) //dimlint:ignore lockplane Add runs inside a tracked goroutine whose own slot keeps the counter nonzero, so Wait cannot pass before it
			go func() {
				defer s.wg.Done()
				s.classifyAccepted(NewTCPConn(nc))
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// ListenClients starts accepting client sessions on addr. Each connection
// must introduce itself with a hello frame naming its subscriber; the
// session is then attached under that name.
func (s *Server) ListenClients(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen clients %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	// Track as the (single) client listener by reusing the shutdown path:
	// both listeners close on Shutdown.
	if s.listener == nil {
		s.listener = ln
	} else {
		prev := s.listener
		s.listener = &dualListener{a: prev, b: ln}
	}
	s.wg.Add(1) // accept-loop slot, reserved while !closed is known
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1) //dimlint:ignore lockplane Add runs inside a tracked goroutine whose own slot keeps the counter nonzero, so Wait cannot pass before it
			go func() {
				defer s.wg.Done()
				conn := NewTCPConn(nc)
				f, err := conn.Recv()
				if err != nil || f.Type != wire.FrameHello {
					_ = conn.Close()
					return
				}
				if err := s.AttachClient(f.Subscriber, conn); err != nil {
					_ = conn.Close()
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// rawLinkGrace bounds how long the listener waits to classify an accepted
// connection by its first frame. Managed peers send their hello
// immediately; a raw (legacy DialLink) dialer may stay silent, so after
// the grace it is attached as a raw link anyway — pre-handshake behavior
// was to attach at accept time, and a silent raw listener-only peer must
// still receive forwarded traffic.
const rawLinkGrace = time.Second

// classifyAccepted reads an accepted connection's first frame to decide
// between the peer handshake and a legacy raw link. Raw links are
// resynced right after attachment: control frames forwarded while the
// connection awaited classification never reached it, and unlike managed
// peers a raw link has no other repair path.
func (s *Server) classifyAccepted(conn Conn) {
	// Track the connection while waiting for its first frame — a peer
	// that connects and sends nothing must not survive Shutdown — and
	// reserve the reader goroutine's slot while holding the lock that
	// proved !closed.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.pending[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	first := make(chan recvResult, 1)
	go func() {
		defer s.wg.Done()
		f, err := conn.Recv()
		first <- recvResult{f: f, err: err}
	}()

	attachRaw := func(pending <-chan recvResult) {
		// Attach before unpending: the connection must always be visible
		// to Shutdown through one of the two registries.
		id, err := s.attachLink(conn, nil, pending, nil)
		s.unpend(conn)
		if err != nil {
			_ = conn.Close()
			return
		}
		s.syncLink(id)
	}

	select {
	case r := <-first:
		if r.err != nil {
			s.unpend(conn)
			_ = conn.Close()
			return
		}
		if r.f.Type == wire.FramePeerHello {
			defer s.unpend(conn)
			s.acceptPeer(conn, r.f.Peer)
			return
		}
		ready := make(chan recvResult, 1)
		ready <- r
		attachRaw(ready)
	case <-time.After(rawLinkGrace):
		attachRaw(first)
	}
}

// unpend drops a connection from the pre-classification registry.
func (s *Server) unpend(conn Conn) {
	s.mu.Lock()
	delete(s.pending, conn)
	s.mu.Unlock()
}

// dualListener lets Shutdown close both the link and client listeners
// through one handle.
type dualListener struct{ a, b net.Listener }

func (d *dualListener) Accept() (net.Conn, error) { return nil, net.ErrClosed }
func (d *dualListener) Addr() net.Addr            { return d.a.Addr() }
func (d *dualListener) Close() error {
	err1 := d.a.Close()
	err2 := d.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// DialLink connects to a neighbor broker's listener and attaches the
// connection as a link.
func (s *Server) DialLink(addr string) (broker.LinkID, error) {
	conn, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	id, err := s.AttachLink(conn)
	if err != nil {
		_ = conn.Close()
		return 0, err
	}
	return id, nil
}

// Shutdown closes the listener, stops every peer dialer, and closes every
// connection, then waits for all goroutines to exit. It is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.listener
	// Copy the peer list: forgetPeer compacts s.peers in place under the
	// lock, which must not race this iteration.
	peers := append([]*Peer(nil), s.peers...)
	var conns []*peerConn
	for _, p := range s.links {
		conns = append(conns, p)
	}
	for _, p := range s.clients {
		conns = append(conns, p)
	}
	pending := make([]Conn, 0, len(s.pending))
	for c := range s.pending {
		pending = append(pending, c)
	}
	s.mu.Unlock()

	s.haltDurables()
	for _, p := range peers {
		p.stopDialing()
	}
	if ln != nil {
		_ = ln.Close()
	}
	for _, p := range conns {
		p.out.close()
		_ = p.conn.Close()
	}
	for _, c := range pending {
		_ = c.Close()
	}
	s.wg.Wait()
}
