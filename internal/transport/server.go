package transport

import (
	"fmt"
	"io"
	"net"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// Server runs one broker over real connections. All broker access is
// serialized through the server's mutex; connection readers and outbox
// writers are the only goroutines, and Shutdown stops and awaits them.
type Server struct {
	mu sync.Mutex
	b  *broker.Broker

	links   map[broker.LinkID]*peerConn
	clients map[string]*peerConn

	listener  net.Listener
	onDeliver func(broker.Delivery)

	closed bool
	wg     sync.WaitGroup
}

// peerConn is one attached connection (broker link or client session).
type peerConn struct {
	conn Conn
	out  *outbox
}

// NewServer wraps a broker. onDeliver (optional) receives notifications for
// local subscribers that are not attached client sessions.
func NewServer(b *broker.Broker, onDeliver func(broker.Delivery)) *Server {
	return &Server{
		b:         b,
		links:     make(map[broker.LinkID]*peerConn),
		clients:   make(map[string]*peerConn),
		onDeliver: onDeliver,
	}
}

// Broker exposes the underlying broker for stats. Callers must not mutate
// it concurrently with the server; use the server's methods for traffic.
func (s *Server) Broker() *broker.Broker { return s.b }

// AttachLink registers conn as a neighbor-broker connection and starts its
// reader. The returned LinkID is stable for the server's lifetime.
func (s *Server) AttachLink(conn Conn) (broker.LinkID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	id := s.b.AddLink()
	p := &peerConn{conn: conn, out: newOutbox()}
	s.links[id] = p
	s.mu.Unlock()

	s.startPeer(p, func(f wire.Frame) error { return s.handleLinkFrame(id, f) })
	return id, nil
}

// AttachClient registers conn as a local client session named subscriber.
// Deliveries for that subscriber flow back over the connection as publish
// frames.
func (s *Server) AttachClient(subscriber string, conn Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, dup := s.clients[subscriber]; dup {
		s.mu.Unlock()
		return fmt.Errorf("transport: client %q already attached", subscriber)
	}
	p := &peerConn{conn: conn, out: newOutbox()}
	s.clients[subscriber] = p
	s.mu.Unlock()

	s.startPeer(p, func(f wire.Frame) error { return s.handleClientFrame(subscriber, f) })
	return nil
}

// startPeer spawns the reader and writer goroutines for a connection.
func (s *Server) startPeer(p *peerConn, handle func(wire.Frame) error) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		p.out.drain()
	}()
	go func() {
		defer s.wg.Done()
		for {
			f, err := p.conn.Recv()
			if err != nil {
				p.out.close()
				return
			}
			if err := handle(f); err != nil {
				// A protocol error from this peer; drop the connection.
				p.out.close()
				_ = p.conn.Close()
				return
			}
		}
	}()
}

func (s *Server) handleLinkFrame(from broker.LinkID, f wire.Frame) error {
	s.mu.Lock()
	out, dels, err := s.b.HandleFrame(from, f)
	s.dispatchLocked(out, dels)
	s.mu.Unlock()
	return err
}

func (s *Server) handleClientFrame(subscriber string, f wire.Frame) error {
	switch f.Type {
	case wire.FrameHello:
		if f.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q sent hello as %q", subscriber, f.Subscriber)
		}
		return nil
	case wire.FrameSubscribe:
		if f.Sub.Subscriber != subscriber {
			return fmt.Errorf("transport: client %q subscribing as %q", subscriber, f.Sub.Subscriber)
		}
		_, err := s.Subscribe(f.Sub)
		return err
	case wire.FrameUnsubscribe:
		return s.Unsubscribe(f.SubID)
	case wire.FramePublish:
		s.Publish(f.Msg)
		return nil
	default:
		return fmt.Errorf("transport: client sent unknown frame type %d", f.Type)
	}
}

// Subscribe registers a local subscription and forwards it to neighbors.
func (s *Server) Subscribe(sub *subscription.Subscription) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	out, err := s.b.SubscribeLocal(sub)
	if err != nil {
		return 0, err
	}
	s.dispatchLocked(out, nil)
	return sub.ID, nil
}

// Unsubscribe retracts a local subscription.
func (s *Server) Unsubscribe(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	out, err := s.b.UnsubscribeLocal(id)
	if err != nil {
		return err
	}
	s.dispatchLocked(out, nil)
	return nil
}

// Publish injects a local event.
func (s *Server) Publish(m *event.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	out, dels := s.b.PublishLocal(m)
	s.dispatchLocked(out, dels)
}

// Prune applies up to n pruning steps (serialized with traffic).
func (s *Server) Prune(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Prune(n)
}

// WriteSnapshot serializes the routing table (serialized with traffic).
func (s *Server) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.WriteSnapshot(w)
}

// ReadSnapshot restores the routing table. Links referenced by the snapshot
// must already be attached, and no subscription may have arrived yet; call
// it between dialing static peers and opening listeners. Serialized with
// traffic, so a frame that slips in first fails the restore cleanly rather
// than corrupting it.
func (s *Server) ReadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.ReadSnapshot(r)
}

// Stats snapshots the broker (serialized with traffic).
func (s *Server) Stats() broker.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Stats()
}

// dispatchLocked queues outgoing frames and deliveries. Callers hold s.mu.
func (s *Server) dispatchLocked(out []broker.Outgoing, dels []broker.Delivery) {
	for _, o := range out {
		p := s.links[o.Link]
		if p == nil {
			continue // link detached
		}
		f := o.Frame
		conn := p.conn
		p.out.push(func() error { return conn.Send(f) })
	}
	for _, d := range dels {
		if p := s.clients[d.Subscriber]; p != nil {
			f := wire.PublishFrame(d.Msg)
			conn := p.conn
			p.out.push(func() error { return conn.Send(f) })
			continue
		}
		if s.onDeliver != nil {
			s.onDeliver(d)
		}
	}
}

// Listen starts accepting neighbor-broker connections on addr. Every
// accepted connection becomes a link.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if _, err := s.AttachLink(NewTCPConn(nc)); err != nil {
				_ = nc.Close()
				return
			}
		}
	}()
	return ln.Addr().String(), nil
}

// ListenClients starts accepting client sessions on addr. Each connection
// must introduce itself with a hello frame naming its subscriber; the
// session is then attached under that name.
func (s *Server) ListenClients(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen clients %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	// Track as the (single) client listener by reusing the shutdown path:
	// both listeners close on Shutdown.
	if s.listener == nil {
		s.listener = ln
	} else {
		prev := s.listener
		s.listener = &dualListener{a: prev, b: ln}
	}
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				conn := NewTCPConn(nc)
				f, err := conn.Recv()
				if err != nil || f.Type != wire.FrameHello {
					_ = conn.Close()
					return
				}
				if err := s.AttachClient(f.Subscriber, conn); err != nil {
					_ = conn.Close()
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// dualListener lets Shutdown close both the link and client listeners
// through one handle.
type dualListener struct{ a, b net.Listener }

func (d *dualListener) Accept() (net.Conn, error) { return nil, net.ErrClosed }
func (d *dualListener) Addr() net.Addr            { return d.a.Addr() }
func (d *dualListener) Close() error {
	err1 := d.a.Close()
	err2 := d.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// DialLink connects to a neighbor broker's listener and attaches the
// connection as a link.
func (s *Server) DialLink(addr string) (broker.LinkID, error) {
	conn, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	id, err := s.AttachLink(conn)
	if err != nil {
		_ = conn.Close()
		return 0, err
	}
	return id, nil
}

// Shutdown closes the listener and every connection, then waits for all
// goroutines to exit. It is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.listener
	var conns []*peerConn
	for _, p := range s.links {
		conns = append(conns, p)
	}
	for _, p := range s.clients {
		conns = append(conns, p)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, p := range conns {
		p.out.close()
		_ = p.conn.Close()
	}
	s.wg.Wait()
}
