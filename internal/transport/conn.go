// Package transport runs brokers over real connections. The sans-IO broker
// state machine (internal/broker) stays single-threaded; a Server serializes
// access to it and owns every goroutine: one reader per connection and one
// writer per outbox, all stopped and awaited by Shutdown.
//
// Two connection types are provided: TCP (length-prefixed wire frames, used
// by cmd/brokerd) and in-memory channel pairs (tests, examples).
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"dimprune/internal/wire"
)

// Conn is a bidirectional, frame-oriented connection. Send and Recv may be
// called from different goroutines; neither is safe for concurrent calls
// with itself.
type Conn interface {
	// Send transmits one frame.
	Send(wire.Frame) error
	// Recv blocks for the next frame. It returns an error once the peer
	// closed or the connection broke.
	Recv() (wire.Frame, error)
	// Close tears the connection down; pending Recv calls unblock.
	Close() error
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// tcpConn frames a net.Conn with the wire stream format.
type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	mu sync.Mutex // serializes writes
	bw *bufio.Writer
}

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to a broker's listener.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

func (c *tcpConn) Send(f wire.Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.bw, f); err != nil {
		return err
	}
	return c.bw.Flush()
}

// batchWriter is the coalesced write path an outbox uses when the
// connection transmits a byte stream: the whole backlog lands in the
// buffered writer under one lock acquisition with a single flush at the
// end, and pre-encoded items go out without re-encoding.
type batchWriter interface {
	writeItems([]outItem) error
}

func (c *tcpConn) writeItems(items []outItem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range items {
		it := &items[i]
		if it.enc != nil {
			if _, err := it.enc.WriteTo(c.bw); err != nil {
				return err
			}
			continue
		}
		if err := wire.WriteFrame(c.bw, it.f); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// sendFrames writes a burst of frames with one lock acquisition and one
// flush — the client-side publish-batch fast path.
func (c *tcpConn) sendFrames(fs []wire.Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range fs {
		if err := wire.WriteFrame(c.bw, f); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (wire.Frame, error) {
	return wire.ReadFrame(c.br)
}

func (c *tcpConn) Close() error { return c.nc.Close() }

// chanConn is one end of an in-memory connection pair.
type chanConn struct {
	send chan<- wire.Frame
	recv <-chan wire.Frame

	closeOnce sync.Once
	closed    chan struct{}        // this end closed
	peer      <-chan struct{}      // other end closed
	signal    func() chan struct{} // returns this end's close channel
}

// Pipe returns two connected in-memory connections. Frames sent on one are
// received on the other. The internal buffer smooths bursts; when it fills,
// Send blocks until the peer drains or either side closes.
func Pipe() (Conn, Conn) {
	ab := make(chan wire.Frame, 64)
	ba := make(chan wire.Frame, 64)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	a := &chanConn{send: ab, recv: ba, closed: aClosed, peer: bClosed}
	b := &chanConn{send: ba, recv: ab, closed: bClosed, peer: aClosed}
	return a, b
}

func (c *chanConn) Send(f wire.Frame) error {
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer:
		return ErrClosed
	default:
	}
	select {
	case c.send <- f:
		return nil
	case <-c.closed:
		return ErrClosed
	case <-c.peer:
		return ErrClosed
	}
}

func (c *chanConn) Recv() (wire.Frame, error) {
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.closed:
		return wire.Frame{}, ErrClosed
	case <-c.peer:
		// Drain frames the peer sent before closing.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return wire.Frame{}, ErrClosed
		}
	}
}

func (c *chanConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
