package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/delivery"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// handleTestServer wires a server and one attached client session over an
// in-memory pipe.
func handleTestServer(t *testing.T, name string) (*Server, *Client) {
	t.Helper()
	b, err := broker.New(broker.Config{ID: "hub"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b, nil)
	t.Cleanup(srv.Shutdown)
	sc, cc := Pipe()
	if err := srv.AttachClient(name, sc); err != nil {
		t.Fatal(err)
	}
	c := NewClient(name, cc)
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func waitLocalSubs(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().LocalSubs != n {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d local subs (have %d)", n, srv.Stats().LocalSubs)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientHandleChannelDelivery(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	h, err := c.SubscribeExpr(`kind = "alert" and level >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if h.C() == nil || h.Policy() != delivery.Block {
		t.Fatal("channel-mode handle misconfigured")
	}
	waitLocalSubs(t, srv, 1)

	srv.Publish(event.Build(1).Str("kind", "alert").Int("level", 5).Msg())
	srv.Publish(event.Build(2).Str("kind", "alert").Int("level", 1).Msg()) // no match
	srv.Publish(event.Build(3).Str("kind", "alert").Int("level", 3).Msg())

	for _, want := range []uint64{1, 3} {
		select {
		case m := <-h.C():
			if m.ID != want {
				t.Fatalf("received event %d, want %d", m.ID, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for event %d", want)
		}
	}
	if h.Delivered() != 2 || h.Dropped() != 0 {
		t.Errorf("delivered=%d dropped=%d, want 2/0", h.Delivered(), h.Dropped())
	}
	// The legacy shared channel stays silent for handle-only sessions.
	select {
	case m := <-c.Notifications():
		t.Fatalf("legacy channel received event %d", m.ID)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestClientHandleCallbackAndUnsubscribe(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	var got atomic.Uint64
	h, err := c.SubscribeNode(subscription.Eq("x", event.Int(1)), WithCallback(func(m *event.Message) {
		got.Add(1)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if h.C() != nil {
		t.Fatal("callback handle exposes a channel")
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("x", 1).Msg())
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("callback never invoked")
		}
		time.Sleep(time.Millisecond)
	}

	if err := h.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := h.Unsubscribe(); err != nil { // idempotent
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 0)
	srv.Publish(event.Build(2).Int("x", 1).Msg())
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Errorf("callback ran after Unsubscribe: %d invocations", got.Load())
	}
}

func TestClientHandleDropOldest(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	h, err := c.SubscribeExpr(`x = 1`, WithBuffer(2), WithPolicy(delivery.DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	const n = 10
	for i := 1; i <= n; i++ {
		srv.Publish(event.Build(uint64(i)).Int("x", 1).Msg())
	}
	// The consumer never reads until all events are through the session:
	// the queue must shed n-2 and keep the newest window.
	deadline := time.Now().Add(2 * time.Second)
	for h.Delivered() != n {
		if time.Now().After(deadline) {
			t.Fatalf("delivered=%d, want %d", h.Delivered(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if h.Dropped() != n-2 {
		t.Errorf("Dropped = %d, want %d", h.Dropped(), n-2)
	}
	if m := <-h.C(); m.ID != n-1 {
		t.Errorf("head = %d, want %d", m.ID, n-1)
	}
	if m := <-h.C(); m.ID != n {
		t.Errorf("next = %d, want %d", m.ID, n)
	}
}

func TestClientLegacyChannelStillWorks(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	if err := c.Subscribe(7, subscription.Eq("x", event.Int(1))); err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("x", 1).Msg())
	select {
	case m := <-c.Notifications():
		if m.ID != 1 {
			t.Fatalf("received %d", m.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy delivery timed out")
	}
}

func TestClientCloseDrainsHandles(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	h, err := c.SubscribeExpr(`x = 1`, WithBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	srv.Publish(event.Build(1).Int("x", 1).Msg())
	deadline := time.Now().Add(2 * time.Second)
	for h.Delivered() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("delivery timed out")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	// Buffered events survive Close; then the channel reports closure.
	if m, ok := <-h.C(); !ok || m.ID != 1 {
		t.Fatalf("drained %v, %v", m, ok)
	}
	if _, ok := <-h.C(); ok {
		t.Fatal("handle channel still open after Close")
	}
}

func TestClientAutoIDsDistinctAcrossSessions(t *testing.T) {
	b, err := broker.New(broker.Config{ID: "hub"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b, nil)
	defer srv.Shutdown()
	ids := make(map[uint64]bool)
	for _, name := range []string{"alice", "bob"} {
		sc, cc := Pipe()
		if err := srv.AttachClient(name, sc); err != nil {
			t.Fatal(err)
		}
		c := NewClient(name, cc)
		defer c.Close()
		for i := 0; i < 3; i++ {
			h, err := c.SubscribeExpr(`x = 1`)
			if err != nil {
				t.Fatal(err)
			}
			if ids[h.ID()] {
				t.Fatalf("duplicate auto-assigned ID %d", h.ID())
			}
			ids[h.ID()] = true
		}
	}
}

func TestClientMixedLegacyAndHandleOverlap(t *testing.T) {
	srv, c := handleTestServer(t, "eve")
	// Legacy subscription and handle subscription overlap on x = 1: the
	// legacy channel must keep its every-frame feed even though a handle
	// also matches.
	if err := c.Subscribe(7, subscription.MustParse(`x >= 1`)); err != nil {
		t.Fatal(err)
	}
	h, err := c.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 2)
	srv.Publish(event.Build(1).Int("x", 1).Msg())
	select {
	case m := <-h.C():
		if m.ID != 1 {
			t.Fatalf("handle received %d", m.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handle delivery timed out")
	}
	select {
	case m := <-c.Notifications():
		if m.ID != 1 {
			t.Fatalf("legacy channel received %d", m.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy channel starved by overlapping handle match")
	}
}

func TestClientHandleUnsubscribeIdempotent(t *testing.T) {
	srv, c := handleTestServer(t, "ida")
	h, err := c.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	if err := h.Unsubscribe(); err != nil {
		t.Fatalf("first Unsubscribe: %v", err)
	}
	if err := h.Unsubscribe(); err != nil {
		t.Fatalf("second Unsubscribe: %v", err)
	}
	waitLocalSubs(t, srv, 0)

	// After the session ends, unsubscribing an already-retired handle is
	// still a nil no-op — even though the connection is gone.
	h2, err := c.SubscribeExpr(`y = 2`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Unsubscribe(); err != nil {
		t.Errorf("Unsubscribe after session close = %v, want nil", err)
	}
}
