package transport

import (
	"fmt"
	"sync"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// Client is a subscriber/publisher session against a broker server reached
// over a Conn (typically TCP via Dial). Notifications arrive on the channel
// returned by Notifications until the connection closes.
type Client struct {
	subscriber string
	conn       Conn

	notifications chan *event.Message
	closeOnce     sync.Once
	done          chan struct{}
}

// NewClient starts a client session over conn, introducing itself with a
// hello frame. Servers reached through ListenClients use the hello to name
// the session; servers that attached the connection explicitly just verify
// the name matches.
func NewClient(subscriber string, conn Conn) *Client {
	c := &Client{
		subscriber:    subscriber,
		conn:          conn,
		notifications: make(chan *event.Message, 64),
		done:          make(chan struct{}),
	}
	// A hello failure surfaces on the first real operation; the read loop
	// observes the broken connection either way.
	_ = conn.Send(wire.HelloFrame(subscriber))
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer close(c.notifications)
	for {
		f, err := c.conn.Recv()
		if err != nil {
			return
		}
		if f.Type != wire.FramePublish {
			continue // tolerate unknown server frames
		}
		select {
		case c.notifications <- f.Msg:
		case <-c.done:
			return
		}
	}
}

// Notifications returns the stream of matching events. The channel closes
// when the session ends.
func (c *Client) Notifications() <-chan *event.Message { return c.notifications }

// Subscribe registers a subscription under this client's name.
func (c *Client) Subscribe(id uint64, root *subscription.Node) error {
	s, err := subscription.New(id, c.subscriber, root)
	if err != nil {
		return err
	}
	return c.conn.Send(wire.SubscribeFrame(s))
}

// Unsubscribe retracts a subscription.
func (c *Client) Unsubscribe(id uint64) error {
	return c.conn.Send(wire.UnsubscribeFrame(id))
}

// Publish injects an event.
func (c *Client) Publish(m *event.Message) error {
	if m == nil {
		return fmt.Errorf("transport: nil message")
	}
	return c.conn.Send(wire.PublishFrame(m))
}

// PublishBatch injects a burst of events in order. It is an ordering and
// call-site convenience only: the wire protocol carries one publish frame
// per event and the server routes each frame as it arrives. Server-side
// lock amortization happens where the batch stays intact — Server.
// PublishBatch and Embedded.PublishBatch.
func (c *Client) PublishBatch(ms []*event.Message) error {
	for _, m := range ms {
		if err := c.Publish(m); err != nil {
			return err
		}
	}
	return nil
}

// Close ends the session.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.conn.Close()
}
