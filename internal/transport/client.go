package transport

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dimprune/internal/delivery"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

// ErrNilMessage reports a nil *event.Message passed to Publish.
var ErrNilMessage = errors.New("transport: nil message")

// Client is a subscriber/publisher session against a broker server reached
// over a Conn (typically TCP via Dial).
//
// Subscriptions made with SubscribeExpr/SubscribeNode return a *Handle
// mirroring the embedded engine's handle API: each handle owns a delivery
// queue with a backpressure policy and demultiplexes the session's
// incoming events by re-evaluating its subscription tree (the broker
// post-filters local subscriptions exactly, so every event on the wire
// matches at least one of the session's subscriptions). The deprecated
// Subscribe/Unsubscribe-by-ID API delivers on the shared channel returned
// by Notifications instead.
type Client struct {
	subscriber string
	conn       Conn

	notifications chan *event.Message
	closeOnce     sync.Once
	done          chan struct{}

	// mu guards handles and the usage flags; idSeq is the per-session
	// subscription counter behind idBase, a random 40-bit prefix drawn at
	// session start. The broker rejects duplicate subscription IDs by
	// dropping the offending session, so auto-assigned IDs must not
	// collide across sessions: a random prefix keeps the collision odds
	// at birthday-bound-over-2^40 (~50% only past a million concurrent
	// sessions) and, unlike deriving the prefix from the subscriber name,
	// cannot collide with a previous session of the same subscriber.
	mu          sync.RWMutex
	handles     map[uint64]*Handle
	durables    map[string]*DurableHandle
	durableIDs  map[uint64]struct{} // IDs held by attached durables
	usedLegacy  bool                // deprecated Subscribe was called
	usedHandles bool                // SubscribeNode/SubscribeExpr was called
	idBase      uint64
	idSeq       atomic.Uint64
}

// idSeqBits is the per-session subscription counter width below idBase.
const idSeqBits = 24

// ErrSubIDsExhausted reports a session whose entire 2^24 auto-ID namespace
// is held by live subscriptions.
var ErrSubIDsExhausted = errors.New("transport: session subscription-ID namespace exhausted")

// nextSubIDLocked allocates the next free auto-assigned subscription ID.
// The counter wraps at 2^24, so a session outliving 2^24 subscribe calls
// revisits old values; an ID still held by a live handle or durable is
// skipped rather than reused — reuse would overwrite the live handle here
// and silently replace its subscription broker-side. Callers hold c.mu
// (write) and register the ID before releasing it, which is what makes
// the allocation a reservation.
func (c *Client) nextSubIDLocked() (uint64, error) {
	const space = 1 << idSeqBits
	for tries := 0; tries < space; tries++ {
		id := c.idBase | (c.idSeq.Add(1) & (space - 1))
		if _, live := c.handles[id]; live {
			continue
		}
		if _, live := c.durableIDs[id]; live {
			continue
		}
		return id, nil
	}
	return 0, ErrSubIDsExhausted
}

// NewClient starts a client session over conn, introducing itself with a
// hello frame. Servers reached through ListenClients use the hello to name
// the session; servers that attached the connection explicitly just verify
// the name matches.
func NewClient(subscriber string, conn Conn) *Client {
	var seed [8]byte
	_, _ = rand.Read(seed[:])
	c := &Client{
		subscriber:    subscriber,
		conn:          conn,
		notifications: make(chan *event.Message, 64),
		done:          make(chan struct{}),
		handles:       make(map[uint64]*Handle),
		durables:      make(map[string]*DurableHandle),
		durableIDs:    make(map[uint64]struct{}),
		idBase:        binary.BigEndian.Uint64(seed[:]) &^ (1<<idSeqBits - 1),
	}
	// A hello failure surfaces on the first real operation; the read loop
	// observes the broken connection either way.
	_ = conn.Send(wire.HelloFrame(subscriber))
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer func() {
		close(c.notifications)
		c.retireHandles(false)
	}()
	var targets []*Handle
	for {
		f, err := c.conn.Recv()
		if err != nil {
			return
		}
		if f.Type == wire.FrameDurablePublish {
			// Durable replay demultiplexes by name, not by matching: the
			// broker post-filtered against this durable's own tree.
			c.mu.RLock()
			d := c.durables[f.Name]
			c.mu.RUnlock()
			if d != nil {
				d.deliver(DurableEvent{Seq: f.Seq, Msg: f.Msg})
			}
			continue
		}
		if f.Type != wire.FramePublish {
			continue // tolerate unknown server frames
		}
		// Demultiplex: events matching a handle go to that handle's
		// queue. The deprecated shared channel keeps its historical
		// every-frame feed for any session that is not handle-only —
		// sessions that used the legacy Subscribe (even mixed with
		// handles: their legacy subscriptions may overlap the handles'),
		// and sessions that never subscribed either way (e.g. server-side
		// state restored from a snapshot). A handle-only session skips
		// the channel entirely: an unmatched frame there is a stale
		// in-flight delivery right after an unsubscribe, and queueing it
		// behind a channel nobody reads would wedge the session's reader.
		targets = targets[:0]
		c.mu.RLock()
		for _, h := range c.handles {
			if h.root.Matches(f.Msg) {
				targets = append(targets, h)
			}
		}
		handleOnly := c.usedHandles && !c.usedLegacy
		c.mu.RUnlock()
		for _, h := range targets {
			h.deliver(f.Msg)
		}
		if handleOnly {
			continue
		}
		select {
		case c.notifications <- f.Msg:
		case <-c.done:
			return
		}
	}
}

// Notifications returns the shared stream of matching events for
// subscriptions made with the deprecated Subscribe. The channel closes
// when the session ends.
//
// Deprecated: use SubscribeExpr or SubscribeNode, whose Handle owns a
// per-subscription delivery queue.
func (c *Client) Notifications() <-chan *event.Message { return c.notifications }

// Handle is one registered subscription of a networked client session and
// the owner of its delivery, mirroring the embedded engine's handle API:
// notifications arrive on C (default) or via a dedicated-goroutine
// callback (WithCallback), buffered by a bounded queue whose overflow
// behavior is the handle's backpressure policy.
//
// One caveat has no embedded counterpart: all of a session's handles share
// one connection reader. Under the Block policy a full queue therefore
// stalls the whole session's delivery (exactly like a slow reader of the
// legacy shared channel); sessions that must never stall use DropOldest or
// DropNewest and watch Dropped.
type Handle struct {
	id   uint64
	c    *Client
	root *subscription.Node

	q  *delivery.Queue[*event.Message]
	cb func(*event.Message)

	discard   atomic.Bool
	drainDone chan struct{} // non-nil in callback mode

	retireOnce sync.Once
	retireErr  error
}

// subOptions collects one subscription's settings.
type subOptions struct {
	callback func(*event.Message)
	buffer   int
	policy   delivery.Policy
}

// SubOption configures one subscription at registration time.
type SubOption func(*subOptions)

// WithCallback delivers events by invoking fn from the subscription's
// dedicated delivery goroutine instead of over Handle.C. fn must not call
// Handle.Unsubscribe or Client.Close — they wait for the delivery
// goroutine and would deadlock.
func WithCallback(fn func(*event.Message)) SubOption {
	return func(o *subOptions) { o.callback = fn }
}

// WithBuffer sets the subscription's delivery-queue capacity (minimum 1,
// default 64).
func WithBuffer(n int) SubOption {
	return func(o *subOptions) { o.buffer = n }
}

// WithPolicy sets the subscription's backpressure policy (default
// delivery.Block).
func WithPolicy(p delivery.Policy) SubOption {
	return func(o *subOptions) { o.policy = p }
}

// SubscribeExpr registers a subscription given in text syntax and returns
// its Handle.
func (c *Client) SubscribeExpr(expr string, opts ...SubOption) (*Handle, error) {
	root, err := subscription.Parse(expr)
	if err != nil {
		return nil, err
	}
	return c.SubscribeNode(root, opts...)
}

// SubscribeNode registers a subscription tree and returns its Handle. The
// subscription ID is auto-assigned from the session's namespace.
func (c *Client) SubscribeNode(root *subscription.Node, opts ...SubOption) (*Handle, error) {
	o := subOptions{buffer: 64, policy: delivery.Block}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.policy.Valid() {
		return nil, fmt.Errorf("transport: invalid backpressure policy %d", o.policy)
	}
	// Allocate and register under one lock hold: the allocation is only a
	// reservation while the ID enters c.handles before the lock drops. The
	// handle must be discoverable before the subscribe frame leaves anyway —
	// the first matching event can arrive as soon as the server processes
	// the frame.
	c.mu.Lock()
	id, err := c.nextSubIDLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	s, err := subscription.New(id, c.subscriber, root)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	h := &Handle{id: id, c: c, root: s.Root, cb: o.callback}
	h.q = delivery.New[*event.Message](o.buffer, o.policy)
	c.usedHandles = true
	c.handles[id] = h
	c.mu.Unlock()
	if h.cb != nil {
		h.drainDone = make(chan struct{})
		go h.drainLoop()
	}
	if err := c.conn.Send(wire.SubscribeFrame(s)); err != nil {
		c.mu.Lock()
		delete(c.handles, id)
		c.mu.Unlock()
		h.retire(true)
		return nil, err
	}
	return h, nil
}

// drainLoop is the dedicated delivery goroutine of a callback handle.
func (h *Handle) drainLoop() {
	defer close(h.drainDone)
	for m := range h.q.C() {
		if h.discard.Load() {
			continue
		}
		h.cb(m)
	}
}

// deliver enqueues one event under the handle's policy; drops are counted
// by the queue.
func (h *Handle) deliver(m *event.Message) { h.q.Enqueue(m) }

// ID returns the auto-assigned subscription ID.
func (h *Handle) ID() uint64 { return h.id }

// C returns the delivery channel: per-subscription arrival order, up to
// the configured buffer, closed when the handle retires or the session
// ends (buffered events stay receivable). C returns nil in callback mode.
func (h *Handle) C() <-chan *event.Message {
	if h.cb != nil {
		return nil
	}
	return h.q.C()
}

// Policy returns the handle's backpressure policy.
func (h *Handle) Policy() delivery.Policy { return h.q.Policy() }

// Delivered returns how many events the subscription has accepted for
// delivery.
func (h *Handle) Delivered() uint64 { return h.q.Enqueued() }

// Dropped returns how many events the backpressure policy has shed
// (always 0 under Block).
func (h *Handle) Dropped() uint64 { return h.q.Dropped() }

// Unsubscribe retracts the subscription and retires the handle: the
// retraction is sent to the broker, the handle stops receiving, and
// events still in flight from the broker are dropped by the session's
// demultiplexer. In callback mode the queued backlog is discarded and a
// pending callback invocation has completed before Unsubscribe returns;
// in channel mode the channel closes, with already-buffered events
// remaining receivable (channel semantics). Idempotent: any call after
// the handle retired — a repeat Unsubscribe, or an Unsubscribe after the
// session ended — is a no-op returning nil. Must not be called from the
// handle's own callback.
func (h *Handle) Unsubscribe() error {
	ran := false
	h.retireOnce.Do(func() {
		ran = true
		h.c.mu.Lock()
		delete(h.c.handles, h.id)
		h.c.mu.Unlock()
		h.retireErr = h.c.conn.Send(wire.UnsubscribeFrame(h.id))
		h.shutdown(true)
	})
	if !ran {
		return nil
	}
	return h.retireErr
}

// retire tears the handle down without touching the client registry or
// the wire (session teardown paths).
func (h *Handle) retire(discard bool) {
	h.retireOnce.Do(func() { h.shutdown(discard) })
}

// shutdown closes the queue and waits out the delivery goroutine.
func (h *Handle) shutdown(discard bool) {
	h.discard.Store(discard)
	h.q.Close()
	if h.drainDone != nil {
		<-h.drainDone
	}
}

// retireHandles tears down every handle when the session ends; queued
// events drain to their consumers unless discard is set.
func (c *Client) retireHandles(discard bool) {
	c.mu.Lock()
	hs := make([]*Handle, 0, len(c.handles))
	for _, h := range c.handles {
		hs = append(hs, h)
	}
	c.handles = make(map[uint64]*Handle)
	ds := make([]*DurableHandle, 0, len(c.durables))
	for _, d := range c.durables {
		ds = append(ds, d)
	}
	c.durables = make(map[string]*DurableHandle)
	c.durableIDs = make(map[uint64]struct{})
	c.mu.Unlock()
	for _, h := range hs {
		h.retire(discard)
	}
	for _, d := range ds {
		d.retire(discard)
	}
}

// Subscribe registers a subscription under this client's name with a
// caller-chosen ID, delivering on the shared Notifications channel.
//
// Deprecated: use SubscribeExpr or SubscribeNode, whose Handle owns a
// per-subscription delivery queue and lifecycle.
func (c *Client) Subscribe(id uint64, root *subscription.Node) error {
	s, err := subscription.New(id, c.subscriber, root)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.usedLegacy = true
	c.mu.Unlock()
	return c.conn.Send(wire.SubscribeFrame(s))
}

// Unsubscribe retracts a subscription by ID. For handle-based
// subscriptions it is equivalent to Handle.Unsubscribe.
//
// Deprecated: use Handle.Unsubscribe.
func (c *Client) Unsubscribe(id uint64) error {
	c.mu.RLock()
	h := c.handles[id]
	c.mu.RUnlock()
	if h != nil {
		return h.Unsubscribe()
	}
	return c.conn.Send(wire.UnsubscribeFrame(id))
}

// Publish injects an event.
func (c *Client) Publish(m *event.Message) error {
	if m == nil {
		return ErrNilMessage
	}
	return c.conn.Send(wire.PublishFrame(m))
}

// PublishBatch injects a burst of events in order. The wire protocol still
// carries one publish frame per event and the server routes each frame as
// it arrives — but on a stream connection the whole burst is written
// through the buffered writer under one lock acquisition and flushed once,
// so a batch of n events costs one syscall-sized write, not n. Server-side
// lock amortization happens where the batch stays intact — Server.
// PublishBatch and Embedded.PublishBatch.
func (c *Client) PublishBatch(ms []*event.Message) error {
	if len(ms) == 0 {
		return nil
	}
	for _, m := range ms {
		if m == nil {
			return ErrNilMessage
		}
	}
	if bs, ok := c.conn.(interface{ sendFrames([]wire.Frame) error }); ok {
		fs := make([]wire.Frame, len(ms))
		for i, m := range ms {
			fs[i] = wire.PublishFrame(m)
		}
		return bs.sendFrames(fs)
	}
	for _, m := range ms {
		if err := c.Publish(m); err != nil {
			return err
		}
	}
	return nil
}

// Close ends the session: the connection closes, every handle retires
// after draining its queued events, and the Notifications channel closes.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	err := c.conn.Close()
	// The read loop also retires handles on its way out; retiring here too
	// (idempotent) covers sessions whose read loop is parked in a channel
	// send rather than in Recv.
	c.retireHandles(false)
	return err
}
