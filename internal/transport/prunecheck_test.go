package transport

import (
	"fmt"
	"sort"
	"testing"

	"dimprune/internal/broker"
	"dimprune/internal/dist"
	"dimprune/internal/filter"
	"dimprune/internal/subscription"
)

// Single-threaded: register stress subs as REMOTE entries, prune to
// exhaustion, and verify the pruned table still matches a superset of the
// serial oracle on every event.
func TestPruneSupersetSingleThreaded(t *testing.T) {
	for _, layout := range []struct{ shards, workers int }{{1, 1}, {8, 4}} {
		t.Run(fmt.Sprintf("shards=%d", layout.shards), func(t *testing.T) {
			b, err := broker.New(broker.Config{ID: "X", MatchShards: layout.shards, MatchWorkers: layout.workers})
			if err != nil {
				t.Fatal(err)
			}
			b.AddLink()
			r := dist.New(2026)
			oracle := filter.New()
			for id := uint64(1); id <= 200; id++ {
				s, err := subscription.New(id, fmt.Sprintf("s%d", id), stressTree(r, 3))
				if err != nil {
					t.Fatal(err)
				}
				oracle.Register(s)
				if _, err := b.HandleSubscribe(0, s); err != nil {
					t.Fatal(err)
				}
			}
			sweep := func(pruned int) {
				er := dist.New(777)
				for i := 0; i < 200; i++ {
					m := stressMessage(er, uint64(i))
					want := oracle.Match(m, nil)
					got := map[uint64]bool{}
					b.MatchEntries(m, func(subID uint64, _ string) { got[subID] = true })
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					for _, id := range want {
						if !got[id] {
							t.Fatalf("after %d prunings: pruned table under-matches event %d for sub %d", pruned, m.ID, id)
						}
					}
				}
			}
			pruned := 0
			for round := 0; ; round++ {
				n := b.Prune(10)
				pruned += n
				// Full superset sweep every 10 rounds and at exhaustion.
				if round%10 == 0 || n == 0 {
					sweep(pruned)
				}
				if n == 0 {
					break
				}
			}
			t.Logf("pruned %d, superset held", pruned)
		})
	}
}
