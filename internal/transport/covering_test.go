package transport

import (
	"testing"

	"dimprune/internal/event"
)

// The peer-link replay is covers-only: a handshake resync carries a
// broker's advertisement set for the link, and a retraction that uncovers
// an entry replays the promoted cover before the retraction, so the
// remote table never has a coverage gap.
func TestPeerCoveringResyncAndPromotion(t *testing.T) {
	s0, dels0 := newPeerServer(t, "b0")
	s1, dels1 := newPeerServer(t, "b1")
	defer s0.Shutdown()
	defer s1.Shutdown()

	// Pre-link state at b0: a general entry covering a specific one.
	if _, err := s0.Subscribe(mustSub(t, 1, "alice", `price <= 50`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Subscribe(mustSub(t, 2, "bob", `price <= 20`)); err != nil {
		t.Fatal(err)
	}

	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.DialPeer(addr); err != nil {
		t.Fatal(err)
	}

	// The replay carries only the cover. Quiesce on a round trip: a probe
	// subscription from b1 landing at b0 proves the b0→b1 replay (sent
	// first on the same FIFO link) has been applied.
	if _, err := s1.Subscribe(mustSub(t, 10, "probe", `probe = 1`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s0.Stats().RemoteSubs == 1 })
	if got := s1.Stats().RemoteSubs; got != 1 {
		t.Fatalf("replay installed %d remote entries at b1, want 1 (the cover only)", got)
	}

	// The covered entry still receives: an event matching only through the
	// cover's generality routes to b0 and post-filters exactly.
	s1.Publish(event.Build(1).Int("price", int64(10)).Msg())
	got := waitDeliveries(t, dels0, 2)
	names := map[string]bool{}
	for _, d := range got {
		names[d.Subscriber] = true
	}
	if !names["alice"] || !names["bob"] {
		t.Fatalf("deliveries through the cover = %v, want alice and bob", names)
	}

	// Retracting the cover promotes the covered entry at b1 — no window
	// where b1 holds neither (subscribes precede unsubscribes per link).
	if err := s0.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := s1.Stats()
		if st.RemoteSubs != 1 {
			return false
		}
		for _, ed := range st.Delivery {
			if ed.SubID == 2 && !ed.Local {
				return true
			}
		}
		return false
	})
	s1.Publish(event.Build(2).Int("price", int64(10)).Msg())
	got = waitDeliveries(t, dels0, 1)
	if got[0].Subscriber != "bob" || got[0].SubID != 2 {
		t.Fatalf("post-promotion delivery = %+v, want bob/2", got[0])
	}
	select {
	case d := <-dels1:
		t.Fatalf("unexpected delivery at b1: %+v", d)
	default:
	}
}
