package transport

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/wire"
)

// newPeerServer builds a server with its own broker and a delivery sink.
func newPeerServer(t *testing.T, id string) (*Server, chan broker.Delivery) {
	t.Helper()
	dels := make(chan broker.Delivery, 256)
	s := NewServer(newBroker(t, id), func(d broker.Delivery) { dels <- d })
	return s, dels
}

func TestPeerLineForwardsAndSyncs(t *testing.T) {
	s0, dels0 := newPeerServer(t, "b0")
	s1, _ := newPeerServer(t, "b1")
	s2, dels2 := newPeerServer(t, "b2")
	defer s0.Shutdown()
	defer s1.Shutdown()
	defer s2.Shutdown()

	// A subscription registered before any link exists must ride the
	// handshake replay, not just live forwarding.
	if _, err := s0.Subscribe(mustSub(t, 1, "alice", `x = 1`)); err != nil {
		t.Fatal(err)
	}

	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.DialPeer(addr1); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.DialPeer(addr2); err != nil {
		t.Fatal(err)
	}

	// alice's subscription reaches the far end via replay + forwarding.
	waitFor(t, func() bool { return s2.Stats().RemoteSubs == 1 })

	// A post-link subscription at the far end reaches b0.
	if _, err := s2.Subscribe(mustSub(t, 2, "carol", `y = 2`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s0.Stats().RemoteSubs == 1 })

	// Events route across the overlay in both directions.
	s2.Publish(event.Build(1).Int("x", 1).Msg())
	got := waitDeliveries(t, dels0, 1)
	if got[0].Subscriber != "alice" {
		t.Errorf("delivery = %+v", got[0])
	}
	s0.Publish(event.Build(2).Int("y", 2).Msg())
	got = waitDeliveries(t, dels2, 1)
	if got[0].Subscriber != "carol" {
		t.Errorf("delivery = %+v", got[0])
	}
}

func TestPeerRejectsCycleAndSelfLink(t *testing.T) {
	s0, _ := newPeerServer(t, "b0")
	s1, _ := newPeerServer(t, "b1")
	s2, _ := newPeerServer(t, "b2")
	defer s0.Shutdown()
	defer s1.Shutdown()
	defer s2.Shutdown()

	addr0, err := s0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Self link.
	if _, err := s0.DialPeer(addr0); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self dial = %v, want refusal", err)
	}

	// Line b2 → b1 → b0, then the closing edge b2 → b0 must be refused.
	if _, err := s1.DialPeer(addr0); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DialPeer(addr1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DialPeer(addr0); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle-closing dial = %v, want refusal", err)
	}
	// A duplicate edge between direct neighbors is a 2-cycle.
	if _, err := s1.DialPeer(addr0); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("duplicate edge = %v, want refusal", err)
	}
}

func TestPeerReconnectRestoresRouting(t *testing.T) {
	sb, delsB := newPeerServer(t, "b")
	defer sb.Shutdown()
	if _, err := sb.Subscribe(mustSub(t, 1, "bob", `x = 1`)); err != nil {
		t.Fatal(err)
	}

	// First life of broker "a" on a fixed loopback port.
	sa1, _ := newPeerServer(t, "a")
	addr, err := sa1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := sb.DialPeer(addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa1.Stats().RemoteSubs == 1 })
	if !peer.Connected() {
		t.Error("peer not connected after DialPeer")
	}
	if peer.Addr() != addr {
		t.Errorf("peer.Addr() = %q, want %q", peer.Addr(), addr)
	}

	// Broker "a" dies: b must drop a's routing entries cleanly.
	if _, err := sa1.Subscribe(mustSub(t, 2, "ann", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sb.Stats().RemoteSubs == 1 })
	sa1.Shutdown()
	waitFor(t, func() bool { return sb.Stats().RemoteSubs == 0 })

	// Second life on the same address: the dialer reconnects, both sides
	// resync, and routing works again without any explicit resubscribe.
	sa2, delsA := newPeerServer(t, "a")
	defer sa2.Shutdown()
	if _, err := sa2.Subscribe(mustSub(t, 3, "amy", `y = 2`)); err != nil {
		t.Fatal(err)
	}
	if _, err := sa2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa2.Stats().RemoteSubs == 1 && sb.Stats().RemoteSubs == 1 })

	sa2.Publish(event.Build(1).Int("x", 1).Msg())
	if got := waitDeliveries(t, delsB, 1); got[0].Subscriber != "bob" {
		t.Errorf("delivery = %+v", got[0])
	}
	sb.Publish(event.Build(2).Int("y", 2).Msg())
	if got := waitDeliveries(t, delsA, 1); got[0].Subscriber != "amy" {
		t.Errorf("delivery = %+v", got[0])
	}

	// Peer.Close stops the link for good: no reconnect after the next loss.
	peer.Close()
	waitFor(t, func() bool { return sa2.Stats().RemoteSubs == 0 })
	time.Sleep(100 * time.Millisecond) // would be enough for a redial
	if n := sa2.Stats().RemoteSubs; n != 0 {
		t.Errorf("peer reconnected after Close: %d remote subs", n)
	}
	if peer.Connected() {
		t.Error("peer reports connected after Close")
	}
}

func TestShutdownWithSilentPendingConnection(t *testing.T) {
	s, _ := newPeerServer(t, "a")
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A peer that connects and never sends a first frame (port scanner,
	// half-open connection) must not hang Shutdown.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(10 * time.Millisecond) // let the accept goroutine park in Recv
	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a silent pre-handshake connection")
	}
}

func TestPeerRejectsCycleAfterComponentJoin(t *testing.T) {
	// Two 2-broker components assembled independently, then joined in the
	// middle; the far ends must refuse the ring-closing edge. This only
	// holds because membership additions flood over live links — the two
	// endpoint brokers of the joining edge are not the ones dialed last.
	servers := make([]*Server, 4)
	addrs := make([]string, 4)
	for i := range servers {
		s, _ := newPeerServer(t, fmt.Sprintf("j%d", i))
		defer s.Shutdown()
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i], addrs[i] = s, addr
	}
	// Component A: j1 → j0. Component B: j2 → j3.
	if _, err := servers[1].DialPeer(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := servers[2].DialPeer(addrs[3]); err != nil {
		t.Fatal(err)
	}
	// Join: j2 → j1 merges the components; the flood must reach j0 and j3.
	if _, err := servers[2].DialPeer(addrs[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		h0, h3 := servers[0].currentHello(), servers[3].currentHello()
		return len(h0.Members) == 4 && len(h3.Members) == 4
	})
	// The ring-closing edge between the far ends is refused.
	if _, err := servers[0].DialPeer(addrs[3]); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("far-end ring-closing dial = %v, want refusal", err)
	}
	if _, err := servers[3].DialPeer(addrs[0]); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("reverse far-end dial = %v, want refusal", err)
	}
}

func TestPeerHelloOnRawLinkIsProtocolError(t *testing.T) {
	// A PeerHello on a link that never completed a handshake (e.g. a
	// managed dialer whose hello outlived the raw-link classification
	// grace) must drop the link rather than commit unchecked membership —
	// the dialer then redials and handshakes properly.
	s, _ := newPeerServer(t, "a")
	defer s.Shutdown()
	local, remote := Pipe()
	if _, err := s.AttachLink(remote); err != nil {
		t.Fatal(err)
	}
	if err := local.Send(wire.PeerHelloFrame(&wire.PeerHello{ID: "late", Members: []string{"late"}})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, err := local.Recv()
		return err != nil // server closed the link
	})
	// The unchecked member set was not committed: "late" can still join
	// properly through a real handshake.
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sLate, _ := newPeerServer(t, "late")
	defer sLate.Shutdown()
	if _, err := sLate.DialPeer(addr); err != nil {
		t.Fatalf("clean handshake after rejected late hello: %v", err)
	}
}
