package transport

import (
	"testing"
	"time"

	"dimprune/internal/event"
)

// TestDurablePartitionNeverAcksPastCursor is the replay-cursor safety
// regression: when a client's connection dies mid-replay (a partition),
// records the pump had already SHIPPED but the client never ACKED must
// stay unacked in the WAL — the cursor belongs to the client, and only
// its explicit acks may advance it. A pump that self-acks on send would
// pass every happy-path test and silently lose events on exactly this
// schedule.
func TestDurablePartitionNeverAcksPastCursor(t *testing.T) {
	srv, w := durableServer(t, t.TempDir(), nil)

	// Session 1 over a raw pipe so the partition can be abrupt: closing cc
	// kills the conn with no clean unsubscribe or trailing acks.
	sc, cc := Pipe()
	if err := srv.AttachClient("eve", sc); err != nil {
		t.Fatal(err)
	}
	c1 := NewClient("eve", cc)
	d1, err := c1.DurableSubscribeExpr("audit", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	waitLocalSubs(t, srv, 1)

	for id := uint64(1); id <= 8; id++ {
		srv.Publish(event.Build(id).Int("n", int64(id)).Msg())
	}
	seqOf := make(map[uint64]uint64)
	for len(seqOf) < 8 {
		ev := recvAnyDurable(t, d1)
		seqOf[ev.Msg.ID] = ev.Seq
	}
	// Ack through event 3, then wait for the cursor to land on disk.
	if err := d1.Ack(seqOf[3]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		acked, ok := w.Acked("audit")
		return ok && acked == seqOf[3]
	})

	// Partition: the conn dies with events 4..8 shipped but unacked.
	cc.Close()
	waitClientGone(t, srv, "eve")
	time.Sleep(50 * time.Millisecond) // room for a buggy pump to over-ack
	if acked, _ := w.Acked("audit"); acked != seqOf[3] {
		t.Fatalf("partition advanced the ack cursor: acked=%d, client acked through %d", acked, seqOf[3])
	}

	// Reattach: exactly the unacked suffix replays — nothing at or before
	// the cursor, nothing missing after it.
	c2 := attachSession(t, srv, "eve")
	d2, err := c2.DurableSubscribeExpr("audit", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	replayed := make(map[uint64]uint64)
	for len(replayed) < 5 {
		ev := recvAnyDurable(t, d2)
		if ev.Seq <= seqOf[3] {
			t.Fatalf("replayed event %d (seq %d) at or before the acked cursor %d", ev.Msg.ID, ev.Seq, seqOf[3])
		}
		replayed[ev.Msg.ID] = ev.Seq
	}
	for id := uint64(4); id <= 8; id++ {
		if _, ok := replayed[id]; !ok {
			t.Errorf("partition lost event %d: not replayed after reattach", id)
		}
	}

	// Second partition mid-replay with NOTHING acked this session: the
	// cursor must still sit exactly where session 1 left it.
	c2.Close()
	waitClientGone(t, srv, "eve")
	time.Sleep(50 * time.Millisecond)
	if acked, _ := w.Acked("audit"); acked != seqOf[3] {
		t.Fatalf("ack-free replay session moved the cursor to %d, want %d", acked, seqOf[3])
	}

	// And the suffix replays again, duplicates allowed, losses never.
	c3 := attachSession(t, srv, "eve")
	d3, err := c3.DurableSubscribeExpr("audit", `n >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	again := make(map[uint64]bool)
	for len(again) < 5 {
		ev := recvAnyDurable(t, d3)
		again[ev.Msg.ID] = true
	}
	expectSilence(t, d3)
}

// recvAnyDurable receives the next durable event, whatever its ID.
func recvAnyDurable(t *testing.T, d *DurableHandle) DurableEvent {
	t.Helper()
	select {
	case ev := <-d.C():
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for a durable event")
		return DurableEvent{}
	}
}
