package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/filter"
	"dimprune/internal/subscription"
)

// Generators over a small attribute universe, mirroring the filter
// package's oracle-test generators so the stress workload exercises the
// same predicate shapes (equality, ranges, prefixes, negation).

var stressAttrs = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

func stressPredicate(r *dist.RNG) subscription.Predicate {
	attr := stressAttrs[r.Intn(len(stressAttrs))]
	var p subscription.Predicate
	switch r.Intn(7) {
	case 0:
		p = subscription.Pred(attr, subscription.OpEq, event.Int(int64(r.Intn(10))))
	case 1:
		p = subscription.Pred(attr, subscription.OpLe, event.Int(int64(r.Intn(10))))
	case 2:
		p = subscription.Pred(attr, subscription.OpGt, event.Int(int64(r.Intn(10))))
	case 3:
		p = subscription.Pred(attr, subscription.OpEq, event.String(string(rune('a'+r.Intn(5)))))
	case 4:
		p = subscription.Pred(attr, subscription.OpPrefix, event.String(string(rune('a'+r.Intn(3)))))
	case 5:
		p = subscription.Pred(attr, subscription.OpNe, event.Int(int64(r.Intn(10))))
	default:
		p = subscription.Pred(attr, subscription.OpExists, event.Value{})
	}
	if r.Bool(0.15) {
		p = p.Negate()
	}
	return p
}

func stressTree(r *dist.RNG, maxDepth int) *subscription.Node {
	if maxDepth <= 0 || r.Bool(0.4) {
		return subscription.Leaf(stressPredicate(r))
	}
	kind := subscription.NodeAnd
	if r.Bool(0.4) {
		kind = subscription.NodeOr
	}
	n := r.IntRange(2, 4)
	children := make([]*subscription.Node, n)
	for i := range children {
		children[i] = stressTree(r, maxDepth-1)
	}
	return &subscription.Node{Kind: kind, Children: children}
}

func stressMessage(r *dist.RNG, id uint64) *event.Message {
	b := event.Build(id)
	for _, a := range stressAttrs {
		if r.Bool(0.3) {
			continue
		}
		switch r.Intn(3) {
		case 0:
			b.Int(a, int64(r.Intn(10)))
		case 1:
			b.Num(a, r.Range(0, 10))
		default:
			b.Str(a, string(rune('a'+r.Intn(5)))+string(rune('a'+r.Intn(5))))
		}
	}
	return b.Msg()
}

// TestConcurrentPublishStress hammers a two-broker overlay: publishers on
// broker B run Publish and PublishBatch from many goroutines while broker
// A's subscription set churns and B's routing entries are pruned, all
// concurrently. Stable subscriptions (registered before traffic, never
// touched) must receive exactly the deliveries a serial filter engine
// computes for the same workload: pruning on B may over-forward, but A
// post-filters its local entries exactly, so end-to-end delivery stays
// precise. Run with -race this is the data-plane/control-plane torture
// test for the whole pipeline.
func TestConcurrentPublishStress(t *testing.T) {
	newParallelBroker := func(id string) *broker.Broker {
		b, err := broker.New(broker.Config{
			ID: id, MatchShards: 8, MatchWorkers: 4, ObserveEvents: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	type delKey struct {
		subID uint64
		msgID uint64
	}
	var delMu sync.Mutex
	delivered := make(map[delKey]int)
	flushed := make(chan uint64, 1024)

	// Flush probes live above probeBase; their deliveries are control
	// signal, not workload (a probe can legitimately match stress
	// subscriptions through negated predicates, so all its deliveries are
	// excluded from the recorded set).
	const probeBase = uint64(1) << 40
	const flushSubID = 999999
	srvA := NewServer(newParallelBroker("A"), func(d broker.Delivery) {
		if d.Msg.ID >= probeBase {
			if d.SubID == flushSubID {
				// Non-blocking: the callback runs on the link reader while
				// the server holds its read lock, and a dropped signal just
				// means the prober sends another probe.
				select {
				case flushed <- d.Msg.ID:
				default:
				}
			}
			return
		}
		delMu.Lock()
		delivered[delKey{d.SubID, d.Msg.ID}]++
		delMu.Unlock()
	})
	srvB := NewServer(newParallelBroker("B"), nil)
	defer srvA.Shutdown()
	defer srvB.Shutdown()

	c1, c2 := Pipe()
	if _, err := srvA.AttachLink(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.AttachLink(c2); err != nil {
		t.Fatal(err)
	}

	// Stable subscriptions, mirrored into a serial oracle engine.
	r := dist.New(2026)
	oracle := filter.New()
	const stableSubs = 200
	for id := uint64(1); id <= stableSubs; id++ {
		s, err := subscription.New(id, fmt.Sprintf("stable-%d", id), stressTree(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Register(s); err != nil {
			t.Fatal(err)
		}
		if _, err := srvA.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	// The flush subscription goes last: subscription forwarding is FIFO per
	// link, so once B routes an event to it, B has every stable entry.
	flushSub, err := subscription.New(flushSubID, "flusher",
		subscription.Leaf(subscription.Pred("flush", subscription.OpEq, event.Int(1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Subscribe(flushSub); err != nil {
		t.Fatal(err)
	}
	// awaitFlush publishes probes until one published in *this phase* comes
	// back. Per-peer outboxes are FIFO and A's reader is serial, so a
	// this-phase probe delivery proves every frame B queued before the
	// phase's first probe has been fully processed by A. Stale probe
	// deliveries from earlier phases carry earlier IDs and are drained.
	awaitFlush := func(base uint64) {
		deadline := time.Now().Add(20 * time.Second)
		for attempt := uint64(1); ; attempt++ {
			if time.Now().After(deadline) {
				t.Fatal("flush probe never delivered")
			}
			srvB.Publish(event.Build(base+attempt).Int("flush", 1).Msg())
			reprobe := time.After(5 * time.Millisecond)
			for waiting := true; waiting; {
				select {
				case id := <-flushed:
					if id > base && id <= base+attempt {
						return
					}
				case <-reprobe:
					waiting = false
				}
			}
		}
	}
	awaitFlush(probeBase) // barrier: B now has all stable entries

	// Concurrent phase: publishers, subscription churn, pruning, stats.
	const publishers = 4
	const eventsPerPublisher = 250
	const batchSize = 16

	var evMu sync.Mutex
	var published []*event.Message

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pr := dist.New(uint64(7000 + p))
			base := uint64((p + 1) * 1000000)
			batch := make([]*event.Message, 0, batchSize)
			for i := 0; i < eventsPerPublisher; i++ {
				m := stressMessage(pr, base+uint64(i))
				evMu.Lock()
				published = append(published, m)
				evMu.Unlock()
				if p%2 == 0 {
					srvB.Publish(m)
					continue
				}
				batch = append(batch, m)
				if len(batch) == batchSize {
					srvB.PublishBatch(batch)
					batch = batch[:0]
				}
			}
			srvB.PublishBatch(batch)
		}(p)
	}

	stop := make(chan struct{})
	var ctlWG sync.WaitGroup
	ctlWG.Add(3)
	go func() { // subscription churn on A (IDs disjoint from stable range)
		defer ctlWG.Done()
		cr := dist.New(555)
		id := uint64(500000)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i >= 300 {
				// Bounded: the churn exists to race the control plane
				// against the publishers, not to drown the overlay in
				// routing entries.
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
					continue
				}
			}
			id++
			s, err := subscription.New(id, "churn", stressTree(cr, 2))
			if err != nil || s == nil {
				continue
			}
			if _, err := srvA.Subscribe(s); err != nil {
				t.Error(err)
				return
			}
			if cr.Bool(0.7) {
				if err := srvA.Unsubscribe(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // pruning on B's (remote, prunable) entries
		defer ctlWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				srvB.Prune(10)
			}
		}
	}()
	go func() { // stats snapshots race the data plane
		defer ctlWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				_ = srvA.Stats()
				_ = srvB.Stats()
			}
		}
	}()

	wg.Wait()
	close(stop)
	ctlWG.Wait()
	awaitFlush(2 * probeBase) // sentinel: all published frames precede it FIFO-wise

	// Every stable subscription must have received exactly the serial
	// engine's match set — no loss, no duplicates, no spurious deliveries.
	expected := make(map[delKey]bool)
	for _, m := range published {
		for _, subID := range oracle.Match(m, nil) {
			expected[delKey{subID, m.ID}] = true
		}
	}
	delMu.Lock()
	defer delMu.Unlock()
	for k, n := range delivered {
		if k.subID >= 500000 {
			continue // churn subscriptions have no stable expectation
		}
		if !expected[k] {
			t.Errorf("spurious delivery: sub %d got event %d", k.subID, k.msgID)
		}
		if n != 1 {
			t.Errorf("sub %d received event %d %d times", k.subID, k.msgID, n)
		}
	}
	for k := range expected {
		if delivered[k] == 0 {
			t.Errorf("lost delivery: sub %d never got event %d", k.subID, k.msgID)
		}
	}
	if len(expected) == 0 {
		t.Fatal("workload produced no expected deliveries; stress test is vacuous")
	}
}
