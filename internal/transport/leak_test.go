// Leak regression for the subscribe-over-dead-conn path: SubscribeNode
// starts a callback handle's drainLoop goroutine before conn.Send and
// relies on h.retire(true) to end it when the send fails. These tests live
// in an external package so they can borrow the chaos plane's leak
// baseline (chaos imports transport, so the internal package would cycle).
package transport_test

import (
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/chaos"
	"dimprune/internal/event"
	"dimprune/internal/transport"
)

// TestSubscribeDeadConnNoGoroutineLeak subscribes with WithCallback over a
// connection that is already dead and asserts the failure path retires the
// drain goroutine and queue instead of leaking them.
func TestSubscribeDeadConnNoGoroutineLeak(t *testing.T) {
	base := chaos.CaptureLeakBaseline()

	b, err := broker.New(broker.Config{ID: "leak"})
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(b, nil)
	addr, err := srv.ListenClients("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewClient("leak", conn)
	// Kill the transport under the session. The first sends may still be
	// buffered locally, so drive subscribes until one observes the dead
	// connection and takes the send-failure path.
	_ = conn.Close()
	sawFailure := false
	for i := 0; i < 100 && !sawFailure; i++ {
		h, err := c.SubscribeExpr(`x = 1`,
			transport.WithCallback(func(*event.Message) {}))
		if err != nil {
			sawFailure = true
			break
		}
		_ = h
		time.Sleep(5 * time.Millisecond)
	}
	if !sawFailure {
		t.Fatal("subscribe never failed over a closed connection")
	}

	// Durable attach drives the same failure path through its own handle.
	if _, err := c.DurableSubscribeExpr("cursor", `x = 1`,
		transport.DurableCallback(func(transport.DurableEvent) {})); err == nil {
		t.Fatal("durable subscribe succeeded over a closed connection")
	}

	_ = c.Close()
	srv.Shutdown()
	if err := base.Check(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
