package transport

// Server-side durable subscriptions: a client registers a named WAL cursor
// with FrameDurableSubscribe; a per-durable pump goroutine replays the
// broker's event log from the cursor, post-filters records against the
// subscription tree exactly, and ships matches to the owning client
// session as FrameDurablePublish. The client acks with FrameAck; unacked
// records replay on the next attach — after a reconnect or a broker
// restart over the same WAL directory. Delivery is therefore
// at-least-once: duplicates possible around crashes, losses not.
//
// In the broker's routing table a durable is an ordinary local
// subscription under a mangled subscriber name ("\x00wal:"+name): the
// overlay keeps forwarding matching events toward this broker while the
// client is away, but dispatch never treats the entry as a deliverable
// client or hands it to onDeliver — the WAL pump is its only delivery
// path.

import (
	"fmt"
	"strings"
	"sync"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wal"
	"dimprune/internal/wire"
)

// durableSubscriberPrefix mangles a durable's routing-table subscriber so
// it can never collide with (or deliver as) a real client session. The
// NUL byte cannot appear in a client-supplied name that made it through a
// hello frame.
const durableSubscriberPrefix = "\x00wal:"

// durableWindow bounds a pump's sent-but-unacked records; past it the
// pump waits for acks. The outbox is unbounded by design, so without this
// a durable replaying a deep backlog to a slow client would materialize
// the whole log in memory.
const durableWindow = 1024

// durableSession is one live replay pump.
type durableSession struct {
	name       string
	subscriber string // client session the pump ships to
	subID      uint64
	root       *subscription.Node
	cur        *wal.Cursor

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	// ackPoke wakes the pump's flow-control wait when the client acks.
	ackPoke chan struct{}
}

func (d *durableSession) halt() { d.stopOnce.Do(func() { close(d.stop) }) }

// SetWAL attaches the broker's event log, enabling durable subscriptions.
// Call before traffic starts; the store's lifecycle (Open/Close) belongs
// to the caller.
func (s *Server) SetWAL(w *wal.Store) {
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
}

// logEvent write-aheads one published event before routing. Append errors
// cannot fail the (void) publish paths, so they surface through the
// diagnostic log; the store itself gates on registered durables, making
// the call free when none exist. Like logf, wal is set before traffic
// starts and read unguarded on the hot path.
func (s *Server) logEvent(m *event.Message) {
	if s.wal == nil {
		return
	}
	if _, err := s.wal.AppendMessage(m); err != nil {
		s.logPeer("wal append failed: %v", err)
	}
}

// DurableSubscribe registers (or reattaches) the named durable for the
// given client session. The subscription enters the routing table under
// the mangled subscriber; replay starts immediately from the persisted
// cursor. A durable already running — e.g. from the client's previous
// session — is stopped and restarted against the new subscription.
func (s *Server) DurableSubscribe(subscriber, name string, sub *subscription.Subscription) error {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return fmt.Errorf("transport: durable subscribe %q without a WAL (-wal-dir)", name)
	}

	// Reattach: stop the previous pump and retire its routing entry; its
	// cursor detaches so Attach below can take the name over.
	s.mu.Lock()
	old := s.durables[name]
	delete(s.durables, name)
	if old != nil {
		delete(s.durableNames, old.subID)
	}
	s.mu.Unlock()
	if old != nil {
		old.halt()
		<-old.done
		_ = s.Unsubscribe(old.subID)
	}

	mangled, err := subscription.New(sub.ID, durableSubscriberPrefix+name, sub.Root)
	if err != nil {
		return err
	}
	if _, err := s.Subscribe(mangled); err != nil {
		return err
	}
	cur, err := w.Attach(name)
	if err != nil {
		_ = s.Unsubscribe(sub.ID)
		return err
	}
	d := &durableSession{
		name:       name,
		subscriber: subscriber,
		subID:      sub.ID,
		root:       mangled.Root,
		cur:        cur,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		ackPoke:    make(chan struct{}, 1),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cur.Detach()
		close(d.done)
		return ErrClosed
	}
	s.durables[name] = d
	s.durableNames[sub.ID] = name
	s.wg.Add(1) // pump slot, reserved while !closed is known
	s.mu.Unlock()
	go s.runDurable(d)
	return nil
}

// durableUnsubscribe ends a durable whose routing-table ID the client
// retracted: the pump stops, the WAL registration (cursor position and
// retention hold) is forgotten, and the routing entry is removed. Reports
// whether id named a durable.
func (s *Server) durableUnsubscribe(id uint64) bool {
	s.mu.Lock()
	name, ok := s.durableNames[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.durableNames, id)
	d := s.durables[name]
	delete(s.durables, name)
	w := s.wal
	s.mu.Unlock()
	if d != nil {
		d.halt()
		<-d.done
	}
	if w != nil {
		_ = w.Forget(name) // detaches any cursor and releases retention
	}
	_ = s.Unsubscribe(id)
	return true
}

// durableAck advances the named durable's cursor. Acks for unknown names
// are stale frames from a just-unsubscribed durable and are dropped.
func (s *Server) durableAck(name string, seq uint64) {
	s.mu.RLock()
	d := s.durables[name]
	s.mu.RUnlock()
	if d == nil {
		return
	}
	if err := d.cur.Ack(seq); err != nil {
		return // store closed or cursor detached mid-teardown
	}
	select {
	case d.ackPoke <- struct{}{}:
	default:
	}
}

// runDurable is the replay pump. It exits when the session is halted
// (reattach, unsubscribe, shutdown), the store closes, or the owning
// client session is gone — a reconnecting client re-sends its durable
// subscribe, which restarts the pump from the cursor.
func (s *Server) runDurable(d *durableSession) {
	defer func() {
		// Self-cleanup covers the client-loss exit; halt paths already
		// removed the session (the guard makes this a no-op then).
		s.mu.Lock()
		if s.durables[d.name] == d {
			delete(s.durables, d.name)
			delete(s.durableNames, d.subID)
		}
		s.mu.Unlock()
		d.cur.Detach()
		close(d.done)
		s.wg.Done()
	}()
	var lastSent uint64
	for {
		// Flow control: the store's acked position includes both client
		// acks and contiguous skips, so it only passes lastSent when
		// nothing sent is outstanding.
		for {
			acked, ok := s.wal.Acked(d.name)
			if !ok || lastSent <= acked+durableWindow {
				break
			}
			select {
			case <-d.ackPoke:
			case <-d.stop:
				return
			}
		}
		seq, payload, err := d.cur.Next(d.stop)
		if err != nil {
			return
		}
		m, _, err := wire.DecodeMessage(payload)
		if err != nil {
			s.logPeer("durable %q: undecodable record %d: %v", d.name, seq, err)
			return
		}
		if !d.root.Matches(m) {
			d.cur.Skip(seq)
			continue
		}
		f := wire.DurablePublishFrame(d.name, seq, m)
		s.mu.RLock()
		p := s.clients[d.subscriber]
		s.mu.RUnlock()
		if p == nil || !p.out.push(outItem{f: f}) {
			return // client away: replay resumes on reattach
		}
		lastSent = seq
	}
}

// isDurableSubscriber reports whether a delivery subscriber is a mangled
// durable routing entry (never a deliverable client).
func isDurableSubscriber(name string) bool {
	return strings.HasPrefix(name, durableSubscriberPrefix)
}

// haltDurables stops every pump for Shutdown; the pumps' wg slots make
// Shutdown's Wait cover their exit.
func (s *Server) haltDurables() {
	s.mu.RLock()
	sessions := make([]*durableSession, 0, len(s.durables))
	for _, d := range s.durables {
		sessions = append(sessions, d)
	}
	s.mu.RUnlock()
	for _, d := range sessions {
		d.halt()
	}
}
